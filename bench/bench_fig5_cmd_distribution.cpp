// Fig. 5 reproduction: command distribution across the selected command
// classes the paper visualizes (15 named classes + the empty MARK).
#include <string>

#include "bench_util.h"
#include "zwave/command_class.h"

int main() {
  using namespace zc;
  bench::header("Fig. 5", "selected Z-Wave command classes and their command counts");

  struct Bar {
    zwave::CommandClassId id;
    std::size_t paper_count;
  };
  // The paper's bars, tallest to empty: 23 15 11 10 8 7 6 6 5 4 3 2 2 1 1 0.
  const Bar bars[] = {{0x9F, 23}, {0x34, 15}, {0x7A, 11}, {0x63, 10}, {0x85, 8},
                      {0x60, 7},  {0x86, 6},  {0x70, 6},  {0x71, 5},  {0x32, 4},
                      {0x20, 3},  {0x80, 2},  {0x22, 2},  {0x5A, 1},  {0x82, 1},
                      {0xEF, 0}};

  const auto& db = zwave::SpecDatabase::instance();
  bool all_match = true;
  std::printf("\n%-44s %-6s %-28s bar\n", "command class", "id", "#commands");
  for (const auto& bar : bars) {
    const auto* spec = db.find(bar.id);
    const std::size_t measured = spec != nullptr ? spec->commands.size() : 0;
    all_match = all_match && measured == bar.paper_count;
    std::printf("%-44s 0x%02X   %-28s %s\n",
                spec != nullptr ? std::string(spec->name).c_str() : "?", bar.id,
                bench::cell(bar.paper_count, measured).c_str(),
                std::string(measured, '#').c_str());
  }
  std::printf("\nFig. 5 overall: %s\n", all_match ? "MATCHES PAPER" : "DIFFERS");
  return 0;
}
