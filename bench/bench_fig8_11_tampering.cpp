// Figs. 8-11 reproduction: the controller-memory tampering screenshots as
// before/after node-table dumps, driven by the actual PoC payloads over RF.
#include "bench_util.h"
#include "core/dongle.h"
#include "sim/testbed.h"

int main() {
  using namespace zc;
  bench::header("Figs. 8-11", "controller memory tampering proof-of-concept chain");

  sim::TestbedConfig config;
  config.controller_model = sim::DeviceModel::kD6_SamsungWv520;
  sim::Testbed testbed(config);
  auto& controller = testbed.controller();
  core::ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                           testbed.attacker_radio_config("poc-dongle"));
  const zwave::HomeId home = controller.home_id();

  auto inject = [&](Bytes params) {
    zwave::AppPayload payload;
    payload.cmd_class = 0x01;
    payload.command = 0x0D;
    payload.params = std::move(params);
    dongle.send_app(home, 0xE7, 0x01, payload);
    dongle.run_for(100 * kMillisecond);
  };
  auto show = [&](const char* caption) {
    std::printf("\n[%s]\n%s", caption, controller.node_table().render().c_str());
  };

  show("baseline");

  // Fig. 8: lock (node 2) demoted to routing slave.
  inject({0x00, sim::Testbed::kLockNodeId, 0x00});
  show("Fig. 8  after property corruption: node 2 type changed to routing-slave");
  const auto* lock = controller.node_table().find(sim::Testbed::kLockNodeId);
  const bool fig8 = lock != nullptr && lock->basic_class == zwave::kBasicClassRoutingSlave;

  testbed.restore_network();

  // Fig. 9: rogue controllers 10 and 200 inserted.
  inject({0x01, 10, 0x00});
  inject({0x01, 200, 0x00});
  show("Fig. 9  after rogue insertion: fake controllers #10 and #200");
  const bool fig9 = controller.node_table().find(10) != nullptr &&
                    controller.node_table().find(200) != nullptr;

  testbed.restore_network();

  // Fig. 10: nodes 2 and 3 removed.
  inject({0x02, 0x02, 0x00});
  inject({0x02, 0x03, 0x00});
  show("Fig. 10 after removal: devices #2 and #3 gone");
  const bool fig10 = controller.node_table().find(2) == nullptr &&
                     controller.node_table().find(3) == nullptr;

  testbed.restore_network();

  // Fig. 11: whole database overwritten with fakes.
  inject({0x03, 0x00, 0x00});
  show("Fig. 11 after database overwrite: only fake devices remain");
  const bool fig11 = controller.node_table().find(2) == nullptr &&
                     controller.node_table().find(10) != nullptr;

  std::printf("\nFig. 8: %s  Fig. 9: %s  Fig. 10: %s  Fig. 11: %s\n", bench::mark(fig8),
              bench::mark(fig9), bench::mark(fig10), bench::mark(fig11));
  std::printf("Figs. 8-11 overall: %s\n",
              fig8 && fig9 && fig10 && fig11 ? "MATCHES PAPER" : "DIFFERS");
  return 0;
}
