// Microbenchmarks (google-benchmark) for the performance-critical
// primitives under the fuzzing loop: AES/CMAC/X25519, frame codec, PHY
// symbol coding, S2 encapsulation, and the position-sensitive mutator.
//
// These quantify the simulator's per-packet cost — the reason a "24-hour"
// campaign replays in seconds of wall time.
#include <benchmark/benchmark.h>

#include <string>
#include <thread>

#include "common/cpu.h"
#include "common/rng.h"
#include "core/mutator.h"
#include "crypto/aes128.h"
#include "crypto/cmac.h"
#include "crypto/x25519.h"
#include "radio/medium.h"
#include "radio/phy.h"
#include "radio/phy_simd.h"
#include "sim/testbed.h"
#include "zwave/checksum.h"
#include "zwave/command_class.h"
#include "zwave/frame.h"
#include "zwave/security.h"

namespace {

using namespace zc;

void BM_Aes128EncryptBlock(benchmark::State& state) {
  crypto::AesKey key{};
  key.fill(0x42);
  const crypto::Aes128 cipher(key);
  crypto::AesBlock block{};
  for (auto _ : state) {
    cipher.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128EncryptBlock);

void BM_Aes128EncryptBlockPortable(benchmark::State& state) {
  // Pins the scalar reference path so the AES-NI speedup stays visible in
  // the JSON even on hosts where the default bench takes the hardware path.
  cpu::ScopedForcePortable portable;
  crypto::AesKey key{};
  key.fill(0x42);
  const crypto::Aes128 cipher(key);
  crypto::AesBlock block{};
  for (auto _ : state) {
    cipher.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128EncryptBlockPortable);

void BM_AesCmac(benchmark::State& state) {
  crypto::AesKey key{};
  key.fill(0x42);
  const Bytes message(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    auto tag = crypto::aes_cmac(key, message);
    benchmark::DoNotOptimize(tag);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCmac)->Arg(16)->Arg(64);

void BM_X25519(benchmark::State& state) {
  crypto::X25519Key scalar{};
  scalar.fill(0x77);
  crypto::X25519Key point{};
  point[0] = 9;
  for (auto _ : state) {
    auto out = crypto::x25519(scalar, point);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_X25519);

void BM_FrameEncode(benchmark::State& state) {
  zwave::AppPayload app;
  app.cmd_class = 0x62;
  app.command = 0x01;
  app.params = Bytes(16, 0xAB);
  const zwave::MacFrame frame = zwave::make_singlecast(0xC7E9DD54, 0xE7, 0x01, app, 5, true);
  for (auto _ : state) {
    auto raw = frame.encode();
    benchmark::DoNotOptimize(raw);
  }
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  zwave::AppPayload app;
  app.cmd_class = 0x62;
  app.command = 0x01;
  app.params = Bytes(16, 0xAB);
  const Bytes raw =
      zwave::make_singlecast(0xC7E9DD54, 0xE7, 0x01, app, 5, true).encode().value();
  for (auto _ : state) {
    auto frame = zwave::decode_frame(raw);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_FrameDecode);

void BM_PhyRoundTrip(benchmark::State& state) {
  const Bytes frame(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    const auto bits = radio::encode_transmission(frame);
    auto decoded = radio::decode_transmission(bits);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PhyRoundTrip)->Arg(12)->Arg(64);

void BM_PhyRoundTripReused(benchmark::State& state) {
  // The _into variants the simulator's hot path uses: scratch buffers keep
  // their capacity across frames, so steady state does zero allocations.
  const Bytes frame(static_cast<std::size_t>(state.range(0)), 0x5A);
  radio::BitStream bits;
  Bytes decoded;
  for (auto _ : state) {
    radio::encode_transmission_into(frame, bits);
    auto n = radio::decode_transmission_into(bits, decoded);
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PhyRoundTripReused)->Arg(12)->Arg(64);

void BM_ManchesterBatch(benchmark::State& state) {
  // The batch symbol kernels in isolation (no preamble/SOF hunt): encode a
  // whole body with one call, decode it back, on whichever ISA the host
  // dispatches to. Compare against a ZC_DISABLE_SIMD=1 run for the speedup.
  const Bytes frame(static_cast<std::size_t>(state.range(0)), 0x5A);
  const radio::simd::Isa isa = radio::simd::active_isa();
  state.SetLabel(radio::simd::isa_name(isa));
  Bytes line(frame.size() * 16);
  Bytes decoded(frame.size());
  for (auto _ : state) {
    radio::simd::manchester_encode_bytes(isa, frame.data(), frame.size(), line.data());
    auto n = radio::simd::manchester_decode_bytes(isa, line.data(), frame.size(),
                                                  decoded.data());
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ManchesterBatch)->Arg(64);

void BM_MediumBatchSweep(benchmark::State& state) {
  // One transmitter, range(0) listeners at point-blank range on a clean
  // channel: every broadcast stages one DeliveryBatch (shared lease, no
  // per-receiver copies) and resolves with a single scheduler event.
  EventScheduler scheduler;
  radio::RfMedium medium(scheduler, Rng(0x5EEDBA7C));
  radio::RadioConfig tx_cfg;
  tx_cfg.label = "tx";
  radio::Transceiver tx(medium, tx_cfg);
  std::vector<std::unique_ptr<radio::Transceiver>> listeners;
  for (int i = 0; i < state.range(0); ++i) {
    radio::RadioConfig cfg;
    cfg.label = "rx" + std::to_string(i);
    listeners.push_back(std::make_unique<radio::Transceiver>(medium, cfg));
  }
  const Bytes frame(12, 0x5A);
  for (auto _ : state) {
    tx.transmit(frame);
    scheduler.run_all();
  }
  if (listeners[0]->frames_heard() == 0) {
    state.SkipWithError("batch sweep delivered nothing");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MediumBatchSweep)->Arg(4)->Arg(16);

void BM_Checksum8(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x3C);
  for (auto _ : state) {
    auto cs = zwave::checksum8(data);
    benchmark::DoNotOptimize(cs);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Checksum8)->Arg(8)->Arg(64)->Arg(256);

void BM_Crc16(benchmark::State& state) {
  const Bytes data(64, 0x3C);
  for (auto _ : state) {
    auto crc = zwave::crc16_ccitt(data);
    benchmark::DoNotOptimize(crc);
  }
}
BENCHMARK(BM_Crc16);

void BM_SpecDbLookup(benchmark::State& state) {
  // find() + command_count() over the whole 8-bit id space — the shape of
  // the fingerprint phase's CMDCL prioritization and the controller's
  // per-packet dispatch.
  const auto& db = zwave::SpecDatabase::instance();
  for (auto _ : state) {
    std::size_t commands = 0;
    for (unsigned id = 0; id < 256; ++id) {
      const auto* spec = db.find(static_cast<zwave::CommandClassId>(id));
      if (spec != nullptr) commands += db.command_count(spec->id);
    }
    benchmark::DoNotOptimize(commands);
  }
}
BENCHMARK(BM_SpecDbLookup);

void BM_SpecDbFindCommand(benchmark::State& state) {
  // Per-class command lookup (binary search on the sorted spec tables).
  const auto& db = zwave::SpecDatabase::instance();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& spec : db.all()) {
      for (const auto& cmd : spec.commands) {
        if (spec.find_command(cmd.id) != nullptr) ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SpecDbFindCommand);

void BM_S2EncapDecap(benchmark::State& state) {
  Rng rng(1);
  const auto priv_a = crypto::make_x25519_key(rng.bytes(32));
  const auto priv_b = crypto::make_x25519_key(rng.bytes(32));
  const auto keys_a = zwave::s2_key_agreement(priv_a, crypto::x25519_public(priv_b));
  const auto keys_b = zwave::s2_key_agreement(priv_b, crypto::x25519_public(priv_a));
  const Bytes seed = rng.bytes(32);
  zwave::S2Session sender(keys_a, seed);
  zwave::S2Session receiver(keys_b, seed);
  zwave::AppPayload inner;
  inner.cmd_class = 0x62;
  inner.command = 0x01;
  inner.params = {0xFF};
  for (auto _ : state) {
    const auto outer = sender.encapsulate(inner, 0xC7E9DD54, 0x01, 0x02);
    auto decoded = receiver.decapsulate(outer, 0xC7E9DD54, 0x01, 0x02);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_S2EncapDecap);

void BM_PositionSensitiveMutation(benchmark::State& state) {
  Rng rng(7);
  core::PositionSensitiveMutator mutator(rng, 0x9F);
  for (auto _ : state) {
    auto payload = mutator.next();
    benchmark::DoNotOptimize(payload);
  }
}
BENCHMARK(BM_PositionSensitiveMutation);

void BM_RandomMutation(benchmark::State& state) {
  Rng rng(7);
  core::RandomMutator mutator(rng);
  for (auto _ : state) {
    auto payload = mutator.next();
    benchmark::DoNotOptimize(payload);
  }
}
BENCHMARK(BM_RandomMutation);

// Shard-context turnaround: constructing a testbed world from scratch vs
// recycling one through Testbed::reset — the per-shard fixed cost the
// executor's persistent worker contexts amortize. The pair quantifies how
// much of a shard's setup the warm BitBufferPool + DeliveryBatch arena
// actually saves.
void BM_TestbedFresh(benchmark::State& state) {
  sim::TestbedConfig config;
  config.seed = 0x2C07E12F;
  for (auto _ : state) {
    sim::Testbed testbed(config);
    benchmark::DoNotOptimize(testbed.controller().home_id());
  }
}
BENCHMARK(BM_TestbedFresh);

void BM_TestbedReset(benchmark::State& state) {
  sim::TestbedConfig config;
  config.seed = 0x2C07E12F;
  sim::Testbed testbed(config);
  // Warm the pools the way a real shard does before the first reset.
  testbed.scheduler().run_for(30 * kSecond);
  for (auto _ : state) {
    testbed.reset(config);
    benchmark::DoNotOptimize(testbed.controller().home_id());
  }
}
BENCHMARK(BM_TestbedReset);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp the build type into the
// JSON context so check_regression.py can refuse debug-vs-release diffs.
// (The library's own "library_build_type" reports how *libbenchmark* was
// compiled, not this translation unit — check_regression.py gates the two
// independently; -DZC_BENCHMARK_SOURCE_DIR builds the library in Release.)
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("zc_build_type", "release");
#else
  benchmark::AddCustomContext("zc_build_type", "debug");
#endif
  // Core count of the measuring host: check_regression.py warns when a
  // baseline from a differently-sized machine is compared against.
  benchmark::AddCustomContext("zc_hw_concurrency",
                              std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("zc_simd_isa",
                              zc::radio::simd::isa_name(zc::radio::simd::active_isa()));
  benchmark::AddCustomContext("zc_aes_backend",
                              zc::crypto::aes_backend_name(zc::crypto::active_aes_backend()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
