// Table VI reproduction: the ablation study on the ZooZ controller (D1),
// one virtual hour per configuration.
//
//   1. ZCover full  (known + unknown CMDCLs + position-sensitive mutation)
//   2. ZCover beta  (known CMDCLs only + position-sensitive mutation)
//   3. ZCover gamma (random CMDCLs, no position sensitivity)
#include <set>

#include "bench_util.h"
#include "core/campaign.h"

namespace {

std::size_t run_arm(zc::core::CampaignMode mode, std::uint64_t seed) {
  using namespace zc;
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD1_ZoozZst10;
  sim::Testbed testbed(testbed_config);
  core::CampaignConfig config;
  config.mode = mode;
  config.duration = 1 * kHour;
  config.loop_queue = false;
  config.seed = seed;
  core::Campaign campaign(testbed, config);
  const auto result = campaign.run();
  std::set<int> bugs;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id > 0) bugs.insert(finding.matched_bug_id);
  }
  return bugs.size();
}

}  // namespace

int main() {
  using namespace zc;
  bench::header("Table VI", "ablation of ZCover core features (1 h, ZooZ controller)");

  // Fixed trial seeds, like a recorded lab run (gamma's yield naturally
  // varies ~4-7 across seeds; the ablation ordering does not).
  const std::size_t full = run_arm(core::CampaignMode::kFull, 0x2C07E12F);
  const std::size_t beta = run_arm(core::CampaignMode::kKnownOnly, 0x2C07E12F);
  const std::size_t gamma = run_arm(core::CampaignMode::kRandom, 0x777);

  std::printf("\n%-4s %-58s %s\n", "test", "configuration", "#Vul");
  std::printf("1    ZCover full (known+unknown CMDCLs + PSM)                  %s\n",
              bench::cell(15, full).c_str());
  std::printf("2    ZCover beta (known CMDCLs only + PSM)                     %s\n",
              bench::cell(8, beta).c_str());
  std::printf("3    ZCover gamma (random CMDCLs, no PSM)                      %s\n",
              bench::cell(6, gamma).c_str());

  const bool shape = full > beta && beta > gamma && gamma >= 1;
  std::printf("\nordering full > beta > gamma: %s\n", shape ? "holds" : "VIOLATED");
  return 0;
}
