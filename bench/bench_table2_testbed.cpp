// Table II reproduction: the tested-device inventory. Mostly descriptive,
// but every row is checked against the live simulation: the device boots,
// answers at its home id, and its encryption support is real (the S2 lock
// actually refuses plaintext, the legacy switch actually obeys it).
#include "bench_util.h"
#include "core/dongle.h"
#include "sim/testbed.h"

int main() {
  using namespace zc;
  bench::header("Table II", "tested device details");

  std::printf("\n%-4s %-10s %-12s %-22s %-6s %-12s %s\n", "IDX", "brand", "type", "model",
              "year", "encryption", "boots+answers");
  bool all_ok = true;
  for (sim::DeviceModel model : sim::all_controller_models()) {
    const auto& profile = sim::controller_profile(model);
    sim::TestbedConfig config;
    config.controller_model = model;
    sim::Testbed testbed(config);
    core::ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                             testbed.attacker_radio_config("probe"));
    dongle.send_app(profile.home_id, 0xE7, 0x01, zwave::make_nop());
    const bool answers = dongle.await_ack(profile.home_id, 0x01, 0xE7, 500 * kMillisecond);
    all_ok = all_ok && answers;
    std::printf("D%-3d %-10s %-12s %-22s %-6d %-12s %s\n", static_cast<int>(model),
                std::string(profile.brand).c_str(), "Controller",
                std::string(profile.product).c_str(), profile.year, "Yes",
                bench::mark(answers));
  }

  // The two slaves: encryption support demonstrated behaviorally.
  sim::Testbed home(sim::TestbedConfig{});
  radio::MacEndpoint attacker(home.medium(), home.attacker_radio_config("attacker"));

  zwave::AppPayload unlock;
  unlock.cmd_class = 0x62;
  unlock.command = 0x01;
  unlock.params = {0x00};
  attacker.send(zwave::make_singlecast(home.controller().home_id(), 0xE7,
                                       sim::Testbed::kLockNodeId, unlock, 1, false));
  home.scheduler().run_for(100 * kMillisecond);
  const bool lock_secure = home.door_lock()->locked();  // plaintext refused

  zwave::AppPayload on;
  on.cmd_class = 0x25;
  on.command = 0x01;
  on.params = {0xFF};
  attacker.send(zwave::make_singlecast(home.controller().home_id(), 0xE7,
                                       sim::Testbed::kSwitchNodeId, on, 2, false));
  home.scheduler().run_for(100 * kMillisecond);
  const bool switch_legacy = home.smart_switch()->on();  // plaintext obeyed

  std::printf("D8   %-10s %-12s %-22s %-6d %-12s %s\n", "Schlage", "Door Lock",
              "BE469ZP", 2019, "Yes (S2)", bench::mark(lock_secure));
  std::printf("D9   %-10s %-12s %-22s %-6d %-12s %s\n", "GE Jasco", "Smart Switch",
              "ZW4201", 2016, "No", bench::mark(switch_legacy));

  all_ok = all_ok && lock_secure && switch_legacy;
  std::printf("\nTable II overall: %s\n", all_ok ? "MATCHES PAPER" : "DIFFERS");
  return 0;
}
