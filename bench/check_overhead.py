#!/usr/bin/env python3
"""Instrumentation overhead gate: fail when an enabled hook layer costs too much.

Usage:
    check_overhead.py --input BENCH_obs_overhead.json [--threshold 0.03]
                      [--benchmark bench_obs_overhead]

Reads the off-vs-on JSON an overhead bench emits (bench_obs_overhead for
the telemetry hooks, bench_covfuzz_overhead for the coverage hooks — both
run one fixed campaign workload with the instrumentation off and on) and
compares the two throughputs directly — no committed baseline needed,
because both arms run in the same invocation on the same machine. Exit
status 1 when the instrumented arm is more than ``--threshold`` (default
3%) slower than the uninstrumented arm.

Follows the check_regression.py conventions: [OK]/[REG] markers per
metric, PASS/FAIL summary line, argparse interface.
"""

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.03


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--input", required=True,
                        help="JSON produced by an overhead bench")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated fractional throughput loss (default %(default)s)",
    )
    parser.add_argument(
        "--benchmark",
        default="bench_obs_overhead",
        help="expected 'benchmark' field in the JSON (default %(default)s)",
    )
    args = parser.parse_args(argv)

    with open(args.input, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("benchmark") != args.benchmark:
        raise ValueError(f"{args.input}: not a {args.benchmark} JSON document")

    off = float(data["baseline_trials_per_sec"])
    on = float(data["telemetry_trials_per_sec"])
    if off <= 0:
        raise ValueError(f"{args.input}: degenerate baseline throughput {off}")
    loss = (off - on) / off

    marker = "OK " if loss <= args.threshold else "REG"
    print(f"  [{marker}] {args.benchmark}: {off:.2f} -> {on:.2f} trials/s "
          f"({loss * 100.0:+.1f}% loss, budget {args.threshold * 100.0:.0f}%)")

    if loss > args.threshold:
        print(f"FAIL: enabled instrumentation costs {loss * 100.0:.1f}% throughput "
              f"(budget {args.threshold * 100.0:.0f}%)")
        return 1
    print(f"PASS: overhead within the {args.threshold * 100.0:.0f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
