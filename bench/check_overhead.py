#!/usr/bin/env python3
"""Telemetry overhead gate: fail when enabled telemetry costs too much throughput.

Usage:
    check_overhead.py --input BENCH_obs_overhead.json [--threshold 0.03]

Reads the JSON bench_obs_overhead emits (one fixed campaign run with
telemetry off and on) and compares the two throughputs directly — no
committed baseline needed, because both arms run in the same invocation on
the same machine. Exit status 1 when the telemetry-on arm is more than
``--threshold`` (default 3%) slower than the telemetry-off arm.

Follows the check_regression.py conventions: [OK]/[REG] markers per
metric, PASS/FAIL summary line, argparse interface.
"""

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.03


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--input", required=True,
                        help="JSON produced by bench_obs_overhead")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated fractional throughput loss (default %(default)s)",
    )
    args = parser.parse_args(argv)

    with open(args.input, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("benchmark") != "bench_obs_overhead":
        raise ValueError(f"{args.input}: not a bench_obs_overhead JSON document")

    off = float(data["baseline_trials_per_sec"])
    on = float(data["telemetry_trials_per_sec"])
    if off <= 0:
        raise ValueError(f"{args.input}: degenerate baseline throughput {off}")
    loss = (off - on) / off

    marker = "OK " if loss <= args.threshold else "REG"
    print(f"  [{marker}] telemetry overhead: {off:.2f} -> {on:.2f} trials/s "
          f"({loss * 100.0:+.1f}% loss, budget {args.threshold * 100.0:.0f}%)")

    if loss > args.threshold:
        print(f"FAIL: enabled telemetry costs {loss * 100.0:.1f}% throughput "
              f"(budget {args.threshold * 100.0:.0f}%)")
        return 1
    print(f"PASS: telemetry overhead within the {args.threshold * 100.0:.0f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
