// Table I reproduction: the mutation-operator/field matrix, demonstrated
// live — for each application-layer position the operators that Table I
// assigns are exercised and their observed effects tallied over a large
// sample of generated payloads.
#include <map>

#include "bench_util.h"
#include "core/mutator.h"

int main() {
  using namespace zc;
  bench::header("Table I", "mutation operators assigned to Z-Wave frame fields");

  std::printf("\n%-8s %-4s %s\n", "field", "len", "operators");
  std::printf("%-8s %-4s %s\n", "H-ID", "4", "none");
  std::printf("%-8s %-4s %s\n", "SRC", "1", "none");
  std::printf("%-8s %-4s %s\n", "P1", "1", "none");
  std::printf("%-8s %-4s %s\n", "P2", "1", "none");
  std::printf("%-8s %-4s %s\n", "LEN", "1", "none (recomputed)");
  std::printf("%-8s %-4s %s\n", "DST", "1", "none");
  std::printf("%-8s %-4s %s\n", "CMDCL", "1", "rand_valid");
  std::printf("%-8s %-4s %s\n", "CMD", "1",
              "rand_valid, rand_invalid, arith, interesting, insert");
  std::printf("%-8s %-4s %s\n", "PARAMn", "1",
              "rand_valid, rand_invalid, arith, interesting, insert");
  std::printf("%-8s %-4s %s\n", "CS", "1", "none (recomputed)");

  // Empirical check over the VERSION class (6 commands, rich schemas).
  Rng rng(0x7AB1E1);
  core::PositionSensitiveMutator mutator(rng, 0x86);
  const auto* spec = zwave::SpecDatabase::instance().find(0x86);

  std::size_t total = 200000;
  std::size_t class_mutated = 0, cmd_valid = 0, cmd_interesting = 0, extended = 0;
  std::map<std::size_t, std::size_t> param_lengths;
  for (std::size_t i = 0; i < total; ++i) {
    const auto payload = mutator.next();
    if (payload.cmd_class != 0x86) ++class_mutated;
    const auto* command = spec->find_command(payload.command);
    if (command != nullptr) {
      ++cmd_valid;
      if (payload.params.size() > command->params.size()) ++extended;
    }
    for (std::uint8_t interesting : core::kInterestingBytes) {
      if (payload.command == interesting) {
        ++cmd_interesting;
        break;
      }
    }
    ++param_lengths[payload.params.size()];
  }

  std::printf("\nempirical distribution over %zu generated payloads (class 0x86):\n", total);
  std::printf("  CMDCL mutated away from target : %zu (Table I says: never)\n", class_mutated);
  std::printf("  CMD valid per spec             : %.1f%%\n",
              100.0 * static_cast<double>(cmd_valid) / static_cast<double>(total));
  std::printf("  CMD hit an interesting value   : %.1f%%\n",
              100.0 * static_cast<double>(cmd_interesting) / static_cast<double>(total));
  std::printf("  payload extended via insert    : %.1f%%\n",
              100.0 * static_cast<double>(extended) / static_cast<double>(total));
  std::printf("  distinct parameter lengths     : %zu\n", param_lengths.size());

  std::printf("\nTable I overall: %s\n",
              class_mutated == 0 && cmd_valid > total / 2 ? "MATCHES PAPER" : "DIFFERS");
  return 0;
}
