// bench_parallel: throughput of the sharded campaign engine vs thread
// count, emitted as machine-readable JSON for the regression gate
// (bench/check_regression.py) and the committed BENCH_parallel.json
// baseline.
//
//   bench_parallel [output.json] [--trials N] [--minutes M] [--jobs a,b,c]
//
// One workload — N full-mode trials against the D4 reference controller —
// is run once per requested job count. Shard seeds are pure functions of
// (base seed, shard id), so every row fuzzes the *same* packets; only the
// wall clock differs. Reported per row:
//   * trials/sec   — completed shards per wall second
//   * frames/sec   — RF-medium transmissions per wall second
//   * speedup      — against the jobs=1 row of the same invocation
//
// A second sweep (`skew_rows` in the JSON) runs the same shard count with
// shard 0 at 8x the simulated duration of the rest — the steal-heavy case
// for the work-stealing executor, where a static block split would leave
// every other worker idle for most of the run. The determinism guard
// covers both sweeps.
//
// Speedup scales with physical cores; hw_concurrency is recorded in the
// JSON so a reader can judge a baseline produced on different hardware.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/parallel.h"

namespace {

using namespace zc;

// Debug and Release builds of the simulator differ by an order of magnitude
// in throughput, so comparing across build types is meaningless. Stamp the
// JSON so check_regression.py can refuse mixed comparisons.
#ifdef NDEBUG
constexpr const char* kBuildType = "release";
#else
constexpr const char* kBuildType = "debug";
#endif

struct Row {
  std::size_t jobs = 1;
  double wall_seconds = 0.0;
  double trials_per_sec = 0.0;
  double frames_per_sec = 0.0;
  double speedup = 1.0;
  std::uint64_t total_packets = 0;
  std::size_t union_bugs = 0;
};

std::vector<std::size_t> parse_jobs_list(const char* arg) {
  std::vector<std::size_t> jobs;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) jobs.push_back(std::strtoull(token.c_str(), nullptr, 10));
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallel.json";
  std::size_t trials = 8;
  double minutes = 20.0;
  std::vector<std::size_t> jobs_list = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--minutes") == 0 && i + 1 < argc) {
      minutes = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs_list = parse_jobs_list(argv[++i]);
    } else {
      out_path = argv[i];
    }
  }

  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.seed = 0x2C07E12F;

  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = static_cast<SimTime>(minutes * static_cast<double>(kMinute));
  config.seed = 0x2C07E12F;
  config.loop_queue = false;

  std::printf("workload: %zu trials x %.0f simulated minutes, device %s\n", trials,
              minutes, sim::device_model_name(testbed_config.controller_model));

  // One sweep over jobs_list; `sweep` builds the report per job count so the
  // uniform and skewed workloads share measurement + guard code.
  auto run_sweep = [&](const char* label,
                       auto make_report) -> std::vector<Row> {
    std::vector<Row> rows;
    double base_wall = 0.0;
    for (std::size_t jobs : jobs_list) {
      const core::ParallelTrialReport report = make_report(jobs);

      std::uint64_t frames = 0;
      for (const core::ShardResult& shard : report.shards) {
        frames += shard.medium_transmissions;
      }

      Row row;
      row.jobs = report.jobs;
      row.wall_seconds = report.wall_seconds;
      row.trials_per_sec =
          report.wall_seconds > 0.0
              ? static_cast<double>(report.shards.size()) / report.wall_seconds
              : 0.0;
      row.frames_per_sec = report.wall_seconds > 0.0
                               ? static_cast<double>(frames) / report.wall_seconds
                               : 0.0;
      row.total_packets = report.summary.total_packets;
      row.union_bugs = report.summary.union_bug_ids.size();
      if (rows.empty()) base_wall = report.wall_seconds;
      row.speedup = report.wall_seconds > 0.0 ? base_wall / report.wall_seconds : 1.0;
      rows.push_back(row);

      std::printf(
          "%s jobs=%-2zu wall=%7.3fs  trials/s=%8.2f  frames/s=%10.0f  speedup=%5.2fx  "
          "packets=%llu bugs=%zu\n",
          label, row.jobs, row.wall_seconds, row.trials_per_sec, row.frames_per_sec,
          row.speedup, static_cast<unsigned long long>(row.total_packets),
          row.union_bugs);

      // Determinism guard: every row must see the same merged campaign.
      if (rows.size() > 1 && (row.total_packets != rows.front().total_packets ||
                              row.union_bugs != rows.front().union_bugs)) {
        std::fprintf(stderr, "FATAL: %s jobs=%zu diverged from jobs=%zu\n", label,
                     row.jobs, rows.front().jobs);
        std::exit(1);
      }
    }
    return rows;
  };

  const std::vector<Row> rows = run_sweep("uniform", [&](std::size_t jobs) {
    core::ParallelConfig parallel;
    parallel.jobs = jobs;
    return core::run_trials_parallel(testbed_config, config, trials, parallel);
  });

  // Skewed workload: shard 0 gets 8x the simulated minutes. Run through the
  // explicit-shard API so the report carries the same accounting.
  std::vector<core::ShardSpec> skewed;
  for (std::size_t i = 0; i < trials; ++i) {
    core::ShardSpec spec;
    spec.shard_id = i;
    spec.testbed = testbed_config;
    spec.testbed.seed = core::shard_testbed_seed(testbed_config.seed, i);
    spec.campaign = config;
    spec.campaign.duration = i == 0 ? 8 * config.duration : config.duration;
    spec.campaign.seed = core::shard_campaign_seed(config.seed, i);
    skewed.push_back(std::move(spec));
  }
  const std::vector<Row> skew_rows = run_sweep("skewed ", [&](std::size_t jobs) {
    core::ParallelConfig parallel;
    parallel.jobs = jobs;
    const auto start = std::chrono::steady_clock::now();
    std::vector<core::ShardResult> results = core::run_shards(skewed, parallel);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    core::ParallelTrialReport report;
    report.jobs = jobs;
    report.wall_seconds = wall;
    for (const core::ShardResult& shard : results) {
      report.summary.total_packets += shard.result.test_packets;
      for (const auto& finding : shard.result.findings) {
        if (finding.matched_bug_id > 0) report.summary.union_bug_ids.insert(finding.matched_bug_id);
      }
    }
    report.shards = std::move(results);
    return report;
  });

  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"bench_parallel\",\n");
  std::fprintf(out, "  \"build_type\": \"%s\",\n", kBuildType);
  std::fprintf(out, "  \"workload\": {\"trials\": %zu, \"simulated_minutes\": %.1f, "
                    "\"device\": \"%s\", \"mode\": \"full\", \"seed\": %llu},\n",
               trials, minutes, sim::device_model_name(testbed_config.controller_model),
               static_cast<unsigned long long>(config.seed));
  std::fprintf(out, "  \"hw_concurrency\": %zu,\n", core::default_jobs());
  auto write_rows = [out](const char* key, const std::vector<Row>& list, bool last) {
    std::fprintf(out, "  \"%s\": [\n", key);
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Row& row = list[i];
      std::fprintf(out,
                   "    {\"jobs\": %zu, \"wall_seconds\": %.6f, \"trials_per_sec\": %.3f, "
                   "\"frames_per_sec\": %.1f, \"speedup\": %.3f, \"total_packets\": %llu, "
                   "\"union_bugs\": %zu}%s\n",
                   row.jobs, row.wall_seconds, row.trials_per_sec, row.frames_per_sec,
                   row.speedup, static_cast<unsigned long long>(row.total_packets),
                   row.union_bugs, i + 1 < list.size() ? "," : "");
    }
    std::fprintf(out, "  ]%s\n", last ? "" : ",");
  };
  write_rows("rows", rows, false);
  write_rows("skew_rows", skew_rows, true);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
