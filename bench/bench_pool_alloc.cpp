// bench_pool_alloc: proves the RF fast path's zero-allocation claim.
//
// A global operator new/delete hook counts every heap allocation in the
// process. After warming the buffer pool, the delivery-record arena and the
// scheduler queue, a steady-state clean-channel iteration — line-code a
// frame into a pooled lease, broadcast, deliver, decode back into a reused
// byte buffer — must perform exactly ZERO heap allocations. Any regression
// (a codec that returns by value again, a capture that outgrows
// std::function's inline storage, a pool that stops recycling) shows up as
// a nonzero per-iteration count and a nonzero exit status, so this runs as
// a `ctest -L perf` gate next to the throughput benches.
//
// Sanitizer builds replace operator new with their own interceptors;
// overriding it underneath them is undefined, so the hook (and the
// assertion) compile out and the bench reports SKIPPED.
#include <cstdio>
#include <cstdint>

#include "radio/buffer_pool.h"
#include "radio/medium.h"
#include "radio/phy.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ZC_ALLOC_HOOK_DISABLED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ZC_ALLOC_HOOK_DISABLED 1
#endif

#ifndef ZC_ALLOC_HOOK_DISABLED

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
// Relaxed is enough: the bench is single-threaded and only ever reads the
// counter between iterations, but operator new itself must stay data-race
// free for any library thread that might allocate.
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {
std::uint64_t heap_allocs() { return g_heap_allocs.load(std::memory_order_relaxed); }
}  // namespace

#endif  // !ZC_ALLOC_HOOK_DISABLED

namespace {

using namespace zc;
using namespace zc::radio;

RadioConfig at(const char* label, double x) {
  return RadioConfig{label, zwave::RfRegion::kUs908, x, 0.0, 0.0};
}

}  // namespace

int main() {
#ifdef ZC_ALLOC_HOOK_DISABLED
  std::printf("bench_pool_alloc: SKIPPED (sanitizer build owns operator new)\n");
  return 0;
#else
  EventScheduler scheduler;
  RfMedium medium(scheduler, Rng(7));  // default model: clean channel
  Transceiver sender(medium, at("tx", 0.0));
  Transceiver receiver(medium, at("rx", 4.0));

  // The receive side mirrors the dongle's hot path: decode each delivery
  // into one long-lived byte buffer via the *_into codec.
  Bytes decoded;
  std::uint64_t frames_decoded = 0;
  receiver.set_bits_handler([&](const BitStream& bits, double /*rssi*/) {
    if (decode_transmission_into(bits, decoded).ok()) ++frames_decoded;
  });

  const Bytes frame{0x01, 0x09, 0x04, 0x41, 0x01, 0x05, 0x02, 0x25, 0x01, 0xFF, 0x6A};

  // Warm-up: grow the pool, the delivery-record arena, the scheduler's
  // queue storage and the decode buffer to their steady-state capacity.
  constexpr int kWarmup = 64;
  for (int i = 0; i < kWarmup; ++i) {
    sender.transmit(frame);
    scheduler.run_all();
  }

  constexpr std::uint64_t kIterations = 10000;
  const std::uint64_t allocs_before = heap_allocs();
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    sender.transmit(frame);
    scheduler.run_all();
  }
  const std::uint64_t allocs_during = heap_allocs() - allocs_before;

  std::printf("bench_pool_alloc: %llu iterations, %llu heap allocations "
              "(%.4f per iteration), %llu frames decoded, pool size=%zu reuses=%llu\n",
              static_cast<unsigned long long>(kIterations),
              static_cast<unsigned long long>(allocs_during),
              static_cast<double>(allocs_during) / static_cast<double>(kIterations),
              static_cast<unsigned long long>(frames_decoded), medium.pool().size(),
              static_cast<unsigned long long>(medium.pool().reuses()));

  if (frames_decoded != kWarmup + kIterations) {
    std::printf("FAIL: expected %llu decoded frames\n",
                static_cast<unsigned long long>(kWarmup + kIterations));
    return 1;
  }
  if (allocs_during != 0) {
    std::printf("FAIL: steady-state RF iteration touched the heap\n");
    return 1;
  }
  std::printf("PASS: zero heap allocations per steady-state iteration\n");
  return 0;
#endif
}
