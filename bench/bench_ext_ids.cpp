// Extension bench (not a paper artifact): configuration sweep of the §V-B
// remediation IDS — what each rule family contributes, and what it costs
// in benign-traffic false positives.
#include <map>

#include "bench_util.h"
#include "core/campaign.h"
#include "core/ids.h"
#include "radio/endpoint.h"

namespace {

struct IdsOutcome {
  std::size_t benign_alerts = 0;
  std::uint64_t benign_frames = 0;
  std::size_t attack_alerts = 0;
  std::size_t bugs_preceded = 0;  // findings with an alert at or before them
  std::size_t bugs_total = 0;
};

IdsOutcome run_arm(bool enforce_secure, bool enforce_roster) {
  using namespace zc;
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.slave_report_interval = 20 * kSecond;
  sim::Testbed testbed(testbed_config);

  radio::MacEndpoint sensor(testbed.medium(),
                            radio::RadioConfig{"ids", zwave::RfRegion::kUs908, 1, 1, 0});
  core::IdsConfig ids_config;
  ids_config.roster = {0x01, sim::Testbed::kLockNodeId, sim::Testbed::kSwitchNodeId};
  ids_config.enforce_secure_classes = enforce_secure;
  ids_config.enforce_roster = enforce_roster;
  core::IntrusionDetector ids(ids_config);
  sensor.set_frame_handler([&](const zwave::MacFrame& frame, double) {
    ids.inspect(frame, testbed.scheduler().now());
  });

  IdsOutcome outcome;
  testbed.scheduler().run_for(1 * kHour);  // benign phase
  outcome.benign_alerts = ids.alerts().size();
  outcome.benign_frames = ids.frames_inspected();

  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = 1 * kHour;
  config.loop_queue = false;
  core::Campaign campaign(testbed, config);
  const auto result = campaign.run();

  outcome.attack_alerts = ids.alerts().size() - outcome.benign_alerts;
  outcome.bugs_total = result.findings.size();
  const SimTime first_alert = ids.alerts().size() > outcome.benign_alerts
                                  ? ids.alerts()[outcome.benign_alerts].at
                                  : ~SimTime{0};
  for (const auto& finding : result.findings) {
    if (first_alert <= finding.detected_at) ++outcome.bugs_preceded;
  }
  return outcome;
}

}  // namespace

int main() {
  using namespace zc;
  bench::header("Extension", "IDS rule-family sweep (remediation design ablation)");

  std::printf("\n%-28s | %-14s %-14s %-16s\n", "configuration", "benign alerts",
              "attack alerts", "bugs preceded");
  struct Arm {
    const char* name;
    bool secure;
    bool roster;
  };
  for (const Arm& arm : {Arm{"secure-class rule only", true, false},
                         Arm{"roster rule only", false, true},
                         Arm{"both rule families", true, true}}) {
    const IdsOutcome outcome = run_arm(arm.secure, arm.roster);
    std::printf("%-28s | %5zu / %-7llu %-14zu %zu/%zu\n", arm.name, outcome.benign_alerts,
                static_cast<unsigned long long>(outcome.benign_frames),
                outcome.attack_alerts, outcome.bugs_preceded, outcome.bugs_total);
  }
  std::printf("\nexpected shape: zero benign alerts in all arms; every confirmed finding\n"
              "preceded by an alarm once either rule family is active.\n");
  return 0;
}
