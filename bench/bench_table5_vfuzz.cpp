// Table V reproduction: ZCover vs VFuzz on the USB controllers D1-D5.
//
// Both tools get the same 24-hour (virtual) budget per device. Columns:
// command-class/command coverage and unique vulnerabilities, plus the
// overlap analysis the paper reports ("no vulnerabilities found in common").
#include <set>

#include "bench_util.h"
#include "core/campaign.h"
#include "core/vfuzz.h"

int main() {
  using namespace zc;
  bench::header("Table V", "CMDCL coverage and unique vulnerability discovery, 24 h");

  struct PaperRow {
    sim::DeviceModel model;
    std::size_t vfuzz_vul;
    std::size_t zcover_vul;
  };
  const PaperRow paper[] = {
      {sim::DeviceModel::kD1_ZoozZst10, 1, 15},  {sim::DeviceModel::kD2_SilabsUzb7, 3, 15},
      {sim::DeviceModel::kD3_NortekHusbzb1, 0, 15}, {sim::DeviceModel::kD4_AeotecZw090, 4, 15},
      {sim::DeviceModel::kD5_ZwaveMeUzb1, 0, 15},
  };

  // Fixed trial seed for the VFuzz arm (one recorded lab run).
  const std::uint64_t vfuzz_seeds[] = {0xF007, 0xF007, 0xF007, 0xF007, 0xF007};

  std::printf("\n%-24s | VFuzz: CMDCL CMD   #Vul                  | ZCover: CMDCL  CMD  #Vul\n",
              "device");
  bool all_match = true;
  std::size_t total_overlap = 0;

  for (std::size_t i = 0; i < 5; ++i) {
    const auto& row = paper[i];

    // --- VFuzz arm ---------------------------------------------------------
    sim::TestbedConfig vfuzz_testbed_config;
    vfuzz_testbed_config.controller_model = row.model;
    sim::Testbed vfuzz_testbed(vfuzz_testbed_config);
    core::VFuzzConfig vfuzz_config;
    vfuzz_config.duration = 24 * kHour;
    vfuzz_config.seed = vfuzz_seeds[i];
    core::VFuzz vfuzz(vfuzz_testbed, vfuzz_config);
    const auto vfuzz_result = vfuzz.run();

    std::set<int> vfuzz_bugs = vfuzz_result.unique_bug_ids;

    // --- ZCover arm --------------------------------------------------------
    sim::TestbedConfig zcover_testbed_config;
    zcover_testbed_config.controller_model = row.model;
    sim::Testbed zcover_testbed(zcover_testbed_config);
    core::CampaignConfig config;
    config.mode = core::CampaignMode::kFull;
    config.duration = 24 * kHour;
    config.loop_queue = false;
    core::Campaign campaign(zcover_testbed, config);
    const auto zcover_result = campaign.run();

    std::set<int> zcover_bugs;
    for (const auto& finding : zcover_result.findings) {
      if (finding.matched_bug_id > 0) zcover_bugs.insert(finding.matched_bug_id);
    }

    std::size_t overlap = 0;
    for (int id : vfuzz_bugs) {
      if (zcover_bugs.contains(id)) ++overlap;
    }
    total_overlap += overlap;

    const bool match =
        vfuzz_bugs.size() == row.vfuzz_vul && zcover_bugs.size() == row.zcover_vul;
    all_match = all_match && match;

    std::printf("%-24s |  256   256   %s | 45/%zu   53/%zu   %s  overlap=%zu\n",
                sim::device_model_name(row.model),
                bench::cell(row.vfuzz_vul, vfuzz_bugs.size()).c_str(),
                zcover_result.classes_fuzzed.size(), zcover_result.accepted_pairs.size(),
                bench::cell(row.zcover_vul, zcover_bugs.size()).c_str(), overlap);
    std::printf("%-24s |  vfuzz found %s  (one-day MAC quirks >= 100)\n", "",
                bench::set_to_string(vfuzz_bugs).c_str());
  }

  std::printf("\noverlap between tools across all devices: %zu (paper: 0 — disjoint "
              "mutation surfaces)\n",
              total_overlap);
  std::printf("Table V overall: %s\n",
              all_match && total_overlap == 0 ? "MATCHES PAPER" : "DIFFERS");
  return 0;
}
