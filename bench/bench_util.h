// Shared helpers for the reproduction benches: every binary prints the
// paper's reported rows next to the values measured on the simulated
// testbed, with an explicit match marker per cell, and EXPERIMENTS.md
// mirrors the output.
#pragma once

#include <cstdio>
#include <set>
#include <string>

namespace zc::bench {

inline void header(const char* artifact, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, caption);
  std::printf("================================================================\n");
}

inline void note(const char* text) { std::printf("note: %s\n", text); }

inline const char* mark(bool match) { return match ? "ok " : "DIFF"; }

/// "paper=X measured=Y [ok]" cell for integral values.
inline std::string cell(std::size_t paper, std::size_t measured) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "paper=%zu measured=%zu [%s]", paper, measured,
                mark(paper == measured));
  return buf;
}

inline std::string set_to_string(const std::set<int>& values) {
  std::string out = "{";
  bool first = true;
  for (int v : values) {
    if (!first) out += ",";
    out += std::to_string(v);
    first = false;
  }
  return out + "}";
}

}  // namespace zc::bench
