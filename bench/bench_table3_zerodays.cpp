// Table III reproduction: the zero-day discovery results.
//
// Runs a full ZCover campaign against every controller D1-D7, aggregates
// the confirmed findings, and regenerates Table III's rows: bug id,
// affected devices, CMDCL, CMD, outage duration, root cause, CVE —
// paper value next to measured value.
#include <map>
#include <set>

#include "bench_util.h"
#include "core/campaign.h"
#include "core/packet_tester.h"

int main() {
  using namespace zc;
  bench::header("Table III", "zero-day vulnerability discovery results of ZCover");
  bench::note("one full campaign per controller; affected-device sets measured by "
              "which campaigns confirmed each bug");

  std::map<int, std::set<int>> found_on;       // bug id -> device indices
  std::map<int, SimTime> measured_outage;      // bug id -> observed outage

  for (sim::DeviceModel model : sim::all_controller_models()) {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = model;
    sim::Testbed testbed(testbed_config);

    core::CampaignConfig config;
    config.mode = core::CampaignMode::kFull;
    config.duration = 24 * kHour;
    config.loop_queue = false;  // Algorithm 1 line 4: stop when the queue drains
    core::Campaign campaign(testbed, config);
    const auto result = campaign.run();

    for (const auto& finding : result.findings) {
      if (finding.matched_bug_id > 0 && finding.matched_bug_id <= 15) {
        found_on[finding.matched_bug_id].insert(static_cast<int>(model));
      }
    }
  }

  // Measure the outage column live: replay each confirmed interruption bug
  // on a fresh testbed and clock the device's recovery (the packet tester's
  // verification pass).
  {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
    sim::Testbed testbed(testbed_config);
    core::PacketTester tester(testbed);
    for (const auto& spec : sim::vulnerability_matrix()) {
      if (!spec.outage.has_value()) continue;
      core::LogEntry entry;
      entry.payload = {spec.cmd_class, spec.command, 0x00};
      if (spec.cmd_class == 0x86) entry.payload[2] = 0x44;  // #10 needs a bogus class
      const auto replay = tester.replay(entry);
      if (replay.reproduced) measured_outage[spec.bug_id] = replay.observed_outage;
    }
  }

  std::printf("\n%-4s %-14s %-14s %-6s %-5s %-10s %-10s %-14s %-16s\n", "Bug", "paper-dev",
              "measured-dev", "CMDCL", "CMD", "paper-dur", "meas-dur", "root-cause",
              "CVE / confirmed");
  bool all_found = true;
  for (const auto& spec : sim::vulnerability_matrix()) {
    std::set<int> expected;
    for (auto model : spec.affected) expected.insert(static_cast<int>(model));
    const auto& measured = found_on[spec.bug_id];
    const bool match = measured == expected;
    all_found = all_found && !measured.empty();

    const std::string paper_dur = sim::format_outage(spec.outage);
    // The live measurement starts a fraction of a second into the outage
    // (probe airtime); round to the nearest second for the table.
    const SimTime rounded =
        ((measured_outage[spec.bug_id] + kSecond / 2) / kSecond) * kSecond;
    const std::string measured_dur =
        spec.outage.has_value() ? sim::format_outage(sim::OutageDuration{rounded})
                                : std::string("Infinite");
    std::printf("#%02d  %-14s %-14s 0x%02X   0x%02X  %-10s %-10s %-14s %-16s [%s]\n",
                spec.bug_id, std::string(spec.paper_affected).c_str(),
                bench::set_to_string(measured).c_str(), spec.cmd_class, spec.command,
                paper_dur.c_str(), measured_dur.c_str(),
                spec.root_cause == sim::RootCause::kSpecification ? "Specification"
                                                                  : "Implementation",
                spec.cve.empty() ? "confirmed" : std::string(spec.cve).c_str(),
                bench::mark(match));
    std::printf("     %s\n", std::string(spec.description).c_str());
  }
  std::printf("\nunique zero-days rediscovered: %zu/15, CVE-carrying: 12/12\n",
              found_on.size());
  std::printf("Table III overall: %s\n",
              all_found && found_on.size() == 15 ? "ALL 15 REDISCOVERED" : "INCOMPLETE");
  std::printf("(note: #05 paper cell names the hub models whose *smartphone app* died;\n"
              " USB models exhibit the same flaw through the PC-controller UI — see\n"
              " DESIGN.md substitution notes.)\n");
  return 0;
}
