// Extension bench (not a paper artifact): fuzzing robustness under RF
// channel noise — an ablation of the campaign's oracle design.
//
// The paper's liveness monitoring runs on real, lossy RF; a single dropped
// NOP ack must not be booked as a crash. This bench sweeps the channel's
// bit-flip rate and compares single-probe vs retried-probe liveness:
// unique bugs found, false (unattributed) findings, packets spent.
#include <set>

#include "bench_util.h"
#include "core/campaign.h"

namespace {

struct ArmResult {
  std::size_t bugs = 0;
  std::size_t false_findings = 0;
  std::uint64_t packets = 0;
};

ArmResult run_arm(double bit_flip_rate, std::size_t liveness_attempts, bool confirm) {
  using namespace zc;
  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.channel.bit_flip_rate = bit_flip_rate;
  sim::Testbed testbed(testbed_config);

  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = 3 * kHour;
  config.loop_queue = false;
  config.liveness_attempts = liveness_attempts;
  config.confirm_findings = confirm;
  core::Campaign campaign(testbed, config);
  const auto result = campaign.run();

  ArmResult arm;
  std::set<int> bugs;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id > 0) {
      bugs.insert(finding.matched_bug_id);
    } else {
      ++arm.false_findings;
    }
  }
  arm.bugs = bugs.size();
  arm.packets = result.test_packets;
  return arm;
}

}  // namespace

int main() {
  using namespace zc;
  bench::header("Extension", "campaign robustness under RF noise (oracle ablation)");
  bench::note("bit-flip noise corrupts frames in both directions; Manchester symbol "
              "checks and CS-8 discard them, probes must tolerate the loss");

  std::printf("\n%-14s %-22s | %-6s %-12s %-8s\n", "bit-flip rate", "oracle", "bugs",
              "false-finds", "packets");
  struct Arm {
    const char* name;
    std::size_t attempts;
    bool confirm;
  };
  const Arm arms[] = {{"1 probe", 1, false},
                      {"2 probes", 2, false},
                      {"2 probes + confirm", 2, true}};
  for (double rate : {0.0, 0.00002, 0.0001}) {
    for (const Arm& arm_config : arms) {
      const ArmResult arm = run_arm(rate, arm_config.attempts, arm_config.confirm);
      std::printf("%-14.5f %-22s | %-6zu %-12zu %-8llu\n", rate, arm_config.name, arm.bugs,
                  arm.false_findings, static_cast<unsigned long long>(arm.packets));
    }
  }
  std::printf("\nexpected shape: all (or nearly all) 15 bugs in every arm at these noise\n"
              "levels; false findings grow with noise for the single probe, shrink with\n"
              "retries, and vanish with inline confirmation.\n");
  return 0;
}
