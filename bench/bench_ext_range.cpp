// Extension bench (not a paper artifact): attack range sweep.
//
// The paper's threat model places the attacker 10-70 m from the home
// (Fig. 2). This bench sweeps the distance and measures (a) one-way
// injection reliability (fraction of unencrypted tamper packets that
// trigger), and (b) whether the bidirectional fingerprinting pipeline
// still works — the range where full ZCover campaigns are possible.
#include "bench_util.h"
#include "core/scanner.h"
#include "sim/testbed.h"

int main() {
  using namespace zc;
  bench::header("Extension", "attack range sweep (paper threat model: 10-70 m)");

  std::printf("\n%-10s %-22s %-18s\n", "distance", "injection success", "active scan");
  for (double distance : {10.0, 35.0, 70.0, 120.0, 200.0, 300.0, 420.0, 500.0}) {
    sim::TestbedConfig config;
    config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
    config.attacker_distance_m = distance;
    sim::Testbed testbed(config);
    auto& controller = testbed.controller();

    radio::MacEndpoint attacker(testbed.medium(),
                                testbed.attacker_radio_config("attacker"));

    // (a) 200 injection attempts of the bug-#03 removal payload; the
    // testbed is restored between hits so every attempt can re-trigger.
    constexpr int kAttempts = 200;
    int hits = 0;
    zwave::AppPayload tamper;
    tamper.cmd_class = 0x01;
    tamper.command = 0x0D;
    tamper.params = {0x02, sim::Testbed::kLockNodeId, 0x00};
    for (int i = 0; i < kAttempts; ++i) {
      const std::size_t before = controller.triggered().size();
      attacker.send(zwave::make_singlecast(controller.home_id(), 0xE7, 0x01, tamper,
                                           static_cast<std::uint8_t>(i & 0x0F), false));
      testbed.scheduler().run_for(50 * kMillisecond);
      if (controller.triggered().size() > before) {
        ++hits;
        testbed.restore_network();
      }
    }

    // (b) full active scan (needs both directions).
    core::ZWaveDongle dongle(testbed.medium(), testbed.scheduler(),
                             testbed.attacker_radio_config("dongle"));
    core::ActiveScanner scanner(dongle, controller.home_id(), 0x01, 0xE6);
    const auto scan = scanner.scan();

    std::printf("%6.0f m   %3d/%-3d (%5.1f%%)       %s\n", distance, hits, kAttempts,
                100.0 * hits / kAttempts,
                scan.listed.size() == 17 ? "full NIF (17 classes)"
                : scan.reachable        ? "reachable, NIF lost"
                                        : "unreachable");
  }
  std::printf("\nexpected shape: lossless through the paper's 10-70 m band, probabilistic\n"
              "in the fade margin past ~250 m, dead beyond the sensitivity floor (~465 m).\n");
  return 0;
}
