// bench_covfuzz_overhead: cost of the handler-coverage instrumentation.
//
//   bench_covfuzz_overhead [output.json] [--trials N] [--minutes M] [--reps R]
//
// Runs one fixed PSM campaign workload twice per repetition — coverage off
// (no map installed: every sim::cov hook is a thread-local load + branch)
// and coverage on (a per-shard CoverageMap collecting handler edges) — and
// reports the throughput of the best repetition of each arm. The gate
// (bench/check_overhead.py --benchmark bench_covfuzz_overhead, `ctest -L
// perf` with -DZC_ENABLE_PERF_TESTS=ON) fails when enabled coverage costs
// more than the 3% budget set in bench/CMakeLists.txt. With no map
// installed the hooks are the same shape as the obs hooks, so the
// disabled-arm throughput doubles as the "instrumentation compiled in but
// off" reference for BENCH_parallel comparisons.
//
// Both arms use jobs=1: a single worker keeps the measurement free of
// scheduler noise, and the hook cost is thread-count independent by
// construction (thread-local map pointer, no shared state).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/parallel.h"

namespace {

using namespace zc;

double run_arm_once(const sim::TestbedConfig& testbed_config,
                    const core::CampaignConfig& config, std::size_t trials,
                    bool collect_coverage, std::uint64_t* packets_out) {
  core::ParallelConfig parallel;
  parallel.jobs = 1;
  parallel.collect_coverage = collect_coverage;
  const core::ParallelTrialReport report =
      core::run_trials_parallel(testbed_config, config, trials, parallel);
  *packets_out = report.summary.total_packets;
  if (report.wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(trials) / report.wall_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_covfuzz_overhead.json";
  std::size_t trials = 4;
  double minutes = 10.0;
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--minutes") == 0 && i + 1 < argc) {
      minutes = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      out_path = argv[i];
    }
  }

  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = sim::DeviceModel::kD4_AeotecZw090;
  testbed_config.seed = 0x2C07E12F;

  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = static_cast<SimTime>(minutes * static_cast<double>(kMinute));
  config.seed = 0x2C07E12F;
  config.loop_queue = false;

  // Warm-up run: touches every lazy singleton (spec DB, symbol tables) so
  // neither measured arm pays first-use costs.
  std::uint64_t packets = 0;
  run_arm_once(testbed_config, config, 1, false, &packets);

  // Interleave the arms rep by rep and keep each arm's best: a co-tenant
  // CPU burst then degrades one repetition of *both* arms instead of
  // landing entirely on whichever arm happened to run during it.
  double off = 0.0, on = 0.0;
  std::uint64_t packets_on = 0;
  for (int rep = 0; rep < reps; ++rep) {
    off = std::max(off, run_arm_once(testbed_config, config, trials, false, &packets));
    on = std::max(on, run_arm_once(testbed_config, config, trials, true, &packets_on));
  }

  if (packets != packets_on) {
    std::fprintf(stderr, "coverage perturbed the workload: %llu vs %llu packets\n",
                 static_cast<unsigned long long>(packets),
                 static_cast<unsigned long long>(packets_on));
    return 1;
  }
  if (off <= 0.0 || on <= 0.0) {
    std::fprintf(stderr, "degenerate measurement (zero wall time)\n");
    return 1;
  }

  const double overhead = (off - on) / off;
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"bench_covfuzz_overhead\",\n"
               "  \"trials\": %zu,\n"
               "  \"virtual_minutes\": %.1f,\n"
               "  \"reps\": %d,\n"
               "  \"total_packets\": %llu,\n"
               "  \"baseline_trials_per_sec\": %.4f,\n"
               "  \"telemetry_trials_per_sec\": %.4f,\n"
               "  \"overhead_fraction\": %.4f\n"
               "}\n",
               trials, minutes, reps, static_cast<unsigned long long>(packets), off, on,
               overhead);
  std::fclose(out);
  std::printf("coverage off: %.2f trials/s, on: %.2f trials/s, overhead %+.2f%% -> %s\n",
              off, on, overhead * 100.0, out_path.c_str());
  return 0;
}
