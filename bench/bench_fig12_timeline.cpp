// Fig. 12 reproduction: vulnerability detection over time on four devices
// (ZooZ D1, Nortek D3, Aeotec D4, ZWaveMe D5).
//
// The paper plots test packets (y) against time (x) with red crosses at
// discoveries, highlighting the initial fuzzing phase where most of the 15
// zero-days land. This bench prints the packet-count series and the
// discovery marks for the first 800 seconds of each campaign, plus an
// ASCII rendition of the curve.
#include <algorithm>

#include "bench_util.h"
#include "core/campaign.h"

namespace {

void run_device(zc::sim::DeviceModel model) {
  using namespace zc;

  sim::TestbedConfig testbed_config;
  testbed_config.controller_model = model;
  testbed_config.seed = 0xBED0 + static_cast<std::uint64_t>(model);
  sim::Testbed testbed(testbed_config);
  core::CampaignConfig config;
  config.mode = core::CampaignMode::kFull;
  config.duration = 24 * kHour;
  config.loop_queue = false;
  config.seed = 0x12F00 + static_cast<std::uint64_t>(model);  // per-trial RNG
  core::Campaign campaign(testbed, config);
  const auto result = campaign.run();

  std::printf("\n--- %s ---\n", sim::device_model_name(model));
  constexpr SimTime kWindow = 800 * kSecond;
  const SimTime start = result.started_at;

  // Discovery marks inside the plotted window.
  std::size_t early = 0;
  std::printf("discoveries (time s, packets, bug id):");
  for (const auto& finding : result.findings) {
    const SimTime rel = finding.detected_at - start;
    if (rel <= kWindow) {
      ++early;
      std::printf("  (%llu, %llu, #%d)", static_cast<unsigned long long>(rel / kSecond),
                  static_cast<unsigned long long>(finding.packets_sent),
                  finding.matched_bug_id);
    }
  }
  std::printf("\n");

  // Packet-vs-time series, 80-second buckets in the 800 s window.
  std::printf("t(s) packets  curve (x=time, #=packets/12)\n");
  for (SimTime t = 80 * kSecond; t <= kWindow; t += 80 * kSecond) {
    std::uint64_t packets = 0;
    for (const auto& [at, count] : result.packet_timeline) {
      if (at - start <= t) packets = count;
    }
    const std::size_t bar = std::min<std::size_t>(60, packets / 12);
    std::printf("%4llu %7llu  %s\n", static_cast<unsigned long long>(t / kSecond),
                static_cast<unsigned long long>(packets), std::string(bar, '#').c_str());
  }

  std::uint64_t packets_at_window = 0;
  for (const auto& [at, count] : result.packet_timeline) {
    if (at - start <= kWindow) packets_at_window = count;
  }
  std::printf("summary: %zu/%zu unique bugs inside the first 800 s; ~%llu test packets "
              "(paper: most of the 15 within ~600 s / ~800 packets)\n",
              early, result.findings.size(),
              static_cast<unsigned long long>(packets_at_window));
}

}  // namespace

int main() {
  using namespace zc;
  bench::header("Fig. 12", "vulnerability detection over time (D1, D3, D4, D5)");
  for (sim::DeviceModel model :
       {sim::DeviceModel::kD1_ZoozZst10, sim::DeviceModel::kD3_NortekHusbzb1,
        sim::DeviceModel::kD4_AeotecZw090, sim::DeviceModel::kD5_ZwaveMeUzb1}) {
    run_device(model);
  }
  return 0;
}
