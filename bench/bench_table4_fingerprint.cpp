// Table IV reproduction: controllers' known-properties fingerprinting and
// unknown-properties discovery, per device D1-D7.
//
// Paper row shape:  ID | Home ID | Node ID | Known CMDCLs | Unknown CMDCLs
#include "bench_util.h"
#include "core/campaign.h"

int main() {
  using namespace zc;
  bench::header("Table IV", "fingerprinting and unknown-property discovery (D1-D7)");

  struct PaperRow {
    sim::DeviceModel model;
    zwave::HomeId home;
    std::size_t known;
    std::size_t unknown;
  };
  const PaperRow paper[] = {
      {sim::DeviceModel::kD1_ZoozZst10, 0xE7DE3F3D, 17, 28},
      {sim::DeviceModel::kD2_SilabsUzb7, 0xCD007171, 17, 28},
      {sim::DeviceModel::kD3_NortekHusbzb1, 0xCB51722D, 15, 30},
      {sim::DeviceModel::kD4_AeotecZw090, 0xC7E9DD54, 17, 28},
      {sim::DeviceModel::kD5_ZwaveMeUzb1, 0xF4C3754D, 15, 30},
      {sim::DeviceModel::kD6_SamsungWv520, 0xCB95A34A, 17, 28},
      {sim::DeviceModel::kD7_SamsungSth200, 0xEDC87EE4, 15, 30},
  };

  std::printf("%-24s %-28s %-8s %-32s %-32s\n", "device", "home id (passive)",
              "node id", "known CMDCLs (active)", "unknown CMDCLs");
  bool all_match = true;
  for (const auto& row : paper) {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = row.model;
    sim::Testbed testbed(testbed_config);

    core::CampaignConfig config;
    core::Campaign campaign(testbed, config);
    const auto report = campaign.fingerprint();

    const zwave::HomeId measured_home = report.passive.home_id.value_or(0);
    const std::size_t known = report.active.listed.size();
    const std::size_t unknown = report.discovery.unknown().size();
    const bool home_ok = measured_home == row.home;
    all_match = all_match && home_ok && known == row.known && unknown == row.unknown;

    char home_cell[40];
    std::snprintf(home_cell, sizeof(home_cell), "%08X [%s]", measured_home,
                  bench::mark(home_ok));
    std::printf("%-24s %-28s 0x%02X     %-32s %-32s\n",
                sim::device_model_name(row.model), home_cell,
                report.passive.controller.value_or(0),
                bench::cell(row.known, known).c_str(),
                bench::cell(row.unknown, unknown).c_str());
  }
  std::printf("\nTable IV overall: %s\n", all_match ? "MATCHES PAPER" : "DIFFERS");
  return 0;
}
