#!/usr/bin/env python3
"""Benchmark regression gate: compare a fresh run against a committed baseline.

Usage:
    check_regression.py --baseline BENCH_parallel.json --current fresh.json \
        [--threshold 0.15]

Understands two JSON shapes:

* bench_parallel output -- ``{"benchmark": "bench_parallel", "rows": [...]}``;
  rows (and the steal-heavy ``skew_rows``, when present) are keyed by
  ``jobs`` and compared on ``trials_per_sec``, ``frames_per_sec`` and
  ``speedup`` (higher is better). Speedup rows are warn-only when the
  baseline was captured on a 1-core host (``hw_concurrency: 1``): parallel
  scaling does not exist there, so any dip is scheduler noise.
* google-benchmark output (bench_micro with --benchmark_out) -- benchmarks
  are keyed by ``name`` and compared on ``real_time`` with its ``time_unit``
  (lower is better).

Exit status 1 when any metric regressed more than ``--threshold`` (default
15%). Entries present in only one file are reported but never fatal, so
adding a benchmark does not break the gate before the baseline is refreshed.

Both producers stamp their build type (bench_parallel: top-level
``build_type``; bench_micro: ``context.zc_build_type``). A debug build is an
order of magnitude slower than release, so a mismatch between baseline and
current is always a configuration error, not a regression — the gate refuses
to compare them unless ``--allow-build-type-mismatch`` is given. Files
predating the stamp carry no build type and are compared without the check.

Two more provenance fields get the same scrutiny:

* ``context.library_build_type`` (google-benchmark's own build) — a debug
  timing library inflates per-iteration overhead just like a debug project
  build, so baseline/current disagreement is refused under the same
  ``--allow-build-type-mismatch`` override, and a run where *both* sides
  used a debug library is flagged with a warning (the numbers compare
  fairly against each other but overstate absolute cost).
* core count (bench_micro: ``context.num_cpus`` / ``zc_hw_concurrency``;
  bench_parallel: top-level ``hw_concurrency``) — a baseline captured on a
  differently-sized machine skews parallel scaling, so a mismatch warns.
  It never fails: CI fleets resize, and the per-metric threshold still
  gates the actual numbers.
"""

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.15

# google-benchmark time_unit -> nanoseconds
_TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_metrics(path):
    """Return ({metric_name: (value, higher_is_better)}, provenance dict).

    Provenance keys (any may be None when the file predates the stamp):
    ``build_type``, ``library_build_type``, ``num_cpus``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)

    metrics = {}
    provenance = {"build_type": None, "library_build_type": None, "num_cpus": None}
    if isinstance(data, dict) and data.get("benchmark") == "bench_parallel":
        provenance["build_type"] = data.get("build_type")
        if data.get("hw_concurrency") is not None:
            provenance["num_cpus"] = int(data["hw_concurrency"])
        for rows_key, prefix in (("rows", "parallel"), ("skew_rows", "parallel/skew")):
            for row in data.get(rows_key, []):
                jobs = row.get("jobs")
                for key in ("trials_per_sec", "frames_per_sec", "speedup"):
                    if key in row:
                        metrics[f"{prefix}/jobs={jobs}/{key}"] = (float(row[key]), True)
    elif isinstance(data, dict) and "benchmarks" in data:
        context = data.get("context", {})
        provenance["build_type"] = context.get("zc_build_type")
        provenance["library_build_type"] = context.get("library_build_type")
        cpus = context.get("zc_hw_concurrency", context.get("num_cpus"))
        if cpus is not None:
            provenance["num_cpus"] = int(cpus)
        # With --benchmark_repetitions each benchmark contributes several raw
        # rows; keep the MINIMUM. Scheduler contention on a shared box only
        # ever adds time, so the min is the stable estimator of true cost —
        # mean/median still absorb whole-repetition bursts.
        for bench in data["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue  # derived from the raw rows we already take the min of
            unit = _TIME_UNITS.get(bench.get("time_unit", "ns"), 1.0)
            value = float(bench["real_time"]) * unit
            name = bench["name"]
            if name not in metrics or value < metrics[name][0]:
                metrics[name] = (value, False)
    else:
        raise ValueError(f"{path}: unrecognized benchmark JSON shape")
    return metrics, provenance


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated fractional regression (default %(default)s)",
    )
    parser.add_argument(
        "--min-gated-ns",
        type=float,
        default=10.0,
        help="time-based metrics with a baseline below this many nanoseconds "
        "are reported but not gated: at single-digit-ns scale, timer "
        "granularity and frequency scaling dwarf any real regression "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--allow-build-type-mismatch",
        action="store_true",
        help="compare anyway when baseline and current report different "
        "build types (debug vs release numbers are not comparable)",
    )
    args = parser.parse_args(argv)

    baseline, baseline_prov = load_metrics(args.baseline)
    current, current_prov = load_metrics(args.current)

    for field, label in (
        ("build_type", "build-type"),
        ("library_build_type", "benchmark-library build-type"),
    ):
        base_value = baseline_prov[field]
        cur_value = current_prov[field]
        if base_value is None or cur_value is None or base_value == cur_value:
            continue
        message = (
            f"{label} mismatch: baseline is '{base_value}' but current "
            f"is '{cur_value}'; the comparison is meaningless"
        )
        if not args.allow_build_type_mismatch:
            print(f"FAIL: {message} (pass --allow-build-type-mismatch to override)")
            return 1
        print(f"WARNING: {message} (continuing: --allow-build-type-mismatch)")

    if (
        baseline_prov["library_build_type"] == "debug"
        and current_prov["library_build_type"] == "debug"
    ):
        # Fair to compare (same handicap on both sides) but the absolute
        # numbers carry debug-library overhead; point at the Release-lane fix.
        print(
            "WARNING: both sides measured against a debug google-benchmark "
            "library; absolute timings are inflated (build the library in "
            "Release via -DZC_BENCHMARK_SOURCE_DIR, see docs/performance.md)"
        )

    if (
        baseline_prov["num_cpus"] is not None
        and current_prov["num_cpus"] is not None
        and baseline_prov["num_cpus"] != current_prov["num_cpus"]
    ):
        print(
            f"WARNING: core-count mismatch: baseline measured on "
            f"{baseline_prov['num_cpus']} CPU(s), current on "
            f"{current_prov['num_cpus']}; scaling comparisons are skewed "
            "(warning only, thresholds still apply)"
        )

    regressions = []
    for name in sorted(baseline):
        if name not in current:
            print(f"  (only in baseline) {name}")
            continue
        base_value, higher_is_better = baseline[name]
        cur_value, _ = current[name]
        if base_value <= 0:
            continue
        if higher_is_better:
            change = (cur_value - base_value) / base_value
        else:
            change = (base_value - cur_value) / base_value  # faster => positive
        marker = "OK "
        if change < -args.threshold:
            # Lower-is-better metrics are nanosecond timings; tiny ones are
            # below the measurement noise floor and never gate.
            if not higher_is_better and base_value < args.min_gated_ns:
                marker = "ign"
            elif name.endswith("/speedup") and baseline_prov["num_cpus"] == 1:
                # On a single-core baseline host, parallel speedup is pure
                # scheduler noise (>1x is physically impossible at N>=1
                # cores' worth of workers), so a speedup dip there says
                # nothing about the code. Warn, never fail; the absolute
                # trials/frames rates above still gate throughput.
                marker = "wrn"
                print(f"  WARNING: {name} regressed on a 1-core baseline "
                      "host; speedup is not gated there")
            else:
                marker = "REG"
                regressions.append(name)
        print(f"  [{marker}] {name}: {base_value:.2f} -> {cur_value:.2f} "
              f"({change * 100.0:+.1f}%)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  (new, no baseline) {name}")

    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold * 100.0:.0f}%:")
        for name in regressions:
            print(f"  {name}")
        return 1
    print(f"PASS: no metric regressed more than {args.threshold * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
