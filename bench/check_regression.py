#!/usr/bin/env python3
"""Benchmark regression gate: compare a fresh run against a committed baseline.

Usage:
    check_regression.py --baseline BENCH_parallel.json --current fresh.json \
        [--threshold 0.15]

Understands two JSON shapes:

* bench_parallel output -- ``{"benchmark": "bench_parallel", "rows": [...]}``;
  rows are keyed by ``jobs`` and compared on ``trials_per_sec`` and
  ``frames_per_sec`` (higher is better).
* google-benchmark output (bench_micro with --benchmark_out) -- benchmarks
  are keyed by ``name`` and compared on ``real_time`` with its ``time_unit``
  (lower is better).

Exit status 1 when any metric regressed more than ``--threshold`` (default
15%). Entries present in only one file are reported but never fatal, so
adding a benchmark does not break the gate before the baseline is refreshed.
"""

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.15

# google-benchmark time_unit -> nanoseconds
_TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_metrics(path):
    """Return {metric_name: (value, higher_is_better)} for either format."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)

    metrics = {}
    if isinstance(data, dict) and data.get("benchmark") == "bench_parallel":
        for row in data.get("rows", []):
            jobs = row.get("jobs")
            for key in ("trials_per_sec", "frames_per_sec"):
                if key in row:
                    metrics[f"parallel/jobs={jobs}/{key}"] = (float(row[key]), True)
    elif isinstance(data, dict) and "benchmarks" in data:
        for bench in data["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue  # compare raw runs, not mean/median/stddev rows
            unit = _TIME_UNITS.get(bench.get("time_unit", "ns"), 1.0)
            metrics[bench["name"]] = (float(bench["real_time"]) * unit, False)
    else:
        raise ValueError(f"{path}: unrecognized benchmark JSON shape")
    return metrics


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated fractional regression (default %(default)s)",
    )
    args = parser.parse_args(argv)

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)

    regressions = []
    for name in sorted(baseline):
        if name not in current:
            print(f"  (only in baseline) {name}")
            continue
        base_value, higher_is_better = baseline[name]
        cur_value, _ = current[name]
        if base_value <= 0:
            continue
        if higher_is_better:
            change = (cur_value - base_value) / base_value
        else:
            change = (base_value - cur_value) / base_value  # faster => positive
        marker = "OK "
        if change < -args.threshold:
            marker = "REG"
            regressions.append(name)
        print(f"  [{marker}] {name}: {base_value:.2f} -> {cur_value:.2f} "
              f"({change * 100.0:+.1f}%)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  (new, no baseline) {name}")

    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold * 100.0:.0f}%:")
        for name in regressions:
            print(f"  {name}")
        return 1
    print(f"PASS: no metric regressed more than {args.threshold * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
