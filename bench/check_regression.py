#!/usr/bin/env python3
"""Benchmark regression gate: compare a fresh run against a committed baseline.

Usage:
    check_regression.py --baseline BENCH_parallel.json --current fresh.json \
        [--threshold 0.15]

Understands two JSON shapes:

* bench_parallel output -- ``{"benchmark": "bench_parallel", "rows": [...]}``;
  rows are keyed by ``jobs`` and compared on ``trials_per_sec`` and
  ``frames_per_sec`` (higher is better).
* google-benchmark output (bench_micro with --benchmark_out) -- benchmarks
  are keyed by ``name`` and compared on ``real_time`` with its ``time_unit``
  (lower is better).

Exit status 1 when any metric regressed more than ``--threshold`` (default
15%). Entries present in only one file are reported but never fatal, so
adding a benchmark does not break the gate before the baseline is refreshed.

Both producers stamp their build type (bench_parallel: top-level
``build_type``; bench_micro: ``context.zc_build_type``). A debug build is an
order of magnitude slower than release, so a mismatch between baseline and
current is always a configuration error, not a regression — the gate refuses
to compare them unless ``--allow-build-type-mismatch`` is given. Files
predating the stamp carry no build type and are compared without the check.
"""

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.15

# google-benchmark time_unit -> nanoseconds
_TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_metrics(path):
    """Return ({metric_name: (value, higher_is_better)}, build_type_or_None)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)

    metrics = {}
    build_type = None
    if isinstance(data, dict) and data.get("benchmark") == "bench_parallel":
        build_type = data.get("build_type")
        for row in data.get("rows", []):
            jobs = row.get("jobs")
            for key in ("trials_per_sec", "frames_per_sec"):
                if key in row:
                    metrics[f"parallel/jobs={jobs}/{key}"] = (float(row[key]), True)
    elif isinstance(data, dict) and "benchmarks" in data:
        build_type = data.get("context", {}).get("zc_build_type")
        # With --benchmark_repetitions each benchmark contributes several raw
        # rows; keep the MINIMUM. Scheduler contention on a shared box only
        # ever adds time, so the min is the stable estimator of true cost —
        # mean/median still absorb whole-repetition bursts.
        for bench in data["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue  # derived from the raw rows we already take the min of
            unit = _TIME_UNITS.get(bench.get("time_unit", "ns"), 1.0)
            value = float(bench["real_time"]) * unit
            name = bench["name"]
            if name not in metrics or value < metrics[name][0]:
                metrics[name] = (value, False)
    else:
        raise ValueError(f"{path}: unrecognized benchmark JSON shape")
    return metrics, build_type


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated fractional regression (default %(default)s)",
    )
    parser.add_argument(
        "--min-gated-ns",
        type=float,
        default=10.0,
        help="time-based metrics with a baseline below this many nanoseconds "
        "are reported but not gated: at single-digit-ns scale, timer "
        "granularity and frequency scaling dwarf any real regression "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--allow-build-type-mismatch",
        action="store_true",
        help="compare anyway when baseline and current report different "
        "build types (debug vs release numbers are not comparable)",
    )
    args = parser.parse_args(argv)

    baseline, baseline_build = load_metrics(args.baseline)
    current, current_build = load_metrics(args.current)

    if (
        baseline_build is not None
        and current_build is not None
        and baseline_build != current_build
    ):
        message = (
            f"build-type mismatch: baseline is '{baseline_build}' but current "
            f"is '{current_build}'; the comparison is meaningless"
        )
        if not args.allow_build_type_mismatch:
            print(f"FAIL: {message} (pass --allow-build-type-mismatch to override)")
            return 1
        print(f"WARNING: {message} (continuing: --allow-build-type-mismatch)")

    regressions = []
    for name in sorted(baseline):
        if name not in current:
            print(f"  (only in baseline) {name}")
            continue
        base_value, higher_is_better = baseline[name]
        cur_value, _ = current[name]
        if base_value <= 0:
            continue
        if higher_is_better:
            change = (cur_value - base_value) / base_value
        else:
            change = (base_value - cur_value) / base_value  # faster => positive
        marker = "OK "
        if change < -args.threshold:
            # Lower-is-better metrics are nanosecond timings; tiny ones are
            # below the measurement noise floor and never gate.
            if not higher_is_better and base_value < args.min_gated_ns:
                marker = "ign"
            else:
                marker = "REG"
                regressions.append(name)
        print(f"  [{marker}] {name}: {base_value:.2f} -> {cur_value:.2f} "
              f"({change * 100.0:+.1f}%)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  (new, no baseline) {name}")

    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold * 100.0:.0f}%:")
        for name in regressions:
            print(f"  {name}")
        return 1
    print(f"PASS: no metric regressed more than {args.threshold * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
