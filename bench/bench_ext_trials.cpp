// Extension bench: trial-to-trial stability, the paper's methodology
// ("we conducted five 24-hour fuzzing trials for each controller").
//
// Five independent trials per controller with fresh testbeds and derived
// seeds; reports per-trial unique findings, the cross-trial union, and
// time-to-first-finding statistics.
#include <algorithm>

#include "bench_util.h"
#include "core/campaign.h"

int main() {
  using namespace zc;
  bench::header("Extension", "five-trial stability per controller (paper methodology)");

  std::printf("\n%-24s %-18s %-8s %-22s\n", "device", "per-trial unique", "union",
              "first finding (min..max)");
  bool stable = true;
  for (sim::DeviceModel model : sim::all_controller_models()) {
    sim::TestbedConfig testbed_config;
    testbed_config.controller_model = model;
    core::CampaignConfig config;
    config.mode = core::CampaignMode::kFull;
    config.duration = 24 * kHour;
    config.loop_queue = false;
    const auto summary = core::run_trials(testbed_config, config, 5);

    std::string per_trial;
    for (std::size_t n : summary.per_trial_unique) {
      if (!per_trial.empty()) per_trial += " ";
      per_trial += std::to_string(n);
    }
    const auto [min_first, max_first] =
        std::minmax_element(summary.first_finding_at.begin(), summary.first_finding_at.end());
    const std::size_t expected = summary.per_trial_unique.front();
    for (std::size_t n : summary.per_trial_unique) stable = stable && n == expected;

    std::printf("%-24s %-18s %-8zu %s .. %s\n", sim::device_model_name(model),
                per_trial.c_str(), summary.union_bug_ids.size(),
                format_sim_time(*min_first).c_str(), format_sim_time(*max_first).c_str());
  }
  std::printf("\nper-trial counts identical within each device: %s (the systematic phase\n"
              "guarantees every reachable trigger; seeds only shuffle the random tail)\n",
              stable ? "yes" : "NO");
  return 0;
}
