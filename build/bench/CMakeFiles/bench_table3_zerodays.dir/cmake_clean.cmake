file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_zerodays.dir/bench_table3_zerodays.cpp.o"
  "CMakeFiles/bench_table3_zerodays.dir/bench_table3_zerodays.cpp.o.d"
  "bench_table3_zerodays"
  "bench_table3_zerodays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_zerodays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
