# Empty dependencies file for bench_table3_zerodays.
# This may be replaced when dependencies are built.
