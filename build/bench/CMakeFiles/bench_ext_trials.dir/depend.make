# Empty dependencies file for bench_ext_trials.
# This may be replaced when dependencies are built.
