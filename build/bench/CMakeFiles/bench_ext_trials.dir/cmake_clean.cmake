file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_trials.dir/bench_ext_trials.cpp.o"
  "CMakeFiles/bench_ext_trials.dir/bench_ext_trials.cpp.o.d"
  "bench_ext_trials"
  "bench_ext_trials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_trials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
