file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ids.dir/bench_ext_ids.cpp.o"
  "CMakeFiles/bench_ext_ids.dir/bench_ext_ids.cpp.o.d"
  "bench_ext_ids"
  "bench_ext_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
