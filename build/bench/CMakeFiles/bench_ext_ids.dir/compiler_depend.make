# Empty compiler generated dependencies file for bench_ext_ids.
# This may be replaced when dependencies are built.
