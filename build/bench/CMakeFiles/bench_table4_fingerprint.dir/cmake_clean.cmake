file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fingerprint.dir/bench_table4_fingerprint.cpp.o"
  "CMakeFiles/bench_table4_fingerprint.dir/bench_table4_fingerprint.cpp.o.d"
  "bench_table4_fingerprint"
  "bench_table4_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
