# Empty compiler generated dependencies file for bench_table4_fingerprint.
# This may be replaced when dependencies are built.
