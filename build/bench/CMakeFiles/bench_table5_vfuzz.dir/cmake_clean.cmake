file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_vfuzz.dir/bench_table5_vfuzz.cpp.o"
  "CMakeFiles/bench_table5_vfuzz.dir/bench_table5_vfuzz.cpp.o.d"
  "bench_table5_vfuzz"
  "bench_table5_vfuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_vfuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
