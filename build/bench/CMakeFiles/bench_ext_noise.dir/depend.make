# Empty dependencies file for bench_ext_noise.
# This may be replaced when dependencies are built.
