# Empty dependencies file for bench_ext_range.
# This may be replaced when dependencies are built.
