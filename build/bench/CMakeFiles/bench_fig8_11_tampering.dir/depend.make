# Empty dependencies file for bench_fig8_11_tampering.
# This may be replaced when dependencies are built.
