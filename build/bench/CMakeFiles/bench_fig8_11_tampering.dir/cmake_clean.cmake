file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_11_tampering.dir/bench_fig8_11_tampering.cpp.o"
  "CMakeFiles/bench_fig8_11_tampering.dir/bench_fig8_11_tampering.cpp.o.d"
  "bench_fig8_11_tampering"
  "bench_fig8_11_tampering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_11_tampering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
