# Empty dependencies file for bench_fig5_cmd_distribution.
# This may be replaced when dependencies are built.
