# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/zc_tests_common[1]_include.cmake")
include("/root/repo/build/tests/zc_tests_crypto[1]_include.cmake")
include("/root/repo/build/tests/zc_tests_zwave[1]_include.cmake")
include("/root/repo/build/tests/zc_tests_radio[1]_include.cmake")
include("/root/repo/build/tests/zc_tests_sim[1]_include.cmake")
include("/root/repo/build/tests/zc_tests_core[1]_include.cmake")
