# Empty dependencies file for zc_tests_core.
# This may be replaced when dependencies are built.
