
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/campaign_sweep_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/campaign_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/campaign_sweep_test.cpp.o.d"
  "/root/repo/tests/core/campaign_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/campaign_test.cpp.o.d"
  "/root/repo/tests/core/dongle_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/dongle_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/dongle_test.cpp.o.d"
  "/root/repo/tests/core/extractor_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/extractor_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/extractor_test.cpp.o.d"
  "/root/repo/tests/core/ids_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/ids_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/ids_test.cpp.o.d"
  "/root/repo/tests/core/mutator_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/mutator_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/mutator_test.cpp.o.d"
  "/root/repo/tests/core/packet_tester_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/packet_tester_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/packet_tester_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/scanner_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/scanner_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/scanner_test.cpp.o.d"
  "/root/repo/tests/core/vfuzz_test.cpp" "tests/CMakeFiles/zc_tests_core.dir/core/vfuzz_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_core.dir/core/vfuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/zc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/zwave/CMakeFiles/zc_zwave.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
