file(REMOVE_RECURSE
  "CMakeFiles/zc_tests_core.dir/core/campaign_sweep_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/campaign_sweep_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/campaign_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/campaign_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/dongle_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/dongle_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/extractor_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/extractor_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/ids_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/ids_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/mutator_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/mutator_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/packet_tester_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/packet_tester_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/report_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/report_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/scanner_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/scanner_test.cpp.o.d"
  "CMakeFiles/zc_tests_core.dir/core/vfuzz_test.cpp.o"
  "CMakeFiles/zc_tests_core.dir/core/vfuzz_test.cpp.o.d"
  "zc_tests_core"
  "zc_tests_core.pdb"
  "zc_tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
