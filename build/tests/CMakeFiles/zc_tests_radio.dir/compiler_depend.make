# Empty compiler generated dependencies file for zc_tests_radio.
# This may be replaced when dependencies are built.
