file(REMOVE_RECURSE
  "CMakeFiles/zc_tests_radio.dir/radio/endpoint_test.cpp.o"
  "CMakeFiles/zc_tests_radio.dir/radio/endpoint_test.cpp.o.d"
  "CMakeFiles/zc_tests_radio.dir/radio/medium_test.cpp.o"
  "CMakeFiles/zc_tests_radio.dir/radio/medium_test.cpp.o.d"
  "CMakeFiles/zc_tests_radio.dir/radio/phy_test.cpp.o"
  "CMakeFiles/zc_tests_radio.dir/radio/phy_test.cpp.o.d"
  "zc_tests_radio"
  "zc_tests_radio.pdb"
  "zc_tests_radio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_tests_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
