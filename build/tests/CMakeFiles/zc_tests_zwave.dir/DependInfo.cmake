
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/zwave/checksum_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/checksum_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/checksum_test.cpp.o.d"
  "/root/repo/tests/zwave/dsk_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/dsk_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/dsk_test.cpp.o.d"
  "/root/repo/tests/zwave/frame_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/frame_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/frame_test.cpp.o.d"
  "/root/repo/tests/zwave/multicast_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/multicast_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/multicast_test.cpp.o.d"
  "/root/repo/tests/zwave/nif_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/nif_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/nif_test.cpp.o.d"
  "/root/repo/tests/zwave/routing_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/routing_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/routing_test.cpp.o.d"
  "/root/repo/tests/zwave/s2_inclusion_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/s2_inclusion_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/s2_inclusion_test.cpp.o.d"
  "/root/repo/tests/zwave/security_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/security_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/security_test.cpp.o.d"
  "/root/repo/tests/zwave/spec_db_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/spec_db_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/spec_db_test.cpp.o.d"
  "/root/repo/tests/zwave/spec_xml_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/spec_xml_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/spec_xml_test.cpp.o.d"
  "/root/repo/tests/zwave/transport_service_test.cpp" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/transport_service_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_zwave.dir/zwave/transport_service_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/zc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/zwave/CMakeFiles/zc_zwave.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
