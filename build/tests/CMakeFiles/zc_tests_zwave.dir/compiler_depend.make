# Empty compiler generated dependencies file for zc_tests_zwave.
# This may be replaced when dependencies are built.
