file(REMOVE_RECURSE
  "CMakeFiles/zc_tests_zwave.dir/zwave/checksum_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/checksum_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/dsk_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/dsk_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/frame_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/frame_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/multicast_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/multicast_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/nif_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/nif_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/routing_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/routing_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/s2_inclusion_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/s2_inclusion_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/security_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/security_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/spec_db_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/spec_db_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/spec_xml_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/spec_xml_test.cpp.o.d"
  "CMakeFiles/zc_tests_zwave.dir/zwave/transport_service_test.cpp.o"
  "CMakeFiles/zc_tests_zwave.dir/zwave/transport_service_test.cpp.o.d"
  "zc_tests_zwave"
  "zc_tests_zwave.pdb"
  "zc_tests_zwave[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_tests_zwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
