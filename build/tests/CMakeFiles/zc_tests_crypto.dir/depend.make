# Empty dependencies file for zc_tests_crypto.
# This may be replaced when dependencies are built.
