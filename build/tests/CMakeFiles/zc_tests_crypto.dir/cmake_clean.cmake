file(REMOVE_RECURSE
  "CMakeFiles/zc_tests_crypto.dir/crypto/aes_test.cpp.o"
  "CMakeFiles/zc_tests_crypto.dir/crypto/aes_test.cpp.o.d"
  "CMakeFiles/zc_tests_crypto.dir/crypto/cmac_test.cpp.o"
  "CMakeFiles/zc_tests_crypto.dir/crypto/cmac_test.cpp.o.d"
  "CMakeFiles/zc_tests_crypto.dir/crypto/ctr_test.cpp.o"
  "CMakeFiles/zc_tests_crypto.dir/crypto/ctr_test.cpp.o.d"
  "CMakeFiles/zc_tests_crypto.dir/crypto/kdf_test.cpp.o"
  "CMakeFiles/zc_tests_crypto.dir/crypto/kdf_test.cpp.o.d"
  "CMakeFiles/zc_tests_crypto.dir/crypto/x25519_test.cpp.o"
  "CMakeFiles/zc_tests_crypto.dir/crypto/x25519_test.cpp.o.d"
  "zc_tests_crypto"
  "zc_tests_crypto.pdb"
  "zc_tests_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_tests_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
