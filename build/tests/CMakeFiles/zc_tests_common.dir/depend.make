# Empty dependencies file for zc_tests_common.
# This may be replaced when dependencies are built.
