file(REMOVE_RECURSE
  "CMakeFiles/zc_tests_common.dir/common/bytes_test.cpp.o"
  "CMakeFiles/zc_tests_common.dir/common/bytes_test.cpp.o.d"
  "CMakeFiles/zc_tests_common.dir/common/clock_test.cpp.o"
  "CMakeFiles/zc_tests_common.dir/common/clock_test.cpp.o.d"
  "CMakeFiles/zc_tests_common.dir/common/result_test.cpp.o"
  "CMakeFiles/zc_tests_common.dir/common/result_test.cpp.o.d"
  "CMakeFiles/zc_tests_common.dir/common/rng_test.cpp.o"
  "CMakeFiles/zc_tests_common.dir/common/rng_test.cpp.o.d"
  "zc_tests_common"
  "zc_tests_common.pdb"
  "zc_tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
