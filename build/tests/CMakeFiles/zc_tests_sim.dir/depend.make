# Empty dependencies file for zc_tests_sim.
# This may be replaced when dependencies are built.
