
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/automation_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/automation_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/automation_test.cpp.o.d"
  "/root/repo/tests/sim/controller_fuzz_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/controller_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/controller_fuzz_test.cpp.o.d"
  "/root/repo/tests/sim/controller_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/controller_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/controller_test.cpp.o.d"
  "/root/repo/tests/sim/node_table_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/node_table_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/node_table_test.cpp.o.d"
  "/root/repo/tests/sim/profile_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/profile_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/profile_test.cpp.o.d"
  "/root/repo/tests/sim/repeater_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/repeater_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/repeater_test.cpp.o.d"
  "/root/repo/tests/sim/serial_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/serial_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/serial_test.cpp.o.d"
  "/root/repo/tests/sim/slave_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/slave_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/slave_test.cpp.o.d"
  "/root/repo/tests/sim/testbed_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/testbed_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/testbed_test.cpp.o.d"
  "/root/repo/tests/sim/vulnerability_test.cpp" "tests/CMakeFiles/zc_tests_sim.dir/sim/vulnerability_test.cpp.o" "gcc" "tests/CMakeFiles/zc_tests_sim.dir/sim/vulnerability_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/zc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/zwave/CMakeFiles/zc_zwave.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
