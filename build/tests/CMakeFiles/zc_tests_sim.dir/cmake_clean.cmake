file(REMOVE_RECURSE
  "CMakeFiles/zc_tests_sim.dir/sim/automation_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/automation_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/controller_fuzz_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/controller_fuzz_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/controller_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/controller_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/node_table_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/node_table_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/profile_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/profile_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/repeater_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/repeater_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/serial_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/serial_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/slave_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/slave_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/testbed_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/testbed_test.cpp.o.d"
  "CMakeFiles/zc_tests_sim.dir/sim/vulnerability_test.cpp.o"
  "CMakeFiles/zc_tests_sim.dir/sim/vulnerability_test.cpp.o.d"
  "zc_tests_sim"
  "zc_tests_sim.pdb"
  "zc_tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
