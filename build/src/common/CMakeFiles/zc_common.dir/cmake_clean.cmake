file(REMOVE_RECURSE
  "CMakeFiles/zc_common.dir/bytes.cpp.o"
  "CMakeFiles/zc_common.dir/bytes.cpp.o.d"
  "CMakeFiles/zc_common.dir/clock.cpp.o"
  "CMakeFiles/zc_common.dir/clock.cpp.o.d"
  "CMakeFiles/zc_common.dir/log.cpp.o"
  "CMakeFiles/zc_common.dir/log.cpp.o.d"
  "CMakeFiles/zc_common.dir/rng.cpp.o"
  "CMakeFiles/zc_common.dir/rng.cpp.o.d"
  "libzc_common.a"
  "libzc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
