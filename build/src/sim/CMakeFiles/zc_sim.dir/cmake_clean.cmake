file(REMOVE_RECURSE
  "CMakeFiles/zc_sim.dir/controller.cpp.o"
  "CMakeFiles/zc_sim.dir/controller.cpp.o.d"
  "CMakeFiles/zc_sim.dir/host.cpp.o"
  "CMakeFiles/zc_sim.dir/host.cpp.o.d"
  "CMakeFiles/zc_sim.dir/mac_quirks.cpp.o"
  "CMakeFiles/zc_sim.dir/mac_quirks.cpp.o.d"
  "CMakeFiles/zc_sim.dir/node_table.cpp.o"
  "CMakeFiles/zc_sim.dir/node_table.cpp.o.d"
  "CMakeFiles/zc_sim.dir/profile.cpp.o"
  "CMakeFiles/zc_sim.dir/profile.cpp.o.d"
  "CMakeFiles/zc_sim.dir/repeater.cpp.o"
  "CMakeFiles/zc_sim.dir/repeater.cpp.o.d"
  "CMakeFiles/zc_sim.dir/serial.cpp.o"
  "CMakeFiles/zc_sim.dir/serial.cpp.o.d"
  "CMakeFiles/zc_sim.dir/slave.cpp.o"
  "CMakeFiles/zc_sim.dir/slave.cpp.o.d"
  "CMakeFiles/zc_sim.dir/testbed.cpp.o"
  "CMakeFiles/zc_sim.dir/testbed.cpp.o.d"
  "CMakeFiles/zc_sim.dir/vulnerability.cpp.o"
  "CMakeFiles/zc_sim.dir/vulnerability.cpp.o.d"
  "libzc_sim.a"
  "libzc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
