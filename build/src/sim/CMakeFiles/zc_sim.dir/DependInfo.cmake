
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/controller.cpp" "src/sim/CMakeFiles/zc_sim.dir/controller.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/controller.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/zc_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/mac_quirks.cpp" "src/sim/CMakeFiles/zc_sim.dir/mac_quirks.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/mac_quirks.cpp.o.d"
  "/root/repo/src/sim/node_table.cpp" "src/sim/CMakeFiles/zc_sim.dir/node_table.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/node_table.cpp.o.d"
  "/root/repo/src/sim/profile.cpp" "src/sim/CMakeFiles/zc_sim.dir/profile.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/profile.cpp.o.d"
  "/root/repo/src/sim/repeater.cpp" "src/sim/CMakeFiles/zc_sim.dir/repeater.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/repeater.cpp.o.d"
  "/root/repo/src/sim/serial.cpp" "src/sim/CMakeFiles/zc_sim.dir/serial.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/serial.cpp.o.d"
  "/root/repo/src/sim/slave.cpp" "src/sim/CMakeFiles/zc_sim.dir/slave.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/slave.cpp.o.d"
  "/root/repo/src/sim/testbed.cpp" "src/sim/CMakeFiles/zc_sim.dir/testbed.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/testbed.cpp.o.d"
  "/root/repo/src/sim/vulnerability.cpp" "src/sim/CMakeFiles/zc_sim.dir/vulnerability.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/vulnerability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/zwave/CMakeFiles/zc_zwave.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/zc_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
