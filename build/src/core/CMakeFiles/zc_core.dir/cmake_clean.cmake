file(REMOVE_RECURSE
  "CMakeFiles/zc_core.dir/campaign.cpp.o"
  "CMakeFiles/zc_core.dir/campaign.cpp.o.d"
  "CMakeFiles/zc_core.dir/dongle.cpp.o"
  "CMakeFiles/zc_core.dir/dongle.cpp.o.d"
  "CMakeFiles/zc_core.dir/extractor.cpp.o"
  "CMakeFiles/zc_core.dir/extractor.cpp.o.d"
  "CMakeFiles/zc_core.dir/ids.cpp.o"
  "CMakeFiles/zc_core.dir/ids.cpp.o.d"
  "CMakeFiles/zc_core.dir/mutator.cpp.o"
  "CMakeFiles/zc_core.dir/mutator.cpp.o.d"
  "CMakeFiles/zc_core.dir/packet_tester.cpp.o"
  "CMakeFiles/zc_core.dir/packet_tester.cpp.o.d"
  "CMakeFiles/zc_core.dir/report.cpp.o"
  "CMakeFiles/zc_core.dir/report.cpp.o.d"
  "CMakeFiles/zc_core.dir/scanner.cpp.o"
  "CMakeFiles/zc_core.dir/scanner.cpp.o.d"
  "CMakeFiles/zc_core.dir/vfuzz.cpp.o"
  "CMakeFiles/zc_core.dir/vfuzz.cpp.o.d"
  "libzc_core.a"
  "libzc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
