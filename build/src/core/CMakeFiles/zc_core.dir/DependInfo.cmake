
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/zc_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/dongle.cpp" "src/core/CMakeFiles/zc_core.dir/dongle.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/dongle.cpp.o.d"
  "/root/repo/src/core/extractor.cpp" "src/core/CMakeFiles/zc_core.dir/extractor.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/extractor.cpp.o.d"
  "/root/repo/src/core/ids.cpp" "src/core/CMakeFiles/zc_core.dir/ids.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/ids.cpp.o.d"
  "/root/repo/src/core/mutator.cpp" "src/core/CMakeFiles/zc_core.dir/mutator.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/mutator.cpp.o.d"
  "/root/repo/src/core/packet_tester.cpp" "src/core/CMakeFiles/zc_core.dir/packet_tester.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/packet_tester.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/zc_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/report.cpp.o.d"
  "/root/repo/src/core/scanner.cpp" "src/core/CMakeFiles/zc_core.dir/scanner.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/scanner.cpp.o.d"
  "/root/repo/src/core/vfuzz.cpp" "src/core/CMakeFiles/zc_core.dir/vfuzz.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/vfuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/zwave/CMakeFiles/zc_zwave.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/zc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
