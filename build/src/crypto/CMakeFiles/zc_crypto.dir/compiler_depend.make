# Empty compiler generated dependencies file for zc_crypto.
# This may be replaced when dependencies are built.
