file(REMOVE_RECURSE
  "libzc_crypto.a"
)
