file(REMOVE_RECURSE
  "CMakeFiles/zc_crypto.dir/aes128.cpp.o"
  "CMakeFiles/zc_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/zc_crypto.dir/cmac.cpp.o"
  "CMakeFiles/zc_crypto.dir/cmac.cpp.o.d"
  "CMakeFiles/zc_crypto.dir/ctr.cpp.o"
  "CMakeFiles/zc_crypto.dir/ctr.cpp.o.d"
  "CMakeFiles/zc_crypto.dir/kdf.cpp.o"
  "CMakeFiles/zc_crypto.dir/kdf.cpp.o.d"
  "CMakeFiles/zc_crypto.dir/x25519.cpp.o"
  "CMakeFiles/zc_crypto.dir/x25519.cpp.o.d"
  "libzc_crypto.a"
  "libzc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
