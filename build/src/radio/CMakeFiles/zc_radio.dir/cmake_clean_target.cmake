file(REMOVE_RECURSE
  "libzc_radio.a"
)
