file(REMOVE_RECURSE
  "CMakeFiles/zc_radio.dir/endpoint.cpp.o"
  "CMakeFiles/zc_radio.dir/endpoint.cpp.o.d"
  "CMakeFiles/zc_radio.dir/medium.cpp.o"
  "CMakeFiles/zc_radio.dir/medium.cpp.o.d"
  "CMakeFiles/zc_radio.dir/phy.cpp.o"
  "CMakeFiles/zc_radio.dir/phy.cpp.o.d"
  "libzc_radio.a"
  "libzc_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
