# Empty dependencies file for zc_radio.
# This may be replaced when dependencies are built.
