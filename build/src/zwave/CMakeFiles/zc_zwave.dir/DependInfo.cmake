
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zwave/checksum.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/checksum.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/checksum.cpp.o.d"
  "/root/repo/src/zwave/dsk.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/dsk.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/dsk.cpp.o.d"
  "/root/repo/src/zwave/frame.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/frame.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/frame.cpp.o.d"
  "/root/repo/src/zwave/multicast.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/multicast.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/multicast.cpp.o.d"
  "/root/repo/src/zwave/nif.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/nif.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/nif.cpp.o.d"
  "/root/repo/src/zwave/routing.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/routing.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/routing.cpp.o.d"
  "/root/repo/src/zwave/s2_inclusion.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/s2_inclusion.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/s2_inclusion.cpp.o.d"
  "/root/repo/src/zwave/security.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/security.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/security.cpp.o.d"
  "/root/repo/src/zwave/spec_db.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/spec_db.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/spec_db.cpp.o.d"
  "/root/repo/src/zwave/spec_db_data.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/spec_db_data.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/spec_db_data.cpp.o.d"
  "/root/repo/src/zwave/spec_xml.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/spec_xml.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/spec_xml.cpp.o.d"
  "/root/repo/src/zwave/transport_service.cpp" "src/zwave/CMakeFiles/zc_zwave.dir/transport_service.cpp.o" "gcc" "src/zwave/CMakeFiles/zc_zwave.dir/transport_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
