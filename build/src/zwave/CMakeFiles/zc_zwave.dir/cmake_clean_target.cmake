file(REMOVE_RECURSE
  "libzc_zwave.a"
)
