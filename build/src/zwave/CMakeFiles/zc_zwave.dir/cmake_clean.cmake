file(REMOVE_RECURSE
  "CMakeFiles/zc_zwave.dir/checksum.cpp.o"
  "CMakeFiles/zc_zwave.dir/checksum.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/dsk.cpp.o"
  "CMakeFiles/zc_zwave.dir/dsk.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/frame.cpp.o"
  "CMakeFiles/zc_zwave.dir/frame.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/multicast.cpp.o"
  "CMakeFiles/zc_zwave.dir/multicast.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/nif.cpp.o"
  "CMakeFiles/zc_zwave.dir/nif.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/routing.cpp.o"
  "CMakeFiles/zc_zwave.dir/routing.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/s2_inclusion.cpp.o"
  "CMakeFiles/zc_zwave.dir/s2_inclusion.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/security.cpp.o"
  "CMakeFiles/zc_zwave.dir/security.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/spec_db.cpp.o"
  "CMakeFiles/zc_zwave.dir/spec_db.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/spec_db_data.cpp.o"
  "CMakeFiles/zc_zwave.dir/spec_db_data.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/spec_xml.cpp.o"
  "CMakeFiles/zc_zwave.dir/spec_xml.cpp.o.d"
  "CMakeFiles/zc_zwave.dir/transport_service.cpp.o"
  "CMakeFiles/zc_zwave.dir/transport_service.cpp.o.d"
  "libzc_zwave.a"
  "libzc_zwave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_zwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
