# Empty dependencies file for zc_zwave.
# This may be replaced when dependencies are built.
