# Empty dependencies file for ids_monitor.
# This may be replaced when dependencies are built.
