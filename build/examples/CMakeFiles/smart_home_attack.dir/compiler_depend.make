# Empty compiler generated dependencies file for smart_home_attack.
# This may be replaced when dependencies are built.
