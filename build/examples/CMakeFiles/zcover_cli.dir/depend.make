# Empty dependencies file for zcover_cli.
# This may be replaced when dependencies are built.
