
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/zcover_cli.cpp" "examples/CMakeFiles/zcover_cli.dir/zcover_cli.cpp.o" "gcc" "examples/CMakeFiles/zcover_cli.dir/zcover_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/zc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/zwave/CMakeFiles/zc_zwave.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
