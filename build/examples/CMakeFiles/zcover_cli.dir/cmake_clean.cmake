file(REMOVE_RECURSE
  "CMakeFiles/zcover_cli.dir/zcover_cli.cpp.o"
  "CMakeFiles/zcover_cli.dir/zcover_cli.cpp.o.d"
  "zcover_cli"
  "zcover_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcover_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
