file(REMOVE_RECURSE
  "CMakeFiles/spec_explorer.dir/spec_explorer.cpp.o"
  "CMakeFiles/spec_explorer.dir/spec_explorer.cpp.o.d"
  "spec_explorer"
  "spec_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
