file(REMOVE_RECURSE
  "CMakeFiles/s0_key_interception.dir/s0_key_interception.cpp.o"
  "CMakeFiles/s0_key_interception.dir/s0_key_interception.cpp.o.d"
  "s0_key_interception"
  "s0_key_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s0_key_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
