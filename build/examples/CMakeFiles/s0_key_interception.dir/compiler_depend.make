# Empty compiler generated dependencies file for s0_key_interception.
# This may be replaced when dependencies are built.
