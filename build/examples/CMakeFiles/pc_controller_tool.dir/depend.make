# Empty dependencies file for pc_controller_tool.
# This may be replaced when dependencies are built.
