file(REMOVE_RECURSE
  "CMakeFiles/pc_controller_tool.dir/pc_controller_tool.cpp.o"
  "CMakeFiles/pc_controller_tool.dir/pc_controller_tool.cpp.o.d"
  "pc_controller_tool"
  "pc_controller_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_controller_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
