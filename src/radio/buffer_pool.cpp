#include "radio/buffer_pool.h"

namespace zc::radio {

// Deliberately no obs:: hooks here: acquire() runs two-plus times per RF
// packet, and even a disarmed thread-local telemetry probe is measurable at
// that rate. The pool keeps plain counters; campaign teardown publishes
// them as end-of-run gauges (kPoolAcquires/kPoolReuses/kPoolBuffers).
BitBufferPool::Lease BitBufferPool::acquire() {
  ++acquires_;
  Slot* slot = nullptr;
  if (!free_.empty()) {
    ++reuses_;
    slot = free_.back();
    free_.pop_back();
  } else {
    slots_.push_back(std::make_unique<Slot>());
    slot = slots_.back().get();
    slot->pool = this;
  }
  return Lease(slot);
}

}  // namespace zc::radio
