#include "radio/phy.h"

namespace zc::radio {

void manchester_encode_byte(std::uint8_t byte, BitStream& out) {
  for (int bit = 7; bit >= 0; --bit) {
    if ((byte >> bit) & 1) {
      out.push_back(1);
      out.push_back(0);
    } else {
      out.push_back(0);
      out.push_back(1);
    }
  }
}

Result<Bytes> manchester_decode(const BitStream& bits, std::size_t bit_offset,
                                std::size_t byte_count) {
  if (bit_offset + byte_count * 16 > bits.size()) {
    return Error{Errc::kTruncated, "bit stream shorter than requested bytes"};
  }
  Bytes out;
  out.reserve(byte_count);
  std::size_t pos = bit_offset;
  for (std::size_t i = 0; i < byte_count; ++i) {
    std::uint8_t value = 0;
    for (int bit = 0; bit < 8; ++bit) {
      const std::uint8_t first = bits[pos];
      const std::uint8_t second = bits[pos + 1];
      pos += 2;
      if (first == second) {
        return Error{Errc::kBadField, "invalid Manchester symbol (noise)"};
      }
      value = static_cast<std::uint8_t>((value << 1) | (first == 1 ? 1 : 0));
    }
    out.push_back(value);
  }
  return out;
}

BitStream encode_transmission(ByteView frame) {
  BitStream bits;
  bits.reserve((kPreambleLength + 1 + frame.size()) * 16);
  for (std::size_t i = 0; i < kPreambleLength; ++i) manchester_encode_byte(kPreambleByte, bits);
  manchester_encode_byte(kStartOfFrame, bits);
  for (std::uint8_t b : frame) manchester_encode_byte(b, bits);
  return bits;
}

Result<Bytes> decode_transmission(const BitStream& bits) {
  // Hunt for the SOF byte on any 2-bit-aligned boundary after at least one
  // preamble byte worth of 0x55.
  const std::size_t total_bytes = bits.size() / 16;
  if (total_bytes < 2) {
    return Error{Errc::kTruncated, "bit stream too short for framing"};
  }
  std::size_t sof_index = 0;
  bool found = false;
  std::size_t preamble_run = 0;
  for (std::size_t i = 0; i < total_bytes; ++i) {
    const auto byte = manchester_decode(bits, i * 16, 1);
    if (!byte.ok()) {
      preamble_run = 0;
      continue;
    }
    const std::uint8_t value = byte.value()[0];
    if (value == kPreambleByte) {
      ++preamble_run;
      continue;
    }
    if (value == kStartOfFrame && preamble_run >= 1) {
      sof_index = i;
      found = true;
      break;
    }
    preamble_run = 0;
  }
  if (!found) {
    return Error{Errc::kBadField, "no start-of-frame delimiter found"};
  }

  // Everything after SOF until the stream ends (or a symbol error) is the
  // frame body. A trailing partial byte is ignored, like a real receiver
  // squelching at end of transmission.
  Bytes frame;
  for (std::size_t i = sof_index + 1; i < total_bytes; ++i) {
    const auto byte = manchester_decode(bits, i * 16, 1);
    if (!byte.ok()) break;
    frame.push_back(byte.value()[0]);
  }
  if (frame.empty()) {
    return Error{Errc::kTruncated, "no frame bytes after start-of-frame"};
  }
  return frame;
}

}  // namespace zc::radio
