#include "radio/phy.h"

#include <cstring>

#include "obs/profile.h"
#include "radio/phy_simd.h"

namespace zc::radio {

namespace {

/// Precomputed preamble + SOF prefix shared by every transmission.
const BitStream& prefix_bits() {
  static const BitStream prefix = [] {
    BitStream bits;
    bits.reserve((kPreambleLength + 1) * 16);
    for (std::size_t i = 0; i < kPreambleLength; ++i) {
      manchester_encode_byte(kPreambleByte, bits);
    }
    manchester_encode_byte(kStartOfFrame, bits);
    return bits;
  }();
  return prefix;
}

}  // namespace

void manchester_encode_byte(std::uint8_t byte, BitStream& out) {
  const std::size_t offset = out.size();
  out.resize(offset + 16);
  simd::manchester_encode_bytes(simd::Isa::kScalar, &byte, 1, out.data() + offset);
}

Result<Bytes> manchester_decode(const BitStream& bits, std::size_t bit_offset,
                                std::size_t byte_count) {
  if (bit_offset + byte_count * 16 > bits.size()) {
    return Error{Errc::kTruncated, "bit stream shorter than requested bytes"};
  }
  Bytes out(byte_count);
  const std::size_t decoded =
      simd::manchester_decode_bytes(bits.data() + bit_offset, byte_count, out.data());
  if (decoded < byte_count) {
    return Error{Errc::kBadField, "invalid Manchester symbol (noise)"};
  }
  return out;
}

void encode_transmission_into(ByteView frame, BitStream& out) {
  ZC_PROF_SCOPE("phy.encode");
  const BitStream& prefix = prefix_bits();
  // Size once, then raw batch stores: no per-byte insert() bookkeeping.
  out.resize(prefix.size() + frame.size() * 16);
  std::memcpy(out.data(), prefix.data(), prefix.size());
  simd::manchester_encode_bytes(frame.data(), frame.size(), out.data() + prefix.size());
}

BitStream encode_transmission(ByteView frame) {
  BitStream bits;
  encode_transmission_into(frame, bits);
  return bits;
}

Result<std::size_t> decode_transmission_into(const BitStream& bits, Bytes& frame) {
  ZC_PROF_SCOPE("phy.decode");
  frame.clear();
  // Hunt for the SOF byte on any 2-bit-aligned boundary after at least one
  // preamble byte worth of 0x55.
  // Error literals below stay within std::string's small-buffer size: a
  // noisy campaign rejects transmissions constantly, and the rejection path
  // should not allocate either.
  const simd::Isa isa = simd::active_isa();
  const std::size_t total_bytes = bits.size() / 16;
  if (total_bytes < 2) {
    return Error{Errc::kTruncated, "short bits"};
  }
  std::size_t sof_index = 0;
  bool found = false;
  std::size_t preamble_run = 0;
  const std::uint8_t* data = bits.data();
  for (std::size_t i = 0; i < total_bytes; ++i) {
    const int value = simd::manchester_decode_byte(isa, data + i * 16);
    if (value < 0) {
      preamble_run = 0;
      continue;
    }
    if (value == kPreambleByte) {
      ++preamble_run;
      continue;
    }
    if (value == kStartOfFrame && preamble_run >= 1) {
      sof_index = i;
      found = true;
      break;
    }
    preamble_run = 0;
  }
  if (!found) {
    return Error{Errc::kBadField, "no SOF"};
  }

  // Everything after SOF until the stream ends (or a symbol error) is the
  // frame body, decoded in one batch kernel call. A trailing partial byte
  // is ignored, like a real receiver squelching at end of transmission.
  const std::size_t body_bytes = total_bytes - sof_index - 1;
  frame.resize(body_bytes);
  const std::size_t decoded = simd::manchester_decode_bytes(
      isa, data + (sof_index + 1) * 16, body_bytes, frame.data());
  frame.resize(decoded);
  if (frame.empty()) {
    return Error{Errc::kTruncated, "empty frame"};
  }
  return frame.size();
}

Result<Bytes> decode_transmission(const BitStream& bits) {
  Bytes frame;
  auto decoded = decode_transmission_into(bits, frame);
  if (!decoded.ok()) return decoded.error();
  return frame;
}

}  // namespace zc::radio
