#include "radio/phy.h"

#include "obs/profile.h"

namespace zc::radio {

namespace {

/// Precomputed byte -> 16 Manchester line bits (MSB-first, 1 -> 10,
/// 0 -> 01), so the encoder is a table copy instead of a per-bit loop.
struct SymbolTable {
  std::uint8_t bits[256][16];
};

SymbolTable build_symbol_table() {
  SymbolTable table{};
  for (unsigned value = 0; value < 256; ++value) {
    for (int bit = 7; bit >= 0; --bit) {
      const std::size_t pos = static_cast<std::size_t>(7 - bit) * 2;
      if ((value >> bit) & 1) {
        table.bits[value][pos] = 1;
        table.bits[value][pos + 1] = 0;
      } else {
        table.bits[value][pos] = 0;
        table.bits[value][pos + 1] = 1;
      }
    }
  }
  return table;
}

const SymbolTable& symbol_table() {
  static const SymbolTable table = build_symbol_table();
  return table;
}

/// Precomputed preamble + SOF prefix shared by every transmission.
const BitStream& prefix_bits() {
  static const BitStream prefix = [] {
    BitStream bits;
    bits.reserve((kPreambleLength + 1) * 16);
    for (std::size_t i = 0; i < kPreambleLength; ++i) {
      manchester_encode_byte(kPreambleByte, bits);
    }
    manchester_encode_byte(kStartOfFrame, bits);
    return bits;
  }();
  return prefix;
}

/// Decodes one byte's 16 line bits starting at `bits` without the Result /
/// heap traffic of the public manchester_decode. Returns the byte value,
/// or -1 on an invalid Manchester pair (receiver noise). Equal line levels
/// are the invalid pairs (00/11), matching a real slicer losing the edge.
inline int decode_byte_at(const std::uint8_t* bits) {
  unsigned value = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t first = bits[2 * i];
    const std::uint8_t second = bits[2 * i + 1];
    if (first == second) return -1;
    value = (value << 1) | (first == 1 ? 1u : 0u);
  }
  return static_cast<int>(value);
}

}  // namespace

void manchester_encode_byte(std::uint8_t byte, BitStream& out) {
  const std::uint8_t* symbol = symbol_table().bits[byte];
  out.insert(out.end(), symbol, symbol + 16);
}

Result<Bytes> manchester_decode(const BitStream& bits, std::size_t bit_offset,
                                std::size_t byte_count) {
  if (bit_offset + byte_count * 16 > bits.size()) {
    return Error{Errc::kTruncated, "bit stream shorter than requested bytes"};
  }
  Bytes out;
  out.reserve(byte_count);
  const std::uint8_t* cursor = bits.data() + bit_offset;
  for (std::size_t i = 0; i < byte_count; ++i, cursor += 16) {
    const int value = decode_byte_at(cursor);
    if (value < 0) {
      return Error{Errc::kBadField, "invalid Manchester symbol (noise)"};
    }
    out.push_back(static_cast<std::uint8_t>(value));
  }
  return out;
}

void encode_transmission_into(ByteView frame, BitStream& out) {
  ZC_PROF_SCOPE("phy.encode");
  out.clear();
  out.reserve((kPreambleLength + 1 + frame.size()) * 16);
  const BitStream& prefix = prefix_bits();
  out.insert(out.end(), prefix.begin(), prefix.end());
  const SymbolTable& table = symbol_table();
  for (std::uint8_t b : frame) {
    out.insert(out.end(), table.bits[b], table.bits[b] + 16);
  }
}

BitStream encode_transmission(ByteView frame) {
  BitStream bits;
  encode_transmission_into(frame, bits);
  return bits;
}

Result<std::size_t> decode_transmission_into(const BitStream& bits, Bytes& frame) {
  ZC_PROF_SCOPE("phy.decode");
  frame.clear();
  // Hunt for the SOF byte on any 2-bit-aligned boundary after at least one
  // preamble byte worth of 0x55.
  // Error literals below stay within std::string's small-buffer size: a
  // noisy campaign rejects transmissions constantly, and the rejection path
  // should not allocate either.
  const std::size_t total_bytes = bits.size() / 16;
  if (total_bytes < 2) {
    return Error{Errc::kTruncated, "short bits"};
  }
  std::size_t sof_index = 0;
  bool found = false;
  std::size_t preamble_run = 0;
  const std::uint8_t* data = bits.data();
  for (std::size_t i = 0; i < total_bytes; ++i) {
    const int value = decode_byte_at(data + i * 16);
    if (value < 0) {
      preamble_run = 0;
      continue;
    }
    if (value == kPreambleByte) {
      ++preamble_run;
      continue;
    }
    if (value == kStartOfFrame && preamble_run >= 1) {
      sof_index = i;
      found = true;
      break;
    }
    preamble_run = 0;
  }
  if (!found) {
    return Error{Errc::kBadField, "no SOF"};
  }

  // Everything after SOF until the stream ends (or a symbol error) is the
  // frame body. A trailing partial byte is ignored, like a real receiver
  // squelching at end of transmission.
  for (std::size_t i = sof_index + 1; i < total_bytes; ++i) {
    const int value = decode_byte_at(data + i * 16);
    if (value < 0) break;
    frame.push_back(static_cast<std::uint8_t>(value));
  }
  if (frame.empty()) {
    return Error{Errc::kTruncated, "empty frame"};
  }
  return frame.size();
}

Result<Bytes> decode_transmission(const BitStream& bits) {
  Bytes frame;
  auto decoded = decode_transmission_into(bits, frame);
  if (!decoded.ok()) return decoded.error();
  return frame;
}

}  // namespace zc::radio
