// zc_simd: runtime-dispatched batch kernels for the PHY symbol hot loops.
//
// The per-frame cost of line coding used to be a byte-at-a-time walk:
// encode inserted one 16-entry symbol row per byte into a growing vector,
// decode ran sixteen branchy comparisons per byte. These kernels process
// whole frames against preallocated buffers and pick the widest
// implementation the host supports at runtime:
//
//   kSse2    16 line bits per vector load, movemask pair-validity + value
//            extraction (x86-64)
//   kWide64  two 64-bit SWAR words per byte (portable wide fallback; also
//            what aarch64/NEON builds take — the compiler vectorizes it)
//   kScalar  the original readable reference loop
//
// Every path is byte-for-byte identical on every input, including invalid
// Manchester pairs and non-0/1 garbage bytes (the reference semantics are
// "pair invalid iff first == second, bit = (first == 1)"). The
// dispatch-equivalence suite (tests/radio/phy_simd_test.cpp) pins this;
// ZC_DISABLE_SIMD / cpu::ScopedForcePortable force kScalar.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zc::radio::simd {

enum class Isa { kScalar, kWide64, kSse2 };

/// The ISA the dispatcher picks right now: honors cpu::enabled(), i.e. the
/// ZC_DISABLE_SIMD environment override and any ScopedForcePortable.
Isa active_isa();

/// Human-readable ISA name for docs/telemetry ("scalar", "wide64", "sse2").
const char* isa_name(Isa isa);

/// Manchester-encodes `n` bytes MSB-first (1 -> 10, 0 -> 01) into exactly
/// `16 * n` line bits at `dst` (caller allocates).
void manchester_encode_bytes(Isa isa, const std::uint8_t* src, std::size_t n,
                             std::uint8_t* dst);

/// Decodes one byte from 16 line bits. Returns the byte value, or -1 on an
/// invalid pair (equal line levels — a slicer losing the edge).
int manchester_decode_byte(Isa isa, const std::uint8_t* line_bits);

/// Decodes up to `n` bytes from `16 * n` line bits into `dst`, stopping at
/// the first invalid pair. Returns the number of bytes decoded.
std::size_t manchester_decode_bytes(Isa isa, const std::uint8_t* line_bits,
                                    std::size_t n, std::uint8_t* dst);

/// The shared 256-entry byte -> 16-line-bit symbol table (row-major).
const std::uint8_t (&symbol_rows())[256][16];

// Convenience overloads: dispatch on the current active_isa().
inline void manchester_encode_bytes(const std::uint8_t* src, std::size_t n,
                                    std::uint8_t* dst) {
  manchester_encode_bytes(active_isa(), src, n, dst);
}
inline std::size_t manchester_decode_bytes(const std::uint8_t* line_bits,
                                           std::size_t n, std::uint8_t* dst) {
  return manchester_decode_bytes(active_isa(), line_bits, n, dst);
}

}  // namespace zc::radio::simd
