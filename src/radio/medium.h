// Simulated sub-GHz RF medium.
//
// Stand-in for the physical 868/908 MHz channel between the Yardstick
// dongle and the testbed devices (DESIGN.md substitution table). The medium
// delivers bit streams between attached transceivers with:
//   * airtime delay from the configured data rate,
//   * log-distance path loss -> delivery probability per link (the paper's
//     attacker operates at 10-70 m),
//   * optional random bit-flip noise, which downstream layers must reject
//     via Manchester symbol checks and the CS-8 checksum.
//
// Determinism: all randomness comes from the Rng handed to the
// constructor — one seeded stream drives both the drop decision and the
// bit-flip decisions, in a fixed order per transmission, so two media built
// with the same seed, endpoints and traffic produce identical delivery
// traces. An installed fault tap must bring its own Rng; it never draws
// from the channel's stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "radio/buffer_pool.h"
#include "radio/phy.h"
#include "zwave/types.h"

namespace zc::radio {

/// Physical placement and radio parameters of one attached transceiver.
struct RadioConfig {
  std::string label;          // for logs: "controller-D4", "zcover-dongle"
  zwave::RfRegion region = zwave::RfRegion::kUs908;
  double x_meters = 0.0;
  double y_meters = 0.0;
  double tx_power_dbm = 0.0;  // Z-Wave nodes transmit around 0 dBm
};

/// Channel model parameters.
struct ChannelModel {
  double data_rate_bps = 40000.0;     // R2 rate
  double path_loss_at_1m_db = 40.0;   // reference loss
  double path_loss_exponent = 2.4;    // indoor-ish
  double sensitivity_dbm = -100.0;    // below this nothing is heard
  double fade_margin_db = 6.0;        // linear loss ramp above sensitivity
  double bit_flip_rate = 0.0;         // probability per bit of corruption
};

class RfMedium;

/// Fault-injection hook consulted on every transmission. Installed by a
/// fault injector (see sim/fault_injector.h); absent by default, leaving
/// the channel's own loss/noise model untouched.
class MediumFaultTap {
 public:
  virtual ~MediumFaultTap() = default;

  /// May veto a whole transmission (burst loss / jamming). `frame` holds
  /// the raw MAC bytes before line coding, so taps can target specific
  /// traffic — e.g. ACK-only loss.
  virtual bool drop_transmission(ByteView frame) = 0;

  /// Extra deterministic corruption applied to one delivery's line-coded
  /// bits, after the channel's own noise.
  virtual void corrupt_bits(BitStream& bits) = 0;
};

/// One radio endpoint. Devices own a Transceiver; the medium holds a
/// non-owning registry (endpoints must outlive the medium's use of them,
/// which the Testbed guarantees by owning both).
class Transceiver {
 public:
  /// Raw receive hook: demodulated bit stream + RSSI, before any framing.
  using BitsHandler = std::function<void(const BitStream& bits, double rssi_dbm)>;

  Transceiver(RfMedium& medium, RadioConfig config);
  ~Transceiver();

  Transceiver(const Transceiver&) = delete;
  Transceiver& operator=(const Transceiver&) = delete;

  const RadioConfig& config() const { return config_; }
  void move_to(double x_meters, double y_meters);

  /// Transmits raw frame bytes (adds preamble/SOF/Manchester).
  void transmit(ByteView frame);

  /// Registers the receive hook (replaces any previous one).
  void set_bits_handler(BitsHandler handler) { handler_ = std::move(handler); }

  /// Counters for benchmarks.
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_heard() const { return frames_heard_; }

 private:
  friend class RfMedium;
  void deliver(const BitStream& bits, double rssi_dbm);

  RfMedium& medium_;
  RadioConfig config_;
  BitsHandler handler_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_heard_ = 0;
};

/// The shared channel.
class RfMedium {
 public:
  RfMedium(EventScheduler& scheduler, Rng noise_rng, ChannelModel model = {});

  EventScheduler& scheduler() { return scheduler_; }
  const ChannelModel& model() const { return model_; }

  /// Computes received power for a link (used by tests and the scanner's
  /// RSSI display).
  double link_rssi_dbm(const Transceiver& from, const Transceiver& to) const;

  /// Total transmissions that crossed the medium.
  std::uint64_t transmissions() const { return transmissions_; }

  /// Installs (or clears, with nullptr) the fault-injection tap. The tap
  /// must outlive its installation; the injector deregisters itself on
  /// destruction.
  void set_fault_tap(MediumFaultTap* tap) { fault_tap_ = tap; }
  MediumFaultTap* fault_tap() const { return fault_tap_; }

  /// The medium's buffer arena (per shard, like the medium itself). The
  /// transmit path leases line-coding buffers from here; tests and the
  /// end-of-run telemetry read its stats.
  BitBufferPool& pool() { return pool_; }

  /// Returns the medium to its just-constructed state while keeping its
  /// warm allocations: a new noise RNG and channel model replace the old
  /// ones; endpoints, the fault tap and the transmission counter clear;
  /// every arena DeliveryBatch — including batches whose fire_batch events
  /// died with the scheduler queue — returns to the free list with its
  /// pooled leases released. The BitBufferPool keeps its slots (and its
  /// monotonic acquire/reuse counters), so a recycled medium transmits
  /// heap-free from the first frame. Call with all transceivers already
  /// destroyed and the scheduler queue already reset (sim::Testbed::reset
  /// sequences this).
  void recycle(Rng noise_rng, ChannelModel model);

  /// True while `endpoint` is registered. Scheduled deliveries re-check
  /// this at fire time, so an endpoint detached (or destroyed) between a
  /// broadcast and its airtime-delayed delivery is silently skipped instead
  /// of being handed a dangling pointer or a recycled buffer.
  bool is_attached(const Transceiver* endpoint) const;

 private:
  friend class Transceiver;

  /// One broadcast's pending deliveries, staged in struct-of-arrays form:
  /// `receivers[i]` / `rssi_dbm[i]` / (`leases[i]` on the noisy path)
  /// describe delivery i. All of a transmission's deliveries share one
  /// airtime, so the whole batch resolves with a single virtual-clock event
  /// (fire_batch) instead of one scheduler entry per receiver — the event
  /// capture stays two raw pointers, and the scheduler queue shrinks from
  /// O(receivers) to O(transmissions in flight).
  ///
  /// Batches live in a free-listed arena; their vectors keep capacity
  /// across reuse, so staging is heap-free once the arena is warm.
  struct DeliveryBatch {
    std::vector<Transceiver*> receivers;
    std::vector<double> rssi_dbm;
    /// Per-receiver personalized bits (noisy channel / armed fault tap);
    /// empty on the clean path, where `shared` serves every receiver.
    std::vector<BitBufferPool::Lease> leases;
    BitBufferPool::Lease shared;
  };

  void attach(Transceiver* endpoint);
  void detach(Transceiver* endpoint);
  void broadcast(Transceiver* sender, ByteView frame, BitBufferPool::Lease bits);
  DeliveryBatch* acquire_batch();
  void release_batch(DeliveryBatch* batch);
  void fire_batch(DeliveryBatch* batch);

  EventScheduler& scheduler_;
  Rng rng_;
  ChannelModel model_;
  std::vector<Transceiver*> endpoints_;
  std::uint64_t transmissions_ = 0;
  MediumFaultTap* fault_tap_ = nullptr;
  BitBufferPool pool_;
  std::vector<std::unique_ptr<DeliveryBatch>> batch_records_;
  std::vector<DeliveryBatch*> batch_free_;
};

}  // namespace zc::radio
