#include "radio/medium.h"

#include <algorithm>
#include <cmath>

#include "obs/profile.h"
#include "obs/recorder.h"

namespace zc::radio {

Transceiver::Transceiver(RfMedium& medium, RadioConfig config)
    : medium_(medium), config_(std::move(config)) {
  medium_.attach(this);
}

Transceiver::~Transceiver() { medium_.detach(this); }

void Transceiver::move_to(double x_meters, double y_meters) {
  config_.x_meters = x_meters;
  config_.y_meters = y_meters;
}

void Transceiver::transmit(ByteView frame) {
  ++frames_sent_;
  // Line-code into the per-transceiver scratch: steady-state transmission
  // reuses its capacity instead of allocating a fresh BitStream per frame.
  encode_transmission_into(frame, tx_scratch_);
  medium_.broadcast(this, frame, tx_scratch_);
}

void Transceiver::deliver(const BitStream& bits, double rssi_dbm) {
  ++frames_heard_;
  if (handler_) handler_(bits, rssi_dbm);
}

RfMedium::RfMedium(EventScheduler& scheduler, Rng noise_rng, ChannelModel model)
    : scheduler_(scheduler), rng_(noise_rng), model_(model) {}

void RfMedium::attach(Transceiver* endpoint) { endpoints_.push_back(endpoint); }

void RfMedium::detach(Transceiver* endpoint) {
  endpoints_.erase(std::remove(endpoints_.begin(), endpoints_.end(), endpoint),
                   endpoints_.end());
}

double RfMedium::link_rssi_dbm(const Transceiver& from, const Transceiver& to) const {
  const double dx = from.config().x_meters - to.config().x_meters;
  const double dy = from.config().y_meters - to.config().y_meters;
  const double distance = std::max(1.0, std::sqrt(dx * dx + dy * dy));
  const double loss =
      model_.path_loss_at_1m_db + 10.0 * model_.path_loss_exponent * std::log10(distance);
  return from.config().tx_power_dbm - loss;
}

void RfMedium::broadcast(Transceiver* sender, ByteView frame, const BitStream& bits) {
  ZC_PROF_SCOPE("medium.broadcast");
  ++transmissions_;
  // One recorder lookup per broadcast; the per-receiver loop below then
  // tallies into locals and posts once, keeping the hot loop hook-free.
  obs::Recorder* recorder = obs::current();
  if (recorder != nullptr) recorder->metrics().add(obs::MetricId::kRadioTransmissions);
  // Injected burst loss swallows the transmission channel-wide, before any
  // per-link work, so it never perturbs the channel's own random stream.
  if (fault_tap_ != nullptr && fault_tap_->drop_transmission(frame)) {
    if (recorder != nullptr) recorder->metrics().add(obs::MetricId::kRadioDropsFault);
    return;
  }

  const double airtime_seconds = static_cast<double>(bits.size()) / model_.data_rate_bps;
  const SimTime airtime = static_cast<SimTime>(airtime_seconds * static_cast<double>(kSecond));

  // Only a noisy channel (or an armed fault tap) personalizes the bit
  // stream per receiver; a clean channel delivers one shared immutable
  // copy to every listener — one allocation per broadcast instead of one
  // per link, and none of the per-bit copy loops.
  const bool per_receiver_bits = model_.bit_flip_rate > 0.0 || fault_tap_ != nullptr;
  std::shared_ptr<const BitStream> shared_clean;
  std::uint64_t deliveries = 0;
  std::uint64_t drops_rf = 0;

  for (Transceiver* receiver : endpoints_) {
    if (receiver == sender) continue;
    if (receiver->config().region != sender->config().region) continue;

    const double rssi = link_rssi_dbm(*sender, *receiver);
    if (rssi < model_.sensitivity_dbm) {
      ++drops_rf;
      continue;
    }

    // Linear delivery ramp across the fade margin just above sensitivity.
    const double headroom = rssi - model_.sensitivity_dbm;
    const double delivery_p = std::clamp(headroom / model_.fade_margin_db, 0.0, 1.0);
    if (!rng_.chance(delivery_p)) {
      ++drops_rf;
      continue;
    }

    ++deliveries;
    if (per_receiver_bits) {
      auto delivered = std::make_shared<BitStream>(bits);
      if (model_.bit_flip_rate > 0.0) {
        for (auto& bit : *delivered) {
          if (rng_.chance(model_.bit_flip_rate)) bit ^= 1;
        }
      }
      if (fault_tap_ != nullptr) fault_tap_->corrupt_bits(*delivered);
      scheduler_.schedule_after(airtime, [receiver, delivered = std::move(delivered), rssi] {
        receiver->deliver(*delivered, rssi);
      });
    } else {
      if (!shared_clean) shared_clean = std::make_shared<const BitStream>(bits);
      scheduler_.schedule_after(airtime, [receiver, delivered = shared_clean, rssi] {
        receiver->deliver(*delivered, rssi);
      });
    }
  }
  if (recorder != nullptr) {
    if (deliveries > 0) recorder->metrics().add(obs::MetricId::kRadioDeliveries, deliveries);
    if (drops_rf > 0) recorder->metrics().add(obs::MetricId::kRadioDropsRf, drops_rf);
  }
}

}  // namespace zc::radio
