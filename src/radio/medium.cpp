#include "radio/medium.h"

#include <algorithm>
#include <cmath>

#include "obs/profile.h"
#include "obs/recorder.h"

namespace zc::radio {

Transceiver::Transceiver(RfMedium& medium, RadioConfig config)
    : medium_(medium), config_(std::move(config)) {
  medium_.attach(this);
}

Transceiver::~Transceiver() { medium_.detach(this); }

void Transceiver::move_to(double x_meters, double y_meters) {
  config_.x_meters = x_meters;
  config_.y_meters = y_meters;
}

void Transceiver::transmit(ByteView frame) {
  ++frames_sent_;
  // Line-code straight into a pooled buffer: the broadcast shares that one
  // lease across receivers, so steady-state transmission neither copies the
  // bit stream nor touches the heap.
  BitBufferPool::Lease lease = medium_.pool().acquire();
  encode_transmission_into(frame, lease.bits());
  medium_.broadcast(this, frame, std::move(lease));
}

void Transceiver::deliver(const BitStream& bits, double rssi_dbm) {
  ++frames_heard_;
  if (handler_) handler_(bits, rssi_dbm);
}

RfMedium::RfMedium(EventScheduler& scheduler, Rng noise_rng, ChannelModel model)
    : scheduler_(scheduler), rng_(noise_rng), model_(model) {}

void RfMedium::recycle(Rng noise_rng, ChannelModel model) {
  rng_ = noise_rng;
  model_ = model;
  endpoints_.clear();
  transmissions_ = 0;
  fault_tap_ = nullptr;
  // Batches that were in flight when the scheduler queue was dropped were
  // never released by fire_batch; rebuild the free list from the arena
  // itself so no batch (and no lease it still holds) leaks across reuse.
  batch_free_.clear();
  for (const std::unique_ptr<DeliveryBatch>& record : batch_records_) {
    record->receivers.clear();
    record->rssi_dbm.clear();
    record->leases.clear();
    record->shared.reset();
    batch_free_.push_back(record.get());
  }
}

void RfMedium::attach(Transceiver* endpoint) { endpoints_.push_back(endpoint); }

void RfMedium::detach(Transceiver* endpoint) {
  endpoints_.erase(std::remove(endpoints_.begin(), endpoints_.end(), endpoint),
                   endpoints_.end());
}

bool RfMedium::is_attached(const Transceiver* endpoint) const {
  return std::find(endpoints_.begin(), endpoints_.end(), endpoint) != endpoints_.end();
}

RfMedium::DeliveryBatch* RfMedium::acquire_batch() {
  if (!batch_free_.empty()) {
    DeliveryBatch* record = batch_free_.back();
    batch_free_.pop_back();
    return record;
  }
  batch_records_.push_back(std::make_unique<DeliveryBatch>());
  return batch_records_.back().get();
}

void RfMedium::release_batch(DeliveryBatch* batch) {
  batch->receivers.clear();  // all three keep capacity for reuse
  batch->rssi_dbm.clear();
  batch->leases.clear();
  batch->shared.reset();
  batch_free_.push_back(batch);
}

void RfMedium::fire_batch(DeliveryBatch* batch) {
  // One virtual-clock sweep resolves every delivery of the transmission,
  // in the order they were staged — the same order the per-delivery
  // scheduler entries used to fire in (the event queue is FIFO-stable at
  // equal timestamps, and a broadcast's entries were always contiguous).
  // The batch is NOT recycled until the sweep completes: handlers may
  // transmit (acks do), and those broadcasts acquire their own batches.
  const std::size_t count = batch->receivers.size();
  const bool personalized = !batch->leases.empty();
  for (std::size_t i = 0; i < count; ++i) {
    Transceiver* receiver = batch->receivers[i];
    // Endpoints detached (or destroyed) after the broadcast but before the
    // airtime elapsed never hear the frame — re-checked per delivery, so a
    // handler earlier in the sweep can still silence later receivers.
    if (!is_attached(receiver)) continue;
    const BitStream& bits =
        personalized ? batch->leases[i].bits() : batch->shared.bits();
    receiver->deliver(bits, batch->rssi_dbm[i]);
  }
  release_batch(batch);
}

double RfMedium::link_rssi_dbm(const Transceiver& from, const Transceiver& to) const {
  const double dx = from.config().x_meters - to.config().x_meters;
  const double dy = from.config().y_meters - to.config().y_meters;
  const double distance = std::max(1.0, std::sqrt(dx * dx + dy * dy));
  const double loss =
      model_.path_loss_at_1m_db + 10.0 * model_.path_loss_exponent * std::log10(distance);
  return from.config().tx_power_dbm - loss;
}

void RfMedium::broadcast(Transceiver* sender, ByteView frame, BitBufferPool::Lease bits) {
  ZC_PROF_SCOPE("medium.broadcast");
  ++transmissions_;
  // One recorder lookup per broadcast; the per-receiver loop below then
  // tallies into locals and posts once, keeping the hot loop hook-free.
  obs::Recorder* recorder = obs::current();
  if (recorder != nullptr) recorder->metrics().add(obs::MetricId::kRadioTransmissions);
  // Injected burst loss swallows the transmission channel-wide, before any
  // per-link work, so it never perturbs the channel's own random stream.
  if (fault_tap_ != nullptr && fault_tap_->drop_transmission(frame)) {
    if (recorder != nullptr) recorder->metrics().add(obs::MetricId::kRadioDropsFault);
    return;
  }

  const double airtime_seconds =
      static_cast<double>(bits.bits().size()) / model_.data_rate_bps;
  const SimTime airtime = static_cast<SimTime>(airtime_seconds * static_cast<double>(kSecond));

  // Only a noisy channel (or an armed fault tap) personalizes the bit
  // stream per receiver (into a per-receiver pooled lease, preserving the
  // exact RNG draw order seeded replays depend on); a clean channel shares
  // the sender's own lease across every listener — zero copies, zero
  // allocations once the pool is warm.
  const bool per_receiver_bits = model_.bit_flip_rate > 0.0 || fault_tap_ != nullptr;
  std::uint64_t drops_rf = 0;

  // Stage the whole transmission into one struct-of-arrays batch. The RNG
  // draw order below (per-receiver drop decision, then that receiver's bit
  // flips, in endpoint order) is exactly the order the per-delivery path
  // used, so seeded replays are byte-identical.
  DeliveryBatch* batch = acquire_batch();
  for (Transceiver* receiver : endpoints_) {
    if (receiver == sender) continue;
    if (receiver->config().region != sender->config().region) continue;

    const double rssi = link_rssi_dbm(*sender, *receiver);
    if (rssi < model_.sensitivity_dbm) {
      ++drops_rf;
      continue;
    }

    // Linear delivery ramp across the fade margin just above sensitivity.
    const double headroom = rssi - model_.sensitivity_dbm;
    const double delivery_p = std::clamp(headroom / model_.fade_margin_db, 0.0, 1.0);
    if (!rng_.chance(delivery_p)) {
      ++drops_rf;
      continue;
    }

    batch->receivers.push_back(receiver);
    batch->rssi_dbm.push_back(rssi);
    if (per_receiver_bits) {
      BitBufferPool::Lease delivered = pool_.acquire();
      delivered.bits().assign(bits.bits().begin(), bits.bits().end());
      if (model_.bit_flip_rate > 0.0) {
        for (auto& bit : delivered.bits()) {
          if (rng_.chance(model_.bit_flip_rate)) bit ^= 1;
        }
      }
      if (fault_tap_ != nullptr) fault_tap_->corrupt_bits(delivered.bits());
      batch->leases.push_back(std::move(delivered));
    }
  }
  const std::uint64_t deliveries = batch->receivers.size();
  if (deliveries == 0) {
    release_batch(batch);
  } else {
    if (!per_receiver_bits) {
      batch->shared = bits;  // shared: refcount keeps the buffer leased
    }
    // One scheduler entry per *transmission*, not per receiver; the two
    // trivially-copyable pointers fit std::function's inline storage, so
    // scheduling still does not allocate.
    scheduler_.schedule_after(airtime, [this, batch] { fire_batch(batch); });
  }
  if (recorder != nullptr) {
    if (deliveries > 0) recorder->metrics().add(obs::MetricId::kRadioDeliveries, deliveries);
    if (drops_rf > 0) recorder->metrics().add(obs::MetricId::kRadioDropsRf, drops_rf);
  }
}

}  // namespace zc::radio
