// PHY-layer symbol coding: the bit-level pipeline between MAC frames and
// the simulated air interface.
//
// The paper's passive scanner (Fig. 4) starts from raw demodulated bits:
// "Raw data: 110010111001010..." -> hex -> fields. This module produces and
// consumes exactly that representation: a transmission is preamble bytes
// (0x55...) + start-of-frame delimiter + Manchester-coded frame bytes.
// The sniffer must find the SOF, strip the repetitive preamble "noise
// bytes" (§III-B1 step 1) and recover frame bytes before any MAC parsing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace zc::radio {

/// One on-air bit.
using BitStream = std::vector<std::uint8_t>;  // values 0/1

/// G.9959 R1/R2-style framing constants.
constexpr std::uint8_t kPreambleByte = 0x55;
constexpr std::size_t kPreambleLength = 10;  // bytes of 0x55 before SOF
constexpr std::uint8_t kStartOfFrame = 0xF0;

/// Manchester-encodes one byte MSB-first (0 -> 01, 1 -> 10). Backed by a
/// precomputed 256-entry symbol table (one 16-bit-pattern copy per byte).
void manchester_encode_byte(std::uint8_t byte, BitStream& out);

/// Decodes `2*n` Manchester bits back into `n` bytes. Fails on an invalid
/// symbol pair (00/11), which real receivers treat as noise.
Result<Bytes> manchester_decode(const BitStream& bits, std::size_t bit_offset,
                                std::size_t byte_count);

/// Encodes a full transmission: preamble + SOF + Manchester(frame bytes).
BitStream encode_transmission(ByteView frame);

/// Allocation-free variant: encodes into `out`, reusing its capacity. The
/// per-frame hot path (Transceiver::transmit) keeps one scratch BitStream
/// alive across frames so steady-state encoding never touches the heap.
void encode_transmission_into(ByteView frame, BitStream& out);

/// Scans a bit stream for a transmission: locates the preamble run and SOF,
/// then Manchester-decodes the remainder into raw frame bytes. Returns the
/// frame bytes (which may still fail MAC validation — that is the next
/// layer's job). `frame_length_hint` of 0 means "decode until the stream
/// ends or a symbol error occurs".
Result<Bytes> decode_transmission(const BitStream& bits);

/// Allocation-free variant: decodes into `frame` (cleared first, capacity
/// reused) and returns the decoded byte count. Receivers keep one scratch
/// Bytes alive across deliveries so the per-frame decode path stops
/// allocating.
Result<std::size_t> decode_transmission_into(const BitStream& bits, Bytes& frame);

}  // namespace zc::radio
