#include "radio/endpoint.h"

#include "common/log.h"

namespace zc::radio {

MacEndpoint::MacEndpoint(RfMedium& medium, RadioConfig config)
    : radio_(medium, std::move(config)) {
  radio_.set_bits_handler(
      [this](const BitStream& bits, double rssi) { on_bits(bits, rssi); });
}

bool MacEndpoint::send(const zwave::MacFrame& frame) {
  auto encoded = frame.encode();
  if (!encoded.ok()) {
    ZC_WARN("%s: refusing to send oversized frame: %s", radio_.config().label.c_str(),
            encoded.error().message.c_str());
    return false;
  }
  radio_.transmit(encoded.value());
  return true;
}

void MacEndpoint::send_raw(ByteView frame_bytes) { radio_.transmit(frame_bytes); }

void MacEndpoint::on_bits(const BitStream& bits, double rssi_dbm) {
  // Decode into the endpoint's scratch buffer: per-frame receive reuses
  // its capacity instead of allocating a Bytes per delivery.
  const auto raw = decode_transmission_into(bits, rx_scratch_);
  if (!raw.ok()) {
    ++frames_dropped_;
    return;
  }
  const auto frame = zwave::decode_frame(rx_scratch_);
  if (!frame.ok()) {
    ++frames_dropped_;
    return;
  }
  ++frames_ok_;
  if (handler_) handler_(frame.value(), rssi_dbm);
}

}  // namespace zc::radio
