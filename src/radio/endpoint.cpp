#include "radio/endpoint.h"

#include "common/log.h"

namespace zc::radio {

MacEndpoint::MacEndpoint(RfMedium& medium, RadioConfig config)
    : radio_(medium, std::move(config)) {
  radio_.set_bits_handler(
      [this](const BitStream& bits, double rssi) { on_bits(bits, rssi); });
}

bool MacEndpoint::send(const zwave::MacFrame& frame) {
  if (frame.encode_into(tx_scratch_) != Errc::kOk) {
    ZC_WARN("%s: refusing to send oversized frame (%zu payload bytes)",
            radio_.config().label.c_str(), frame.payload.size());
    return false;
  }
  radio_.transmit(tx_scratch_);
  return true;
}

void MacEndpoint::send_raw(ByteView frame_bytes) { radio_.transmit(frame_bytes); }

void MacEndpoint::on_bits(const BitStream& bits, double rssi_dbm) {
  // Decode into the endpoint's scratch buffer: per-frame receive reuses
  // its capacity instead of allocating a Bytes per delivery.
  const auto raw = decode_transmission_into(bits, rx_scratch_);
  if (!raw.ok()) {
    ++frames_dropped_;
    return;
  }
  // Bare-Errc MAC parse into the reused scratch frame: rejections (the
  // common case under fuzzing) build no error strings, acceptances reuse
  // the payload buffer's capacity.
  if (zwave::decode_frame_into(rx_scratch_, rx_frame_) != Errc::kOk) {
    ++frames_dropped_;
    return;
  }
  ++frames_ok_;
  if (handler_) handler_(rx_frame_, rssi_dbm);
}

}  // namespace zc::radio
