#include "radio/phy_simd.h"

#include <cstring>

#include "common/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#define ZC_SIMD_HAVE_SSE2 1
#endif

namespace zc::radio::simd {

namespace {

struct SymbolTable {
  std::uint8_t bits[256][16];
};

SymbolTable build_symbol_table() {
  SymbolTable table{};
  for (unsigned value = 0; value < 256; ++value) {
    for (int bit = 7; bit >= 0; --bit) {
      const std::size_t pos = static_cast<std::size_t>(7 - bit) * 2;
      if ((value >> bit) & 1) {
        table.bits[value][pos] = 1;
        table.bits[value][pos + 1] = 0;
      } else {
        table.bits[value][pos] = 0;
        table.bits[value][pos + 1] = 1;
      }
    }
  }
  return table;
}

const SymbolTable& symbol_table() {
  static const SymbolTable table = build_symbol_table();
  return table;
}

/// 8-bit bit-reversal, for turning a compacted LSB-first pair mask back
/// into the MSB-first byte value the scalar loop builds.
constexpr std::uint8_t reverse8(std::uint8_t v) {
  v = static_cast<std::uint8_t>(((v & 0xF0) >> 4) | ((v & 0x0F) << 4));
  v = static_cast<std::uint8_t>(((v & 0xCC) >> 2) | ((v & 0x33) << 2));
  v = static_cast<std::uint8_t>(((v & 0xAA) >> 1) | ((v & 0x55) << 1));
  return v;
}

struct Reverse8Table {
  std::uint8_t value[256];
};

constexpr Reverse8Table build_reverse8() {
  Reverse8Table t{};
  for (unsigned i = 0; i < 256; ++i) t.value[i] = reverse8(static_cast<std::uint8_t>(i));
  return t;
}

constexpr Reverse8Table kReverse8 = build_reverse8();

// ---------------------------------------------------------------------------
// Scalar reference kernels: the exact semantics every wider path must match.
// Pair (first, second) is invalid iff first == second (any equal byte
// values, not just 0/1 — callers may hand arbitrary garbage); otherwise the
// recovered bit is (first == 1).
// ---------------------------------------------------------------------------

inline int decode_byte_scalar(const std::uint8_t* bits) {
  unsigned value = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t first = bits[2 * i];
    const std::uint8_t second = bits[2 * i + 1];
    if (first == second) return -1;
    value = (value << 1) | (first == 1 ? 1u : 0u);
  }
  return static_cast<int>(value);
}

// ---------------------------------------------------------------------------
// Wide64 kernels: two 64-bit SWAR words per byte. Line-bit bytes live in
// 16-bit lanes (first in the low byte, second in the high byte); lane
// arithmetic never crosses lanes because every intermediate fits in 16 bits
// (max 255 + 255 < 65536), so the per-lane zero/one tests are exact.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kLoBytes = 0x00FF00FF00FF00FFULL;
constexpr std::uint64_t kOnePerLane = 0x0001000100010001ULL;
constexpr std::uint64_t kFFPerLane = 0x00FF00FF00FF00FFULL;
constexpr std::uint64_t kBit8PerLane = 0x0100010001000100ULL;

/// Decodes 8 line bits (4 pairs) into the high-to-low 4 value bits, or -1.
inline int decode_nibble_wide64(const std::uint8_t* line) {
  std::uint64_t w;
  std::memcpy(&w, line, 8);
  // Lane k (low byte) = first_k ^ second_k; a zero lane is an equal pair.
  const std::uint64_t diff = (w ^ (w >> 8)) & kLoBytes;
  // Adding 0xFF sets lane bit 8 iff the lane is nonzero (no cross-lane
  // carries: 255 + 255 = 510 < 2^16).
  const std::uint64_t diff_nz = (diff + kFFPerLane) & kBit8PerLane;
  if (diff_nz != kBit8PerLane) return -1;
  // Lane k = first_k ^ 1: zero iff the recovered bit is 1.
  const std::uint64_t firsts = (w & kLoBytes) ^ kOnePerLane;
  const std::uint64_t firsts_nz = (firsts + kFFPerLane) & kBit8PerLane;
  const std::uint64_t hit = ~firsts_nz;  // lane bit 8 set iff first_k == 1
  return static_cast<int>(((hit >> 8) & 1) << 3 | ((hit >> 24) & 1) << 2 |
                          ((hit >> 40) & 1) << 1 | ((hit >> 56) & 1));
}

inline int decode_byte_wide64(const std::uint8_t* bits) {
  const int hi = decode_nibble_wide64(bits);
  if (hi < 0) return -1;
  const int lo = decode_nibble_wide64(bits + 8);
  if (lo < 0) return -1;
  return (hi << 4) | lo;
}

// ---------------------------------------------------------------------------
// SSE2 kernels: one 16-byte vector load per byte; pair validity and value
// extraction via movemask.
// ---------------------------------------------------------------------------

#if ZC_SIMD_HAVE_SSE2
inline int decode_byte_sse2(const std::uint8_t* bits) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bits));
  // first_k == second_k per 16-bit lane -> invalid pair.
  const __m128i lo = _mm_and_si128(v, _mm_set1_epi16(0x00FF));
  const __m128i hi = _mm_srli_epi16(v, 8);
  if (_mm_movemask_epi8(_mm_cmpeq_epi16(lo, hi)) != 0) return -1;
  // Bit i of `ones` = (byte_i == 1); the firsts sit at even positions.
  const unsigned ones = static_cast<unsigned>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_set1_epi8(1))));
  unsigned x = ones & 0x5555u;
  x = (x | (x >> 1)) & 0x3333u;
  x = (x | (x >> 2)) & 0x0F0Fu;
  x = (x | (x >> 4)) & 0x00FFu;
  // Compaction is LSB-first (pair 0 at bit 0); the scalar loop builds
  // MSB-first (pair 0 is the value's bit 7), so reverse.
  return kReverse8.value[x];
}
#endif

}  // namespace

const std::uint8_t (&symbol_rows())[256][16] { return symbol_table().bits; }

Isa active_isa() {
  if (cpu::simd_forced_portable()) return Isa::kScalar;
#if ZC_SIMD_HAVE_SSE2
  if (cpu::enabled().sse2) return Isa::kSse2;
#endif
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The SWAR lane layout maps "first of pair" to the low byte of each
  // 16-bit lane, which only a little-endian load guarantees.
  return Isa::kWide64;
#else
  return Isa::kScalar;
#endif
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kWide64: return "wide64";
    case Isa::kSse2: return "sse2";
  }
  return "?";
}

void manchester_encode_bytes(Isa isa, const std::uint8_t* src, std::size_t n,
                             std::uint8_t* dst) {
  const SymbolTable& table = symbol_table();
#if ZC_SIMD_HAVE_SSE2
  if (isa == Isa::kSse2) {
    for (std::size_t i = 0; i < n; ++i) {
      const __m128i row =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(table.bits[src[i]]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16 * i), row);
    }
    return;
  }
#endif
  // Scalar and wide64 share the table-row copy; a 16-byte memcpy compiles
  // to two word moves, which *is* the wide path.
  (void)isa;
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(dst + 16 * i, table.bits[src[i]], 16);
  }
}

int manchester_decode_byte(Isa isa, const std::uint8_t* line_bits) {
  switch (isa) {
#if ZC_SIMD_HAVE_SSE2
    case Isa::kSse2: return decode_byte_sse2(line_bits);
#endif
    case Isa::kWide64: return decode_byte_wide64(line_bits);
    default: return decode_byte_scalar(line_bits);
  }
}

std::size_t manchester_decode_bytes(Isa isa, const std::uint8_t* line_bits,
                                    std::size_t n, std::uint8_t* dst) {
  switch (isa) {
#if ZC_SIMD_HAVE_SSE2
    case Isa::kSse2: {
      for (std::size_t i = 0; i < n; ++i) {
        const int value = decode_byte_sse2(line_bits + 16 * i);
        if (value < 0) return i;
        dst[i] = static_cast<std::uint8_t>(value);
      }
      return n;
    }
#endif
    case Isa::kWide64: {
      for (std::size_t i = 0; i < n; ++i) {
        const int value = decode_byte_wide64(line_bits + 16 * i);
        if (value < 0) return i;
        dst[i] = static_cast<std::uint8_t>(value);
      }
      return n;
    }
    default: {
      for (std::size_t i = 0; i < n; ++i) {
        const int value = decode_byte_scalar(line_bits + 16 * i);
        if (value < 0) return i;
        dst[i] = static_cast<std::uint8_t>(value);
      }
      return n;
    }
  }
}

}  // namespace zc::radio::simd
