// Free-list pool of line-coded bit buffers for the RF fast path.
//
// Every transmission used to materialize at least one heap-allocated
// BitStream (`make_shared<BitStream>` per delivery in RfMedium::broadcast),
// which dominated the steady-state allocation profile of a campaign. The
// pool replaces that with an arena of reusable slots handed out as
// ref-counted leases:
//
//   * `acquire()` pops a slot from the free list (allocating a new slot
//     only while the pool is still warming up);
//   * a `Lease` is a cheap intrusive-refcount handle — copying it shares
//     the same underlying buffer, as the clean-channel broadcast does
//     across all receivers of one transmission;
//   * when the last lease drops, the slot's buffer is cleared (capacity
//     kept) and returned to the free list.
//
// Single-threaded by design: a pool belongs to one RfMedium, which belongs
// to one shard (the ownership discipline of core/parallel). No atomics, no
// locks — the refcount is a plain integer.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "radio/phy.h"

namespace zc::radio {

class BitBufferPool {
 public:
  BitBufferPool() = default;
  BitBufferPool(const BitBufferPool&) = delete;
  BitBufferPool& operator=(const BitBufferPool&) = delete;

  class Lease;

  /// Hands out an empty buffer (capacity retained from previous uses).
  Lease acquire();

  /// Slots ever created (the arena's high-water mark).
  std::size_t size() const { return slots_.size(); }
  /// Slots currently on the free list (idle).
  std::size_t idle() const { return free_.size(); }
  /// Total acquire() calls / acquisitions served without allocating.
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  struct Slot {
    BitStream bits;
    std::uint32_t refs = 0;
    BitBufferPool* pool = nullptr;
  };

  void release(Slot* slot) {
    slot->bits.clear();  // keeps capacity
    free_.push_back(slot);
  }

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Slot*> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;

 public:
  /// Ref-counted handle to one pooled buffer. Copy to share (clean-path
  /// fan-out), move to transfer. The buffer returns to the pool when the
  /// last lease goes away — including leases still captured by scheduled
  /// delivery events, so in-flight bits are never recycled early.
  class Lease {
   public:
    Lease() = default;
    explicit Lease(Slot* slot) : slot_(slot) {
      if (slot_ != nullptr) ++slot_->refs;
    }
    Lease(const Lease& other) : slot_(other.slot_) {
      if (slot_ != nullptr) ++slot_->refs;
    }
    Lease(Lease&& other) noexcept : slot_(other.slot_) { other.slot_ = nullptr; }
    Lease& operator=(const Lease& other) {
      if (this != &other) {
        reset();
        slot_ = other.slot_;
        if (slot_ != nullptr) ++slot_->refs;
      }
      return *this;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        reset();
        slot_ = other.slot_;
        other.slot_ = nullptr;
      }
      return *this;
    }
    ~Lease() { reset(); }

    void reset() {
      if (slot_ != nullptr && --slot_->refs == 0) slot_->pool->release(slot_);
      slot_ = nullptr;
    }

    explicit operator bool() const { return slot_ != nullptr; }
    BitStream& bits() { return slot_->bits; }
    const BitStream& bits() const { return slot_->bits; }
    std::uint32_t ref_count() const { return slot_ == nullptr ? 0 : slot_->refs; }

   private:
    Slot* slot_ = nullptr;
  };
};

}  // namespace zc::radio
