// MAC-level endpoint: the glue between a Transceiver's raw bit stream and
// decoded MacFrames. Every simulated device and the ZCover dongle sit on
// one of these.
#pragma once

#include <functional>

#include "radio/medium.h"
#include "zwave/frame.h"

namespace zc::radio {

/// Wraps a Transceiver with Z-Wave framing. Invalid transmissions (noise,
/// checksum failures) are counted and dropped, mirroring a real MAC.
class MacEndpoint {
 public:
  using FrameHandler = std::function<void(const zwave::MacFrame& frame, double rssi_dbm)>;

  MacEndpoint(RfMedium& medium, RadioConfig config);

  /// Sends a well-formed frame. Returns false when the frame exceeds the
  /// MAC limit (nothing is transmitted).
  bool send(const zwave::MacFrame& frame);

  /// Sends raw frame bytes verbatim — the injection path fuzzers use for
  /// deliberately malformed frames (bad LEN/CS are transmitted as-is).
  void send_raw(ByteView frame_bytes);

  void set_frame_handler(FrameHandler handler) { handler_ = std::move(handler); }

  Transceiver& radio() { return radio_; }
  const Transceiver& radio() const { return radio_; }

  std::uint64_t frames_ok() const { return frames_ok_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  void on_bits(const BitStream& bits, double rssi_dbm);

  Transceiver radio_;
  FrameHandler handler_;
  /// Reused PHY-decode buffer for the receive hot path.
  Bytes rx_scratch_;
  /// Reused MAC-parse scratch: its payload buffer's capacity persists
  /// across frames, so steady-state receive performs zero allocations.
  zwave::MacFrame rx_frame_;
  /// Reused MAC-encode buffer for send().
  Bytes tx_scratch_;
  std::uint64_t frames_ok_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace zc::radio
