// MetricsRegistry: the campaign's quantitative telemetry surface.
//
// Every metric the pipeline emits is predeclared in one enum, so updates
// are O(1) array stores with no hashing, no allocation and no locks — a
// registry instance is owned by exactly one shard (the same ownership
// discipline `core/parallel` applies to testbeds and campaigns), and
// cross-shard aggregation happens after the pool joins, by merging the
// per-shard instances in shard order. That makes the merged registry a
// pure function of (base seed, shard count): byte-identical JSON at any
// `--jobs` value.
//
// Three metric kinds:
//  * counters    — monotonically increasing event tallies; merge by sum;
//  * gauges      — end-of-run levels (queue length, blacklist size);
//    merge by sum, which aggregates per-shard levels into fleet totals;
//  * histograms  — fixed-bucket latency distributions over virtual time
//    (unit: microseconds). Bucket bounds are compile-time constants shared
//    by every instance, so merging is element-wise addition.
//
// Values are virtual-time or event-count quantities only. Wall-clock data
// (see obs/profile.h) is deliberately kept out of this registry so its
// serialized form stays deterministic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace zc::obs {

/// Every metric the instrumented pipeline can touch. Names, kinds and
/// units live in the parallel `metric_info()` table; docs/observability.md
/// documents each entry.
enum class MetricId : std::uint8_t {
  // campaign engine (core/campaign.cpp)
  kCampaignTests = 0,
  kCampaignFindings,
  kCampaignInconclusive,
  kCampaignRetriedInjections,
  kCampaignLivenessChecks,
  kCampaignLivenessFailures,
  kCampaignRecoveries,
  kCampaignCheckpoints,
  kCampaignMutations,
  kCampaignDedupHits,
  kCampaignDedupMisses,
  kCampaignOracleSweeps,
  kCampaignWindowTriages,
  // fingerprinting (core/scanner.cpp, core/extractor.cpp)
  kScannerProbesTx,
  kScannerFramesSniffed,
  kScannerCmdclValidated,
  // resilience primitives (core/resilience.cpp)
  kResilienceBackoffs,
  // baseline fuzzer (core/vfuzz.cpp)
  kVfuzzPacketsTx,
  kVfuzzDedupSkips,
  // coverage-guided fuzzer (core/covfuzz.cpp)
  kCovfuzzPacketsTx,
  kCovfuzzDedupSkips,
  kCovfuzzCorpusAdmissions,
  // attacker front-end (core/dongle.cpp)
  kDongleFramesTx,
  kDongleFramesRx,
  // RF medium (radio/medium.cpp, radio/buffer_pool.cpp)
  kRadioTransmissions,
  kRadioDeliveries,
  kRadioDropsRf,
  kRadioDropsFault,
  // testbed (sim/testbed.cpp)
  kSimNetworkRestores,
  // trace sink health (obs/recorder.cpp)
  kTraceEventsDropped,
  // shard supervision (core/parallel.cpp): folded into each shard's
  // telemetry by the supervisor after the attempt loop settles
  kParallelShardFailures,
  kParallelShardRestarts,
  kParallelShardQuarantines,
  kParallelDeadlineCancels,
  // findings journal (store/journal.h via core wiring)
  kJournalAppends,
  kJournalDedupSkips,
  // campaign service control plane (src/svc): daemon-level registry only —
  // these tally scheduling/wire activity and must never enter per-shard
  // telemetry, where they would break byte-identity across --jobs values
  kSvcJobsSubmitted,
  kSvcJobsCompleted,
  kSvcJobsFailed,
  kSvcJobsCancelled,
  kSvcJobPauses,
  kSvcJobResumes,
  kSvcConnections,
  kSvcRequests,
  kSvcProtocolErrors,
  kSvcEventsStreamed,
  // gauges (pool totals are end-of-run levels published by campaign
  // teardown — the pool itself keeps plain counters to stay hook-free on
  // the per-packet path)
  kCampaignQueueLength,
  kCampaignBlacklistSize,
  kPoolBuffers,
  kPoolAcquires,
  kPoolReuses,
  // coverage-mode end-of-run levels (core/covfuzz.cpp)
  kCovfuzzCorpusSize,
  kCovfuzzEdgesHit,
  // service/executor levels (daemon-level registry only, like svc.*):
  // snapshots of Executor::global().stats() plus the job table's depth
  kSvcJobsRunning,
  kSvcJobsQueued,
  kExecutorWorkers,
  kExecutorJobsSubmitted,
  kExecutorJobsCompleted,
  kExecutorTasksRun,
  kExecutorTasksStolen,
  // histograms (virtual-time microseconds)
  kCampaignInjectionAckUs,
  kCampaignLivenessProbeUs,
  kCampaignRecoveryDowntimeUs,
  kResilienceBackoffUs,

  kMetricCount,
};

constexpr std::size_t kMetricCount = static_cast<std::size_t>(MetricId::kMetricCount);

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricInfo {
  const char* name;  // dotted, stable: "campaign.tests"
  MetricKind kind;
  const char* unit;  // "events", "frames", "us", ...
};

/// Static name/kind/unit for one metric id.
const MetricInfo& metric_info(MetricId id);

/// Histogram bucket upper bounds in microseconds of virtual time; the last
/// bucket is unbounded (+inf). Chosen to resolve the quantities the paper
/// cares about: ack turnarounds (sub-ms .. 100 ms), liveness probes
/// (100 ms .. 1 s) and outages (tens of seconds .. minutes).
inline constexpr std::array<std::uint64_t, 7> kHistogramBoundsUs = {
    100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000};
inline constexpr std::size_t kHistogramBuckets = kHistogramBoundsUs.size() + 1;

struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // microseconds
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// One shard's metrics. Single-writer by construction; see file comment.
class MetricsRegistry {
 public:
  void add(MetricId id, std::uint64_t delta = 1) {
    values_[static_cast<std::size_t>(id)] += delta;
  }
  void set(MetricId id, std::uint64_t value) { values_[static_cast<std::size_t>(id)] = value; }
  std::uint64_t value(MetricId id) const { return values_[static_cast<std::size_t>(id)]; }

  /// Records one histogram sample (virtual-time microseconds).
  void observe(MetricId id, std::uint64_t value_us);
  const HistogramData& histogram(MetricId id) const;

  /// Folds `other` into this registry: counters and gauges add, histogram
  /// cells add. Callers merge shards in ascending shard order purely for
  /// discipline — addition is commutative, but keeping one canonical order
  /// mirrors core/parallel's result merge and keeps audits simple.
  void merge(const MetricsRegistry& other);

  /// Deterministic JSON document (fixed key order, one key per line —
  /// friendly to `jq` and to byte-equality tests). `pretty` adds two-space
  /// indentation.
  std::string to_json() const;

  /// Human-readable end-of-run table: every non-zero metric with its unit,
  /// histograms summarized as count/mean/max-bucket.
  std::string summary_table() const;

 private:
  std::array<std::uint64_t, kMetricCount> values_{};
  /// Histogram payloads are stored sparsely by id; only ids whose kind is
  /// kHistogram are ever touched.
  std::array<HistogramData, kMetricCount> histograms_{};
};

}  // namespace zc::obs
