// The per-shard telemetry recorder and its ambient installation.
//
// A Recorder bundles one MetricsRegistry, one TraceRing, the virtual clock
// that stamps events, and the (shard id, campaign seed) identity carried
// on every serialized line. Exactly one shard owns a recorder; it is
// installed for the duration of that shard's campaign through a
// thread-local pointer (`ScopedRecorder`), which is the key design move:
//
//  * instrumentation sites anywhere in the stack (radio, sim, core) reach
//    telemetry through `obs::current()` without any constructor plumbing;
//  * a shard pool gets per-shard isolation for free — each worker thread
//    installs the recorder of the shard it is currently running, so
//    concurrent shards never share telemetry state and the hot path takes
//    no locks (lock-cheap by construction, not by clever locking);
//  * with no recorder installed every hook collapses to one thread-local
//    load and a branch, which is what keeps always-compiled telemetry
//    under the 3% budget bench/check_overhead.py enforces.
//
// After a run, `snapshot()` detaches a value-type Telemetry the merge
// layer (core/parallel.cpp) collects per shard and folds in shard order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zc::obs {

/// Detached end-of-run telemetry for one shard: safe to copy across the
/// pool boundary and to merge after the workers join.
struct Telemetry {
  bool collected = false;
  std::size_t shard_id = 0;
  std::uint64_t seed = 0;
  MetricsRegistry metrics;
  std::vector<TraceEvent> events;

  /// This shard's events as JSONL (see trace.h for the line shape).
  void append_jsonl(std::string& out) const { append_trace_jsonl(out, events, shard_id, seed); }
};

class Recorder {
 public:
  /// `clock` must outlive the recorder; `shard_id`/`seed` tag every
  /// serialized line of this shard's trace.
  Recorder(const EventScheduler& clock, std::size_t shard_id, std::uint64_t seed,
           std::size_t trace_capacity = TraceRing::kDefaultCapacity)
      : clock_(clock), shard_id_(shard_id), seed_(seed), trace_(trace_capacity) {}

  MetricsRegistry& metrics() { return metrics_; }
  TraceRing& trace() { return trace_; }

  void emit(TraceEventType type, std::int64_t a0 = 0, std::int64_t a1 = 0,
            std::int64_t a2 = 0, std::int64_t a3 = 0) {
    TraceEvent event;
    event.at = clock_.now();
    event.type = type;
    event.args = {a0, a1, a2, a3};
    trace_.push(event);
  }

  /// Detaches the run's telemetry. Folds the ring's drop counter into the
  /// metrics (`trace.events_dropped`) so the registry alone tells whether
  /// the trace is complete.
  Telemetry snapshot() const {
    Telemetry out;
    out.collected = true;
    out.shard_id = shard_id_;
    out.seed = seed_;
    out.metrics = metrics_;
    out.metrics.set(MetricId::kTraceEventsDropped, trace_.dropped());
    out.events = trace_.snapshot();
    return out;
  }

 private:
  const EventScheduler& clock_;
  std::size_t shard_id_;
  std::uint64_t seed_;
  MetricsRegistry metrics_;
  TraceRing trace_;
};

namespace detail {
inline thread_local Recorder* g_current = nullptr;
}

/// The recorder installed on this thread, or nullptr (telemetry off).
inline Recorder* current() { return detail::g_current; }

/// RAII installation of a recorder as this thread's ambient telemetry
/// target. Nests (the previous recorder is restored on destruction) so a
/// bench can wrap an instrumented bench harness around an instrumented
/// campaign without either clobbering the other.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder& recorder) : previous_(detail::g_current) {
    detail::g_current = &recorder;
  }
  ~ScopedRecorder() { detail::g_current = previous_; }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* previous_;
};

// --- hot-path hooks --------------------------------------------------------
// All of these are no-ops (one thread-local load + branch) when no
// recorder is installed.

inline void count(MetricId id, std::uint64_t delta = 1) {
  if (Recorder* r = current()) r->metrics().add(id, delta);
}

inline void gauge_set(MetricId id, std::uint64_t value) {
  if (Recorder* r = current()) r->metrics().set(id, value);
}

inline void observe(MetricId id, std::uint64_t value_us) {
  if (Recorder* r = current()) r->metrics().observe(id, value_us);
}

inline void emit(TraceEventType type, std::int64_t a0 = 0, std::int64_t a1 = 0,
                 std::int64_t a2 = 0, std::int64_t a3 = 0) {
  if (Recorder* r = current()) r->emit(type, a0, a1, a2, a3);
}

/// True when a recorder is installed — for sites that want to skip
/// assembling expensive event arguments entirely.
inline bool active() { return current() != nullptr; }

}  // namespace zc::obs
