#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace zc::obs {

namespace {

constexpr TraceEventInfo kEventInfo[kTraceEventTypes] = {
    {"probe_tx", {"probe", "cc", "dst", nullptr}},
    {"frame_rx", {"src", "header", "cc", nullptr}},
    {"cmdcl_validated", {"cc", nullptr, nullptr, nullptr}},
    {"mutation", {"cc", "cmd", "param0", "len"}},
    {"liveness_check", {"ok", "attempts", nullptr, nullptr}},
    {"recovery", {"stage", "downtime_us", "nop_probes", "soft_resets"}},
    {"bug", {"cc", "cmd", "kind", "bug_id"}},
    {"checkpoint", {"elapsed_us", "packets", "findings", nullptr}},
    {"shard_failure", {"shard_id", "attempts", "reason", nullptr}},
    {"shard_restart", {"shard_id", "restarts", "backoff_ms", "resumed"}},
    {"shard_quarantine", {"shard_id", "attempts", nullptr, nullptr}},
    {"journal_append", {"cc", "cmd", "bug_id", "duplicate"}},
    {"coverage_new", {"cc", "cmd", "new_edges", "corpus"}},
};

void append_i64(std::string& out, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

const TraceEventInfo& trace_event_info(TraceEventType type) {
  return kEventInfo[static_cast<std::size_t>(type)];
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {
  events_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceRing::push(const TraceEvent& event) {
  if (size_ < capacity_) {
    events_.push_back(event);
    ++size_;
    return;
  }
  // Full: overwrite the oldest retained event and advance the drop count.
  events_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // head_ is the oldest slot once the ring has wrapped; 0 before that.
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(head_ + i) % size_]);
  }
  return out;
}

void append_trace_jsonl(std::string& out, const std::vector<TraceEvent>& events,
                        std::size_t shard_id, std::uint64_t seed) {
  for (const TraceEvent& event : events) {
    const TraceEventInfo& info = kEventInfo[static_cast<std::size_t>(event.type)];
    out += "{\"t\":";
    append_u64(out, event.at);
    out += ",\"shard\":";
    append_u64(out, shard_id);
    out += ",\"seed\":";
    append_u64(out, seed);
    out += ",\"ev\":\"";
    out += info.name;
    out += '"';
    for (std::size_t i = 0; i < kTraceEventArgs; ++i) {
      if (info.fields[i] == nullptr) break;
      out += ",\"";
      out += info.fields[i];
      out += "\":";
      append_i64(out, event.args[i]);
    }
    out += "}\n";
  }
}

}  // namespace zc::obs
