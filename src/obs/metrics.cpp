#include "obs/metrics.h"

#include <cstdio>

namespace zc::obs {

namespace {

constexpr MetricInfo kInfo[kMetricCount] = {
    {"campaign.tests", MetricKind::kCounter, "tests"},
    {"campaign.findings", MetricKind::kCounter, "findings"},
    {"campaign.inconclusive", MetricKind::kCounter, "tests"},
    {"campaign.retried_injections", MetricKind::kCounter, "frames"},
    {"campaign.liveness_checks", MetricKind::kCounter, "probes"},
    {"campaign.liveness_failures", MetricKind::kCounter, "probes"},
    {"campaign.recoveries", MetricKind::kCounter, "episodes"},
    {"campaign.checkpoints", MetricKind::kCounter, "snapshots"},
    {"campaign.mutations", MetricKind::kCounter, "payloads"},
    {"campaign.dedup_hits", MetricKind::kCounter, "tests"},
    {"campaign.dedup_misses", MetricKind::kCounter, "tests"},
    {"campaign.oracle_sweeps", MetricKind::kCounter, "sweeps"},
    {"campaign.window_triages", MetricKind::kCounter, "episodes"},
    {"scanner.probes_tx", MetricKind::kCounter, "frames"},
    {"scanner.frames_sniffed", MetricKind::kCounter, "frames"},
    {"scanner.cmdcl_validated", MetricKind::kCounter, "classes"},
    {"resilience.backoffs", MetricKind::kCounter, "pauses"},
    {"vfuzz.packets_tx", MetricKind::kCounter, "frames"},
    {"vfuzz.dedup_skips", MetricKind::kCounter, "frames"},
    {"covfuzz.packets_tx", MetricKind::kCounter, "frames"},
    {"covfuzz.dedup_skips", MetricKind::kCounter, "frames"},
    {"covfuzz.corpus_admissions", MetricKind::kCounter, "payloads"},
    {"dongle.frames_tx", MetricKind::kCounter, "frames"},
    {"dongle.frames_rx", MetricKind::kCounter, "frames"},
    {"radio.transmissions", MetricKind::kCounter, "frames"},
    {"radio.deliveries", MetricKind::kCounter, "frames"},
    {"radio.drops_rf", MetricKind::kCounter, "frames"},
    {"radio.drops_fault", MetricKind::kCounter, "frames"},
    {"sim.network_restores", MetricKind::kCounter, "restores"},
    {"trace.events_dropped", MetricKind::kCounter, "events"},
    {"parallel.shard_failures", MetricKind::kCounter, "attempts"},
    {"parallel.shard_restarts", MetricKind::kCounter, "restarts"},
    {"parallel.shard_quarantines", MetricKind::kCounter, "shards"},
    {"parallel.deadline_cancels", MetricKind::kCounter, "cancels"},
    {"journal.appends", MetricKind::kCounter, "records"},
    {"journal.dedup_skips", MetricKind::kCounter, "records"},
    {"svc.jobs_submitted", MetricKind::kCounter, "jobs"},
    {"svc.jobs_completed", MetricKind::kCounter, "jobs"},
    {"svc.jobs_failed", MetricKind::kCounter, "jobs"},
    {"svc.jobs_cancelled", MetricKind::kCounter, "jobs"},
    {"svc.job_pauses", MetricKind::kCounter, "pauses"},
    {"svc.job_resumes", MetricKind::kCounter, "resumes"},
    {"svc.connections", MetricKind::kCounter, "connections"},
    {"svc.requests", MetricKind::kCounter, "requests"},
    {"svc.protocol_errors", MetricKind::kCounter, "requests"},
    {"svc.events_streamed", MetricKind::kCounter, "events"},
    {"campaign.queue_length", MetricKind::kGauge, "classes"},
    {"campaign.blacklist_size", MetricKind::kGauge, "signatures"},
    {"pool.buffers", MetricKind::kGauge, "buffers"},
    {"pool.acquires", MetricKind::kGauge, "buffers"},
    {"pool.reuses", MetricKind::kGauge, "buffers"},
    {"covfuzz.corpus_size", MetricKind::kGauge, "payloads"},
    {"covfuzz.edges_hit", MetricKind::kGauge, "edges"},
    {"svc.jobs_running", MetricKind::kGauge, "jobs"},
    {"svc.jobs_queued", MetricKind::kGauge, "jobs"},
    {"executor.workers", MetricKind::kGauge, "threads"},
    {"executor.jobs_submitted", MetricKind::kGauge, "jobs"},
    {"executor.jobs_completed", MetricKind::kGauge, "jobs"},
    {"executor.tasks_run", MetricKind::kGauge, "tasks"},
    {"executor.tasks_stolen", MetricKind::kGauge, "tasks"},
    {"campaign.injection_ack_us", MetricKind::kHistogram, "us"},
    {"campaign.liveness_probe_us", MetricKind::kHistogram, "us"},
    {"campaign.recovery_downtime_us", MetricKind::kHistogram, "us"},
    {"resilience.backoff_us", MetricKind::kHistogram, "us"},
};

std::size_t bucket_for(std::uint64_t value_us) {
  for (std::size_t i = 0; i < kHistogramBoundsUs.size(); ++i) {
    if (value_us <= kHistogramBoundsUs[i]) return i;
  }
  return kHistogramBuckets - 1;  // +inf bucket
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

const MetricInfo& metric_info(MetricId id) { return kInfo[static_cast<std::size_t>(id)]; }

void MetricsRegistry::observe(MetricId id, std::uint64_t value_us) {
  HistogramData& h = histograms_[static_cast<std::size_t>(id)];
  ++h.count;
  h.sum += value_us;
  ++h.buckets[bucket_for(value_us)];
}

const HistogramData& MetricsRegistry::histogram(MetricId id) const {
  return histograms_[static_cast<std::size_t>(id)];
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    values_[i] += other.values_[i];
    histograms_[i].count += other.histograms_[i].count;
    histograms_[i].sum += other.histograms_[i].sum;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      histograms_[i].buckets[b] += other.histograms_[i].buckets[b];
    }
  }
}

std::string MetricsRegistry::to_json() const {
  // Emission order is the MetricId declaration order: fixed at compile
  // time, so two registries with equal contents serialize to equal bytes.
  std::string out;
  out.reserve(2048);
  out += "{\n  \"zcover_metrics\": 1,\n  \"counters\": {\n";
  bool first = true;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (kInfo[i].kind != MetricKind::kCounter) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    \"";
    out += kInfo[i].name;
    out += "\": ";
    append_u64(out, values_[i]);
  }
  out += "\n  },\n  \"gauges\": {\n";
  first = true;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (kInfo[i].kind != MetricKind::kGauge) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    \"";
    out += kInfo[i].name;
    out += "\": ";
    append_u64(out, values_[i]);
  }
  out += "\n  },\n  \"histograms\": {\n";
  first = true;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    if (kInfo[i].kind != MetricKind::kHistogram) continue;
    if (!first) out += ",\n";
    first = false;
    const HistogramData& h = histograms_[i];
    out += "    \"";
    out += kInfo[i].name;
    out += "\": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (b > 0) out += ", ";
      append_u64(out, h.buckets[b]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::summary_table() const {
  std::string out = "telemetry summary\n";
  char line[160];
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const MetricInfo& info = kInfo[i];
    if (info.kind == MetricKind::kHistogram) {
      const HistogramData& h = histograms_[i];
      if (h.count == 0) continue;
      std::snprintf(line, sizeof(line), "  %-32s count=%llu mean=%.1f %s\n", info.name,
                    static_cast<unsigned long long>(h.count),
                    static_cast<double>(h.sum) / static_cast<double>(h.count), info.unit);
    } else {
      if (values_[i] == 0) continue;
      std::snprintf(line, sizeof(line), "  %-32s %llu %s\n", info.name,
                    static_cast<unsigned long long>(values_[i]), info.unit);
    }
    out += line;
  }
  return out;
}

}  // namespace zc::obs
