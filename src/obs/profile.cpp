#include "obs/profile.h"

#if defined(ZC_PROFILING)

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

namespace zc::obs {

namespace {

// Registration is rare (once per annotated scope per process) and guarded;
// measurement never touches this mutex.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<ProfileSite*>& registry() {
  static std::vector<ProfileSite*> sites;
  return sites;
}

}  // namespace

ProfileSite::ProfileSite(const char* name) : name_(name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().push_back(this);
}

bool profiling_enabled() { return true; }

std::string profile_report() {
  std::vector<ProfileSite*> sites;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    sites = registry();
  }
  std::erase_if(sites, [](const ProfileSite* s) { return s->calls() == 0; });
  if (sites.empty()) return {};
  std::sort(sites.begin(), sites.end(),
            [](const ProfileSite* a, const ProfileSite* b) { return a->nanos() > b->nanos(); });

  std::string out = "profile (wall clock, ZC_PROFILING build)\n";
  char line[160];
  for (const ProfileSite* site : sites) {
    const std::uint64_t calls = site->calls();
    const std::uint64_t nanos = site->nanos();
    std::snprintf(line, sizeof(line), "  %-28s %12llu calls  %10.2f ms  %8.1f ns/call\n",
                  site->name(), static_cast<unsigned long long>(calls),
                  static_cast<double>(nanos) / 1e6,
                  calls > 0 ? static_cast<double>(nanos) / static_cast<double>(calls) : 0.0);
    out += line;
  }
  return out;
}

void profile_reset() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  for (ProfileSite* site : registry()) site->reset();
}

}  // namespace zc::obs

#else  // !ZC_PROFILING

namespace zc::obs {

bool profiling_enabled() { return false; }
std::string profile_report() { return {}; }
void profile_reset() {}

}  // namespace zc::obs

#endif  // ZC_PROFILING
