// Scoped wall-clock profiling for the simulator's hot paths, behind the
// compile-time ZC_PROFILING flag (cmake -DZC_PROFILING=ON).
//
// When the flag is OFF — the default — ZC_PROF_SCOPE expands to nothing:
// zero code, zero data, zero steady-state cost. When ON, each annotated
// scope owns a lazily registered ProfileSite and accumulates call count
// and elapsed nanoseconds into relaxed atomics, so profiled shards can
// run concurrently without locks on the measurement path.
//
// Profiling measures host wall time, which is machine- and load-
// dependent; it is therefore reported separately (profile_report(), the
// CLI prints it to stderr) and deliberately kept OUT of the deterministic
// metrics/trace files — a profiled build still produces byte-identical
// m.json / t.jsonl. See docs/observability.md for build instructions and
// the list of annotated paths.
#pragma once

#include <string>

#if defined(ZC_PROFILING)
#include <atomic>
#include <chrono>
#include <cstdint>
#endif

namespace zc::obs {

/// True in ZC_PROFILING builds; lets callers decide whether printing the
/// (otherwise empty) report is worthwhile.
bool profiling_enabled();

/// Formatted per-site table (calls, total ms, ns/call), sorted by total
/// time descending. Empty string when no sites recorded anything.
std::string profile_report();

/// Zeroes every site's accumulators (between bench repetitions).
void profile_reset();

#if defined(ZC_PROFILING)

class ProfileSite {
 public:
  explicit ProfileSite(const char* name);

  void record(std::uint64_t ns) {
    calls_.fetch_add(1, std::memory_order_relaxed);
    nanos_.fetch_add(ns, std::memory_order_relaxed);
  }

  const char* name() const { return name_; }
  std::uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  std::uint64_t nanos() const { return nanos_.load(std::memory_order_relaxed); }
  void reset() {
    calls_.store(0, std::memory_order_relaxed);
    nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  const char* name_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> nanos_{0};
};

class ScopedProfileTimer {
 public:
  explicit ScopedProfileTimer(ProfileSite& site)
      : site_(site), start_(std::chrono::steady_clock::now()) {}
  ~ScopedProfileTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    site_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  ScopedProfileTimer(const ScopedProfileTimer&) = delete;
  ScopedProfileTimer& operator=(const ScopedProfileTimer&) = delete;

 private:
  ProfileSite& site_;
  std::chrono::steady_clock::time_point start_;
};

#define ZC_PROF_CONCAT_(a, b) a##b
#define ZC_PROF_CONCAT(a, b) ZC_PROF_CONCAT_(a, b)
/// Times the enclosing scope under `name` (a string literal). The site is
/// a function-local static: registration is thread-safe (magic static),
/// happens once, and costs nothing after that.
#define ZC_PROF_SCOPE(name)                                                   \
  static ::zc::obs::ProfileSite ZC_PROF_CONCAT(zc_prof_site_, __LINE__){name}; \
  ::zc::obs::ScopedProfileTimer ZC_PROF_CONCAT(zc_prof_timer_, __LINE__){      \
      ZC_PROF_CONCAT(zc_prof_site_, __LINE__)}

#else  // !ZC_PROFILING

#define ZC_PROF_SCOPE(name) \
  do {                      \
  } while (0)

#endif  // ZC_PROFILING

}  // namespace zc::obs
