// Structured event tracing: the campaign's qualitative telemetry surface.
//
// Instrumented code emits fixed-size `TraceEvent` records into a bounded
// ring buffer (one ring per shard, single-writer, no locks). Serialization
// to JSONL happens once, after the run: one JSON object per line with the
// event's virtual timestamp, the shard/seed identity, the event type and
// its type-specific numeric fields. Timestamps are monotonic sim-clock
// values, so a trace is a pure function of the seeds — byte-identical for
// any `--jobs` count once shards are serialized in shard order.
//
// Ring policy: when full, the newest event overwrites the oldest and a
// drop counter advances. The retained suffix is the most recent window —
// exactly the context an analyst wants around the last finding — and the
// counter (exported as metric `trace.events_dropped`) makes truncation
// explicit instead of silent.
//
// The full per-type field schema, with example lines and jq recipes, is in
// docs/observability.md.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace zc::obs {

/// Every traceable pipeline event. Names and per-type field names live in
/// `trace_event_info()`.
enum class TraceEventType : std::uint8_t {
  kProbeTx = 0,      // active probe left the dongle (NOP, state, NIF, validation)
  kFrameRx,          // MAC-valid frame reached the dongle inbox
  kCmdclValidated,   // validation sweep confirmed a command class responsive
  kMutation,         // PSM produced one test payload
  kLivenessCheck,    // NOP-ping oracle verdict
  kRecovery,         // watchdog episode completed
  kBug,              // Bug_Logs entry recorded (Algorithm 1)
  kCheckpoint,       // progress snapshot handed to the sink
  kShardFailure,     // shard attempt died (crash) or was cancelled (hang)
  kShardRestart,     // supervisor relaunched a failed/hung shard
  kShardQuarantine,  // shard exhausted its restart budget
  kJournalAppend,    // finding written durably to the journal
  kCoverageNew,      // covfuzz admitted a payload that grew the coverage map
  kEventTypeCount,
};

constexpr std::size_t kTraceEventTypes = static_cast<std::size_t>(TraceEventType::kEventTypeCount);
constexpr std::size_t kTraceEventArgs = 4;

struct TraceEventInfo {
  const char* name;                       // JSON "ev" value: "probe_tx", ...
  const char* fields[kTraceEventArgs];    // JSON keys; nullptr = unused slot
};

const TraceEventInfo& trace_event_info(TraceEventType type);

/// Probe flavors for kProbeTx's "probe" field.
enum class ProbeKind : std::uint64_t { kNop = 0, kState = 1, kNif = 2, kValidation = 3 };

/// One fixed-size trace record. Args are type-specific signed integers
/// (signed so kBug can carry `bug_id = -1` for unattributed findings);
/// unused slots stay zero and are not serialized.
struct TraceEvent {
  SimTime at = 0;
  TraceEventType type = TraceEventType::kProbeTx;
  std::array<std::int64_t, kTraceEventArgs> args{};
};

/// Bounded single-writer ring of TraceEvents.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  void push(const TraceEvent& event);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot once the ring has wrapped
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Serializes events as JSONL into `out`, one `{"t":..,"shard":..,
/// "seed":..,"ev":..,<fields>}` object per line. `shard` and `seed`
/// identify the emitting campaign on every line so merged multi-shard
/// files stay self-describing.
void append_trace_jsonl(std::string& out, const std::vector<TraceEvent>& events,
                        std::size_t shard_id, std::uint64_t seed);

}  // namespace zc::obs
