// XML exchange format for command-class definitions.
//
// ZCover's clustering step "references the Z-Wave specification and an XML
// file listing Z-Wave application layer CMDCL definitions" (§III-C1, the
// libzwaveip ZWave_custom_cmd_classes.xml). This module writes the built-in
// database in that shape and parses such files back, so users can extend
// the registry with vendor data without recompiling.
//
//   <zw_classes version="1">
//     <cmd_class key="0x9F" name="SECURITY_2" cluster="transport-encapsulation"
//                public="true">
//       <cmd key="0x01" name="NONCE_GET" direction="controlling">
//         <param name="SequenceNumber" type="byte" min="0x00" max="0xFF"/>
//       </cmd>
//     </cmd_class>
//   </zw_classes>
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "zwave/command_class.h"

namespace zc::zwave {

/// Owning (string-backed) mirror of the registry structures, produced by
/// the parser.
struct ParsedParam {
  std::string name;
  ParamType type = ParamType::kByte;
  std::uint8_t min = 0x00;
  std::uint8_t max = 0xFF;
};

struct ParsedCommand {
  CommandId id = 0;
  std::string name;
  CmdDirection direction = CmdDirection::kControlling;
  std::vector<ParsedParam> params;
};

struct ParsedClass {
  CommandClassId id = 0;
  std::string name;
  CcCluster cluster = CcCluster::kApplication;
  bool in_public_spec = true;
  std::vector<ParsedCommand> commands;
};

/// Renders one class / the whole database as XML.
std::string export_class_xml(const CommandClassSpec& spec);
std::string export_spec_xml(const SpecDatabase& db);

/// Parses an XML document. Fails on malformed tags, duplicate class keys,
/// or out-of-range attribute values.
Result<std::vector<ParsedClass>> parse_spec_xml(const std::string& xml);

/// Structural equality between a parsed class and a registry entry.
bool parsed_matches_spec(const ParsedClass& parsed, const CommandClassSpec& spec);

/// Cluster name <-> enum helpers used by the XML attributes.
Result<CcCluster> cluster_from_name(const std::string& name);
Result<ParamType> param_type_from_name(const std::string& name);

}  // namespace zc::zwave
