// S2 inclusion: the key-exchange (KEX) state machine that bootstraps the
// secure channel between a controller and a joining node.
//
// Message flow (both parties run a half of this machine):
//
//   including side                      joining side
//   --------------                      ------------
//   KEX_GET                 ->
//                           <-          KEX_REPORT  (schemes/profiles/keys)
//   KEX_SET                 ->
//                           <-          PUBLIC_KEY_REPORT (joining key)
//   PUBLIC_KEY_REPORT       ->
//        [both derive the ECDH shared secret -> CKDF -> S2Keys]
//                           <-          NETWORK_KEY_GET   (under new keys*)
//   NETWORK_KEY_REPORT      ->
//                           <-          NETWORK_KEY_VERIFY
//   TRANSFER_END            ->
//
// (*) In this model the post-ECDH leg is carried through the freshly
// derived S2 sessions, which is the property that matters: unlike S0's
// fixed temp key, a passive observer of the whole exchange cannot derive
// the session keys (tested in s2_inclusion_test.cpp).
//
// Errors follow the spec's KEX_FAIL codes: scheme mismatch, curve
// mismatch, key verification failure, timeout.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/x25519.h"
#include "zwave/security.h"

namespace zc::zwave {

/// KEX_FAIL reasons (spec-shaped subset).
enum class KexFail : std::uint8_t {
  kNone = 0,
  kScheme = 0x01,       // no common KEX scheme
  kCurve = 0x02,        // no common ECDH curve
  kAuth = 0x05,         // DSK PIN authentication failed
  kKeyVerify = 0x07,    // network-key verification failed
  kProtocol = 0x0A,     // message out of order / malformed
};

const char* kex_fail_name(KexFail reason);

/// What a state-machine step wants sent to the peer next.
struct InclusionStep {
  std::optional<AppPayload> send;  // next message for the peer (plaintext leg)
  bool done = false;               // the exchange concluded
  KexFail failure = KexFail::kNone;
};

/// Common result: established keys + the agreed SPAN seed.
struct EstablishedChannel {
  crypto::S2Keys keys{};
  Bytes span_seed;  // 32 bytes, mixed from both public keys
};

/// One side of the S2 inclusion exchange. Drive with `start()` (including
/// side only) and `on_message()`; when `established()` returns a channel,
/// construct S2Session from it.
class S2InclusionMachine {
 public:
  enum class Role { kIncluding, kJoining };

  S2InclusionMachine(Role role, crypto::X25519Key private_key);

  /// Authenticated inclusion: the installer typed the joining device's
  /// DSK PIN (the first label group); the including side verifies the
  /// received public key against it before trusting the exchange. Must be
  /// set before the peer key arrives.
  void require_dsk_pin(std::uint16_t pin) { expected_pin_ = pin; }

  /// Including side: produces the opening KEX_GET.
  InclusionStep start();

  /// Feeds a peer message; returns what to send next / completion / failure.
  InclusionStep on_message(const AppPayload& message);

  const std::optional<EstablishedChannel>& established() const { return channel_; }
  Role role() const { return role_; }

 private:
  enum class State {
    kIdle,
    kAwaitKexReport,   // including: sent KEX_GET
    kAwaitKexSet,      // joining: sent KEX_REPORT
    kAwaitPeerKey,     // either: waiting for the peer's PUBLIC_KEY_REPORT
    kAwaitKeyVerify,   // including: sent NETWORK_KEY_REPORT
    kAwaitTransferEnd, // joining: sent NETWORK_KEY_VERIFY
    kDone,
    kFailed,
  };

  InclusionStep fail(KexFail reason);
  void derive_channel(const crypto::X25519Key& peer_public);
  static AppPayload make(CommandId cmd, Bytes params);

  Role role_;
  crypto::X25519Key private_key_;
  crypto::X25519Key public_key_;
  State state_ = State::kIdle;
  std::optional<std::uint16_t> expected_pin_;
  std::optional<EstablishedChannel> channel_;
};

}  // namespace zc::zwave
