// Z-Wave frame integrity codes.
//
// Classic (R1/R2) frames end in an 8-bit XOR checksum seeded with 0xFF;
// R3 / 700-series frames use CRC-16-CCITT (also exposed by the CRC-16
// Encapsulation command class 0x56). Both are plain integrity codes with
// no cryptographic value — which is why the paper's "No Security" transport
// is trivially injectable (§II-A1).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace zc::zwave {

/// XOR checksum over `data`, seed 0xFF (ITU-T G.9959 R1/R2 frames).
std::uint8_t checksum8(ByteView data);

/// CRC-16-CCITT (polynomial 0x1021, init 0x1D0F as used by Z-Wave).
std::uint16_t crc16_ccitt(ByteView data);

}  // namespace zc::zwave
