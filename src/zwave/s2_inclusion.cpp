#include "zwave/s2_inclusion.h"

#include "crypto/cmac.h"

namespace zc::zwave {

namespace {

constexpr CommandId kKexGet = 0x04;
constexpr CommandId kKexReport = 0x05;
constexpr CommandId kKexSet = 0x06;
constexpr CommandId kKexFailCmd = 0x07;
constexpr CommandId kPublicKeyReport = 0x08;
constexpr CommandId kNetworkKeyGet = 0x09;
constexpr CommandId kNetworkKeyReport = 0x0A;
constexpr CommandId kNetworkKeyVerify = 0x0B;
constexpr CommandId kTransferEnd = 0x0C;

// Advertised capabilities: scheme 2 (the only S2 KEX scheme), curve 25519.
constexpr std::uint8_t kScheme = 0x02;
constexpr std::uint8_t kCurve25519 = 0x01;
constexpr std::uint8_t kKeysRequested = 0x87;  // S2 classes 0/1/2 + S0

}  // namespace

const char* kex_fail_name(KexFail reason) {
  switch (reason) {
    case KexFail::kNone: return "none";
    case KexFail::kScheme: return "KEX_FAIL_KEX_SCHEME";
    case KexFail::kCurve: return "KEX_FAIL_KEX_CURVES";
    case KexFail::kAuth: return "KEX_FAIL_AUTH";
    case KexFail::kKeyVerify: return "KEX_FAIL_KEY_VERIFY";
    case KexFail::kProtocol: return "KEX_FAIL_PROTOCOL";
  }
  return "?";
}

S2InclusionMachine::S2InclusionMachine(Role role, crypto::X25519Key private_key)
    : role_(role),
      private_key_(private_key),
      public_key_(crypto::x25519_public(private_key)) {
  state_ = role == Role::kIncluding ? State::kIdle : State::kAwaitKexSet;
}

AppPayload S2InclusionMachine::make(CommandId cmd, Bytes params) {
  AppPayload payload;
  payload.cmd_class = kSecurity2Class;
  payload.command = cmd;
  payload.params = std::move(params);
  return payload;
}

InclusionStep S2InclusionMachine::fail(KexFail reason) {
  state_ = State::kFailed;
  InclusionStep step;
  step.failure = reason;
  step.send = make(kKexFailCmd, {static_cast<std::uint8_t>(reason)});
  return step;
}

void S2InclusionMachine::derive_channel(const crypto::X25519Key& peer_public) {
  const crypto::S2Keys keys = s2_key_agreement(private_key_, peer_public);
  // SPAN seed: CMAC over both public keys under the nonce key — both sides
  // compute the identical 32 bytes without more round trips.
  Bytes both;
  ByteView a(public_key_.data(), public_key_.size());
  ByteView b(peer_public.data(), peer_public.size());
  if (std::lexicographical_compare(b.begin(), b.end(), a.begin(), a.end())) std::swap(a, b);
  both.insert(both.end(), a.begin(), a.end());
  both.insert(both.end(), b.begin(), b.end());
  const crypto::AesBlock half1 = crypto::aes_cmac(keys.nonce_key, both);
  Bytes seed(half1.begin(), half1.end());
  Bytes tagged = both;
  tagged.push_back(0x02);
  const crypto::AesBlock half2 = crypto::aes_cmac(keys.nonce_key, tagged);
  seed.insert(seed.end(), half2.begin(), half2.end());

  channel_ = EstablishedChannel{keys, std::move(seed)};
}

InclusionStep S2InclusionMachine::start() {
  InclusionStep step;
  if (role_ != Role::kIncluding || state_ != State::kIdle) {
    return fail(KexFail::kProtocol);
  }
  state_ = State::kAwaitKexReport;
  step.send = make(kKexGet, {});
  return step;
}

InclusionStep S2InclusionMachine::on_message(const AppPayload& message) {
  InclusionStep step;
  if (message.cmd_class != kSecurity2Class) return fail(KexFail::kProtocol);
  if (message.command == kKexFailCmd) {
    state_ = State::kFailed;
    step.failure = message.params.empty() ? KexFail::kProtocol
                                          : static_cast<KexFail>(message.params[0]);
    return step;
  }

  switch (state_) {
    case State::kAwaitKexSet:  // joining side
      if (message.command == kKexGet) {
        // Advertise capabilities; stay in this state until KEX_SET.
        step.send = make(kKexReport, {0x00, kScheme, kCurve25519, kKeysRequested});
        return step;
      }
      if (message.command == kKexSet) {
        if (message.params.size() < 4) return fail(KexFail::kProtocol);
        if ((message.params[1] & kScheme) == 0) return fail(KexFail::kScheme);
        if ((message.params[2] & kCurve25519) == 0) return fail(KexFail::kCurve);
        state_ = State::kAwaitPeerKey;
        Bytes params = {0x00};  // not the including node
        params.insert(params.end(), public_key_.begin(), public_key_.end());
        step.send = make(kPublicKeyReport, std::move(params));
        return step;
      }
      return fail(KexFail::kProtocol);

    case State::kAwaitKexReport:  // including side
      if (message.command != kKexReport || message.params.size() < 4) {
        return fail(KexFail::kProtocol);
      }
      if ((message.params[1] & kScheme) == 0) return fail(KexFail::kScheme);
      if ((message.params[2] & kCurve25519) == 0) return fail(KexFail::kCurve);
      state_ = State::kAwaitPeerKey;
      step.send = make(kKexSet, {0x00, kScheme, kCurve25519, kKeysRequested});
      return step;

    case State::kAwaitPeerKey: {
      if (message.command != kPublicKeyReport || message.params.size() != 33) {
        return fail(KexFail::kProtocol);
      }
      crypto::X25519Key peer{};
      std::copy(message.params.begin() + 1, message.params.end(), peer.begin());
      // Contributory-behavior check: a low-order / all-zero peer point
      // collapses the ECDH output to zero, letting a MITM force a known
      // "shared" secret. Reject any key whose DH result is zero.
      const crypto::X25519Key probe = crypto::x25519(private_key_, peer);
      bool all_zero = true;
      for (std::uint8_t b : probe) all_zero = all_zero && b == 0;
      if (all_zero) return fail(KexFail::kAuth);
      if (role_ == Role::kIncluding && expected_pin_.has_value()) {
        // Authenticated inclusion: the peer key's DSK PIN must match what
        // the installer typed off the device label.
        const std::uint16_t pin =
            static_cast<std::uint16_t>((peer[0] << 8) | peer[1]);
        if (pin != *expected_pin_) return fail(KexFail::kAuth);
      }
      derive_channel(peer);
      if (role_ == Role::kIncluding) {
        // The joining side asks for keys next; we just installed ours.
        state_ = State::kAwaitKeyVerify;
        Bytes params = {0x01};  // including node's key flag
        params.insert(params.end(), public_key_.begin(), public_key_.end());
        step.send = make(kPublicKeyReport, std::move(params));
      } else {
        state_ = State::kAwaitTransferEnd;
        // Key confirmation: CMAC(auth_key, "verify") proves both sides hold
        // the same derived keys without exposing them.
        const Bytes proof = crypto::aes_cmac_truncated(
            channel_->keys.auth_key, Bytes{'v', 'e', 'r', 'i', 'f', 'y'}, 8);
        step.send = make(kNetworkKeyVerify, proof);
      }
      return step;
    }

    case State::kAwaitKeyVerify: {  // including side
      if (message.command != kNetworkKeyVerify || !channel_.has_value()) {
        return fail(KexFail::kProtocol);
      }
      const bool verified = crypto::aes_cmac_verify(
          channel_->keys.auth_key, Bytes{'v', 'e', 'r', 'i', 'f', 'y'}, message.params);
      if (!verified) {
        channel_.reset();
        return fail(KexFail::kKeyVerify);
      }
      state_ = State::kDone;
      step.done = true;
      step.send = make(kTransferEnd, {0x01});
      return step;
    }

    case State::kAwaitTransferEnd:  // joining side
      if (message.command != kTransferEnd) return fail(KexFail::kProtocol);
      state_ = State::kDone;
      step.done = true;
      return step;

    case State::kIdle:
    case State::kDone:
    case State::kFailed:
      return fail(KexFail::kProtocol);
  }
  return fail(KexFail::kProtocol);
}

}  // namespace zc::zwave
