// S0 and S2 transport encapsulation (paper §II-A1).
//
// Both transports are implemented end-to-end with the real primitives from
// src/crypto so that the simulated controllers can *genuinely* distinguish
// authenticated from forged traffic:
//
// * S0 (class 0x98): AES-OFB payload encryption under Ke, 8-byte CBC-MAC
//   under Ka, receiver-supplied 8-byte nonces. Keys derive from the 16-byte
//   network key via fixed AES plaintexts — including the infamous all-zero
//   "temp key" used during inclusion, the MITM weakness the paper cites.
// * S2 (class 0x9F): ECDH(X25519)-agreed keys, AES-CTR payload encryption,
//   8-byte AES-CMAC tag, and a SPAN (synchronized pseudo-random nonce)
//   ratchet seeded from exchanged entropy.
//
// The sessions are deliberately stateful: SPAN desynchronization forces a
// NONCE_GET/NONCE_REPORT resync exactly like real S2 stacks.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/aes128.h"
#include "crypto/ctr.h"
#include "crypto/kdf.h"
#include "crypto/x25519.h"
#include "zwave/frame.h"
#include "zwave/types.h"

namespace zc::zwave {

constexpr CommandClassId kSecurity0Class = 0x98;
constexpr CommandClassId kSecurity2Class = 0x9F;
constexpr CommandId kS0MessageEncap = 0x81;
constexpr CommandId kS0NonceGet = 0x40;
constexpr CommandId kS0NonceReport = 0x80;
constexpr CommandId kS2MessageEncap = 0x03;
constexpr CommandId kS2NonceGet = 0x01;
constexpr CommandId kS2NonceReport = 0x02;

/// The all-zero key S0 uses while exchanging the real network key — the
/// fixed "temporary key" weakness of §II-A1.
crypto::AesKey s0_temp_key();

/// One S0 secure channel between two nodes.
class S0Session {
 public:
  explicit S0Session(const crypto::AesKey& network_key);

  /// The receiver side mints an 8-byte nonce (NONCE_REPORT payload) that
  /// the sender must echo into its next encapsulation.
  Bytes make_nonce(crypto::CtrDrbg& drbg);

  /// Encapsulates `inner` for src->dst using `receiver_nonce` (from the
  /// peer's NONCE_REPORT). Produces the 0x98/0x81 payload.
  AppPayload encapsulate(const AppPayload& inner, NodeId src, NodeId dst,
                         ByteView receiver_nonce, crypto::CtrDrbg& drbg) const;

  /// Decapsulates a 0x98/0x81 payload; `my_nonce` must be the nonce this
  /// side handed out. Verifies the CBC-MAC before releasing plaintext.
  Result<AppPayload> decapsulate(const AppPayload& outer, NodeId src, NodeId dst,
                                 ByteView my_nonce) const;

 private:
  crypto::S0Keys keys_;
};

/// One S2 secure channel between two nodes, post key-agreement.
///
/// Both endpoints construct their session from the same ECDH result and
/// then keep a shared SPAN ratchet; `encapsulate` on one side lines up
/// with `decapsulate` on the other as long as no frames are lost. On MAC
/// or sequence failure the receiver reports kAuthFailed and the caller is
/// expected to resynchronize via `resync`.
class S2Session {
 public:
  S2Session(const crypto::S2Keys& keys, ByteView span_seed32);

  /// Re-seeds the SPAN ratchet (NONCE_REPORT resync path).
  void resync(ByteView span_seed32);

  /// Encapsulates `inner` for src->dst as a 0x9F/0x03 payload.
  AppPayload encapsulate(const AppPayload& inner, HomeId home, NodeId src, NodeId dst);

  /// Verifies and decrypts a 0x9F/0x03 payload.
  Result<AppPayload> decapsulate(const AppPayload& outer, HomeId home, NodeId src, NodeId dst);

  std::uint8_t next_sequence() const { return sequence_; }

 private:
  crypto::AesBlock next_span_nonce();

  crypto::S2Keys keys_;
  crypto::CtrDrbg span_;
  std::uint8_t sequence_ = 0;
};

/// Runs the X25519 agreement + CKDF derivation both endpoints perform
/// during S2 inclusion, returning the shared key set.
crypto::S2Keys s2_key_agreement(const crypto::X25519Key& my_private,
                                const crypto::X25519Key& peer_public);

}  // namespace zc::zwave
