// Z-Wave MAC frame layout (paper Fig. 1) and the application-layer view.
//
//   H-ID(4) | SRC(1) | P1(1) | P2(1) | LEN(1) | DST(1) | payload... | CS(1)
//
// P1 carries the header type in its low nibble plus the ack-request (0x40)
// and routed (0x80) flags; P2 carries the sequence number in its low nibble.
// LEN is the total on-air frame length including the checksum.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "zwave/types.h"

namespace zc::zwave {

/// Frame integrity trailer. Classic R1/R2 channels end frames with the
/// 8-bit XOR checksum; the R3 (100 kbps, 700-series) channel uses
/// CRC-16-CCITT. Both peers of a channel agree on the mode out of band
/// (it is a property of the data rate, not of the frame).
enum class IntegrityMode : std::uint8_t { kChecksum8, kCrc16 };

/// Decoded MAC frame. Field names follow Fig. 1 of the paper.
struct MacFrame {
  HomeId home_id = 0;
  NodeId src = 0;
  HeaderType header = HeaderType::kSinglecast;
  bool ack_requested = false;
  bool routed = false;
  std::uint8_t sequence = 0;  // low nibble of P2
  NodeId dst = 0;
  Bytes payload;              // application payload: CMDCL CMD PARAM...

  /// Raw frame-control bytes as they appear on air.
  std::uint8_t p1() const;
  std::uint8_t p2() const { return sequence & 0x0F; }

  /// Serializes to on-air bytes with a correct LEN and integrity trailer.
  /// Returns an error when the payload would exceed the 64-byte MAC limit.
  Result<Bytes> encode(IntegrityMode mode = IntegrityMode::kChecksum8) const;

  /// Allocation-free variant: serializes into `out` (cleared first,
  /// capacity reused). Returns Errc::kOk, or Errc::kBadLength when the
  /// payload would exceed the 64-byte MAC limit (out is left empty). The
  /// injection hot path keeps one scratch Bytes per sender so steady-state
  /// encoding never touches the heap.
  Errc encode_into(Bytes& out, IntegrityMode mode = IntegrityMode::kChecksum8) const;

  /// Serializes without validity enforcement and with explicit LEN/CS
  /// values — used by fuzzers and tests to produce deliberately broken
  /// frames. `len_override`/`cs_override` of nullopt mean "compute
  /// correctly".
  Bytes encode_raw(std::optional<std::uint8_t> len_override = std::nullopt,
                   std::optional<std::uint8_t> cs_override = std::nullopt) const;

  /// Allocation-free encode_raw: writes into `out` (cleared, capacity
  /// reused).
  void encode_raw_into(Bytes& out,
                       std::optional<std::uint8_t> len_override = std::nullopt,
                       std::optional<std::uint8_t> cs_override = std::nullopt) const;

  /// One-line human-readable rendering for logs.
  std::string describe() const;
};

/// Parses and validates on-air bytes. Rejects truncated buffers, LEN
/// mismatches and checksum failures — the controller's "basic checks" that
/// mutated packets must survive (paper §II-C).
Result<MacFrame> decode_frame(ByteView raw,
                              IntegrityMode mode = IntegrityMode::kChecksum8);

/// Allocation-free variant for the receive hot path: parses into `out`
/// (whose payload buffer's capacity is reused across frames) and returns a
/// bare error code — rejected frames are the *common* case under fuzzing,
/// so this path builds no error strings. `out` is unspecified on failure.
Errc decode_frame_into(ByteView raw, MacFrame& out,
                       IntegrityMode mode = IntegrityMode::kChecksum8);

/// Application-layer view of a payload: CMDCL at position 0, CMD at
/// position 1, PARAMs from position 2 (paper Fig. 6).
struct AppPayload {
  CommandClassId cmd_class = 0;
  CommandId command = 0;
  Bytes params;

  Bytes encode() const;
  /// Allocation-free encode: appends CMDCL CMD PARAM... into `out`
  /// (cleared, capacity reused).
  void encode_into(Bytes& out) const;
  std::string describe() const;
};

/// Splits a payload into the hierarchical application view. A payload needs
/// at least the CMDCL byte; a lone CMDCL is legal (command defaults to 0).
Result<AppPayload> decode_app_payload(ByteView payload);

/// Convenience builder for a singlecast data frame.
MacFrame make_singlecast(HomeId home, NodeId src, NodeId dst, const AppPayload& app,
                         std::uint8_t sequence = 0, bool ack_requested = true);

/// Builds the MAC-layer acknowledgment for a received frame.
MacFrame make_ack(const MacFrame& received, NodeId self);

}  // namespace zc::zwave
