#include "zwave/frame.h"

#include <cstdio>

#include "zwave/checksum.h"

namespace zc::zwave {

std::uint8_t MacFrame::p1() const {
  std::uint8_t value = static_cast<std::uint8_t>(header) & 0x0F;
  if (ack_requested) value |= 0x40;
  if (routed) value |= 0x80;
  return value;
}

void MacFrame::encode_raw_into(Bytes& out, std::optional<std::uint8_t> len_override,
                               std::optional<std::uint8_t> cs_override) const {
  out.clear();
  out.reserve(kMacHeaderSize + payload.size() + kChecksumSize);
  write_be32(out, home_id);
  out.push_back(src);
  out.push_back(p1());
  out.push_back(p2());
  const std::size_t total = kMacHeaderSize + payload.size() + kChecksumSize;
  out.push_back(len_override.value_or(static_cast<std::uint8_t>(total)));
  out.push_back(dst);
  out.insert(out.end(), payload.begin(), payload.end());
  out.push_back(cs_override.value_or(checksum8(out)));
}

Bytes MacFrame::encode_raw(std::optional<std::uint8_t> len_override,
                           std::optional<std::uint8_t> cs_override) const {
  Bytes out;
  encode_raw_into(out, len_override, cs_override);
  return out;
}

Errc MacFrame::encode_into(Bytes& out, IntegrityMode mode) const {
  out.clear();
  const std::size_t trailer = mode == IntegrityMode::kCrc16 ? 2u : kChecksumSize;
  const std::size_t total = kMacHeaderSize + payload.size() + trailer;
  if (total > kMaxMacFrame) return Errc::kBadLength;
  if (mode == IntegrityMode::kChecksum8) {
    encode_raw_into(out);
    return Errc::kOk;
  }
  // R3 framing: same header, 2-byte CRC-16-CCITT trailer.
  out.reserve(total);
  write_be32(out, home_id);
  out.push_back(src);
  out.push_back(p1());
  out.push_back(p2());
  out.push_back(static_cast<std::uint8_t>(total));
  out.push_back(dst);
  out.insert(out.end(), payload.begin(), payload.end());
  write_be16(out, crc16_ccitt(out));
  return Errc::kOk;
}

Result<Bytes> MacFrame::encode(IntegrityMode mode) const {
  Bytes out;
  const Errc code = encode_into(out, mode);
  if (code != Errc::kOk) {
    const std::size_t trailer = mode == IntegrityMode::kCrc16 ? 2u : kChecksumSize;
    const std::size_t total = kMacHeaderSize + payload.size() + trailer;
    return Error{Errc::kBadLength,
                 "frame would be " + std::to_string(total) + " bytes; MAC limit is 64"};
  }
  return out;
}

std::string MacFrame::describe() const {
  char head[96];
  std::snprintf(head, sizeof(head), "%s home=%08X src=%02X dst=%02X seq=%u%s%s payload=",
                header_type_name(header), home_id, src, dst, sequence,
                ack_requested ? " ack-req" : "", routed ? " routed" : "");
  return std::string(head) + to_hex_spaced(payload);
}

Errc decode_frame_into(ByteView raw, MacFrame& out, IntegrityMode mode) {
  const std::size_t trailer = mode == IntegrityMode::kCrc16 ? 2u : kChecksumSize;
  if (raw.size() < kMacHeaderSize + trailer) return Errc::kTruncated;
  if (raw.size() > kMaxMacFrame) return Errc::kBadLength;
  const std::uint8_t len = raw[7];
  if (len != raw.size()) return Errc::kBadLength;
  if (mode == IntegrityMode::kCrc16) {
    const std::uint16_t expected = crc16_ccitt(raw.subspan(0, raw.size() - 2));
    if (expected != read_be16(raw, raw.size() - 2)) return Errc::kBadChecksum;
  } else {
    const std::uint8_t expected_cs = checksum8(raw.subspan(0, raw.size() - 1));
    if (expected_cs != raw[raw.size() - 1]) return Errc::kBadChecksum;
  }

  out.home_id = read_be32(raw, 0);
  out.src = raw[4];
  const std::uint8_t p1 = raw[5];
  const std::uint8_t type_nibble = p1 & 0x0F;
  switch (type_nibble) {
    case 0x1: out.header = HeaderType::kSinglecast; break;
    case 0x2: out.header = HeaderType::kMulticast; break;
    case 0x3: out.header = HeaderType::kAck; break;
    case 0x8: out.header = HeaderType::kRouted; break;
    default: return Errc::kBadField;
  }
  out.ack_requested = (p1 & 0x40) != 0;
  out.routed = (p1 & 0x80) != 0;
  out.sequence = raw[6] & 0x0F;
  out.dst = raw[8];
  out.payload.assign(raw.begin() + kMacHeaderSize,
                     raw.end() - static_cast<std::ptrdiff_t>(trailer));
  return Errc::kOk;
}

Result<MacFrame> decode_frame(ByteView raw, IntegrityMode mode) {
  MacFrame frame;
  const Errc code = decode_frame_into(raw, frame, mode);
  switch (code) {
    case Errc::kOk: return frame;
    case Errc::kTruncated:
      return Error{Errc::kTruncated, "frame of " + std::to_string(raw.size()) +
                                         " bytes is shorter than header"};
    case Errc::kBadLength:
      if (raw.size() > kMaxMacFrame) {
        return Error{Errc::kBadLength, "frame exceeds 64-byte MAC limit"};
      }
      return Error{Errc::kBadLength, "LEN field " + std::to_string(raw[7]) +
                                         " != physical size " + std::to_string(raw.size())};
    case Errc::kBadChecksum:
      return Error{Errc::kBadChecksum,
                   mode == IntegrityMode::kCrc16 ? "CRC-16 mismatch" : "CS-8 mismatch"};
    case Errc::kBadField:
      return Error{Errc::kBadField, "unknown header type nibble " +
                                        std::to_string(raw[5] & 0x0F)};
    default: return Error{code, "frame rejected"};
  }
}

void AppPayload::encode_into(Bytes& out) const {
  out.clear();
  out.reserve(2 + params.size());
  out.push_back(cmd_class);
  out.push_back(command);
  out.insert(out.end(), params.begin(), params.end());
}

Bytes AppPayload::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

std::string AppPayload::describe() const {
  char head[40];
  std::snprintf(head, sizeof(head), "cmdcl=%02X cmd=%02X params=", cmd_class, command);
  return std::string(head) + to_hex_spaced(params);
}

Result<AppPayload> decode_app_payload(ByteView payload) {
  if (payload.empty()) {
    return Error{Errc::kTruncated, "empty application payload"};
  }
  AppPayload app;
  app.cmd_class = payload[0];
  if (payload.size() >= 2) app.command = payload[1];
  if (payload.size() > 2) app.params.assign(payload.begin() + 2, payload.end());
  return app;
}

MacFrame make_singlecast(HomeId home, NodeId src, NodeId dst, const AppPayload& app,
                         std::uint8_t sequence, bool ack_requested) {
  MacFrame frame;
  frame.home_id = home;
  frame.src = src;
  frame.dst = dst;
  frame.header = HeaderType::kSinglecast;
  frame.ack_requested = ack_requested;
  frame.sequence = sequence & 0x0F;
  frame.payload = app.encode();
  return frame;
}

MacFrame make_ack(const MacFrame& received, NodeId self) {
  MacFrame ack;
  ack.home_id = received.home_id;
  ack.src = self;
  ack.dst = received.src;
  ack.header = HeaderType::kAck;
  ack.ack_requested = false;
  ack.sequence = received.sequence;
  return ack;
}

}  // namespace zc::zwave
