// Transport Service (command class 0x55): segmentation and reassembly of
// datagrams larger than the 64-byte MAC frame.
//
// Segment layout used here (1-byte fields; Z-Wave datagrams are small):
//   FIRST_SEGMENT      (0xC0): [DatagramSize, SessionID, payload...]
//   SUBSEQUENT_SEGMENT (0xE0): [DatagramSize, SessionID, Offset, payload...]
//   SEGMENT_REQUEST    (0xC8): [SessionID, Offset]       (receiver -> sender)
//   SEGMENT_COMPLETE   (0xE8): [SessionID]               (receiver -> sender)
//   SEGMENT_WAIT       (0xF0): [PendingSegments]         (receiver busy)
//
// The reassembler tolerates out-of-order and duplicated segments, bounds
// per-session buffers, and expires stale sessions — the robustness edges a
// fuzzer pokes hardest.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "zwave/frame.h"

namespace zc::zwave {

constexpr CommandClassId kTransportServiceClass = 0x55;
constexpr CommandId kTsFirstSegment = 0xC0;
constexpr CommandId kTsSegmentRequest = 0xC8;
constexpr CommandId kTsSubsequentSegment = 0xE0;
constexpr CommandId kTsSegmentComplete = 0xE8;
constexpr CommandId kTsSegmentWait = 0xF0;

/// Splits `datagram` into Transport Service segments that each fit a MAC
/// frame with `max_segment_payload` data bytes per segment.
std::vector<AppPayload> segment_datagram(ByteView datagram, std::uint8_t session_id,
                                         std::size_t max_segment_payload = 40);

/// What the reassembler wants transmitted back after a segment arrives.
struct ReassemblyReaction {
  std::optional<AppPayload> reply;   // SEGMENT_REQUEST / SEGMENT_COMPLETE
  std::optional<Bytes> completed;    // full datagram, when done
};

/// Bounds on the reassembler's buffering.
struct ReassemblyLimits {
  std::size_t max_sessions = 4;
  std::size_t max_datagram = 200;
  SimTime session_timeout = 2 * kSecond;
};

class TransportReassembler {
 public:
  explicit TransportReassembler(ReassemblyLimits limits = ReassemblyLimits())
      : limits_(limits) {}

  /// Feeds one 0x55 segment received from `src` at virtual time `now`.
  /// Malformed segments yield an error and leave sessions untouched.
  Result<ReassemblyReaction> feed(const AppPayload& segment, NodeId src, SimTime now);

  std::size_t open_sessions() const { return sessions_.size(); }

 private:
  struct Session {
    std::size_t datagram_size = 0;
    Bytes data;
    std::vector<bool> received;
    SimTime last_activity = 0;
  };

  void expire_stale(SimTime now);
  static AppPayload make_reply(CommandId cmd, Bytes params);

  ReassemblyLimits limits_;
  std::map<std::pair<NodeId, std::uint8_t>, Session> sessions_;
};

}  // namespace zc::zwave
