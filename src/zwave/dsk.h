// DSK (Device-Specific Key) handling for S2 authenticated inclusion.
//
// Every S2 device ships with a 16-byte key printed on its label as eight
// groups of five decimal digits ("34028-23669-..."), each group the
// decimal rendering of a big-endian 16-bit word. The installer types the
// first group as a PIN to authenticate the public key during inclusion,
// and the Node Provisioning command class (0x78) ships whole DSKs in
// SmartStart lists.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "crypto/x25519.h"

namespace zc::zwave {

using Dsk = std::array<std::uint8_t, 16>;

/// Renders the label text: "NNNNN-NNNNN-..." (8 groups, zero-padded).
std::string format_dsk(const Dsk& dsk);

/// Parses label text back; tolerates spaces around dashes. Returns
/// std::nullopt on anything but 8 in-range groups.
std::optional<Dsk> parse_dsk(const std::string& text);

/// The DSK of an S2 device is the leading 16 bytes of its public key.
Dsk dsk_from_public_key(const crypto::X25519Key& public_key);

/// The 5-digit installer PIN (first group) used to authenticate inclusion.
std::uint16_t dsk_pin(const Dsk& dsk);

}  // namespace zc::zwave
