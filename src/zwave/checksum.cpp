#include "zwave/checksum.h"

namespace zc::zwave {

std::uint8_t checksum8(ByteView data) {
  std::uint8_t cs = 0xFF;
  for (std::uint8_t b : data) cs ^= b;
  return cs;
}

std::uint16_t crc16_ccitt(ByteView data) {
  std::uint16_t crc = 0x1D0F;
  for (std::uint8_t b : data) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

}  // namespace zc::zwave
