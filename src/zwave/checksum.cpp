#include "zwave/checksum.h"

#include <cstring>

namespace zc::zwave {

std::uint8_t checksum8(ByteView data) {
  // Single pass over the raw pointer range, folding eight bytes per step:
  // XOR is byte-order-free, so a word-wide accumulator collapsed to its
  // bytes at the end equals the byte-at-a-time scan.
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t acc = 0;
  for (; n >= 8; p += 8, n -= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    acc ^= word;
  }
  acc ^= acc >> 32;
  acc ^= acc >> 16;
  acc ^= acc >> 8;
  std::uint8_t cs = static_cast<std::uint8_t>(0xFF ^ acc);
  while (n-- > 0) cs ^= *p++;
  return cs;
}

std::uint16_t crc16_ccitt(ByteView data) {
  std::uint16_t crc = 0x1D0F;
  for (std::uint8_t b : data) {
    crc ^= static_cast<std::uint16_t>(b) << 8;
    for (int i = 0; i < 8; ++i) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

}  // namespace zc::zwave
