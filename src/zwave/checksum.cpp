#include "zwave/checksum.h"

#include <array>
#include <cstring>

namespace zc::zwave {

namespace {

/// Per-byte CRC-16-CCITT folding table: row b = the CRC register after
/// feeding byte b through the eight-shift reference loop from zero. One
/// lookup folds a whole byte per step instead of eight bit tests —
/// byte-identical to the bit-serial loop by construction.
constexpr std::array<std::uint16_t, 256> build_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (unsigned b = 0; b < 256; ++b) {
    std::uint16_t crc = static_cast<std::uint16_t>(b << 8);
    for (int i = 0; i < 8; ++i) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
    table[b] = crc;
  }
  return table;
}

constexpr std::array<std::uint16_t, 256> kCrc16Table = build_crc16_table();

}  // namespace

std::uint8_t checksum8(ByteView data) {
  // Single pass over the raw pointer range: XOR is byte-order-free, so
  // wide accumulators collapsed to their bytes at the end equal the
  // byte-at-a-time scan. Four independent 64-bit lanes (32 bytes per step)
  // keep the XOR chains off each other's critical path; an 8-byte loop
  // drains the middle and a byte loop the tail.
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  for (; n >= 32; p += 32, n -= 32) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, p, 8);
    std::memcpy(&w1, p + 8, 8);
    std::memcpy(&w2, p + 16, 8);
    std::memcpy(&w3, p + 24, 8);
    acc0 ^= w0;
    acc1 ^= w1;
    acc2 ^= w2;
    acc3 ^= w3;
  }
  std::uint64_t acc = (acc0 ^ acc1) ^ (acc2 ^ acc3);
  for (; n >= 8; p += 8, n -= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    acc ^= word;
  }
  acc ^= acc >> 32;
  acc ^= acc >> 16;
  acc ^= acc >> 8;
  std::uint8_t cs = static_cast<std::uint8_t>(0xFF ^ acc);
  while (n-- > 0) cs ^= *p++;
  return cs;
}

std::uint16_t crc16_ccitt(ByteView data) {
  std::uint16_t crc = 0x1D0F;
  for (std::uint8_t b : data) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kCrc16Table[((crc >> 8) ^ b) & 0xFF]);
  }
  return crc;
}

}  // namespace zc::zwave
