#include "zwave/routing.h"

#include <algorithm>

namespace zc::zwave {

Bytes RouteHeader::encode() const {
  Bytes out;
  out.reserve(2 + repeaters.size());
  out.push_back(response ? 0x01 : 0x00);
  out.push_back(static_cast<std::uint8_t>((hop_index << 4) |
                                          (repeaters.size() & 0x0F)));
  out.insert(out.end(), repeaters.begin(), repeaters.end());
  return out;
}

RouteHeader RouteHeader::reversed() const {
  RouteHeader back;
  back.response = !response;
  back.hop_index = 0;
  back.repeaters.assign(repeaters.rbegin(), repeaters.rend());
  return back;
}

Result<RoutedPayload> split_routed_payload(ByteView payload) {
  if (payload.size() < 2) {
    return Error{Errc::kTruncated, "routed payload shorter than its header"};
  }
  const std::uint8_t status = payload[0];
  if (status > 0x01) {
    return Error{Errc::kBadField, "unknown route status byte"};
  }
  const std::uint8_t hop = payload[1] >> 4;
  const std::size_t count = payload[1] & 0x0F;
  if (count == 0 || count > kMaxRepeaters) {
    return Error{Errc::kBadField, "repeater count out of range"};
  }
  if (hop > count) {
    return Error{Errc::kBadField, "hop index beyond repeater list"};
  }
  if (payload.size() < 2 + count) {
    return Error{Errc::kTruncated, "repeater list truncated"};
  }

  RoutedPayload out;
  out.route.response = (status & 0x01) != 0;
  out.route.hop_index = hop;
  out.route.repeaters.assign(payload.begin() + 2, payload.begin() + 2 + static_cast<std::ptrdiff_t>(count));
  out.app_payload.assign(payload.begin() + 2 + static_cast<std::ptrdiff_t>(count), payload.end());
  return out;
}

MacFrame make_routed_singlecast(HomeId home, NodeId src, NodeId dst,
                                const RouteHeader& route, const AppPayload& app,
                                std::uint8_t sequence, bool ack_requested) {
  MacFrame frame;
  frame.home_id = home;
  frame.src = src;
  frame.dst = dst;
  frame.header = HeaderType::kSinglecast;
  frame.routed = true;
  frame.ack_requested = ack_requested;
  frame.sequence = sequence & 0x0F;
  frame.payload = route.encode();
  const Bytes inner = app.encode();
  frame.payload.insert(frame.payload.end(), inner.begin(), inner.end());
  return frame;
}

}  // namespace zc::zwave
