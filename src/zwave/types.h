// Core Z-Wave protocol types shared across the stack.
#pragma once

#include <cstdint>
#include <string>

namespace zc::zwave {

/// 4-byte network identifier, assigned by the primary controller.
using HomeId = std::uint32_t;

/// 1-byte node identifier. 0x01 is conventionally the primary controller;
/// 0xFF is the broadcast destination.
using NodeId = std::uint8_t;

constexpr NodeId kControllerNodeId = 0x01;
constexpr NodeId kBroadcastNodeId = 0xFF;

/// 1-byte command class identifier (the "CMDCL" field of Fig. 1).
using CommandClassId = std::uint8_t;

/// 1-byte command identifier within a command class.
using CommandId = std::uint8_t;

/// MAC header type carried in frame-control byte P1 (ITU-T G.9959 §8.1.3).
enum class HeaderType : std::uint8_t {
  kSinglecast = 0x1,
  kMulticast = 0x2,
  kAck = 0x3,
  kRouted = 0x8,
};

const char* header_type_name(HeaderType type);

/// Transport security level of a data exchange (§II-A1 of the paper).
enum class SecurityLevel : std::uint8_t {
  kNone = 0,  // checksum only; legacy devices
  kS0 = 1,    // AES-128 OFB + CBC-MAC, fixed temp key during exchange
  kS2 = 2,    // ECDH key agreement + AES-CMAC authentication
};

const char* security_level_name(SecurityLevel level);

/// Z-Wave RF region/channel configuration (passive scanner setup, Fig. 4).
enum class RfRegion : std::uint8_t {
  kEu868 = 0,  // 868.42 MHz
  kUs908 = 1,  // 908.42 MHz
  kAnz921 = 2, // 921.42 MHz
};

/// Center frequency in kHz for a region.
std::uint32_t rf_region_khz(RfRegion region);
const char* rf_region_name(RfRegion region);

/// Maximum size of a Z-Wave MAC frame on air (paper §II-A).
constexpr std::size_t kMaxMacFrame = 64;

/// Fixed header: H-ID(4) SRC(1) P1(1) P2(1) LEN(1) DST(1)  (Fig. 1).
constexpr std::size_t kMacHeaderSize = 9;

/// Trailing CS-8 checksum.
constexpr std::size_t kChecksumSize = 1;

/// Maximum application payload an unencapsulated frame can carry.
constexpr std::size_t kMaxApplicationPayload =
    kMaxMacFrame - kMacHeaderSize - kChecksumSize;

inline const char* header_type_name(HeaderType type) {
  switch (type) {
    case HeaderType::kSinglecast: return "singlecast";
    case HeaderType::kMulticast: return "multicast";
    case HeaderType::kAck: return "ack";
    case HeaderType::kRouted: return "routed";
  }
  return "?";
}

inline const char* security_level_name(SecurityLevel level) {
  switch (level) {
    case SecurityLevel::kNone: return "None";
    case SecurityLevel::kS0: return "S0";
    case SecurityLevel::kS2: return "S2";
  }
  return "?";
}

inline std::uint32_t rf_region_khz(RfRegion region) {
  switch (region) {
    case RfRegion::kEu868: return 868420;
    case RfRegion::kUs908: return 908420;
    case RfRegion::kAnz921: return 921420;
  }
  return 0;
}

inline const char* rf_region_name(RfRegion region) {
  switch (region) {
    case RfRegion::kEu868: return "EU-868.42MHz";
    case RfRegion::kUs908: return "US-908.42MHz";
    case RfRegion::kAnz921: return "ANZ-921.42MHz";
  }
  return "?";
}

}  // namespace zc::zwave
