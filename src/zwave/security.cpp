#include "zwave/security.h"

#include <algorithm>
#include <cstring>

#include "crypto/cmac.h"

namespace zc::zwave {

namespace {

constexpr std::size_t kNonceSize = 8;
constexpr std::size_t kMacSize = 8;

/// AES-CBC-MAC with explicit IV (the S0 authentication primitive; S0
/// predates CMAC and uses plain CBC-MAC over padded data).
Bytes cbc_mac8(const crypto::AesKey& key, const crypto::AesBlock& iv, ByteView data) {
  const crypto::Aes128 cipher(key);
  crypto::AesBlock acc = iv;
  cipher.encrypt_block(acc);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk = std::min(crypto::kAesBlockSize, data.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) acc[i] ^= data[offset + i];
    cipher.encrypt_block(acc);
    offset += chunk;
  }
  return Bytes(acc.begin(), acc.begin() + kMacSize);
}

crypto::AesBlock make_iv(ByteView sender_nonce, ByteView receiver_nonce) {
  crypto::AesBlock iv{};
  std::copy_n(sender_nonce.begin(), kNonceSize, iv.begin());
  std::copy_n(receiver_nonce.begin(), kNonceSize, iv.begin() + kNonceSize);
  return iv;
}

}  // namespace

crypto::AesKey s0_temp_key() { return crypto::AesKey{}; }

S0Session::S0Session(const crypto::AesKey& network_key)
    : keys_(crypto::derive_s0_keys(network_key)) {}

Bytes S0Session::make_nonce(crypto::CtrDrbg& drbg) { return drbg.generate(kNonceSize); }

AppPayload S0Session::encapsulate(const AppPayload& inner, NodeId src, NodeId dst,
                                  ByteView receiver_nonce, crypto::CtrDrbg& drbg) const {
  const Bytes sender_nonce = drbg.generate(kNonceSize);
  const crypto::AesBlock iv = make_iv(sender_nonce, receiver_nonce);

  const Bytes plaintext = inner.encode();
  const Bytes ciphertext = crypto::aes_ofb_crypt(keys_.enc_key, iv, plaintext);

  // Authenticated data: security header, addressing, length, ciphertext.
  Bytes auth;
  auth.push_back(kS0MessageEncap);
  auth.push_back(src);
  auth.push_back(dst);
  auth.push_back(static_cast<std::uint8_t>(ciphertext.size()));
  auth.insert(auth.end(), ciphertext.begin(), ciphertext.end());
  const Bytes mac = cbc_mac8(keys_.auth_key, iv, auth);

  AppPayload outer;
  outer.cmd_class = kSecurity0Class;
  outer.command = kS0MessageEncap;
  outer.params.reserve(kNonceSize + ciphertext.size() + 1 + kMacSize);
  outer.params.insert(outer.params.end(), sender_nonce.begin(), sender_nonce.end());
  outer.params.insert(outer.params.end(), ciphertext.begin(), ciphertext.end());
  outer.params.push_back(receiver_nonce[0]);  // nonce identifier
  outer.params.insert(outer.params.end(), mac.begin(), mac.end());
  return outer;
}

Result<AppPayload> S0Session::decapsulate(const AppPayload& outer, NodeId src, NodeId dst,
                                          ByteView my_nonce) const {
  if (outer.cmd_class != kSecurity0Class || outer.command != kS0MessageEncap) {
    return Error{Errc::kBadField, "not an S0 message encapsulation"};
  }
  if (outer.params.size() < kNonceSize + 1 + 1 + kMacSize) {
    return Error{Errc::kTruncated, "S0 encapsulation too short"};
  }
  const ByteView params(outer.params);
  const ByteView sender_nonce = params.subspan(0, kNonceSize);
  const std::size_t ct_len = params.size() - kNonceSize - 1 - kMacSize;
  const ByteView ciphertext = params.subspan(kNonceSize, ct_len);
  const std::uint8_t nonce_id = params[kNonceSize + ct_len];
  const ByteView mac = params.subspan(kNonceSize + ct_len + 1, kMacSize);

  if (my_nonce.size() != kNonceSize || nonce_id != my_nonce[0]) {
    return Error{Errc::kAuthFailed, "unknown or stale S0 nonce identifier"};
  }
  const crypto::AesBlock iv = make_iv(sender_nonce, my_nonce);

  Bytes auth;
  auth.push_back(kS0MessageEncap);
  auth.push_back(src);
  auth.push_back(dst);
  auth.push_back(static_cast<std::uint8_t>(ciphertext.size()));
  auth.insert(auth.end(), ciphertext.begin(), ciphertext.end());
  const Bytes expected_mac = cbc_mac8(keys_.auth_key, iv, auth);
  if (!equal_constant_time(expected_mac, mac)) {
    return Error{Errc::kAuthFailed, "S0 CBC-MAC verification failed"};
  }

  const Bytes plaintext = crypto::aes_ofb_crypt(keys_.enc_key, iv, ciphertext);
  return decode_app_payload(plaintext);
}

S2Session::S2Session(const crypto::S2Keys& keys, ByteView span_seed32)
    : keys_(keys), span_(span_seed32) {}

void S2Session::resync(ByteView span_seed32) {
  span_.reseed(span_seed32);
  sequence_ = 0;
}

crypto::AesBlock S2Session::next_span_nonce() {
  const Bytes raw = span_.generate(crypto::kAesBlockSize);
  crypto::AesBlock nonce{};
  std::copy(raw.begin(), raw.end(), nonce.begin());
  return nonce;
}

AppPayload S2Session::encapsulate(const AppPayload& inner, HomeId home, NodeId src, NodeId dst) {
  const std::uint8_t seq = sequence_++;
  const crypto::AesBlock nonce = next_span_nonce();

  const Bytes plaintext = inner.encode();
  const Bytes ciphertext = crypto::aes_ctr_crypt(keys_.ccm_key, nonce, plaintext);

  // Additional authenticated data mirrors the S2 AAD: addressing + header.
  Bytes auth;
  write_be32(auth, home);
  auth.push_back(src);
  auth.push_back(dst);
  auth.push_back(kS2MessageEncap);
  auth.push_back(seq);
  auth.insert(auth.end(), ciphertext.begin(), ciphertext.end());
  const Bytes tag = crypto::aes_cmac_truncated(keys_.auth_key, auth, kMacSize);

  AppPayload outer;
  outer.cmd_class = kSecurity2Class;
  outer.command = kS2MessageEncap;
  outer.params.reserve(2 + ciphertext.size() + kMacSize);
  outer.params.push_back(seq);
  outer.params.push_back(0x00);  // no extensions
  outer.params.insert(outer.params.end(), ciphertext.begin(), ciphertext.end());
  outer.params.insert(outer.params.end(), tag.begin(), tag.end());
  return outer;
}

Result<AppPayload> S2Session::decapsulate(const AppPayload& outer, HomeId home, NodeId src,
                                          NodeId dst) {
  if (outer.cmd_class != kSecurity2Class || outer.command != kS2MessageEncap) {
    return Error{Errc::kBadField, "not an S2 message encapsulation"};
  }
  if (outer.params.size() < 2 + kMacSize) {
    return Error{Errc::kTruncated, "S2 encapsulation too short"};
  }
  const std::uint8_t seq = outer.params[0];
  if (seq != sequence_) {
    return Error{Errc::kAuthFailed, "S2 sequence desynchronized (SPAN out of sync)"};
  }
  const std::uint8_t extensions = outer.params[1];
  if (extensions != 0x00) {
    return Error{Errc::kUnsupported, "S2 extensions not supported in this profile"};
  }
  const ByteView params(outer.params);
  const std::size_t ct_len = params.size() - 2 - kMacSize;
  const ByteView ciphertext = params.subspan(2, ct_len);
  const ByteView tag = params.subspan(2 + ct_len, kMacSize);

  Bytes auth;
  write_be32(auth, home);
  auth.push_back(src);
  auth.push_back(dst);
  auth.push_back(kS2MessageEncap);
  auth.push_back(seq);
  auth.insert(auth.end(), ciphertext.begin(), ciphertext.end());
  const Bytes expected = crypto::aes_cmac_truncated(keys_.auth_key, auth, kMacSize);
  if (!equal_constant_time(expected, tag)) {
    return Error{Errc::kAuthFailed, "S2 CMAC verification failed"};
  }

  // Tag verified: consume the SPAN position and decrypt.
  sequence_ = static_cast<std::uint8_t>(seq + 1);
  const crypto::AesBlock nonce = next_span_nonce();
  const Bytes plaintext = crypto::aes_ctr_crypt(keys_.ccm_key, nonce, ciphertext);
  return decode_app_payload(plaintext);
}

crypto::S2Keys s2_key_agreement(const crypto::X25519Key& my_private,
                                const crypto::X25519Key& peer_public) {
  const crypto::X25519Key shared = crypto::x25519(my_private, peer_public);
  const crypto::X25519Key my_public = crypto::x25519_public(my_private);
  // Both sides must feed the public keys in the same order; sort them so
  // the derivation is symmetric.
  ByteView a(my_public.data(), my_public.size());
  ByteView b(peer_public.data(), peer_public.size());
  if (std::lexicographical_compare(b.begin(), b.end(), a.begin(), a.end())) std::swap(a, b);
  return crypto::derive_s2_keys(ByteView(shared.data(), shared.size()), a, b);
}

}  // namespace zc::zwave
