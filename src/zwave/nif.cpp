#include "zwave/nif.h"

namespace zc::zwave {

namespace {
constexpr CommandClassId kProtocolClass = 0x01;
constexpr CommandId kNop = 0x01;
constexpr CommandId kNodeInfoRequest = 0x02;
constexpr CommandId kNodeInfo = 0x07;
}  // namespace

AppPayload NodeInfo::encode() const {
  AppPayload payload;
  payload.cmd_class = kProtocolClass;
  payload.command = kNodeInfo;
  payload.params.reserve(4 + supported.size());
  payload.params.push_back(capabilities);
  payload.params.push_back(basic_class);
  payload.params.push_back(generic_class);
  payload.params.push_back(specific_class);
  payload.params.insert(payload.params.end(), supported.begin(), supported.end());
  return payload;
}

AppPayload make_nif_request(NodeId target) {
  AppPayload payload;
  payload.cmd_class = kProtocolClass;
  payload.command = kNodeInfoRequest;
  payload.params.push_back(target);
  return payload;
}

AppPayload make_nop() {
  AppPayload payload;
  payload.cmd_class = kProtocolClass;
  payload.command = kNop;
  return payload;
}

Result<NodeInfo> decode_node_info(const AppPayload& payload) {
  if (payload.cmd_class != kProtocolClass || payload.command != kNodeInfo) {
    return Error{Errc::kBadField, "not a NODE_INFO payload"};
  }
  if (payload.params.size() < 4) {
    return Error{Errc::kTruncated, "NODE_INFO shorter than device-class header"};
  }
  NodeInfo info;
  info.capabilities = payload.params[0];
  info.basic_class = payload.params[1];
  info.generic_class = payload.params[2];
  info.specific_class = payload.params[3];
  info.supported.assign(payload.params.begin() + 4, payload.params.end());
  return info;
}

}  // namespace zc::zwave
