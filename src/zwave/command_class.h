// Command-class registry: the in-code equivalent of the Z-Wave Alliance
// specification + the public XML command-class definitions the paper's
// unknown-property extractor parses (§III-C1).
//
// Each command class (CMDCL) carries its commands (CMDs) and per-command
// parameter schemas (PARAMs) — the three levels of the application-layer
// tree in Fig. 6. The registry also records:
//   * the functional cluster (application / transport-encapsulation /
//     management / network), which drives the controller-relevance
//     clustering step, and
//   * whether the class appears in the public specification at all —
//     the two proprietary classes 0x01/0x02 are only discoverable through
//     systematic validation testing (§III-C2).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "zwave/types.h"

namespace zc::zwave {

/// Functional cluster used when inferring which classes a controller
/// should implement (§III-C1: "application functionality, transport
/// encapsulation, management, and networking").
enum class CcCluster : std::uint8_t {
  kApplication,
  kTransportEncapsulation,
  kManagement,
  kNetwork,
  kSensor,      // slave-side sensing; not controller-relevant
  kActuator,    // slave-side actuation; not controller-relevant
  kProtocol,    // proprietary protocol-level classes (0x01, 0x02)
};

const char* cc_cluster_name(CcCluster cluster);

/// Whether a command is sent by a controller (controlling) or by a slave in
/// response (supporting) — the spec annotates every CMD this way (§III-C1).
enum class CmdDirection : std::uint8_t { kControlling, kSupporting };

/// Parameter value categories used for semantic mutation.
enum class ParamType : std::uint8_t {
  kByte,      // opaque 8-bit value
  kBool,      // 0x00 / 0xFF style two-state
  kEnum,      // small closed set: [min, max] are the legal bounds
  kNodeId,    // node identifier; legal 1..232
  kSize,      // length/size field correlated with trailing bytes
  kDuration,  // time value with special encodings (0xFE, 0xFF reserved)
  kBitmask,   // independent bits
  kVariadic,  // marker: the command accepts trailing variable bytes
};

const char* param_type_name(ParamType type);

struct ParamSpec {
  std::string_view name;
  ParamType type = ParamType::kByte;
  std::uint8_t min = 0x00;
  std::uint8_t max = 0xFF;

  bool is_legal(std::uint8_t value) const { return value >= min && value <= max; }
};

struct CommandSpec {
  CommandId id = 0;
  std::string_view name;
  CmdDirection direction = CmdDirection::kControlling;
  std::vector<ParamSpec> params;
};

struct CommandClassSpec {
  CommandClassId id = 0;
  std::string_view name;
  CcCluster cluster = CcCluster::kApplication;
  /// Present in the public Z-Wave specification (false for 0x01/0x02).
  bool in_public_spec = true;
  std::vector<CommandSpec> commands;
  /// True once index_commands() verified `commands` is ascending by id,
  /// enabling binary-search lookups. The command order itself is never
  /// changed — the systematic mutation walk depends on it.
  bool commands_sorted = false;

  /// Checks (without reordering) whether `commands` is sorted by id and
  /// records the answer for find_command's fast path. Called by the spec
  /// database on every class it owns; external builders (XML import) may
  /// call it too.
  void index_commands();

  /// Lookup by command id: binary search when the ids are ascending (every
  /// database-owned class), linear scan otherwise.
  const CommandSpec* find_command(CommandId cmd) const;
  bool controller_relevant() const;
};

/// Immutable process-wide specification database.
class SpecDatabase {
 public:
  /// The singleton spec instance (built once, ~124 command classes).
  static const SpecDatabase& instance();

  /// All classes, ordered by id.
  std::span<const CommandClassSpec> all() const { return classes_; }

  /// Lookup by id; nullptr when the id is not defined anywhere.
  const CommandClassSpec* find(CommandClassId id) const;

  /// Number of classes present in the public specification (the paper
  /// counts 122 as of the 2024 release).
  std::size_t public_spec_count() const;

  /// The controller-relevance cluster (§III-C1): every class whose
  /// functional cluster a controller is expected to implement. Includes
  /// the proprietary classes only when `include_unlisted` is set.
  std::vector<CommandClassId> controller_cluster(bool include_unlisted) const;

  /// Total number of commands defined under `id` (0 when unknown).
  /// Drives CMDCL prioritization: more commands => fuzz first (§III-C1).
  std::size_t command_count(CommandClassId id) const;

 private:
  SpecDatabase();
  std::vector<CommandClassSpec> classes_;
  /// O(1) id -> spec index over the full 8-bit id space (nullptr = not
  /// defined), replacing per-lookup binary searches on the fuzzing hot
  /// path: every mutator construction and every simulated-controller
  /// dispatch goes through find().
  std::array<const CommandClassSpec*, 256> by_id_{};
  /// Memoized commands-per-class, the PSM prioritization key (§III-C1):
  /// queue sorting reads these counts O(n log n) times per fingerprint.
  std::array<std::uint16_t, 256> command_counts_{};
};

}  // namespace zc::zwave
