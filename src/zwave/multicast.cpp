#include "zwave/multicast.h"

#include <algorithm>

namespace zc::zwave {

Bytes encode_multicast_mask(const std::vector<NodeId>& destinations) {
  NodeId highest = 0;
  for (NodeId id : destinations) highest = std::max(highest, id);
  const std::size_t mask_len =
      std::min<std::size_t>(kMaxMulticastMask, highest == 0 ? 1 : (highest + 7u) / 8u);

  Bytes out;
  out.push_back(static_cast<std::uint8_t>(mask_len));
  out.resize(1 + mask_len, 0x00);
  for (NodeId id : destinations) {
    if (id == 0 || static_cast<std::size_t>((id - 1) / 8) >= mask_len) continue;
    out[1 + static_cast<std::size_t>((id - 1) / 8)] |=
        static_cast<std::uint8_t>(1u << ((id - 1) % 8));
  }
  return out;
}

bool MulticastPayload::addresses(NodeId node) const {
  return std::find(destinations.begin(), destinations.end(), node) != destinations.end();
}

Result<MulticastPayload> split_multicast_payload(ByteView payload) {
  if (payload.empty()) return Error{Errc::kTruncated, "missing multicast mask length"};
  const std::size_t mask_len = payload[0];
  if (mask_len == 0 || mask_len > kMaxMulticastMask) {
    return Error{Errc::kBadField, "multicast mask length out of range"};
  }
  if (payload.size() < 1 + mask_len) {
    return Error{Errc::kTruncated, "multicast mask truncated"};
  }

  MulticastPayload out;
  for (std::size_t byte = 0; byte < mask_len; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      if (payload[1 + byte] & (1u << bit)) {
        out.destinations.push_back(static_cast<NodeId>(byte * 8 + static_cast<std::size_t>(bit) + 1));
      }
    }
  }
  if (out.destinations.empty()) {
    return Error{Errc::kBadField, "multicast mask selects no nodes"};
  }
  out.app_payload.assign(payload.begin() + 1 + static_cast<std::ptrdiff_t>(mask_len),
                         payload.end());
  return out;
}

MacFrame make_multicast(HomeId home, NodeId src, const std::vector<NodeId>& destinations,
                        const AppPayload& app, std::uint8_t sequence) {
  MacFrame frame;
  frame.home_id = home;
  frame.src = src;
  frame.dst = kBroadcastNodeId;
  frame.header = HeaderType::kMulticast;
  frame.ack_requested = false;  // multicast is never acknowledged
  frame.sequence = sequence & 0x0F;
  frame.payload = encode_multicast_mask(destinations);
  const Bytes inner = app.encode();
  frame.payload.insert(frame.payload.end(), inner.begin(), inner.end());
  return frame;
}

}  // namespace zc::zwave
