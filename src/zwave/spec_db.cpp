// The Z-Wave specification database.
//
// This file is the reproduction's equivalent of the Z-Wave Alliance
// application-layer specification plus the public XML command-class
// definition list that ZCover parses (§III-C1). It defines 122 public
// command classes with their commands and parameter schemas, plus the two
// proprietary protocol classes (0x01, 0x02) that never appear in the
// public documents and are only reachable through systematic validation
// testing (§III-C2).
//
// Command identifiers and names follow the public Z-Wave assignments where
// those are published; parameter schemas capture the legal ranges the
// position-sensitive mutator needs for rand_valid/rand_invalid/boundary
// mutation (Table I). Classes the paper's Fig. 5 visualizes carry exactly
// the command counts shown there.
#include "zwave/command_class.h"

#include <algorithm>

#include "obs/profile.h"

namespace zc::zwave {

namespace {

using D = CmdDirection;
using T = ParamType;

ParamSpec p(std::string_view name, T type = T::kByte, std::uint8_t min = 0x00,
            std::uint8_t max = 0xFF) {
  return ParamSpec{name, type, min, max};
}

CommandSpec c(CommandId id, std::string_view name, D dir,
              std::vector<ParamSpec> params = {}) {
  return CommandSpec{id, name, dir, std::move(params)};
}

CommandClassSpec cls(CommandClassId id, std::string_view name, CcCluster cluster,
                     std::vector<CommandSpec> commands, bool in_public_spec = true) {
  CommandClassSpec spec;
  spec.id = id;
  spec.name = name;
  spec.cluster = cluster;
  spec.in_public_spec = in_public_spec;
  spec.commands = std::move(commands);
  return spec;
}

/// Generic GET/REPORT pair (read-only classes).
std::vector<CommandSpec> get_report(std::uint8_t get_id, std::uint8_t report_id,
                                    std::vector<ParamSpec> report_params = {p("Value")}) {
  return {c(get_id, "GET", D::kControlling),
          c(report_id, "REPORT", D::kSupporting, std::move(report_params))};
}

// ---------------------------------------------------------------------------
// Proprietary protocol classes (not in any public document; §III-C2).
// ---------------------------------------------------------------------------

CommandClassSpec make_zwave_protocol() {
  // CMDCL 0x01: chipset-level network management. The paper found that
  // several controllers process these commands from *unencrypted* frames,
  // which is the root cause behind bugs #01-#05, #12 and #14 (Table III).
  return cls(0x01, "ZWAVE_PROTOCOL", CcCluster::kProtocol,
             {
                 c(0x01, "NOP", D::kControlling),
                 c(0x02, "NODE_INFO_REQUEST", D::kControlling, {p("NodeID", T::kNodeId, 1, 232)}),
                 c(0x03, "ASSIGN_IDS", D::kControlling,
                   {p("NewNodeID", T::kNodeId, 1, 232), p("HomeID1"), p("HomeID2"),
                    p("HomeID3"), p("HomeID4")}),
                 c(0x04, "FIND_NODES_IN_RANGE", D::kControlling,
                   {p("MaskLength", T::kSize, 0, 29), p("NodeMask", T::kVariadic)}),
                 c(0x05, "GET_NODES_IN_RANGE", D::kControlling),
                 c(0x06, "RANGE_INFO", D::kSupporting,
                   {p("MaskLength", T::kSize, 0, 29), p("NodeMask", T::kVariadic)}),
                 c(0x07, "NODE_INFO", D::kSupporting,
                   {p("Capabilities", T::kBitmask), p("BasicClass"), p("GenericClass"),
                    p("SpecificClass"), p("CommandClasses", T::kVariadic)}),
                 c(0x0D, "NODE_TABLE_UPDATE", D::kControlling,
                   {p("Operation", T::kEnum, 0x00, 0x04), p("NodeID", T::kNodeId, 1, 232),
                    p("Properties", T::kBitmask)}),
             },
             /*in_public_spec=*/false);
}

CommandClassSpec make_zensor_net() {
  // CMDCL 0x02: legacy Zensor binding, likewise absent from the public
  // specification but answered by several chipset generations.
  return cls(0x02, "ZENSOR_NET", CcCluster::kProtocol,
             {
                 c(0x01, "BIND_REQUEST", D::kControlling, {p("ZensorID", T::kNodeId, 1, 232)}),
                 c(0x02, "BIND_ACCEPT", D::kSupporting, {p("ZensorID", T::kNodeId, 1, 232)}),
             },
             /*in_public_spec=*/false);
}

// ---------------------------------------------------------------------------
// Transport / encapsulation cluster.
// ---------------------------------------------------------------------------

CommandClassSpec make_security_2() {
  // 23 commands — the tallest bar of Fig. 5.
  return cls(0x9F, "SECURITY_2", CcCluster::kTransportEncapsulation,
             {
                 c(0x01, "NONCE_GET", D::kControlling, {p("SequenceNumber")}),
                 c(0x02, "NONCE_REPORT", D::kSupporting,
                   {p("SequenceNumber"), p("Flags", T::kBitmask, 0, 3),
                    p("ReceiverEntropy", T::kVariadic)}),
                 c(0x03, "MESSAGE_ENCAPSULATION", D::kControlling,
                   {p("SequenceNumber"), p("Extensions", T::kBitmask, 0, 3),
                    p("Ciphertext", T::kVariadic)}),
                 c(0x04, "KEX_GET", D::kControlling),
                 c(0x05, "KEX_REPORT", D::kSupporting,
                   {p("Flags", T::kBitmask, 0, 3), p("Schemes", T::kBitmask, 0, 2),
                    p("Profiles", T::kBitmask, 1, 1), p("Keys", T::kBitmask, 0, 0x87)}),
                 c(0x06, "KEX_SET", D::kControlling,
                   {p("Flags", T::kBitmask, 0, 3), p("Schemes", T::kBitmask, 0, 2),
                    p("Profiles", T::kBitmask, 1, 1), p("Keys", T::kBitmask, 0, 0x87)}),
                 c(0x07, "KEX_FAIL", D::kSupporting, {p("FailType", T::kEnum, 0x01, 0x0A)}),
                 c(0x08, "PUBLIC_KEY_REPORT", D::kSupporting,
                   {p("IncludingNode", T::kBool, 0, 1), p("PublicKey", T::kVariadic)}),
                 c(0x09, "NETWORK_KEY_GET", D::kControlling, {p("RequestedKey", T::kBitmask, 0, 0x87)}),
                 c(0x0A, "NETWORK_KEY_REPORT", D::kSupporting,
                   {p("GrantedKey", T::kBitmask, 0, 0x87), p("NetworkKey", T::kVariadic)}),
                 c(0x0B, "NETWORK_KEY_VERIFY", D::kControlling),
                 c(0x0C, "TRANSFER_END", D::kControlling, {p("Flags", T::kBitmask, 0, 3)}),
                 c(0x0D, "COMMANDS_SUPPORTED_GET", D::kControlling),
                 c(0x0E, "COMMANDS_SUPPORTED_REPORT", D::kSupporting, {p("CommandClasses", T::kVariadic)}),
                 c(0x0F, "CAPABILITIES_GET", D::kControlling),
                 c(0x10, "CAPABILITIES_REPORT", D::kSupporting,
                   {p("Schemes", T::kBitmask, 0, 2), p("Profiles", T::kBitmask, 1, 1)}),
                 c(0x11, "MULTICAST_NONCE_GET", D::kControlling,
                   {p("SequenceNumber"), p("GroupID", T::kByte, 1, 232)}),
                 c(0x12, "MULTICAST_NONCE_REPORT", D::kSupporting,
                   {p("SequenceNumber"), p("GroupID", T::kByte, 1, 232),
                    p("MPANState", T::kVariadic)}),
                 c(0x13, "MPAN_GET", D::kControlling, {p("GroupID", T::kByte, 1, 232)}),
                 c(0x14, "MPAN_REPORT", D::kSupporting,
                   {p("GroupID", T::kByte, 1, 232), p("MPANState", T::kVariadic)}),
                 c(0x15, "MPAN_SET", D::kControlling,
                   {p("GroupID", T::kByte, 1, 232), p("MPANState", T::kVariadic)}),
                 c(0x16, "SPAN_EXTEND", D::kControlling, {p("SequenceNumber"), p("Entropy", T::kVariadic)}),
                 c(0x17, "KEY_VERIFY_ACK", D::kSupporting),
             });
}

CommandClassSpec make_security_0() {
  return cls(0x98, "SECURITY", CcCluster::kTransportEncapsulation,
             {
                 c(0x02, "COMMANDS_SUPPORTED_GET", D::kControlling),
                 c(0x03, "COMMANDS_SUPPORTED_REPORT", D::kSupporting,
                   {p("ReportsToFollow"), p("CommandClasses", T::kVariadic)}),
                 c(0x04, "SCHEME_GET", D::kControlling, {p("SupportedSchemes", T::kBitmask, 0, 1)}),
                 c(0x05, "SCHEME_REPORT", D::kSupporting, {p("SupportedSchemes", T::kBitmask, 0, 1)}),
                 c(0x06, "NETWORK_KEY_SET", D::kControlling, {p("NetworkKey", T::kVariadic)}),
                 c(0x07, "NETWORK_KEY_VERIFY", D::kSupporting),
                 c(0x08, "SCHEME_INHERIT", D::kControlling, {p("SupportedSchemes", T::kBitmask, 0, 1)}),
                 c(0x40, "NONCE_GET", D::kControlling),
                 c(0x80, "NONCE_REPORT", D::kSupporting, {p("Nonce", T::kVariadic)}),
                 c(0x81, "MESSAGE_ENCAPSULATION", D::kControlling,
                   {p("IV1"), p("IV2"), p("IV3"), p("IV4"), p("IV5"), p("IV6"), p("IV7"),
                    p("IV8"), p("Ciphertext", T::kVariadic)}),
                 c(0xC1, "MESSAGE_ENCAPSULATION_NONCE_GET", D::kControlling,
                   {p("IV1"), p("IV2"), p("IV3"), p("IV4"), p("IV5"), p("IV6"), p("IV7"),
                    p("IV8"), p("Ciphertext", T::kVariadic)}),
             });
}

CommandClassSpec make_transport_service() {
  return cls(0x55, "TRANSPORT_SERVICE", CcCluster::kTransportEncapsulation,
             {
                 c(0xC0, "FIRST_SEGMENT", D::kControlling,
                   {p("DatagramSize", T::kSize, 0, 0xFF), p("SessionID", T::kBitmask),
                    p("Payload", T::kVariadic)}),
                 c(0xC8, "SEGMENT_REQUEST", D::kSupporting, {p("SessionID"), p("Offset")}),
                 c(0xE0, "SUBSEQUENT_SEGMENT", D::kControlling,
                   {p("DatagramSize", T::kSize), p("SessionID"), p("Offset"),
                    p("Payload", T::kVariadic)}),
                 c(0xE8, "SEGMENT_COMPLETE", D::kSupporting, {p("SessionID")}),
                 c(0xF0, "SEGMENT_WAIT", D::kSupporting, {p("PendingSegments")}),
             });
}

CommandClassSpec make_crc16_encap() {
  return cls(0x56, "CRC_16_ENCAP", CcCluster::kTransportEncapsulation,
             {c(0x01, "ENCAP", D::kControlling,
                {p("EncapsulatedCommand", T::kVariadic), p("Checksum1"), p("Checksum2")})});
}

CommandClassSpec make_multi_channel() {
  return cls(0x60, "MULTI_CHANNEL", CcCluster::kTransportEncapsulation,
             {
                 c(0x07, "END_POINT_GET", D::kControlling),
                 c(0x08, "END_POINT_REPORT", D::kSupporting,
                   {p("Flags", T::kBitmask), p("EndPoints", T::kByte, 0, 127)}),
                 c(0x09, "CAPABILITY_GET", D::kControlling, {p("EndPoint", T::kByte, 1, 127)}),
                 c(0x0A, "CAPABILITY_REPORT", D::kSupporting,
                   {p("EndPoint", T::kByte, 1, 127), p("GenericClass"), p("SpecificClass"),
                    p("CommandClasses", T::kVariadic)}),
                 c(0x0B, "END_POINT_FIND", D::kControlling, {p("GenericClass"), p("SpecificClass")}),
                 c(0x0C, "END_POINT_FIND_REPORT", D::kSupporting,
                   {p("ReportsToFollow"), p("GenericClass"), p("SpecificClass"),
                    p("EndPoints", T::kVariadic)}),
                 c(0x0D, "CMD_ENCAP", D::kControlling,
                   {p("SourceEndPoint", T::kByte, 0, 127), p("DestEndPoint", T::kBitmask),
                    p("EncapsulatedCommand", T::kVariadic)}),
             });
}

CommandClassSpec make_supervision() {
  return cls(0x6C, "SUPERVISION", CcCluster::kTransportEncapsulation,
             {
                 c(0x01, "GET", D::kControlling,
                   {p("SessionID", T::kBitmask), p("EncapsulatedLength", T::kSize),
                    p("EncapsulatedCommand", T::kVariadic)}),
                 c(0x02, "REPORT", D::kSupporting,
                   {p("SessionID", T::kBitmask), p("Status", T::kEnum, 0x00, 0xFF),
                    p("Duration", T::kDuration)}),
             });
}

CommandClassSpec make_multi_cmd() {
  return cls(0x8F, "MULTI_CMD", CcCluster::kTransportEncapsulation,
             {c(0x01, "ENCAP", D::kControlling,
                {p("CommandCount", T::kSize, 1, 255), p("Commands", T::kVariadic)})});
}

CommandClassSpec make_mailbox() {
  return cls(0x69, "MAILBOX", CcCluster::kTransportEncapsulation,
             {
                 c(0x01, "CONFIGURATION_GET", D::kControlling),
                 c(0x02, "CONFIGURATION_REPORT", D::kSupporting,
                   {p("Mode", T::kEnum, 0, 3), p("Capacity1"), p("Capacity2")}),
                 c(0x03, "CONFIGURATION_SET", D::kControlling, {p("Mode", T::kEnum, 0, 3)}),
                 c(0x04, "QUEUE", D::kControlling,
                   {p("Flags", T::kBitmask, 0, 7), p("QueueHandle"), p("Entry", T::kVariadic)}),
                 c(0x05, "WAKEUP_NOTIFICATION", D::kSupporting, {p("QueueHandle")}),
                 c(0x06, "NODE_FAILING", D::kSupporting, {p("QueueHandle")}),
             });
}

// ---------------------------------------------------------------------------
// Management cluster.
// ---------------------------------------------------------------------------

CommandClassSpec make_version() {
  return cls(0x86, "VERSION", CcCluster::kManagement,
             {
                 c(0x11, "GET", D::kControlling),
                 c(0x12, "REPORT", D::kSupporting,
                   {p("LibraryType", T::kEnum, 1, 9), p("ProtocolVersion"),
                    p("ProtocolSubVersion"), p("ApplicationVersion"), p("ApplicationSubVersion")}),
                 c(0x13, "COMMAND_CLASS_GET", D::kControlling, {p("RequestedCommandClass")}),
                 c(0x14, "COMMAND_CLASS_REPORT", D::kSupporting,
                   {p("RequestedCommandClass"), p("CommandClassVersion", T::kByte, 1, 10)}),
                 c(0x15, "CAPABILITIES_GET", D::kControlling),
                 c(0x16, "CAPABILITIES_REPORT", D::kSupporting, {p("Capabilities", T::kBitmask, 0, 7)}),
             });
}

CommandClassSpec make_configuration() {
  return cls(0x70, "CONFIGURATION", CcCluster::kManagement,
             {
                 c(0x04, "SET", D::kControlling,
                   {p("ParameterNumber"), p("LevelFlags", T::kBitmask),
                    p("ConfigurationValue", T::kVariadic)}),
                 c(0x05, "GET", D::kControlling, {p("ParameterNumber")}),
                 c(0x06, "REPORT", D::kSupporting,
                   {p("ParameterNumber"), p("LevelFlags", T::kBitmask),
                    p("ConfigurationValue", T::kVariadic)}),
                 c(0x07, "BULK_SET", D::kControlling,
                   {p("Offset1"), p("Offset2"), p("NumberOfParameters", T::kSize),
                    p("Flags", T::kBitmask), p("Values", T::kVariadic)}),
                 c(0x08, "BULK_GET", D::kControlling,
                   {p("Offset1"), p("Offset2"), p("NumberOfParameters", T::kSize)}),
                 c(0x09, "BULK_REPORT", D::kSupporting,
                   {p("Offset1"), p("Offset2"), p("ReportsToFollow"),
                    p("Flags", T::kBitmask), p("Values", T::kVariadic)}),
             });
}

CommandClassSpec make_firmware_update() {
  // 11 commands. Bug #09 targets MD_GET (0x01); bug #15 targets
  // UPDATE_REQUEST_GET (0x03).
  return cls(0x7A, "FIRMWARE_UPDATE_MD", CcCluster::kManagement,
             {
                 c(0x01, "MD_GET", D::kControlling),
                 c(0x02, "MD_REPORT", D::kSupporting,
                   {p("ManufacturerID1"), p("ManufacturerID2"), p("FirmwareID1"),
                    p("FirmwareID2"), p("Checksum1"), p("Checksum2")}),
                 c(0x03, "UPDATE_REQUEST_GET", D::kControlling,
                   {p("ManufacturerID1"), p("ManufacturerID2"), p("FirmwareID1"),
                    p("FirmwareID2"), p("Checksum1"), p("Checksum2")}),
                 c(0x04, "UPDATE_REQUEST_REPORT", D::kSupporting, {p("Status", T::kEnum, 0, 0xFF)}),
                 c(0x05, "UPDATE_GET", D::kControlling,
                   {p("NumberOfReports"), p("ReportNumber1", T::kBitmask), p("ReportNumber2")}),
                 c(0x06, "UPDATE_REPORT", D::kControlling,
                   {p("ReportNumber1", T::kBitmask), p("ReportNumber2"), p("Data", T::kVariadic)}),
                 c(0x07, "UPDATE_STATUS_REPORT", D::kSupporting,
                   {p("Status", T::kEnum, 0, 0xFF), p("WaitTime1"), p("WaitTime2")}),
                 c(0x08, "ACTIVATION_SET", D::kControlling,
                   {p("ManufacturerID1"), p("ManufacturerID2"), p("FirmwareID1"),
                    p("FirmwareID2"), p("Checksum1"), p("Checksum2"), p("FirmwareTarget")}),
                 c(0x09, "ACTIVATION_STATUS_REPORT", D::kSupporting,
                   {p("Status", T::kEnum, 0, 0xFF)}),
                 c(0x0A, "PREPARE_GET", D::kControlling,
                   {p("ManufacturerID1"), p("ManufacturerID2"), p("FirmwareID1"),
                    p("FirmwareID2"), p("FirmwareTarget")}),
                 c(0x0B, "PREPARE_REPORT", D::kSupporting,
                   {p("Status", T::kEnum, 0, 0xFF), p("Checksum1"), p("Checksum2")}),
             });
}

CommandClassSpec make_association() {
  return cls(0x85, "ASSOCIATION", CcCluster::kManagement,
             {
                 c(0x01, "SET", D::kControlling,
                   {p("GroupingIdentifier", T::kByte, 1, 255), p("NodeIDs", T::kVariadic)}),
                 c(0x02, "GET", D::kControlling, {p("GroupingIdentifier", T::kByte, 1, 255)}),
                 c(0x03, "REPORT", D::kSupporting,
                   {p("GroupingIdentifier", T::kByte, 1, 255), p("MaxNodesSupported"),
                    p("ReportsToFollow"), p("NodeIDs", T::kVariadic)}),
                 c(0x04, "REMOVE", D::kControlling,
                   {p("GroupingIdentifier", T::kByte, 0, 255), p("NodeIDs", T::kVariadic)}),
                 c(0x05, "GROUPINGS_GET", D::kControlling),
                 c(0x06, "GROUPINGS_REPORT", D::kSupporting, {p("SupportedGroupings")}),
                 c(0x0B, "SPECIFIC_GROUP_GET", D::kControlling),
                 c(0x0C, "SPECIFIC_GROUP_REPORT", D::kSupporting, {p("Group")}),
             });
}

CommandClassSpec make_association_group_info() {
  // Bug #08 targets INFO_GET (0x03); bug #11 targets COMMAND_LIST_GET (0x05).
  return cls(0x59, "ASSOCIATION_GRP_INFO", CcCluster::kManagement,
             {
                 c(0x01, "NAME_GET", D::kControlling, {p("GroupingIdentifier", T::kByte, 1, 255)}),
                 c(0x02, "NAME_REPORT", D::kSupporting,
                   {p("GroupingIdentifier", T::kByte, 1, 255), p("LengthOfName", T::kSize),
                    p("Name", T::kVariadic)}),
                 c(0x03, "INFO_GET", D::kControlling,
                   {p("Flags", T::kBitmask, 0, 0xC0), p("GroupingIdentifier", T::kByte, 0, 255)}),
                 c(0x04, "INFO_REPORT", D::kSupporting,
                   {p("Flags", T::kBitmask), p("GroupInfo", T::kVariadic)}),
                 c(0x05, "COMMAND_LIST_GET", D::kControlling,
                   {p("Flags", T::kBitmask, 0, 0x80), p("GroupingIdentifier", T::kByte, 1, 255)}),
                 c(0x06, "COMMAND_LIST_REPORT", D::kSupporting,
                   {p("GroupingIdentifier", T::kByte, 1, 255), p("ListLength", T::kSize),
                    p("CommandList", T::kVariadic)}),
             });
}

CommandClassSpec make_device_reset_locally() {
  // Bug #07 targets NOTIFICATION (0x01).
  return cls(0x5A, "DEVICE_RESET_LOCALLY", CcCluster::kManagement,
             {c(0x01, "NOTIFICATION", D::kSupporting)});
}

CommandClassSpec make_powerlevel() {
  // Bug #13 targets TEST_NODE_SET (0x04).
  return cls(0x73, "POWERLEVEL", CcCluster::kManagement,
             {
                 c(0x01, "SET", D::kControlling,
                   {p("PowerLevel", T::kEnum, 0, 9), p("Timeout", T::kByte, 1, 255)}),
                 c(0x02, "GET", D::kControlling),
                 c(0x03, "REPORT", D::kSupporting,
                   {p("PowerLevel", T::kEnum, 0, 9), p("Timeout", T::kByte, 0, 255)}),
                 c(0x04, "TEST_NODE_SET", D::kControlling,
                   {p("TestNodeID", T::kNodeId, 1, 232), p("PowerLevel", T::kEnum, 0, 9),
                    p("TestFrameCount1"), p("TestFrameCount2")}),
                 c(0x05, "TEST_NODE_GET", D::kControlling),
                 c(0x06, "TEST_NODE_REPORT", D::kSupporting,
                   {p("TestNodeID", T::kNodeId, 0, 232), p("StatusOfOperation", T::kEnum, 0, 2),
                    p("TestFrameCount1"), p("TestFrameCount2")}),
             });
}

CommandClassSpec make_wake_up() {
  // Bug #12/#14 exercise the controller's wake-up bookkeeping via the
  // proprietary 0x01 class; this public class is where the interval lives.
  return cls(0x84, "WAKE_UP", CcCluster::kManagement,
             {
                 c(0x04, "INTERVAL_SET", D::kControlling,
                   {p("Seconds1"), p("Seconds2"), p("Seconds3"), p("NodeID", T::kNodeId, 1, 232)}),
                 c(0x05, "INTERVAL_GET", D::kControlling),
                 c(0x06, "INTERVAL_REPORT", D::kSupporting,
                   {p("Seconds1"), p("Seconds2"), p("Seconds3"), p("NodeID", T::kNodeId, 0, 232)}),
                 c(0x07, "NOTIFICATION", D::kSupporting),
                 c(0x08, "NO_MORE_INFORMATION", D::kControlling),
                 c(0x09, "INTERVAL_CAPABILITIES_GET", D::kControlling),
                 c(0x0A, "INTERVAL_CAPABILITIES_REPORT", D::kSupporting,
                   {p("MinSeconds1"), p("MinSeconds2"), p("MinSeconds3"), p("MaxSeconds1"),
                    p("MaxSeconds2"), p("MaxSeconds3"), p("DefaultSeconds1"),
                    p("DefaultSeconds2"), p("DefaultSeconds3"), p("StepSeconds1"),
                    p("StepSeconds2"), p("StepSeconds3")}),
             });
}

CommandClassSpec make_manufacturer_specific() {
  return cls(0x72, "MANUFACTURER_SPECIFIC", CcCluster::kManagement,
             {
                 c(0x04, "GET", D::kControlling),
                 c(0x05, "REPORT", D::kSupporting,
                   {p("ManufacturerID1"), p("ManufacturerID2"), p("ProductTypeID1"),
                    p("ProductTypeID2"), p("ProductID1"), p("ProductID2")}),
                 c(0x06, "DEVICE_SPECIFIC_GET", D::kControlling, {p("DeviceIDType", T::kEnum, 0, 2)}),
                 c(0x07, "DEVICE_SPECIFIC_REPORT", D::kSupporting,
                   {p("DeviceIDType", T::kEnum, 0, 2), p("DataFormatAndLength", T::kBitmask),
                    p("DeviceID", T::kVariadic)}),
             });
}

CommandClassSpec make_zwaveplus_info() {
  return cls(0x5E, "ZWAVEPLUS_INFO", CcCluster::kManagement,
             {
                 c(0x01, "GET", D::kControlling),
                 c(0x02, "REPORT", D::kSupporting,
                   {p("ZWavePlusVersion", T::kByte, 1, 2), p("RoleType", T::kEnum, 0, 7),
                    p("NodeType", T::kEnum, 0, 2), p("InstallerIcon1"), p("InstallerIcon2"),
                    p("UserIcon1"), p("UserIcon2")}),
             });
}

CommandClassSpec make_battery() {
  return cls(0x80, "BATTERY", CcCluster::kManagement,
             get_report(0x02, 0x03, {p("BatteryLevel", T::kByte, 0, 100)}));
}

CommandClassSpec make_application_status() {
  return cls(0x22, "APPLICATION_STATUS", CcCluster::kManagement,
             {
                 c(0x01, "BUSY", D::kSupporting,
                   {p("Status", T::kEnum, 0, 2), p("WaitTime", T::kByte)}),
                 c(0x02, "REJECTED_REQUEST", D::kSupporting, {p("Status", T::kEnum, 0, 0)}),
             });
}

CommandClassSpec make_hail() {
  return cls(0x82, "HAIL", CcCluster::kManagement, {c(0x01, "HAIL", D::kSupporting)});
}

}  // namespace

// Part 2 of the database (remaining clusters) lives in spec_db_data.cpp to
// keep translation units a reviewable size; it provides this hook:
std::vector<CommandClassSpec> detail_build_remaining_classes();

namespace {

std::vector<CommandClassSpec> build_all_classes() {
  std::vector<CommandClassSpec> classes;
  classes.reserve(128);

  // Proprietary protocol classes (unlisted).
  classes.push_back(make_zwave_protocol());
  classes.push_back(make_zensor_net());

  // Transport / encapsulation.
  classes.push_back(make_security_2());
  classes.push_back(make_security_0());
  classes.push_back(make_transport_service());
  classes.push_back(make_crc16_encap());
  classes.push_back(make_multi_channel());
  classes.push_back(make_supervision());
  classes.push_back(make_multi_cmd());
  classes.push_back(make_mailbox());

  // Management (detailed).
  classes.push_back(make_version());
  classes.push_back(make_configuration());
  classes.push_back(make_firmware_update());
  classes.push_back(make_association());
  classes.push_back(make_association_group_info());
  classes.push_back(make_device_reset_locally());
  classes.push_back(make_powerlevel());
  classes.push_back(make_wake_up());
  classes.push_back(make_manufacturer_specific());
  classes.push_back(make_zwaveplus_info());
  classes.push_back(make_battery());
  classes.push_back(make_application_status());
  classes.push_back(make_hail());

  // Everything else (management remainder, network, application, sensor,
  // actuator, gateway-side classes).
  for (auto& spec : detail_build_remaining_classes()) classes.push_back(std::move(spec));

  std::sort(classes.begin(), classes.end(),
            [](const CommandClassSpec& a, const CommandClassSpec& b) { return a.id < b.id; });
  return classes;
}

}  // namespace

const char* cc_cluster_name(CcCluster cluster) {
  switch (cluster) {
    case CcCluster::kApplication: return "application";
    case CcCluster::kTransportEncapsulation: return "transport-encapsulation";
    case CcCluster::kManagement: return "management";
    case CcCluster::kNetwork: return "network";
    case CcCluster::kSensor: return "sensor";
    case CcCluster::kActuator: return "actuator";
    case CcCluster::kProtocol: return "protocol";
  }
  return "?";
}

const char* param_type_name(ParamType type) {
  switch (type) {
    case ParamType::kByte: return "byte";
    case ParamType::kBool: return "bool";
    case ParamType::kEnum: return "enum";
    case ParamType::kNodeId: return "node-id";
    case ParamType::kSize: return "size";
    case ParamType::kDuration: return "duration";
    case ParamType::kBitmask: return "bitmask";
    case ParamType::kVariadic: return "variadic";
  }
  return "?";
}

void CommandClassSpec::index_commands() {
  commands_sorted = std::is_sorted(
      commands.begin(), commands.end(),
      [](const CommandSpec& a, const CommandSpec& b) { return a.id < b.id; });
}

const CommandSpec* CommandClassSpec::find_command(CommandId cmd) const {
  if (commands_sorted) {
    const auto it = std::lower_bound(
        commands.begin(), commands.end(), cmd,
        [](const CommandSpec& command, CommandId value) { return command.id < value; });
    if (it == commands.end() || it->id != cmd) return nullptr;
    return &*it;
  }
  for (const auto& command : commands) {
    if (command.id == cmd) return &command;
  }
  return nullptr;
}

bool CommandClassSpec::controller_relevant() const {
  switch (cluster) {
    case CcCluster::kTransportEncapsulation:
    case CcCluster::kManagement:
    case CcCluster::kNetwork:
    case CcCluster::kProtocol:
      return true;
    case CcCluster::kApplication:
    case CcCluster::kSensor:
    case CcCluster::kActuator:
      return false;
  }
  return false;
}

SpecDatabase::SpecDatabase() : classes_(build_all_classes()) {
  // classes_ is immutable from here on, so raw pointers into it are
  // stable: build the O(1) id index and memoize the per-class command
  // counts once instead of re-searching on every hot-path lookup.
  for (CommandClassSpec& spec : classes_) {
    spec.index_commands();
    by_id_[spec.id] = &spec;
    command_counts_[spec.id] = static_cast<std::uint16_t>(spec.commands.size());
  }
}

const SpecDatabase& SpecDatabase::instance() {
  static const SpecDatabase db;
  return db;
}

const CommandClassSpec* SpecDatabase::find(CommandClassId id) const {
  ZC_PROF_SCOPE("spec_db.find");
  return by_id_[id];
}

std::size_t SpecDatabase::public_spec_count() const {
  return static_cast<std::size_t>(
      std::count_if(classes_.begin(), classes_.end(),
                    [](const CommandClassSpec& spec) { return spec.in_public_spec; }));
}

std::vector<CommandClassId> SpecDatabase::controller_cluster(bool include_unlisted) const {
  std::vector<CommandClassId> out;
  for (const auto& spec : classes_) {
    if (!spec.controller_relevant()) continue;
    if (!spec.in_public_spec && !include_unlisted) continue;
    out.push_back(spec.id);
  }
  return out;
}

std::size_t SpecDatabase::command_count(CommandClassId id) const {
  ZC_PROF_SCOPE("spec_db.command_count");
  return command_counts_[id];
}

}  // namespace zc::zwave
