// Node Information Frame (NIF) encoding.
//
// The active scanner's central tool (§III-B2): a NIF request makes the
// target answer with its device classes and the list of command classes it
// *admits* to supporting. The paper's controllers listed only 15-17 classes
// here while actually processing many more — the gap ZCover exploits.
//
// On air these ride the protocol-level class 0x01: NODE_INFO_REQUEST (0x02)
// out, NODE_INFO (0x07) back.
#pragma once

#include <vector>

#include "common/result.h"
#include "zwave/frame.h"
#include "zwave/types.h"

namespace zc::zwave {

/// Device-class triple + advertised command classes.
struct NodeInfo {
  std::uint8_t capabilities = 0;      // listening/routing flag bits
  std::uint8_t basic_class = 0;       // e.g. 0x02 static controller
  std::uint8_t generic_class = 0;     // e.g. 0x02 generic controller
  std::uint8_t specific_class = 0;
  std::vector<CommandClassId> supported;  // the *listed* CMDCLs

  AppPayload encode() const;
};

/// Well-known basic device classes.
constexpr std::uint8_t kBasicClassController = 0x01;
constexpr std::uint8_t kBasicClassStaticController = 0x02;
constexpr std::uint8_t kBasicClassSlave = 0x03;
constexpr std::uint8_t kBasicClassRoutingSlave = 0x04;

const char* basic_class_name(std::uint8_t basic_class);

/// Builds the NIF request payload (protocol class 0x01, NODE_INFO_REQUEST).
AppPayload make_nif_request(NodeId target);

/// Builds a NOP ping payload — the liveness probe the fuzzer's feedback
/// loop sends between test cases (§IV-A "Feedback & crash verification").
AppPayload make_nop();

/// Parses a NODE_INFO payload back into NodeInfo.
Result<NodeInfo> decode_node_info(const AppPayload& payload);

inline const char* basic_class_name(std::uint8_t basic_class) {
  switch (basic_class) {
    case kBasicClassController: return "controller";
    case kBasicClassStaticController: return "static-controller";
    case kBasicClassSlave: return "slave";
    case kBasicClassRoutingSlave: return "routing-slave";
  }
  return "unknown";
}

}  // namespace zc::zwave
