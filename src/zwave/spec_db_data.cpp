// Specification database, part 2: network-management classes, the
// management remainder, and the application/sensor/actuator classes a
// controller is *not* expected to implement (they matter to the clustering
// step precisely because they are excluded from it, §III-C1).
#include "zwave/command_class.h"

namespace zc::zwave {

namespace {

using D = CmdDirection;
using T = ParamType;

ParamSpec p(std::string_view name, T type = T::kByte, std::uint8_t min = 0x00,
            std::uint8_t max = 0xFF) {
  return ParamSpec{name, type, min, max};
}

CommandSpec c(CommandId id, std::string_view name, D dir,
              std::vector<ParamSpec> params = {}) {
  return CommandSpec{id, name, dir, std::move(params)};
}

CommandClassSpec cls(CommandClassId id, std::string_view name, CcCluster cluster,
                     std::vector<CommandSpec> commands) {
  CommandClassSpec spec;
  spec.id = id;
  spec.name = name;
  spec.cluster = cluster;
  spec.in_public_spec = true;
  spec.commands = std::move(commands);
  return spec;
}

std::vector<CommandSpec> set_get_report(std::uint8_t set_id, std::uint8_t get_id,
                                        std::uint8_t report_id,
                                        ParamSpec value = p("Value")) {
  return {c(set_id, "SET", D::kControlling, {value}),
          c(get_id, "GET", D::kControlling),
          c(report_id, "REPORT", D::kSupporting, {value})};
}

std::vector<CommandSpec> get_report(std::uint8_t get_id, std::uint8_t report_id,
                                    std::vector<ParamSpec> report_params = {p("Value")}) {
  return {c(get_id, "GET", D::kControlling),
          c(report_id, "REPORT", D::kSupporting, std::move(report_params))};
}

/// SET/GET/REPORT plus SUPPORTED_GET/SUPPORTED_REPORT — the five-command
/// shape of many typed application classes (thermostat, protection, ...).
std::vector<CommandSpec> typed_five(std::uint8_t base, ParamSpec value = p("Value")) {
  return {c(base, "SET", D::kControlling, {value}),
          c(static_cast<std::uint8_t>(base + 1), "GET", D::kControlling),
          c(static_cast<std::uint8_t>(base + 2), "REPORT", D::kSupporting, {value}),
          c(static_cast<std::uint8_t>(base + 3), "SUPPORTED_GET", D::kControlling),
          c(static_cast<std::uint8_t>(base + 4), "SUPPORTED_REPORT", D::kSupporting,
            {p("Bitmask", T::kBitmask)})};
}

}  // namespace

std::vector<CommandClassSpec> detail_build_remaining_classes() {
  std::vector<CommandClassSpec> out;
  out.reserve(110);

  // -------------------------------------------------------------------------
  // Network cluster (controller-relevant).
  // -------------------------------------------------------------------------
  out.push_back(cls(0x21, "CONTROLLER_REPLICATION", CcCluster::kNetwork,
                    {
                        c(0x31, "TRANSFER_GROUP", D::kControlling,
                          {p("SequenceNumber"), p("GroupID", T::kByte, 1, 255),
                           p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x32, "TRANSFER_GROUP_NAME", D::kControlling,
                          {p("SequenceNumber"), p("GroupID", T::kByte, 1, 255),
                           p("Name", T::kVariadic)}),
                        c(0x33, "TRANSFER_SCENE", D::kControlling,
                          {p("SequenceNumber"), p("SceneID", T::kByte, 1, 255),
                           p("NodeID", T::kNodeId, 1, 232), p("Level")}),
                        c(0x34, "TRANSFER_SCENE_NAME", D::kControlling,
                          {p("SequenceNumber"), p("SceneID", T::kByte, 1, 255),
                           p("Name", T::kVariadic)}),
                    }));

  // 15 commands — second-tallest bar of Fig. 5.
  out.push_back(cls(0x34, "NETWORK_MANAGEMENT_INCLUSION", CcCluster::kNetwork,
                    {
                        c(0x01, "NODE_ADD", D::kControlling,
                          {p("SequenceNumber"), p("Reserved"), p("Mode", T::kEnum, 1, 7),
                           p("TxOptions", T::kBitmask)}),
                        c(0x02, "NODE_ADD_STATUS", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 6, 9),
                           p("NewNodeID", T::kNodeId, 0, 232), p("NodeInfo", T::kVariadic)}),
                        c(0x03, "NODE_REMOVE", D::kControlling,
                          {p("SequenceNumber"), p("Reserved"), p("Mode", T::kEnum, 1, 5)}),
                        c(0x04, "NODE_REMOVE_STATUS", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 6, 7),
                           p("NodeID", T::kNodeId, 0, 232)}),
                        c(0x07, "FAILED_NODE_REMOVE", D::kControlling,
                          {p("SequenceNumber"), p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x08, "FAILED_NODE_REMOVE_STATUS", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 0, 2),
                           p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x09, "FAILED_NODE_REPLACE", D::kControlling,
                          {p("SequenceNumber"), p("NodeID", T::kNodeId, 1, 232),
                           p("TxOptions", T::kBitmask), p("Mode", T::kEnum, 0, 7)}),
                        c(0x0A, "FAILED_NODE_REPLACE_STATUS", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 4, 9),
                           p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x0B, "NODE_NEIGHBOR_UPDATE_REQUEST", D::kControlling,
                          {p("SequenceNumber"), p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x0C, "NODE_NEIGHBOR_UPDATE_STATUS", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 0x21, 0x23)}),
                        c(0x0D, "RETURN_ROUTE_ASSIGN", D::kControlling,
                          {p("SequenceNumber"), p("SourceNodeID", T::kNodeId, 1, 232),
                           p("DestinationNodeID", T::kNodeId, 1, 232)}),
                        c(0x0E, "RETURN_ROUTE_ASSIGN_COMPLETE", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 0, 1)}),
                        c(0x0F, "RETURN_ROUTE_DELETE", D::kControlling,
                          {p("SequenceNumber"), p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x10, "RETURN_ROUTE_DELETE_COMPLETE", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 0, 1)}),
                        c(0x11, "NODE_ADD_KEYS_REPORT", D::kSupporting,
                          {p("SequenceNumber"), p("RequestCSA", T::kBool, 0, 1),
                           p("RequestedKeys", T::kBitmask)}),
                    }));

  out.push_back(cls(0x4D, "NETWORK_MANAGEMENT_BASIC", CcCluster::kNetwork,
                    {
                        c(0x01, "LEARN_MODE_SET", D::kControlling,
                          {p("SequenceNumber"), p("Reserved"), p("Mode", T::kEnum, 0, 2)}),
                        c(0x02, "LEARN_MODE_SET_STATUS", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 1, 9),
                           p("NewNodeID", T::kNodeId, 0, 232)}),
                        c(0x03, "NETWORK_UPDATE_REQUEST", D::kControlling, {p("SequenceNumber")}),
                        c(0x04, "NETWORK_UPDATE_REQUEST_STATUS", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 0, 4)}),
                        c(0x05, "NODE_INFORMATION_SEND", D::kControlling,
                          {p("SequenceNumber"), p("Reserved"),
                           p("DestinationNodeID", T::kNodeId, 1, 255), p("TxOptions", T::kBitmask)}),
                        c(0x06, "DEFAULT_SET", D::kControlling, {p("SequenceNumber")}),
                        c(0x07, "DEFAULT_SET_COMPLETE", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 6, 7)}),
                        c(0x08, "DSK_GET", D::kControlling,
                          {p("SequenceNumber"), p("AddMode", T::kBool, 0, 1)}),
                        c(0x09, "DSK_REPORT", D::kSupporting,
                          {p("SequenceNumber"), p("AddMode", T::kBool, 0, 1),
                           p("DSK", T::kVariadic)}),
                    }));

  out.push_back(cls(0x52, "NETWORK_MANAGEMENT_PROXY", CcCluster::kNetwork,
                    {
                        c(0x01, "NODE_LIST_GET", D::kControlling, {p("SequenceNumber")}),
                        c(0x02, "NODE_LIST_REPORT", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 0, 1),
                           p("NodeListControllerID", T::kNodeId, 0, 232),
                           p("NodeMask", T::kVariadic)}),
                        c(0x03, "NODE_INFO_CACHED_GET", D::kControlling,
                          {p("SequenceNumber"), p("MaxAge", T::kBitmask),
                           p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x04, "NODE_INFO_CACHED_REPORT", D::kSupporting,
                          {p("SequenceNumber"), p("StatusAndAge", T::kBitmask),
                           p("Capabilities", T::kBitmask), p("Security", T::kBitmask),
                           p("NodeInfo", T::kVariadic)}),
                        c(0x05, "MULTI_CHANNEL_END_POINT_GET", D::kControlling,
                          {p("SequenceNumber"), p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x06, "MULTI_CHANNEL_END_POINT_REPORT", D::kSupporting,
                          {p("SequenceNumber"), p("NodeID", T::kNodeId, 1, 232),
                           p("EndPointCount", T::kByte, 0, 127)}),
                        c(0x0B, "FAILED_NODE_LIST_GET", D::kControlling, {p("SequenceNumber")}),
                        c(0x0C, "FAILED_NODE_LIST_REPORT", D::kSupporting,
                          {p("SequenceNumber"), p("NodeMask", T::kVariadic)}),
                    }));

  out.push_back(cls(0x54, "NETWORK_MANAGEMENT_PRIMARY", CcCluster::kNetwork,
                    {
                        c(0x01, "CONTROLLER_CHANGE", D::kControlling,
                          {p("SequenceNumber"), p("Reserved"), p("Mode", T::kEnum, 0, 7),
                           p("TxOptions", T::kBitmask)}),
                        c(0x02, "CONTROLLER_CHANGE_STATUS", D::kSupporting,
                          {p("SequenceNumber"), p("Status", T::kEnum, 6, 9),
                           p("NewNodeID", T::kNodeId, 0, 232)}),
                    }));

  out.push_back(cls(0x67, "NETWORK_MANAGEMENT_INSTALLATION_MAINTENANCE", CcCluster::kNetwork,
                    {
                        c(0x01, "LAST_WORKING_ROUTE_SET", D::kControlling,
                          {p("NodeID", T::kNodeId, 1, 232), p("Repeater1", T::kNodeId, 0, 232),
                           p("Repeater2", T::kNodeId, 0, 232), p("Repeater3", T::kNodeId, 0, 232),
                           p("Repeater4", T::kNodeId, 0, 232), p("Speed", T::kEnum, 1, 3)}),
                        c(0x02, "LAST_WORKING_ROUTE_GET", D::kControlling,
                          {p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x03, "LAST_WORKING_ROUTE_REPORT", D::kSupporting,
                          {p("NodeID", T::kNodeId, 1, 232), p("Route", T::kVariadic)}),
                        c(0x04, "STATISTICS_GET", D::kControlling, {p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x05, "STATISTICS_REPORT", D::kSupporting,
                          {p("NodeID", T::kNodeId, 1, 232), p("Statistics", T::kVariadic)}),
                        c(0x06, "STATISTICS_CLEAR", D::kControlling),
                        c(0x07, "RSSI_GET", D::kControlling),
                        c(0x08, "RSSI_REPORT", D::kSupporting,
                          {p("Channel1RSSI"), p("Channel2RSSI"), p("Channel3RSSI")}),
                    }));

  out.push_back(cls(0x74, "INCLUSION_CONTROLLER", CcCluster::kNetwork,
                    {
                        c(0x01, "INITIATE", D::kControlling,
                          {p("NodeID", T::kNodeId, 1, 232), p("StepID", T::kEnum, 1, 3)}),
                        c(0x02, "COMPLETE", D::kSupporting,
                          {p("StepID", T::kEnum, 1, 3), p("Status", T::kEnum, 1, 5)}),
                    }));

  out.push_back(cls(0x78, "NODE_PROVISIONING", CcCluster::kNetwork,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("SequenceNumber"), p("DSKLength", T::kSize, 0, 16),
                           p("DSK", T::kVariadic)}),
                        c(0x02, "DELETE", D::kControlling,
                          {p("SequenceNumber"), p("DSKLength", T::kSize, 0, 16),
                           p("DSK", T::kVariadic)}),
                        c(0x03, "LIST_ITERATION_GET", D::kControlling,
                          {p("SequenceNumber"), p("RemainingCount")}),
                        c(0x04, "LIST_ITERATION_REPORT", D::kSupporting,
                          {p("SequenceNumber"), p("RemainingCount"), p("Entry", T::kVariadic)}),
                        c(0x05, "GET", D::kControlling,
                          {p("SequenceNumber"), p("DSKLength", T::kSize, 0, 16),
                           p("DSK", T::kVariadic)}),
                        c(0x06, "REPORT", D::kSupporting,
                          {p("SequenceNumber"), p("Entry", T::kVariadic)}),
                    }));

  // -------------------------------------------------------------------------
  // Management cluster, remainder (controller-relevant).
  // -------------------------------------------------------------------------
  out.push_back(cls(0x53, "SCHEDULE", CcCluster::kManagement,
                    {
                        c(0x01, "SUPPORTED_GET", D::kControlling),
                        c(0x02, "SUPPORTED_REPORT", D::kSupporting,
                          {p("NumberOfSlots"), p("Flags", T::kBitmask)}),
                        c(0x03, "SET", D::kControlling,
                          {p("ScheduleID"), p("UserID"), p("StartYear"), p("StartMonth", T::kByte, 1, 12),
                           p("StartDay", T::kByte, 1, 31), p("Payload", T::kVariadic)}),
                        c(0x04, "GET", D::kControlling, {p("ScheduleID")}),
                        c(0x05, "REPORT", D::kSupporting, {p("ScheduleID"), p("Payload", T::kVariadic)}),
                        c(0x06, "REMOVE", D::kControlling, {p("ScheduleID")}),
                        c(0x07, "STATE_SET", D::kControlling, {p("ScheduleID"), p("State", T::kEnum, 0, 3)}),
                        c(0x08, "STATE_GET", D::kControlling, {p("ScheduleID")}),
                        c(0x09, "STATE_REPORT", D::kSupporting,
                          {p("NumberOfSlots"), p("Override", T::kBool, 0, 1),
                           p("States", T::kVariadic)}),
                    }));

  out.push_back(cls(0x57, "APPLICATION_CAPABILITY", CcCluster::kManagement,
                    {c(0x01, "COMMAND_COMMAND_CLASS_NOT_SUPPORTED", D::kSupporting,
                       {p("DynamicFlag", T::kBool, 0, 1), p("OffendingCommandClass"),
                        p("OffendingCommand")})}));

  out.push_back(cls(0x5C, "IP_ASSOCIATION", CcCluster::kManagement,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("GroupingIdentifier", T::kByte, 1, 255), p("EndPoint", T::kByte, 0, 127),
                           p("IPv6Address", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling,
                          {p("GroupingIdentifier", T::kByte, 1, 255), p("Index")}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("GroupingIdentifier", T::kByte, 1, 255), p("Index"),
                           p("ActualNodes"), p("IPv6Address", T::kVariadic)}),
                        c(0x04, "REMOVE", D::kControlling,
                          {p("GroupingIdentifier", T::kByte, 0, 255), p("EndPoint", T::kByte, 0, 127),
                           p("IPv6Address", T::kVariadic)}),
                    }));

  out.push_back(cls(0x77, "NODE_NAMING", CcCluster::kManagement,
                    {
                        c(0x01, "NAME_SET", D::kControlling,
                          {p("CharPresentation", T::kEnum, 0, 2), p("Name", T::kVariadic)}),
                        c(0x02, "NAME_GET", D::kControlling),
                        c(0x03, "NAME_REPORT", D::kSupporting,
                          {p("CharPresentation", T::kEnum, 0, 2), p("Name", T::kVariadic)}),
                        c(0x04, "LOCATION_SET", D::kControlling,
                          {p("CharPresentation", T::kEnum, 0, 2), p("Location", T::kVariadic)}),
                        c(0x05, "LOCATION_GET", D::kControlling),
                        c(0x06, "LOCATION_REPORT", D::kSupporting,
                          {p("CharPresentation", T::kEnum, 0, 2), p("Location", T::kVariadic)}),
                    }));

  out.push_back(cls(0x7B, "GROUPING_NAME", CcCluster::kManagement,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("GroupingIdentifier", T::kByte, 1, 255),
                           p("CharPresentation", T::kEnum, 0, 2), p("Name", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling, {p("GroupingIdentifier", T::kByte, 1, 255)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("GroupingIdentifier", T::kByte, 1, 255),
                           p("CharPresentation", T::kEnum, 0, 2), p("Name", T::kVariadic)}),
                    }));

  out.push_back(cls(0x7C, "REMOTE_ASSOCIATION_ACTIVATE", CcCluster::kManagement,
                    {c(0x01, "ACTIVATE", D::kControlling, {p("GroupingIdentifier", T::kByte, 1, 255)})}));

  out.push_back(cls(0x7D, "REMOTE_ASSOCIATION", CcCluster::kManagement,
                    {
                        c(0x01, "CONFIGURATION_SET", D::kControlling,
                          {p("LocalGroupingIdentifier", T::kByte, 1, 255),
                           p("RemoteNodeID", T::kNodeId, 0, 232),
                           p("RemoteGroupingIdentifier", T::kByte, 1, 255)}),
                        c(0x02, "CONFIGURATION_GET", D::kControlling,
                          {p("LocalGroupingIdentifier", T::kByte, 1, 255)}),
                        c(0x03, "CONFIGURATION_REPORT", D::kSupporting,
                          {p("LocalGroupingIdentifier", T::kByte, 1, 255),
                           p("RemoteNodeID", T::kNodeId, 0, 232),
                           p("RemoteGroupingIdentifier", T::kByte, 1, 255)}),
                    }));

  out.push_back(cls(0x81, "CLOCK", CcCluster::kManagement,
                    {
                        c(0x04, "SET", D::kControlling,
                          {p("WeekdayAndHour", T::kBitmask), p("Minute", T::kByte, 0, 59)}),
                        c(0x05, "GET", D::kControlling),
                        c(0x06, "REPORT", D::kSupporting,
                          {p("WeekdayAndHour", T::kBitmask), p("Minute", T::kByte, 0, 59)}),
                    }));

  out.push_back(cls(0x87, "INDICATOR", CcCluster::kManagement,
                    {
                        c(0x01, "SET", D::kControlling, {p("IndicatorValue", T::kByte, 0, 0xFF)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting, {p("IndicatorValue", T::kByte, 0, 0xFF)}),
                        c(0x04, "SUPPORTED_GET", D::kControlling, {p("IndicatorID")}),
                        c(0x05, "SUPPORTED_REPORT", D::kSupporting,
                          {p("IndicatorID"), p("NextIndicatorID"), p("PropertySupported", T::kVariadic)}),
                    }));

  out.push_back(cls(0x89, "LANGUAGE", CcCluster::kManagement,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("Language1"), p("Language2"), p("Language3"), p("Country1"),
                           p("Country2")}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("Language1"), p("Language2"), p("Language3"), p("Country1"),
                           p("Country2")}),
                    }));

  out.push_back(cls(0x8A, "TIME", CcCluster::kManagement,
                    {
                        c(0x01, "TIME_GET", D::kControlling),
                        c(0x02, "TIME_REPORT", D::kSupporting,
                          {p("HourAndFlags", T::kBitmask), p("Minute", T::kByte, 0, 59),
                           p("Second", T::kByte, 0, 59)}),
                        c(0x03, "DATE_GET", D::kControlling),
                        c(0x04, "DATE_REPORT", D::kSupporting,
                          {p("Year1"), p("Year2"), p("Month", T::kByte, 1, 12),
                           p("Day", T::kByte, 1, 31)}),
                        c(0x05, "TIME_OFFSET_SET", D::kControlling,
                          {p("HourTZO", T::kBitmask), p("MinuteTZO", T::kByte, 0, 59),
                           p("MinuteOffsetDST", T::kBitmask)}),
                        c(0x06, "TIME_OFFSET_GET", D::kControlling),
                        c(0x07, "TIME_OFFSET_REPORT", D::kSupporting,
                          {p("HourTZO", T::kBitmask), p("MinuteTZO", T::kByte, 0, 59),
                           p("MinuteOffsetDST", T::kBitmask)}),
                    }));

  out.push_back(cls(0x8B, "TIME_PARAMETERS", CcCluster::kManagement,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("Year1"), p("Year2"), p("Month", T::kByte, 1, 12),
                           p("Day", T::kByte, 1, 31), p("Hour", T::kByte, 0, 23),
                           p("Minute", T::kByte, 0, 59), p("Second", T::kByte, 0, 59)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("Year1"), p("Year2"), p("Month", T::kByte, 1, 12),
                           p("Day", T::kByte, 1, 31), p("Hour", T::kByte, 0, 23),
                           p("Minute", T::kByte, 0, 59), p("Second", T::kByte, 0, 59)}),
                    }));

  out.push_back(cls(0x8E, "MULTI_CHANNEL_ASSOCIATION", CcCluster::kManagement,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("GroupingIdentifier", T::kByte, 1, 255), p("Members", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling, {p("GroupingIdentifier", T::kByte, 1, 255)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("GroupingIdentifier", T::kByte, 1, 255), p("MaxNodesSupported"),
                           p("ReportsToFollow"), p("Members", T::kVariadic)}),
                        c(0x04, "REMOVE", D::kControlling,
                          {p("GroupingIdentifier", T::kByte, 0, 255), p("Members", T::kVariadic)}),
                        c(0x05, "GROUPINGS_GET", D::kControlling),
                        c(0x06, "GROUPINGS_REPORT", D::kSupporting, {p("SupportedGroupings")}),
                    }));

  out.push_back(cls(0x9B, "ASSOCIATION_COMMAND_CONFIGURATION", CcCluster::kManagement,
                    {
                        c(0x01, "SET_RECORDS", D::kControlling,
                          {p("GroupingIdentifier", T::kByte, 1, 255), p("NodeID", T::kNodeId, 1, 232),
                           p("CommandLength", T::kSize), p("Command", T::kVariadic)}),
                        c(0x02, "GET_RECORDS", D::kControlling,
                          {p("AllowCache", T::kBool, 0, 1),
                           p("GroupingIdentifier", T::kByte, 1, 255), p("NodeID", T::kNodeId, 1, 232)}),
                        c(0x03, "RECORDS_REPORT", D::kSupporting,
                          {p("GroupingIdentifier", T::kByte, 1, 255), p("NodeID", T::kNodeId, 1, 232),
                           p("Records", T::kVariadic)}),
                        c(0x04, "RECORDS_SUPPORTED_GET", D::kControlling),
                        c(0x05, "RECORDS_SUPPORTED_REPORT", D::kSupporting,
                          {p("Flags", T::kBitmask), p("MaxCommandLength"), p("FreeRecords1"),
                           p("FreeRecords2"), p("MaxRecords1"), p("MaxRecords2")}),
                    }));

  // -------------------------------------------------------------------------
  // Application cluster (not controller-relevant; the slave side of the
  // testbed uses several of these).
  // -------------------------------------------------------------------------
  out.push_back(cls(0x20, "BASIC", CcCluster::kApplication,
                    set_get_report(0x01, 0x02, 0x03, p("Value", T::kByte, 0, 0xFF))));

  out.push_back(cls(0x23, "ZIP", CcCluster::kApplication,
                    {
                        c(0x02, "ZIP_PACKET", D::kControlling,
                          {p("Flags0", T::kBitmask), p("Flags1", T::kBitmask), p("SeqNo"),
                           p("EndPoints", T::kBitmask), p("Payload", T::kVariadic)}),
                        c(0x03, "ZIP_KEEP_ALIVE", D::kControlling, {p("Flags", T::kBitmask, 0, 0xC0)}),
                    }));

  out.push_back(cls(0x24, "SECURITY_PANEL_MODE", CcCluster::kApplication,
                    typed_five(0x01, p("Mode", T::kEnum, 1, 6))));

  out.push_back(cls(0x2B, "SCENE_ACTIVATION", CcCluster::kApplication,
                    {c(0x01, "SET", D::kControlling,
                       {p("SceneID", T::kByte, 1, 255), p("DimmingDuration", T::kDuration)})}));

  out.push_back(cls(0x2D, "SCENE_CONTROLLER_CONF", CcCluster::kApplication,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("GroupID", T::kByte, 1, 255), p("SceneID", T::kByte, 0, 255),
                           p("DimmingDuration", T::kDuration)}),
                        c(0x02, "GET", D::kControlling, {p("GroupID", T::kByte, 0, 255)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("GroupID", T::kByte, 1, 255), p("SceneID", T::kByte, 0, 255),
                           p("DimmingDuration", T::kDuration)}),
                    }));

  out.push_back(cls(0x2E, "SECURITY_PANEL_ZONE", CcCluster::kApplication,
                    {
                        c(0x01, "NUMBER_SUPPORTED_GET", D::kControlling),
                        c(0x02, "SUPPORTED_REPORT", D::kSupporting,
                          {p("ZonesSupported", T::kBitmask), p("ZoneCount")}),
                        c(0x03, "TYPE_GET", D::kControlling, {p("ZoneNumber", T::kByte, 1, 255)}),
                        c(0x04, "TYPE_REPORT", D::kSupporting,
                          {p("ZoneNumber", T::kByte, 1, 255), p("ZoneType", T::kEnum, 1, 2)}),
                        c(0x05, "STATE_GET", D::kControlling, {p("ZoneNumber", T::kByte, 1, 255)}),
                        c(0x06, "STATE_REPORT", D::kSupporting,
                          {p("ZoneNumber", T::kByte, 1, 255), p("ZoneState", T::kEnum, 0, 3)}),
                    }));

  out.push_back(cls(0x36, "BASIC_TARIFF_INFO", CcCluster::kApplication,
                    get_report(0x01, 0x02,
                               {p("TotalRates", T::kByte, 1, 15), p("CurrentRate", T::kBitmask),
                                p("RateConsumption", T::kVariadic)})));

  out.push_back(cls(0x3F, "PREPAYMENT", CcCluster::kApplication,
                    {
                        c(0x01, "BALANCE_GET", D::kControlling, {p("BalanceType", T::kEnum, 0, 1)}),
                        c(0x02, "BALANCE_REPORT", D::kSupporting,
                          {p("BalanceTypeAndMeter", T::kBitmask), p("Scale", T::kBitmask),
                           p("BalanceValue", T::kVariadic)}),
                        c(0x03, "SUPPORTED_GET", D::kControlling),
                        c(0x04, "SUPPORTED_REPORT", D::kSupporting, {p("Types", T::kBitmask)}),
                    }));

  out.push_back(cls(0x5B, "CENTRAL_SCENE", CcCluster::kApplication,
                    {
                        c(0x01, "SUPPORTED_GET", D::kControlling),
                        c(0x02, "SUPPORTED_REPORT", D::kSupporting,
                          {p("SupportedScenes"), p("Properties", T::kBitmask),
                           p("KeyAttributes", T::kVariadic)}),
                        c(0x03, "NOTIFICATION", D::kSupporting,
                          {p("SequenceNumber"), p("KeyAttributes", T::kBitmask),
                           p("SceneNumber", T::kByte, 1, 255)}),
                        c(0x04, "CONFIGURATION_SET", D::kControlling, {p("Flags", T::kBitmask, 0, 0x80)}),
                        c(0x05, "CONFIGURATION_GET", D::kControlling),
                        c(0x06, "CONFIGURATION_REPORT", D::kSupporting, {p("Flags", T::kBitmask, 0, 0x80)}),
                    }));

  out.push_back(cls(0x5D, "ANTITHEFT", CcCluster::kApplication,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("EnableAndKeyLen", T::kBitmask), p("MagicCode", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("Status", T::kEnum, 1, 3), p("ManufacturerID1"), p("ManufacturerID2")}),
                    }));

  out.push_back(cls(0x63, "USER_CODE", CcCluster::kApplication,
                    {
                        // 10 commands — Fig. 5's fourth bar.
                        c(0x01, "SET", D::kControlling,
                          {p("UserIdentifier", T::kByte, 0, 255), p("UserIDStatus", T::kEnum, 0, 3),
                           p("UserCode", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling, {p("UserIdentifier", T::kByte, 1, 255)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("UserIdentifier", T::kByte, 0, 255), p("UserIDStatus", T::kEnum, 0, 3),
                           p("UserCode", T::kVariadic)}),
                        c(0x04, "USERS_NUMBER_GET", D::kControlling),
                        c(0x05, "USERS_NUMBER_REPORT", D::kSupporting, {p("SupportedUsers")}),
                        c(0x06, "CAPABILITIES_GET", D::kControlling),
                        c(0x07, "CAPABILITIES_REPORT", D::kSupporting,
                          {p("Flags1", T::kBitmask), p("Flags2", T::kBitmask),
                           p("KeypadModes", T::kBitmask), p("Keys", T::kVariadic)}),
                        c(0x08, "KEYPAD_MODE_SET", D::kControlling, {p("KeypadMode", T::kEnum, 0, 3)}),
                        c(0x09, "KEYPAD_MODE_GET", D::kControlling),
                        c(0x0A, "KEYPAD_MODE_REPORT", D::kSupporting, {p("KeypadMode", T::kEnum, 0, 3)}),
                    }));

  out.push_back(cls(0x6F, "ENTRY_CONTROL", CcCluster::kApplication,
                    {
                        c(0x01, "NOTIFICATION", D::kSupporting,
                          {p("SequenceNumber"), p("DataTypeAndEvent", T::kBitmask),
                           p("EventData", T::kVariadic)}),
                        c(0x02, "KEY_SUPPORTED_GET", D::kControlling),
                        c(0x03, "KEY_SUPPORTED_REPORT", D::kSupporting,
                          {p("KeySupportedLength", T::kSize), p("Keys", T::kVariadic)}),
                        c(0x04, "EVENT_SUPPORTED_GET", D::kControlling),
                        c(0x05, "EVENT_SUPPORTED_REPORT", D::kSupporting,
                          {p("DataTypes", T::kBitmask), p("Events", T::kVariadic)}),
                        c(0x06, "CONFIGURATION_SET", D::kControlling,
                          {p("KeyCacheSize", T::kByte, 1, 32), p("KeyCacheTimeout", T::kByte, 1, 10)}),
                        c(0x07, "CONFIGURATION_GET", D::kControlling),
                        c(0x08, "CONFIGURATION_REPORT", D::kSupporting,
                          {p("KeyCacheSize", T::kByte, 1, 32), p("KeyCacheTimeout", T::kByte, 1, 10)}),
                    }));

  out.push_back(cls(0x71, "NOTIFICATION", CcCluster::kApplication,
                    {
                        // 5 commands — matches Fig. 5.
                        c(0x04, "GET", D::kControlling,
                          {p("AlarmType"), p("NotificationType", T::kEnum, 1, 0x16), p("Event")}),
                        c(0x05, "REPORT", D::kSupporting,
                          {p("AlarmType"), p("AlarmLevel"), p("Reserved"),
                           p("NotificationStatus", T::kBool, 0, 1),
                           p("NotificationType", T::kEnum, 1, 0x16), p("Event"),
                           p("EventParameters", T::kVariadic)}),
                        c(0x06, "SET", D::kControlling,
                          {p("NotificationType", T::kEnum, 1, 0x16),
                           p("NotificationStatus", T::kBool, 0, 1)}),
                        c(0x07, "SUPPORTED_GET", D::kControlling),
                        c(0x08, "SUPPORTED_REPORT", D::kSupporting,
                          {p("TypeBitmaskLength", T::kSize, 0, 6), p("TypeBitmask", T::kVariadic)}),
                    }));

  out.push_back(cls(0x75, "PROTECTION", CcCluster::kApplication,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("LocalState", T::kEnum, 0, 2), p("RFState", T::kEnum, 0, 2)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("LocalState", T::kEnum, 0, 2), p("RFState", T::kEnum, 0, 2)}),
                        c(0x04, "SUPPORTED_GET", D::kControlling),
                        c(0x05, "SUPPORTED_REPORT", D::kSupporting,
                          {p("Flags", T::kBitmask), p("LocalStates1", T::kBitmask),
                           p("LocalStates2", T::kBitmask), p("RFStates1", T::kBitmask),
                           p("RFStates2", T::kBitmask)}),
                        c(0x06, "EC_SET", D::kControlling, {p("NodeID", T::kNodeId, 0, 232)}),
                        c(0x07, "EC_GET", D::kControlling),
                        c(0x08, "EC_REPORT", D::kSupporting, {p("NodeID", T::kNodeId, 0, 232)}),
                        c(0x09, "TIMEOUT_SET", D::kControlling, {p("Timeout", T::kDuration)}),
                        c(0x0A, "TIMEOUT_GET", D::kControlling),
                        c(0x0B, "TIMEOUT_REPORT", D::kSupporting, {p("Timeout", T::kDuration)}),
                    }));

  out.push_back(cls(0x7E, "ANTITHEFT_UNLOCK", CcCluster::kApplication,
                    {
                        c(0x01, "GET", D::kControlling),
                        c(0x02, "REPORT", D::kSupporting,
                          {p("Flags", T::kBitmask), p("RestrictedTimestamp", T::kVariadic)}),
                        c(0x03, "SET", D::kControlling, {p("MagicCode", T::kVariadic)}),
                    }));

  out.push_back(cls(0x88, "PROPRIETARY", CcCluster::kApplication,
                    {
                        c(0x01, "SET", D::kControlling, {p("Data", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling, {p("Data", T::kVariadic)}),
                        c(0x03, "REPORT", D::kSupporting, {p("Data", T::kVariadic)}),
                    }));

  out.push_back(cls(0x8C, "GEOGRAPHIC_LOCATION", CcCluster::kApplication,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("LongitudeDegrees"), p("LongitudeMinutes", T::kByte, 0, 59),
                           p("LatitudeDegrees"), p("LatitudeMinutes", T::kByte, 0, 59)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("LongitudeDegrees"), p("LongitudeMinutes", T::kByte, 0, 59),
                           p("LatitudeDegrees"), p("LatitudeMinutes", T::kByte, 0, 59)}),
                    }));

  out.push_back(cls(0x91, "MANUFACTURER_PROPRIETARY", CcCluster::kApplication,
                    {c(0x00, "DATA", D::kControlling, {p("Data", T::kVariadic)})}));

  out.push_back(cls(0x92, "SCREEN_MD", CcCluster::kApplication,
                    get_report(0x01, 0x02,
                               {p("Flags", T::kBitmask), p("CharPresentation", T::kEnum, 0, 2),
                                p("Content", T::kVariadic)})));

  out.push_back(cls(0x93, "SCREEN_ATTRIBUTES", CcCluster::kApplication,
                    get_report(0x01, 0x02,
                               {p("NumberOfLines", T::kByte, 1, 10), p("NumberOfColumns"),
                                p("SizeOfLineBuffer")})));

  out.push_back(cls(0x94, "SIMPLE_AV_CONTROL", CcCluster::kApplication,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("SequenceNumber"), p("KeyAttributes", T::kBitmask, 0, 2),
                           p("ItemID1"), p("ItemID2"), p("AVCommands", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting, {p("NumberOfReports")}),
                        c(0x04, "SUPPORTED_GET", D::kControlling, {p("ReportNumber")}),
                        c(0x05, "SUPPORTED_REPORT", D::kSupporting,
                          {p("ReportNumber"), p("Bitmask", T::kVariadic)}),
                    }));

  out.push_back(cls(0x9A, "IP_CONFIGURATION", CcCluster::kApplication,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("Flags", T::kBitmask), p("IPv4Address", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("Flags", T::kBitmask), p("IPv4Address", T::kVariadic)}),
                        c(0x04, "RELEASE", D::kControlling),
                        c(0x05, "RENEW", D::kControlling),
                    }));

  out.push_back(cls(0x9D, "SILENCE_ALARM", CcCluster::kApplication,
                    {c(0x01, "SET", D::kControlling,
                       {p("Mode", T::kEnum, 0, 2), p("Seconds1"), p("Seconds2"),
                        p("AlarmBitmask", T::kVariadic)})}));

  out.push_back(cls(0xA0, "IR_REPEATER", CcCluster::kApplication,
                    {
                        c(0x01, "CAPABILITIES_GET", D::kControlling),
                        c(0x02, "CAPABILITIES_REPORT", D::kSupporting, {p("Flags", T::kBitmask)}),
                        c(0x03, "IR_CODE_LEARNING_START", D::kControlling, {p("CodeSlot")}),
                        c(0x04, "IR_CODE_LEARNING_STATUS", D::kSupporting,
                          {p("CodeSlot"), p("Status", T::kEnum, 0, 3)}),
                        c(0x05, "REPEAT", D::kControlling, {p("CodeSlot")}),
                    }));

  out.push_back(cls(0xA1, "AUTHENTICATION", CcCluster::kApplication,
                    {
                        c(0x01, "CAPABILITIES_GET", D::kControlling),
                        c(0x02, "CAPABILITIES_REPORT", D::kSupporting,
                          {p("Flags", T::kBitmask), p("TechnologiesSupported", T::kVariadic)}),
                        c(0x03, "DATA_SET", D::kControlling,
                          {p("SlotID1"), p("SlotID2"), p("Data", T::kVariadic)}),
                        c(0x04, "DATA_GET", D::kControlling, {p("SlotID1"), p("SlotID2")}),
                        c(0x05, "DATA_REPORT", D::kSupporting,
                          {p("SlotID1"), p("SlotID2"), p("Data", T::kVariadic)}),
                        c(0x06, "CHECKSUM_GET", D::kControlling),
                        c(0x07, "CHECKSUM_REPORT", D::kSupporting, {p("Checksum1"), p("Checksum2")}),
                    }));

  out.push_back(cls(0xA2, "AUTHENTICATION_MEDIA_WRITE", CcCluster::kApplication,
                    {
                        c(0x01, "START", D::kControlling, {p("SlotID1"), p("SlotID2")}),
                        c(0x02, "STOP", D::kControlling),
                        c(0x03, "STATUS", D::kSupporting, {p("Status", T::kEnum, 0, 2)}),
                    }));

  out.push_back(cls(0xA3, "GENERIC_SCHEDULE", CcCluster::kApplication,
                    {
                        c(0x01, "CAPABILITIES_GET", D::kControlling),
                        c(0x02, "CAPABILITIES_REPORT", D::kSupporting,
                          {p("NumberOfSlots1"), p("NumberOfSlots2"), p("Flags", T::kBitmask)}),
                        c(0x03, "TIME_RANGE_SET", D::kControlling,
                          {p("SlotID1"), p("SlotID2"), p("Range", T::kVariadic)}),
                        c(0x04, "TIME_RANGE_GET", D::kControlling, {p("SlotID1"), p("SlotID2")}),
                        c(0x05, "TIME_RANGE_REPORT", D::kSupporting,
                          {p("SlotID1"), p("SlotID2"), p("Range", T::kVariadic)}),
                    }));

  out.push_back(cls(0xEF, "MARK", CcCluster::kApplication, {}));

  // -------------------------------------------------------------------------
  // Gateway-side Z/IP classes (application cluster: they ride the IP side
  // of a gateway, not the RF application layer a controller must parse).
  // -------------------------------------------------------------------------
  out.push_back(cls(0x4F, "ZIP_6LOWPAN", CcCluster::kApplication,
                    {
                        c(0x01, "LOWPAN_FIRST_FRAGMENT", D::kControlling,
                          {p("DatagramSize1", T::kSize), p("DatagramSize2"), p("DatagramTag"),
                           p("Payload", T::kVariadic)}),
                        c(0x02, "LOWPAN_SUBSEQUENT_FRAGMENT", D::kControlling,
                          {p("DatagramSize1", T::kSize), p("DatagramSize2"), p("DatagramTag"),
                           p("Offset"), p("Payload", T::kVariadic)}),
                    }));

  out.push_back(cls(0x58, "ZIP_ND", CcCluster::kApplication,
                    {
                        c(0x01, "NODE_SOLICITATION", D::kControlling, {p("Reserved"), p("IPv6Address", T::kVariadic)}),
                        c(0x02, "NODE_ADVERTISEMENT", D::kSupporting,
                          {p("Flags", T::kBitmask), p("NodeID", T::kNodeId, 1, 232),
                           p("IPv6Address", T::kVariadic)}),
                        c(0x03, "INV_NODE_SOLICITATION", D::kControlling,
                          {p("Flags", T::kBitmask), p("NodeID", T::kNodeId, 1, 232)}),
                    }));

  out.push_back(cls(0x5F, "ZIP_GATEWAY", CcCluster::kApplication,
                    {
                        c(0x01, "MODE_SET", D::kControlling, {p("Mode", T::kEnum, 1, 2)}),
                        c(0x02, "MODE_GET", D::kControlling),
                        c(0x03, "MODE_REPORT", D::kSupporting, {p("Mode", T::kEnum, 1, 2)}),
                        c(0x04, "PEER_SET", D::kControlling,
                          {p("Speed", T::kEnum, 1, 3), p("PeerProfile", T::kVariadic)}),
                        c(0x05, "PEER_GET", D::kControlling, {p("PeerProfile")}),
                        c(0x06, "PEER_REPORT", D::kSupporting,
                          {p("PeerProfile"), p("PeerCount"), p("Profile", T::kVariadic)}),
                        c(0x07, "UNSOLICITED_DESTINATION_SET", D::kControlling,
                          {p("Destination", T::kVariadic)}),
                        c(0x08, "UNSOLICITED_DESTINATION_GET", D::kControlling),
                        c(0x09, "UNSOLICITED_DESTINATION_REPORT", D::kSupporting,
                          {p("Destination", T::kVariadic)}),
                    }));

  out.push_back(cls(0x61, "ZIP_PORTAL", CcCluster::kApplication,
                    {
                        c(0x01, "GATEWAY_CONFIGURATION_SET", D::kControlling,
                          {p("Configuration", T::kVariadic)}),
                        c(0x02, "GATEWAY_CONFIGURATION_STATUS", D::kSupporting,
                          {p("Status", T::kEnum, 0, 1)}),
                        c(0x03, "GATEWAY_CONFIGURATION_GET", D::kControlling),
                        c(0x04, "GATEWAY_CONFIGURATION_REPORT", D::kSupporting,
                          {p("Configuration", T::kVariadic)}),
                    }));

  out.push_back(cls(0x68, "ZIP_NAMING", CcCluster::kApplication,
                    {
                        c(0x01, "NAME_SET", D::kControlling, {p("Name", T::kVariadic)}),
                        c(0x02, "NAME_GET", D::kControlling),
                        c(0x03, "NAME_REPORT", D::kSupporting, {p("Name", T::kVariadic)}),
                        c(0x04, "LOCATION_SET", D::kControlling, {p("Location", T::kVariadic)}),
                        c(0x05, "LOCATION_GET", D::kControlling),
                        c(0x06, "LOCATION_REPORT", D::kSupporting, {p("Location", T::kVariadic)}),
                    }));

  // -------------------------------------------------------------------------
  // Actuator cluster (slave devices).
  // -------------------------------------------------------------------------
  out.push_back(cls(0x25, "SWITCH_BINARY", CcCluster::kActuator,
                    set_get_report(0x01, 0x02, 0x03, p("TargetValue", T::kBool, 0, 0xFF))));

  out.push_back(cls(0x26, "SWITCH_MULTILEVEL", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("Value", T::kByte, 0, 0xFF), p("DimmingDuration", T::kDuration)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("CurrentValue", T::kByte, 0, 0x63), p("TargetValue", T::kByte, 0, 0x63),
                           p("Duration", T::kDuration)}),
                        c(0x04, "START_LEVEL_CHANGE", D::kControlling,
                          {p("Flags", T::kBitmask), p("StartLevel", T::kByte, 0, 0x63),
                           p("DimmingDuration", T::kDuration)}),
                        c(0x05, "STOP_LEVEL_CHANGE", D::kControlling),
                        c(0x06, "SUPPORTED_GET", D::kControlling),
                        c(0x07, "SUPPORTED_REPORT", D::kSupporting,
                          {p("PrimarySwitchType", T::kEnum, 0, 7), p("SecondarySwitchType", T::kEnum, 0, 7)}),
                    }));

  out.push_back(cls(0x27, "SWITCH_ALL", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling, {p("Mode", T::kEnum, 0, 0xFF)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting, {p("Mode", T::kEnum, 0, 0xFF)}),
                        c(0x04, "ON", D::kControlling),
                        c(0x05, "OFF", D::kControlling),
                    }));

  out.push_back(cls(0x28, "SWITCH_TOGGLE_BINARY", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting, {p("Value", T::kBool, 0, 0xFF)}),
                    }));

  out.push_back(cls(0x29, "SWITCH_TOGGLE_MULTILEVEL", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting, {p("Value", T::kByte, 0, 0x63)}),
                        c(0x04, "START_LEVEL_CHANGE", D::kControlling,
                          {p("Flags", T::kBitmask), p("StartLevel", T::kByte, 0, 0x63)}),
                        c(0x05, "STOP_LEVEL_CHANGE", D::kControlling),
                    }));

  out.push_back(cls(0x2A, "CHIMNEY_FAN", CcCluster::kActuator,
                    {
                        c(0x01, "STATE_SET", D::kControlling, {p("State", T::kEnum, 0, 4)}),
                        c(0x02, "STATE_GET", D::kControlling),
                        c(0x03, "STATE_REPORT", D::kSupporting, {p("State", T::kEnum, 0, 4)}),
                        c(0x04, "SPEED_SET", D::kControlling, {p("Speed", T::kByte, 0, 0x63)}),
                        c(0x05, "SPEED_GET", D::kControlling),
                        c(0x06, "SPEED_REPORT", D::kSupporting, {p("Speed", T::kByte, 0, 0x63)}),
                    }));

  out.push_back(cls(0x2C, "SCENE_ACTUATOR_CONF", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("SceneID", T::kByte, 1, 255), p("DimmingDuration", T::kDuration),
                           p("Flags", T::kBitmask), p("Level", T::kByte, 0, 0xFF)}),
                        c(0x02, "GET", D::kControlling, {p("SceneID", T::kByte, 0, 255)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("SceneID", T::kByte, 1, 255), p("Level", T::kByte, 0, 0xFF),
                           p("DimmingDuration", T::kDuration)}),
                    }));

  out.push_back(cls(0x33, "SWITCH_COLOR", CcCluster::kActuator,
                    {
                        c(0x01, "SUPPORTED_GET", D::kControlling),
                        c(0x02, "SUPPORTED_REPORT", D::kSupporting,
                          {p("ColorMask1", T::kBitmask), p("ColorMask2", T::kBitmask)}),
                        c(0x03, "GET", D::kControlling, {p("ColorComponent", T::kEnum, 0, 9)}),
                        c(0x04, "REPORT", D::kSupporting,
                          {p("ColorComponent", T::kEnum, 0, 9), p("CurrentValue"),
                           p("TargetValue"), p("Duration", T::kDuration)}),
                        c(0x05, "SET", D::kControlling,
                          {p("ColorComponentCount", T::kSize, 1, 10), p("Components", T::kVariadic),
                           p("Duration", T::kDuration)}),
                        c(0x06, "START_LEVEL_CHANGE", D::kControlling,
                          {p("Flags", T::kBitmask), p("ColorComponent", T::kEnum, 0, 9),
                           p("StartLevel")}),
                        c(0x07, "STOP_LEVEL_CHANGE", D::kControlling, {p("ColorComponent", T::kEnum, 0, 9)}),
                    }));

  out.push_back(cls(0x39, "HRV_CONTROL", CcCluster::kActuator,
                    {
                        c(0x01, "MODE_SET", D::kControlling, {p("Mode", T::kEnum, 0, 4)}),
                        c(0x02, "MODE_GET", D::kControlling),
                        c(0x03, "MODE_REPORT", D::kSupporting, {p("Mode", T::kEnum, 0, 4)}),
                        c(0x04, "BYPASS_SET", D::kControlling, {p("Bypass", T::kByte, 0, 100)}),
                        c(0x05, "BYPASS_GET", D::kControlling),
                        c(0x06, "BYPASS_REPORT", D::kSupporting, {p("Bypass", T::kByte, 0, 100)}),
                        c(0x07, "VENTILATION_RATE_SET", D::kControlling, {p("Rate", T::kByte, 0, 100)}),
                        c(0x08, "VENTILATION_RATE_GET", D::kControlling),
                        c(0x09, "VENTILATION_RATE_REPORT", D::kSupporting, {p("Rate", T::kByte, 0, 100)}),
                    }));

  out.push_back(cls(0x40, "THERMOSTAT_MODE", CcCluster::kActuator,
                    typed_five(0x01, p("Mode", T::kEnum, 0, 0x1F))));

  out.push_back(cls(0x42, "THERMOSTAT_OPERATING_STATE", CcCluster::kActuator,
                    get_report(0x02, 0x03, {p("OperatingState", T::kEnum, 0, 0x0B)})));

  out.push_back(cls(0x43, "THERMOSTAT_SETPOINT", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("SetpointType", T::kEnum, 1, 0x0F), p("SizeScalePrecision", T::kBitmask),
                           p("Value", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling, {p("SetpointType", T::kEnum, 1, 0x0F)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("SetpointType", T::kEnum, 1, 0x0F), p("SizeScalePrecision", T::kBitmask),
                           p("Value", T::kVariadic)}),
                        c(0x04, "SUPPORTED_GET", D::kControlling),
                        c(0x05, "SUPPORTED_REPORT", D::kSupporting, {p("Bitmask", T::kBitmask)}),
                        c(0x09, "CAPABILITIES_GET", D::kControlling, {p("SetpointType", T::kEnum, 1, 0x0F)}),
                        c(0x0A, "CAPABILITIES_REPORT", D::kSupporting,
                          {p("SetpointType", T::kEnum, 1, 0x0F), p("MinMax", T::kVariadic)}),
                    }));

  out.push_back(cls(0x44, "THERMOSTAT_FAN_MODE", CcCluster::kActuator,
                    typed_five(0x01, p("FanMode", T::kEnum, 0, 0x0B))));

  out.push_back(cls(0x46, "CLIMATE_CONTROL_SCHEDULE", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("Weekday", T::kEnum, 1, 7), p("Switchpoints", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling, {p("Weekday", T::kEnum, 1, 7)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("Weekday", T::kEnum, 1, 7), p("Switchpoints", T::kVariadic)}),
                        c(0x04, "CHANGED_GET", D::kControlling),
                        c(0x05, "CHANGED_REPORT", D::kSupporting, {p("ChangeCounter")}),
                        c(0x06, "OVERRIDE_SET", D::kControlling,
                          {p("OverrideType", T::kEnum, 0, 2), p("OverrideState", T::kBitmask)}),
                        c(0x07, "OVERRIDE_GET", D::kControlling),
                        c(0x08, "OVERRIDE_REPORT", D::kSupporting,
                          {p("OverrideType", T::kEnum, 0, 2), p("OverrideState", T::kBitmask)}),
                    }));

  out.push_back(cls(0x47, "THERMOSTAT_SETBACK", CcCluster::kActuator,
                    set_get_report(0x01, 0x02, 0x03, p("SetbackState", T::kBitmask))));

  out.push_back(cls(0x50, "BASIC_WINDOW_COVERING", CcCluster::kActuator,
                    {
                        c(0x01, "START_LEVEL_CHANGE", D::kControlling, {p("Flags", T::kBitmask, 0, 0x40)}),
                        c(0x02, "STOP_LEVEL_CHANGE", D::kControlling),
                    }));

  out.push_back(cls(0x51, "MTP_WINDOW_COVERING", CcCluster::kActuator,
                    set_get_report(0x01, 0x02, 0x03, p("Value", T::kByte, 0, 100))));

  out.push_back(cls(0x62, "DOOR_LOCK", CcCluster::kActuator,
                    {
                        c(0x01, "OPERATION_SET", D::kControlling, {p("DoorLockMode", T::kEnum, 0x00, 0xFF)}),
                        c(0x02, "OPERATION_GET", D::kControlling),
                        c(0x03, "OPERATION_REPORT", D::kSupporting,
                          {p("DoorLockMode", T::kEnum, 0x00, 0xFF), p("HandlesMode", T::kBitmask),
                           p("DoorCondition", T::kBitmask, 0, 7),
                           p("TimeoutMinutes", T::kByte, 0, 0xFD), p("TimeoutSeconds", T::kByte, 0, 59)}),
                        c(0x04, "CONFIGURATION_SET", D::kControlling,
                          {p("OperationType", T::kEnum, 1, 2), p("HandlesState", T::kBitmask),
                           p("TimeoutMinutes", T::kByte, 0, 0xFD), p("TimeoutSeconds", T::kByte, 0, 59)}),
                        c(0x05, "CONFIGURATION_GET", D::kControlling),
                        c(0x06, "CONFIGURATION_REPORT", D::kSupporting,
                          {p("OperationType", T::kEnum, 1, 2), p("HandlesState", T::kBitmask),
                           p("TimeoutMinutes", T::kByte, 0, 0xFD), p("TimeoutSeconds", T::kByte, 0, 59)}),
                        c(0x07, "CAPABILITIES_GET", D::kControlling),
                        c(0x08, "CAPABILITIES_REPORT", D::kSupporting,
                          {p("SupportedOperations", T::kBitmask), p("SupportedModes", T::kVariadic)}),
                    }));

  out.push_back(cls(0x64, "HUMIDITY_CONTROL_SETPOINT", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("SetpointType", T::kEnum, 1, 2), p("SizeScalePrecision", T::kBitmask),
                           p("Value", T::kVariadic)}),
                        c(0x02, "GET", D::kControlling, {p("SetpointType", T::kEnum, 1, 2)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("SetpointType", T::kEnum, 1, 2), p("SizeScalePrecision", T::kBitmask),
                           p("Value", T::kVariadic)}),
                        c(0x04, "SUPPORTED_GET", D::kControlling),
                        c(0x05, "SUPPORTED_REPORT", D::kSupporting, {p("Bitmask", T::kBitmask)}),
                    }));

  out.push_back(cls(0x65, "DMX", CcCluster::kActuator,
                    {
                        c(0x01, "ADDRESS_SET", D::kControlling,
                          {p("PageID", T::kBitmask), p("ChannelID")}),
                        c(0x02, "ADDRESS_GET", D::kControlling),
                        c(0x03, "ADDRESS_REPORT", D::kSupporting,
                          {p("PageID", T::kBitmask), p("ChannelID")}),
                        c(0x04, "CAPABILITY_GET", D::kControlling, {p("ChannelID")}),
                        c(0x05, "CAPABILITY_REPORT", D::kSupporting,
                          {p("ChannelID"), p("PropertyID1"), p("PropertyID2"),
                           p("DeviceChannels"), p("MaxChannels")}),
                        c(0x06, "DATA", D::kControlling,
                          {p("Source"), p("Page", T::kBitmask), p("Sequence"), p("Data", T::kVariadic)}),
                    }));

  out.push_back(cls(0x66, "BARRIER_OPERATOR", CcCluster::kActuator,
                    {
                        c(0x01, "SET", D::kControlling, {p("TargetValue", T::kBool, 0, 0xFF)}),
                        c(0x02, "GET", D::kControlling),
                        c(0x03, "REPORT", D::kSupporting, {p("State", T::kByte, 0, 0xFF)}),
                        c(0x04, "SIGNAL_SUPPORTED_GET", D::kControlling),
                        c(0x05, "SIGNAL_SUPPORTED_REPORT", D::kSupporting, {p("Bitmask", T::kBitmask)}),
                        c(0x06, "SIGNAL_SET", D::kControlling,
                          {p("SubsystemType", T::kEnum, 1, 2), p("State", T::kBool, 0, 0xFF)}),
                        c(0x07, "SIGNAL_GET", D::kControlling, {p("SubsystemType", T::kEnum, 1, 2)}),
                        c(0x08, "SIGNAL_REPORT", D::kSupporting,
                          {p("SubsystemType", T::kEnum, 1, 2), p("State", T::kBool, 0, 0xFF)}),
                    }));

  out.push_back(cls(0x6A, "WINDOW_COVERING", CcCluster::kActuator,
                    {
                        c(0x01, "SUPPORTED_GET", D::kControlling),
                        c(0x02, "SUPPORTED_REPORT", D::kSupporting,
                          {p("ParameterMaskLength", T::kSize, 0, 15), p("ParameterMask", T::kVariadic)}),
                        c(0x03, "GET", D::kControlling, {p("ParameterID", T::kByte, 0, 25)}),
                        c(0x04, "REPORT", D::kSupporting,
                          {p("ParameterID", T::kByte, 0, 25), p("CurrentValue", T::kByte, 0, 100),
                           p("TargetValue", T::kByte, 0, 100), p("Duration", T::kDuration)}),
                        c(0x05, "SET", D::kControlling,
                          {p("ParameterCount", T::kSize, 1, 25), p("Parameters", T::kVariadic),
                           p("Duration", T::kDuration)}),
                        c(0x06, "START_LEVEL_CHANGE", D::kControlling,
                          {p("Flags", T::kBitmask, 0, 0x40), p("ParameterID", T::kByte, 0, 25),
                           p("Duration", T::kDuration)}),
                        c(0x07, "STOP_LEVEL_CHANGE", D::kControlling, {p("ParameterID", T::kByte, 0, 25)}),
                    }));

  out.push_back(cls(0x6B, "IRRIGATION", CcCluster::kActuator,
                    {
                        c(0x01, "SYSTEM_INFO_GET", D::kControlling),
                        c(0x02, "SYSTEM_INFO_REPORT", D::kSupporting,
                          {p("MasterValve", T::kBool, 0, 1), p("TotalValves", T::kByte, 1, 255),
                           p("ValveTables"), p("Flags", T::kBitmask)}),
                        c(0x03, "SYSTEM_STATUS_GET", D::kControlling),
                        c(0x04, "SYSTEM_STATUS_REPORT", D::kSupporting,
                          {p("SystemVoltage"), p("SensorStatus", T::kBitmask), p("Flags", T::kBitmask)}),
                        c(0x05, "VALVE_CONFIG_SET", D::kControlling,
                          {p("ValveIDAndMaster", T::kBitmask), p("Config", T::kVariadic)}),
                        c(0x06, "VALVE_CONFIG_GET", D::kControlling, {p("ValveIDAndMaster", T::kBitmask)}),
                        c(0x07, "VALVE_CONFIG_REPORT", D::kSupporting,
                          {p("ValveIDAndMaster", T::kBitmask), p("Config", T::kVariadic)}),
                        c(0x08, "VALVE_RUN", D::kControlling,
                          {p("ValveIDAndMaster", T::kBitmask), p("Duration1"), p("Duration2")}),
                    }));

  out.push_back(cls(0x6D, "HUMIDITY_CONTROL_MODE", CcCluster::kActuator,
                    typed_five(0x01, p("Mode", T::kEnum, 0, 3))));

  out.push_back(cls(0x76, "LOCK", CcCluster::kActuator,
                    set_get_report(0x01, 0x02, 0x03, p("LockState", T::kBool, 0, 1))));

  out.push_back(cls(0x79, "SOUND_SWITCH", CcCluster::kActuator,
                    {
                        c(0x01, "TONES_NUMBER_GET", D::kControlling),
                        c(0x02, "TONES_NUMBER_REPORT", D::kSupporting, {p("SupportedTones")}),
                        c(0x03, "TONE_INFO_GET", D::kControlling, {p("ToneIdentifier", T::kByte, 1, 255)}),
                        c(0x04, "TONE_INFO_REPORT", D::kSupporting,
                          {p("ToneIdentifier", T::kByte, 1, 255), p("ToneDuration1"),
                           p("ToneDuration2"), p("NameLength", T::kSize), p("Name", T::kVariadic)}),
                        c(0x05, "CONFIGURATION_SET", D::kControlling,
                          {p("Volume", T::kByte, 0, 100), p("DefaultToneIdentifier", T::kByte, 1, 255)}),
                        c(0x06, "CONFIGURATION_GET", D::kControlling),
                        c(0x07, "CONFIGURATION_REPORT", D::kSupporting,
                          {p("Volume", T::kByte, 0, 100), p("DefaultToneIdentifier", T::kByte, 1, 255)}),
                        c(0x08, "TONE_PLAY_SET", D::kControlling,
                          {p("ToneIdentifier", T::kByte, 0, 255), p("Volume", T::kByte, 0, 100)}),
                        c(0x09, "TONE_PLAY_GET", D::kControlling),
                        c(0x0A, "TONE_PLAY_REPORT", D::kSupporting,
                          {p("ToneIdentifier", T::kByte, 0, 255), p("Volume", T::kByte, 0, 100)}),
                    }));

  // -------------------------------------------------------------------------
  // Sensor cluster (slave devices).
  // -------------------------------------------------------------------------
  out.push_back(cls(0x2F, "SECURITY_PANEL_ZONE_SENSOR", CcCluster::kSensor,
                    {
                        c(0x01, "INSTALLED_GET", D::kControlling, {p("ZoneNumber", T::kByte, 1, 255)}),
                        c(0x02, "INSTALLED_REPORT", D::kSupporting,
                          {p("ZoneNumber", T::kByte, 1, 255), p("SensorCount")}),
                        c(0x03, "TYPE_GET", D::kControlling,
                          {p("ZoneNumber", T::kByte, 1, 255), p("SensorNumber", T::kByte, 1, 255)}),
                        c(0x04, "TYPE_REPORT", D::kSupporting,
                          {p("ZoneNumber", T::kByte, 1, 255), p("SensorNumber", T::kByte, 1, 255),
                           p("SensorType")}),
                        c(0x05, "STATE_GET", D::kControlling,
                          {p("ZoneNumber", T::kByte, 1, 255), p("SensorNumber", T::kByte, 1, 255)}),
                        c(0x06, "STATE_REPORT", D::kSupporting,
                          {p("ZoneNumber", T::kByte, 1, 255), p("SensorNumber", T::kByte, 1, 255),
                           p("SensorState", T::kEnum, 0, 0xFE)}),
                    }));

  out.push_back(cls(0x30, "SENSOR_BINARY", CcCluster::kSensor,
                    {
                        c(0x01, "SUPPORTED_GET", D::kControlling),
                        c(0x02, "GET", D::kControlling, {p("SensorType", T::kEnum, 0, 0x0D)}),
                        c(0x03, "REPORT", D::kSupporting,
                          {p("SensorValue", T::kBool, 0, 0xFF), p("SensorType", T::kEnum, 0, 0x0D)}),
                        c(0x04, "SUPPORTED_REPORT", D::kSupporting, {p("Bitmask", T::kBitmask)}),
                    }));

  out.push_back(cls(0x31, "SENSOR_MULTILEVEL", CcCluster::kSensor,
                    {
                        c(0x01, "SUPPORTED_GET_SENSOR", D::kControlling),
                        c(0x02, "SUPPORTED_SENSOR_REPORT", D::kSupporting, {p("Bitmask", T::kBitmask)}),
                        c(0x03, "SUPPORTED_GET_SCALE", D::kControlling, {p("SensorType", T::kEnum, 1, 0x57)}),
                        c(0x04, "GET", D::kControlling,
                          {p("SensorType", T::kEnum, 1, 0x57), p("Scale", T::kBitmask, 0, 0x18)}),
                        c(0x05, "REPORT", D::kSupporting,
                          {p("SensorType", T::kEnum, 1, 0x57), p("SizeScalePrecision", T::kBitmask),
                           p("SensorValue", T::kVariadic)}),
                        c(0x06, "SUPPORTED_SCALE_REPORT", D::kSupporting,
                          {p("SensorType", T::kEnum, 1, 0x57), p("ScaleBitmask", T::kBitmask, 0, 15)}),
                    }));

  out.push_back(cls(0x32, "METER", CcCluster::kSensor,
                    {
                        // 4 commands — matches Fig. 5.
                        c(0x01, "GET", D::kControlling, {p("ScaleAndRate", T::kBitmask)}),
                        c(0x02, "REPORT", D::kSupporting,
                          {p("MeterTypeAndRate", T::kBitmask), p("SizeScalePrecision", T::kBitmask),
                           p("MeterValue", T::kVariadic)}),
                        c(0x03, "SUPPORTED_GET", D::kControlling),
                        c(0x04, "SUPPORTED_REPORT", D::kSupporting,
                          {p("MeterTypeAndReset", T::kBitmask), p("ScaleSupported", T::kBitmask)}),
                    }));

  out.push_back(cls(0x35, "METER_PULSE", CcCluster::kSensor,
                    get_report(0x04, 0x05,
                               {p("PulseCount1"), p("PulseCount2"), p("PulseCount3"),
                                p("PulseCount4")})));

  out.push_back(cls(0x37, "HRV_STATUS", CcCluster::kSensor,
                    {
                        c(0x01, "GET", D::kControlling, {p("StatusParameter", T::kEnum, 0, 6)}),
                        c(0x02, "REPORT", D::kSupporting,
                          {p("StatusParameter", T::kEnum, 0, 6), p("SizeScalePrecision", T::kBitmask),
                           p("Value", T::kVariadic)}),
                        c(0x03, "SUPPORTED_GET", D::kControlling),
                        c(0x04, "SUPPORTED_REPORT", D::kSupporting, {p("Bitmask", T::kBitmask, 0, 0x7F)}),
                    }));

  out.push_back(cls(0x3C, "METER_TBL_CONFIG", CcCluster::kSensor,
                    {c(0x01, "TABLE_POINT_ADM_NO_SET", D::kControlling,
                       {p("NumberLength", T::kSize, 0, 31), p("AdminNumber", T::kVariadic)})}));

  out.push_back(cls(0x3D, "METER_TBL_MONITOR", CcCluster::kSensor,
                    {
                        c(0x01, "TABLE_POINT_ADM_NO_GET", D::kControlling),
                        c(0x02, "TABLE_POINT_ADM_NO_REPORT", D::kSupporting,
                          {p("NumberLength", T::kSize, 0, 31), p("AdminNumber", T::kVariadic)}),
                        c(0x03, "TABLE_ID_GET", D::kControlling),
                        c(0x04, "TABLE_ID_REPORT", D::kSupporting,
                          {p("IDLength", T::kSize, 0, 31), p("ID", T::kVariadic)}),
                        c(0x05, "TABLE_CAPABILITY_GET", D::kControlling),
                        c(0x06, "TABLE_REPORT", D::kSupporting,
                          {p("Flags", T::kBitmask), p("Dataset", T::kVariadic)}),
                        c(0x07, "TABLE_STATUS_TIME_GET", D::kControlling),
                        c(0x08, "TABLE_STATUS_REPORT", D::kSupporting,
                          {p("ReportsToFollow"), p("Status", T::kVariadic)}),
                        c(0x09, "TABLE_CURRENT_DATA_GET", D::kControlling, {p("SetID", T::kBitmask)}),
                        c(0x0A, "TABLE_CURRENT_DATA_REPORT", D::kSupporting,
                          {p("ReportsToFollow"), p("SetID", T::kBitmask), p("Data", T::kVariadic)}),
                    }));

  out.push_back(cls(0x3E, "METER_TBL_PUSH", CcCluster::kSensor,
                    {
                        c(0x01, "CONFIGURATION_SET", D::kControlling,
                          {p("Flags", T::kBitmask), p("PushDataset", T::kBitmask),
                           p("IntervalMonths", T::kByte, 0, 12), p("TargetNodeID", T::kNodeId, 0, 232)}),
                        c(0x02, "CONFIGURATION_GET", D::kControlling),
                        c(0x03, "CONFIGURATION_REPORT", D::kSupporting,
                          {p("Flags", T::kBitmask), p("PushDataset", T::kBitmask),
                           p("IntervalMonths", T::kByte, 0, 12), p("TargetNodeID", T::kNodeId, 0, 232)}),
                    }));

  out.push_back(cls(0x45, "THERMOSTAT_FAN_STATE", CcCluster::kSensor,
                    get_report(0x02, 0x03, {p("FanState", T::kEnum, 0, 0x0B)})));

  out.push_back(cls(0x48, "RATE_TBL_CONFIG", CcCluster::kSensor,
                    {
                        c(0x01, "SET", D::kControlling,
                          {p("RateParameterSetID"), p("Properties", T::kVariadic)}),
                        c(0x02, "REMOVE", D::kControlling,
                          {p("RateParameterSetIDs", T::kVariadic)}),
                    }));

  out.push_back(cls(0x49, "RATE_TBL_MONITOR", CcCluster::kSensor,
                    {
                        c(0x01, "SUPPORTED_GET", D::kControlling),
                        c(0x02, "SUPPORTED_REPORT", D::kSupporting,
                          {p("RatesSupported"), p("ParametersSupported", T::kBitmask)}),
                        c(0x03, "GET", D::kControlling, {p("RateParameterSetID")}),
                        c(0x04, "REPORT", D::kSupporting,
                          {p("RateParameterSetID"), p("Properties", T::kVariadic)}),
                        c(0x05, "ACTIVE_RATE_GET", D::kControlling),
                        c(0x06, "ACTIVE_RATE_REPORT", D::kSupporting, {p("RateParameterSetID")}),
                        c(0x07, "CURRENT_DATA_GET", D::kControlling, {p("DatasetRequested", T::kBitmask)}),
                        c(0x08, "CURRENT_DATA_REPORT", D::kSupporting,
                          {p("ReportsToFollow"), p("RateParameterSetID"), p("Dataset", T::kVariadic)}),
                    }));

  out.push_back(cls(0x4A, "TARIFF_CONFIG", CcCluster::kSensor,
                    {
                        c(0x01, "SUPPLIER_SET", D::kControlling, {p("Properties", T::kVariadic)}),
                        c(0x02, "SET", D::kControlling,
                          {p("RateParameterSetID"), p("Properties", T::kVariadic)}),
                        c(0x03, "REMOVE", D::kControlling, {p("RateParameterSetIDs", T::kVariadic)}),
                    }));

  out.push_back(cls(0x4B, "TARIFF_TBL_MONITOR", CcCluster::kSensor,
                    {
                        c(0x01, "SUPPLIER_GET", D::kControlling),
                        c(0x02, "SUPPLIER_REPORT", D::kSupporting, {p("Properties", T::kVariadic)}),
                        c(0x03, "GET", D::kControlling, {p("RateParameterSetID")}),
                        c(0x04, "REPORT", D::kSupporting,
                          {p("RateParameterSetID"), p("Properties", T::kVariadic)}),
                        c(0x05, "COST_GET", D::kControlling,
                          {p("RateParameterSetID"), p("StartYear1"), p("StartYear2"),
                           p("StopYear1"), p("StopYear2")}),
                        c(0x06, "COST_REPORT", D::kSupporting,
                          {p("RateParameterSetID"), p("CostPrecision", T::kBitmask),
                           p("CostValue", T::kVariadic)}),
                    }));

  out.push_back(cls(0x4C, "DOOR_LOCK_LOGGING", CcCluster::kSensor,
                    {
                        c(0x01, "RECORDS_SUPPORTED_GET", D::kControlling),
                        c(0x02, "RECORDS_SUPPORTED_REPORT", D::kSupporting, {p("MaxRecordsStored")}),
                        c(0x03, "RECORD_GET", D::kControlling, {p("RecordNumber")}),
                        c(0x04, "RECORD_REPORT", D::kSupporting,
                          {p("RecordNumber"), p("Record", T::kVariadic)}),
                    }));

  out.push_back(cls(0x4E, "SCHEDULE_ENTRY_LOCK", CcCluster::kSensor,
                    {
                        c(0x01, "ENABLE_SET", D::kControlling,
                          {p("UserIdentifier", T::kByte, 1, 255), p("Enabled", T::kBool, 0, 1)}),
                        c(0x02, "ENABLE_ALL_SET", D::kControlling, {p("Enabled", T::kBool, 0, 1)}),
                        c(0x03, "WEEK_DAY_SET", D::kControlling,
                          {p("SetAction", T::kBool, 0, 1), p("UserIdentifier", T::kByte, 1, 255),
                           p("ScheduleSlotID", T::kByte, 1, 255), p("Schedule", T::kVariadic)}),
                        c(0x04, "WEEK_DAY_GET", D::kControlling,
                          {p("UserIdentifier", T::kByte, 1, 255), p("ScheduleSlotID", T::kByte, 1, 255)}),
                        c(0x05, "WEEK_DAY_REPORT", D::kSupporting,
                          {p("UserIdentifier", T::kByte, 1, 255), p("ScheduleSlotID", T::kByte, 1, 255),
                           p("Schedule", T::kVariadic)}),
                        c(0x06, "YEAR_DAY_SET", D::kControlling,
                          {p("SetAction", T::kBool, 0, 1), p("UserIdentifier", T::kByte, 1, 255),
                           p("ScheduleSlotID", T::kByte, 1, 255), p("Schedule", T::kVariadic)}),
                        c(0x07, "YEAR_DAY_GET", D::kControlling,
                          {p("UserIdentifier", T::kByte, 1, 255), p("ScheduleSlotID", T::kByte, 1, 255)}),
                        c(0x08, "YEAR_DAY_REPORT", D::kSupporting,
                          {p("UserIdentifier", T::kByte, 1, 255), p("ScheduleSlotID", T::kByte, 1, 255),
                           p("Schedule", T::kVariadic)}),
                        c(0x09, "SUPPORTED_GET", D::kControlling),
                        c(0x0A, "SUPPORTED_REPORT", D::kSupporting,
                          {p("WeekDaySlots"), p("YearDaySlots")}),
                    }));

  out.push_back(cls(0x6E, "HUMIDITY_CONTROL_OPERATING_STATE", CcCluster::kSensor,
                    get_report(0x01, 0x02, {p("OperatingState", T::kEnum, 0, 2)})));

  out.push_back(cls(0x90, "ENERGY_PRODUCTION", CcCluster::kSensor,
                    get_report(0x02, 0x03,
                               {p("ParameterNumber", T::kEnum, 0, 3),
                                p("SizeScalePrecision", T::kBitmask), p("Value", T::kVariadic)})));

  out.push_back(cls(0x9C, "SENSOR_ALARM", CcCluster::kSensor,
                    {
                        c(0x01, "GET", D::kControlling, {p("SensorType", T::kEnum, 0, 0xFF)}),
                        c(0x02, "REPORT", D::kSupporting,
                          {p("SourceNodeID", T::kNodeId, 0, 232), p("SensorType", T::kEnum, 0, 0xFF),
                           p("SensorState", T::kBool, 0, 0xFF), p("Seconds1"), p("Seconds2")}),
                        c(0x03, "SUPPORTED_GET", D::kControlling),
                        c(0x04, "SUPPORTED_REPORT", D::kSupporting,
                          {p("BitmaskLength", T::kSize, 0, 31), p("Bitmask", T::kVariadic)}),
                    }));

  out.push_back(cls(0x9E, "SENSOR_CONFIGURATION", CcCluster::kSensor,
                    {
                        c(0x01, "TRIGGER_LEVEL_SET", D::kControlling,
                          {p("Flags", T::kBitmask), p("SensorType", T::kEnum, 1, 0x57),
                           p("SizeScalePrecision", T::kBitmask), p("TriggerValue", T::kVariadic)}),
                        c(0x02, "TRIGGER_LEVEL_GET", D::kControlling),
                        c(0x03, "TRIGGER_LEVEL_REPORT", D::kSupporting,
                          {p("SensorType", T::kEnum, 1, 0x57), p("SizeScalePrecision", T::kBitmask),
                           p("TriggerValue", T::kVariadic)}),
                    }));

  return out;
}

}  // namespace zc::zwave
