// Mesh routing: the routed-frame header carried when the MAC frame's
// routed flag (P1 bit 7) is set — the "routing information" half of the
// frame-control bytes in Fig. 1.
//
// Layout at the front of the MAC payload:
//   [status, hop_and_count, repeater_1 ... repeater_N, application payload]
// where status bit0 marks a response (return route) frame, the high nibble
// of hop_and_count is the index of the next repeater to act, and the low
// nibble is the repeater count (1..4).
#pragma once

#include <vector>

#include "common/result.h"
#include "zwave/frame.h"

namespace zc::zwave {

constexpr std::size_t kMaxRepeaters = 4;

struct RouteHeader {
  bool response = false;             // travelling back along the route
  std::uint8_t hop_index = 0;        // next repeater to relay (== count: done)
  std::vector<NodeId> repeaters;     // 1..4 hops

  Bytes encode() const;

  /// True when every repeater has relayed and the destination may consume.
  bool complete() const { return hop_index >= repeaters.size(); }

  /// The reversed route a response should take.
  RouteHeader reversed() const;
};

/// Splits a routed MAC payload into its route header and the inner
/// application payload.
struct RoutedPayload {
  RouteHeader route;
  Bytes app_payload;
};
Result<RoutedPayload> split_routed_payload(ByteView payload);

/// Builds a routed singlecast: the app payload prefixed with the header,
/// routed flag set.
MacFrame make_routed_singlecast(HomeId home, NodeId src, NodeId dst,
                                const RouteHeader& route, const AppPayload& app,
                                std::uint8_t sequence = 0, bool ack_requested = false);

}  // namespace zc::zwave
