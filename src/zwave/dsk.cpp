#include "zwave/dsk.h"

#include <algorithm>
#include <cstdio>

namespace zc::zwave {

std::string format_dsk(const Dsk& dsk) {
  std::string out;
  out.reserve(8 * 6);
  for (int group = 0; group < 8; ++group) {
    const std::uint16_t value =
        static_cast<std::uint16_t>((dsk[static_cast<std::size_t>(group * 2)] << 8) |
                                   dsk[static_cast<std::size_t>(group * 2 + 1)]);
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%05u", value);
    if (group != 0) out.push_back('-');
    out += buf;
  }
  return out;
}

std::optional<Dsk> parse_dsk(const std::string& text) {
  Dsk dsk{};
  int group = 0;
  std::size_t i = 0;
  while (group < 8) {
    // Skip separators / whitespace.
    while (i < text.size() && (text[i] == '-' || text[i] == ' ')) ++i;
    if (i >= text.size()) return std::nullopt;
    // Read exactly five digits.
    std::uint32_t value = 0;
    int digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      value = value * 10 + static_cast<std::uint32_t>(text[i] - '0');
      ++digits;
      ++i;
    }
    if (digits != 5 || value > 0xFFFF) return std::nullopt;
    dsk[static_cast<std::size_t>(group * 2)] = static_cast<std::uint8_t>(value >> 8);
    dsk[static_cast<std::size_t>(group * 2 + 1)] = static_cast<std::uint8_t>(value);
    ++group;
  }
  // Trailing garbage (beyond separators/space) invalidates the label.
  while (i < text.size()) {
    if (text[i] != '-' && text[i] != ' ') return std::nullopt;
    ++i;
  }
  return dsk;
}

Dsk dsk_from_public_key(const crypto::X25519Key& public_key) {
  Dsk dsk{};
  std::copy_n(public_key.begin(), dsk.size(), dsk.begin());
  return dsk;
}

std::uint16_t dsk_pin(const Dsk& dsk) {
  return static_cast<std::uint16_t>((dsk[0] << 8) | dsk[1]);
}

}  // namespace zc::zwave
