#include "zwave/transport_service.h"

#include <algorithm>

namespace zc::zwave {

std::vector<AppPayload> segment_datagram(ByteView datagram, std::uint8_t session_id,
                                         std::size_t max_segment_payload) {
  std::vector<AppPayload> segments;
  if (datagram.empty() || datagram.size() > 0xFF) return segments;
  const std::uint8_t total = static_cast<std::uint8_t>(datagram.size());

  std::size_t offset = 0;
  bool first = true;
  while (offset < datagram.size()) {
    const std::size_t chunk = std::min(max_segment_payload, datagram.size() - offset);
    AppPayload segment;
    segment.cmd_class = kTransportServiceClass;
    if (first) {
      segment.command = kTsFirstSegment;
      segment.params = {total, session_id};
    } else {
      segment.command = kTsSubsequentSegment;
      segment.params = {total, session_id, static_cast<std::uint8_t>(offset)};
    }
    segment.params.insert(segment.params.end(), datagram.begin() + static_cast<std::ptrdiff_t>(offset),
                          datagram.begin() + static_cast<std::ptrdiff_t>(offset + chunk));
    segments.push_back(std::move(segment));
    offset += chunk;
    first = false;
  }
  return segments;
}

AppPayload TransportReassembler::make_reply(CommandId cmd, Bytes params) {
  AppPayload reply;
  reply.cmd_class = kTransportServiceClass;
  reply.command = cmd;
  reply.params = std::move(params);
  return reply;
}

void TransportReassembler::expire_stale(SimTime now) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_activity > limits_.session_timeout) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<ReassemblyReaction> TransportReassembler::feed(const AppPayload& segment, NodeId src,
                                                      SimTime now) {
  if (segment.cmd_class != kTransportServiceClass) {
    return Error{Errc::kBadField, "not a Transport Service payload"};
  }
  expire_stale(now);

  const bool is_first = segment.command == kTsFirstSegment;
  const bool is_subsequent = segment.command == kTsSubsequentSegment;
  if (!is_first && !is_subsequent) {
    // Control commands (REQUEST/COMPLETE/WAIT) carry no data to reassemble.
    return ReassemblyReaction{};
  }

  const std::size_t header = is_first ? 2u : 3u;
  if (segment.params.size() <= header) {
    return Error{Errc::kTruncated, "segment shorter than its header"};
  }
  const std::size_t datagram_size = segment.params[0];
  const std::uint8_t session_id = segment.params[1];
  const std::size_t offset = is_first ? 0u : segment.params[2];
  const std::size_t chunk = segment.params.size() - header;

  if (datagram_size == 0 || datagram_size > limits_.max_datagram) {
    return Error{Errc::kBadLength, "datagram size out of bounds"};
  }
  if (offset + chunk > datagram_size) {
    return Error{Errc::kBadLength, "segment overflows the declared datagram"};
  }

  const auto key = std::make_pair(src, session_id);
  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    if (!is_first) {
      // Lost the first segment: ask for the start of the datagram.
      ReassemblyReaction reaction;
      reaction.reply = make_reply(kTsSegmentRequest, {session_id, 0x00});
      return reaction;
    }
    if (sessions_.size() >= limits_.max_sessions) {
      ReassemblyReaction reaction;
      reaction.reply = make_reply(kTsSegmentWait, {static_cast<std::uint8_t>(sessions_.size())});
      return reaction;
    }
    Session session;
    session.datagram_size = datagram_size;
    session.data.assign(datagram_size, 0x00);
    session.received.assign(datagram_size, false);
    it = sessions_.emplace(key, std::move(session)).first;
  }

  Session& session = it->second;
  if (session.datagram_size != datagram_size) {
    // Conflicting declarations: drop the session, treat as a fresh start.
    sessions_.erase(it);
    return Error{Errc::kBadField, "datagram size changed mid-session"};
  }
  session.last_activity = now;
  for (std::size_t i = 0; i < chunk; ++i) {
    session.data[offset + i] = segment.params[header + i];
    session.received[offset + i] = true;
  }

  // Complete?
  const auto first_missing =
      std::find(session.received.begin(), session.received.end(), false);
  ReassemblyReaction reaction;
  if (first_missing == session.received.end()) {
    reaction.completed = session.data;
    reaction.reply = make_reply(kTsSegmentComplete, {session_id});
    sessions_.erase(it);
    return reaction;
  }
  // After a subsequent segment, nudge the sender about the earliest gap —
  // only when the gap is *behind* this segment (out-of-order arrival).
  const std::size_t missing_at =
      static_cast<std::size_t>(first_missing - session.received.begin());
  if (is_subsequent && missing_at < offset) {
    reaction.reply = make_reply(
        kTsSegmentRequest, {session_id, static_cast<std::uint8_t>(missing_at)});
  }
  return reaction;
}

}  // namespace zc::zwave
