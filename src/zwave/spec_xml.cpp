#include "zwave/spec_xml.h"

#include <cctype>
#include <cstdio>
#include <map>

namespace zc::zwave {

namespace {

std::string hex_attr(std::uint8_t value) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%02X", value);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal XML tokenizer: enough for attribute-only elements with nesting.
// ---------------------------------------------------------------------------

struct Tag {
  std::string name;
  std::map<std::string, std::string> attrs;
  bool closing = false;      // </name>
  bool self_closing = false; // <name ... />
};

class XmlScanner {
 public:
  explicit XmlScanner(const std::string& text) : text_(text) {}

  /// Returns the next tag, std::nullopt at end, or an error.
  Result<bool> next(Tag& out) {
    // Skip character data between tags.
    while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
    if (pos_ >= text_.size()) return false;
    const std::size_t end = text_.find('>', pos_);
    if (end == std::string::npos) {
      return Error{Errc::kBadField, "unterminated tag"};
    }
    std::string body = text_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;

    out = Tag{};
    if (!body.empty() && body.front() == '?') return next(out);  // declaration
    if (!body.empty() && body.front() == '!') return next(out);  // comment
    if (!body.empty() && body.front() == '/') {
      out.closing = true;
      body.erase(body.begin());
    }
    if (!body.empty() && body.back() == '/') {
      out.self_closing = true;
      body.pop_back();
    }

    std::size_t i = 0;
    auto skip_ws = [&] {
      while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    };
    skip_ws();
    const std::size_t name_start = i;
    while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    out.name = body.substr(name_start, i - name_start);
    if (out.name.empty()) return Error{Errc::kBadField, "empty tag name"};

    while (true) {
      skip_ws();
      if (i >= body.size()) break;
      const std::size_t key_start = i;
      while (i < body.size() && body[i] != '=' &&
             !std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      const std::string key = body.substr(key_start, i - key_start);
      skip_ws();
      if (i >= body.size() || body[i] != '=') {
        return Error{Errc::kBadField, "attribute '" + key + "' missing '='"};
      }
      ++i;
      skip_ws();
      if (i >= body.size() || body[i] != '"') {
        return Error{Errc::kBadField, "attribute '" + key + "' missing opening quote"};
      }
      ++i;
      const std::size_t value_start = i;
      while (i < body.size() && body[i] != '"') ++i;
      if (i >= body.size()) {
        return Error{Errc::kBadField, "attribute '" + key + "' missing closing quote"};
      }
      out.attrs[key] = body.substr(value_start, i - value_start);
      ++i;
    }
    return true;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

Result<std::uint8_t> byte_attr(const Tag& tag, const std::string& key) {
  const auto it = tag.attrs.find(key);
  if (it == tag.attrs.end()) {
    return Error{Errc::kBadField, "<" + tag.name + "> missing attribute '" + key + "'"};
  }
  const unsigned long value = std::strtoul(it->second.c_str(), nullptr, 0);
  if (value > 0xFF) {
    return Error{Errc::kBadField, "attribute '" + key + "' out of byte range"};
  }
  return static_cast<std::uint8_t>(value);
}

Result<std::string> string_attr(const Tag& tag, const std::string& key) {
  const auto it = tag.attrs.find(key);
  if (it == tag.attrs.end()) {
    return Error{Errc::kBadField, "<" + tag.name + "> missing attribute '" + key + "'"};
  }
  return it->second;
}

}  // namespace

Result<CcCluster> cluster_from_name(const std::string& name) {
  for (CcCluster cluster :
       {CcCluster::kApplication, CcCluster::kTransportEncapsulation, CcCluster::kManagement,
        CcCluster::kNetwork, CcCluster::kSensor, CcCluster::kActuator, CcCluster::kProtocol}) {
    if (name == cc_cluster_name(cluster)) return cluster;
  }
  return Error{Errc::kBadField, "unknown cluster '" + name + "'"};
}

Result<ParamType> param_type_from_name(const std::string& name) {
  for (ParamType type : {ParamType::kByte, ParamType::kBool, ParamType::kEnum,
                         ParamType::kNodeId, ParamType::kSize, ParamType::kDuration,
                         ParamType::kBitmask, ParamType::kVariadic}) {
    if (name == param_type_name(type)) return type;
  }
  return Error{Errc::kBadField, "unknown param type '" + name + "'"};
}

std::string export_class_xml(const CommandClassSpec& spec) {
  std::string out;
  out += "  <cmd_class key=\"" + hex_attr(spec.id) + "\" name=\"" + std::string(spec.name) +
         "\" cluster=\"" + cc_cluster_name(spec.cluster) + "\" public=\"" +
         (spec.in_public_spec ? "true" : "false") + "\">\n";
  for (const auto& command : spec.commands) {
    out += "    <cmd key=\"" + hex_attr(command.id) + "\" name=\"" +
           std::string(command.name) + "\" direction=\"" +
           (command.direction == CmdDirection::kControlling ? "controlling" : "supporting") +
           "\"";
    if (command.params.empty()) {
      out += "/>\n";
      continue;
    }
    out += ">\n";
    for (const auto& param : command.params) {
      out += "      <param name=\"" + std::string(param.name) + "\" type=\"" +
             param_type_name(param.type) + "\" min=\"" + hex_attr(param.min) + "\" max=\"" +
             hex_attr(param.max) + "\"/>\n";
    }
    out += "    </cmd>\n";
  }
  out += "  </cmd_class>\n";
  return out;
}

std::string export_spec_xml(const SpecDatabase& db) {
  std::string out = "<?xml version=\"1.0\"?>\n<zw_classes version=\"1\">\n";
  for (const auto& spec : db.all()) out += export_class_xml(spec);
  out += "</zw_classes>\n";
  return out;
}

Result<std::vector<ParsedClass>> parse_spec_xml(const std::string& xml) {
  XmlScanner scanner(xml);
  std::vector<ParsedClass> classes;
  std::map<CommandClassId, bool> seen;

  ParsedClass* current_class = nullptr;
  ParsedCommand* current_command = nullptr;

  Tag tag;
  while (true) {
    auto more = scanner.next(tag);
    if (!more.ok()) return more.error();
    if (!more.value()) break;

    if (tag.name == "zw_classes") continue;

    if (tag.name == "cmd_class") {
      if (tag.closing) {
        current_class = nullptr;
        current_command = nullptr;
        continue;
      }
      auto key = byte_attr(tag, "key");
      auto name = string_attr(tag, "name");
      auto cluster_name = string_attr(tag, "cluster");
      if (!key.ok()) return key.error();
      if (!name.ok()) return name.error();
      if (!cluster_name.ok()) return cluster_name.error();
      auto cluster = cluster_from_name(cluster_name.value());
      if (!cluster.ok()) return cluster.error();
      if (seen[key.value()]) {
        return Error{Errc::kBadField, "duplicate cmd_class key " + hex_attr(key.value())};
      }
      seen[key.value()] = true;

      ParsedClass parsed;
      parsed.id = key.value();
      parsed.name = name.value();
      parsed.cluster = cluster.value();
      const auto pub = tag.attrs.find("public");
      parsed.in_public_spec = pub == tag.attrs.end() || pub->second == "true";
      classes.push_back(std::move(parsed));
      current_class = tag.self_closing ? nullptr : &classes.back();
      current_command = nullptr;
      continue;
    }

    if (tag.name == "cmd") {
      if (tag.closing) {
        current_command = nullptr;
        continue;
      }
      if (current_class == nullptr) {
        return Error{Errc::kBadField, "<cmd> outside <cmd_class>"};
      }
      auto key = byte_attr(tag, "key");
      auto name = string_attr(tag, "name");
      auto direction = string_attr(tag, "direction");
      if (!key.ok()) return key.error();
      if (!name.ok()) return name.error();
      if (!direction.ok()) return direction.error();

      ParsedCommand command;
      command.id = key.value();
      command.name = name.value();
      if (direction.value() == "controlling") {
        command.direction = CmdDirection::kControlling;
      } else if (direction.value() == "supporting") {
        command.direction = CmdDirection::kSupporting;
      } else {
        return Error{Errc::kBadField, "unknown direction '" + direction.value() + "'"};
      }
      current_class->commands.push_back(std::move(command));
      current_command = tag.self_closing ? nullptr : &current_class->commands.back();
      continue;
    }

    if (tag.name == "param") {
      if (tag.closing) continue;
      if (current_command == nullptr) {
        return Error{Errc::kBadField, "<param> outside <cmd>"};
      }
      auto name = string_attr(tag, "name");
      auto type_name = string_attr(tag, "type");
      auto min = byte_attr(tag, "min");
      auto max = byte_attr(tag, "max");
      if (!name.ok()) return name.error();
      if (!type_name.ok()) return type_name.error();
      if (!min.ok()) return min.error();
      if (!max.ok()) return max.error();
      auto type = param_type_from_name(type_name.value());
      if (!type.ok()) return type.error();
      if (min.value() > max.value()) {
        return Error{Errc::kBadField, "param '" + name.value() + "' has min > max"};
      }
      current_command->params.push_back(
          ParsedParam{name.value(), type.value(), min.value(), max.value()});
      continue;
    }

    return Error{Errc::kBadField, "unexpected tag <" + tag.name + ">"};
  }
  return classes;
}

bool parsed_matches_spec(const ParsedClass& parsed, const CommandClassSpec& spec) {
  if (parsed.id != spec.id || parsed.name != spec.name || parsed.cluster != spec.cluster ||
      parsed.in_public_spec != spec.in_public_spec ||
      parsed.commands.size() != spec.commands.size()) {
    return false;
  }
  for (std::size_t i = 0; i < parsed.commands.size(); ++i) {
    const auto& pc = parsed.commands[i];
    const auto& sc = spec.commands[i];
    if (pc.id != sc.id || pc.name != sc.name || pc.direction != sc.direction ||
        pc.params.size() != sc.params.size()) {
      return false;
    }
    for (std::size_t j = 0; j < pc.params.size(); ++j) {
      const auto& pp = pc.params[j];
      const auto& sp = sc.params[j];
      if (pp.name != sp.name || pp.type != sp.type || pp.min != sp.min || pp.max != sp.max) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace zc::zwave
