// Multicast addressing (header type 0x2): one frame, many destinations.
//
// The payload is prefixed with a node bitmask:
//   [ mask_len | mask bytes... | application payload ]
// where bit (id-1) of the mask selects node id. Multicast frames are never
// acknowledged and never carry routing — constraints the MAC quirks and
// the IDS rules key on.
#pragma once

#include <vector>

#include "common/result.h"
#include "zwave/frame.h"

namespace zc::zwave {

constexpr std::size_t kMaxMulticastMask = 29;  // 232 node ids / 8

/// Builds the bitmask prefix for a destination set.
Bytes encode_multicast_mask(const std::vector<NodeId>& destinations);

/// Splits a multicast payload into destinations and the inner payload.
struct MulticastPayload {
  std::vector<NodeId> destinations;
  Bytes app_payload;

  bool addresses(NodeId node) const;
};
Result<MulticastPayload> split_multicast_payload(ByteView payload);

/// Builds a complete multicast frame (DST carries the broadcast id; the
/// real addressing lives in the mask).
MacFrame make_multicast(HomeId home, NodeId src, const std::vector<NodeId>& destinations,
                        const AppPayload& app, std::uint8_t sequence = 0);

}  // namespace zc::zwave
