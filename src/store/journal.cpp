#include "store/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace zc::store {

namespace {

constexpr char kMagic[8] = {'Z', 'C', 'J', 'R', 'N', 'L', '1', '\n'};
constexpr std::uint8_t kRecordVersion = 1;
/// Fixed body size before the variable payload: version/device/kind/flags
/// (4) + cc/cmd/param0 (6) + bug_id (4) + detected_at/seed (16) +
/// shard_id (4) + payload_len (2).
constexpr std::size_t kBodyFixedSize = 36;
/// Frames larger than any sane finding are treated as torn length words so
/// a corrupted length prefix cannot make recovery chase gigabytes of tail.
constexpr std::uint32_t kMaxBodyLen = 64 * 1024;

struct Crc32Table {
  std::uint32_t entries[256];
  constexpr Crc32Table() : entries() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[i] = c;
    }
  }
};
constexpr Crc32Table kCrcTable;

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

bool fsync_file(std::FILE* file) {
#ifdef _WIN32
  return std::fflush(file) == 0;
#else
  return std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
#endif
}

}  // namespace

std::uint32_t crc32(ByteView data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) c = kCrcTable.entries[(c ^ byte) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* journal_error_name(JournalError error) {
  switch (error) {
    case JournalError::kNone: return "none";
    case JournalError::kIoError: return "io-error";
    case JournalError::kBadMagic: return "bad-magic";
    case JournalError::kUnknownVersion: return "unknown-version";
  }
  return "?";
}

Bytes encode_record_body(const FindingRecord& record) {
  Bytes body;
  body.reserve(kBodyFixedSize + record.payload.size());
  body.push_back(kRecordVersion);
  body.push_back(record.device);
  body.push_back(record.kind);
  body.push_back(record.flags);  // bit 0: corpus seed; remaining bits reserved
  put_u16(body, record.cc);
  put_u16(body, record.cmd);
  put_u16(body, record.param0);
  put_u32(body, static_cast<std::uint32_t>(record.bug_id));
  put_u64(body, record.detected_at);
  put_u64(body, record.campaign_seed);
  put_u32(body, record.shard_id);
  put_u16(body, static_cast<std::uint16_t>(record.payload.size()));
  body.insert(body.end(), record.payload.begin(), record.payload.end());
  return body;
}

std::optional<FindingRecord> decode_record_body(ByteView body) {
  if (body.size() < kBodyFixedSize) return std::nullopt;
  const std::uint8_t* p = body.data();
  // Unknown record version: the caller must reject the file whole — a
  // crc-valid record we cannot interpret is future data, not noise.
  if (p[0] != kRecordVersion) return std::nullopt;
  FindingRecord record;
  record.device = p[1];
  record.kind = p[2];
  record.flags = p[3];  // unknown high bits tolerated (reserved for v1 readers)
  record.cc = get_u16(p + 4);
  record.cmd = get_u16(p + 6);
  record.param0 = get_u16(p + 8);
  record.bug_id = static_cast<std::int32_t>(get_u32(p + 10));
  record.detected_at = get_u64(p + 14);
  record.campaign_seed = get_u64(p + 22);
  record.shard_id = get_u32(p + 30);
  const std::uint16_t payload_len = get_u16(p + 34);
  if (body.size() != kBodyFixedSize + payload_len) return std::nullopt;
  record.payload.assign(p + kBodyFixedSize, p + kBodyFixedSize + payload_len);
  return record;
}

FindingsJournal::~FindingsJournal() { close(); }

bool FindingsJournal::open(const std::string& path, JournalConfig config) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) return false;  // already open
  config_ = config;
  error_ = JournalError::kNone;
  recovery_ = RecoveryStats{};
  records_.clear();
  keys_.clear();
  unsynced_ = 0;
  if (!recover_locked(path)) {
    records_.clear();
    keys_.clear();
    return false;
  }
  path_ = path;
  return true;
}

bool FindingsJournal::recover_locked(const std::string& path) {
  // Read whatever exists today (a missing file is a fresh journal).
  Bytes contents;
  if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      contents.insert(contents.end(), buf, buf + n);
    }
    const bool read_ok = std::ferror(in) == 0;
    std::fclose(in);
    if (!read_ok) {
      error_ = JournalError::kIoError;
      return false;
    }
  }

  std::size_t valid_end = 0;
  if (!contents.empty()) {
    // A file too short for the magic is a torn creation; anything with 8+
    // bytes must start with OUR magic. "ZCJRNL2\n" and friends are future
    // journals — reject, never truncate someone else's valid data.
    if (contents.size() >= sizeof(kMagic) &&
        std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
      error_ = std::memcmp(contents.data(), kMagic, 6) == 0 ? JournalError::kUnknownVersion
                                                            : JournalError::kBadMagic;
      return false;
    }
    if (contents.size() >= sizeof(kMagic)) {
      valid_end = sizeof(kMagic);
      std::size_t cursor = valid_end;
      while (true) {
        if (contents.size() - cursor < 8) break;  // torn frame header
        const std::uint32_t body_len = get_u32(contents.data() + cursor);
        const std::uint32_t stored_crc = get_u32(contents.data() + cursor + 4);
        if (body_len > kMaxBodyLen) break;                    // torn length word
        if (contents.size() - cursor - 8 < body_len) break;   // torn body
        const ByteView body(contents.data() + cursor + 8, body_len);
        if (crc32(body) != stored_crc) break;  // torn/corrupt body
        const auto record = decode_record_body(body);
        if (!record.has_value()) {
          // crc-valid but uninterpretable: a future record version. The
          // whole file is off-limits (see header comment).
          error_ = JournalError::kUnknownVersion;
          return false;
        }
        keys_.insert(record->key());
        records_.push_back(std::move(*record));
        cursor += 8 + body_len;
        valid_end = cursor;
      }
    }
    recovery_.records_recovered = records_.size();
    recovery_.bytes_truncated = contents.size() - valid_end;
  }

  // Rewrite-free truncation: reopen in r+ (keeps the valid prefix), chop
  // the torn tail, and append from there. A fresh/empty file instead gets
  // created and stamped with the magic.
  if (valid_end > 0) {
    file_ = std::fopen(path.c_str(), "rb+");
    if (file_ == nullptr) {
      error_ = JournalError::kIoError;
      return false;
    }
    if (recovery_.bytes_truncated > 0) {
#ifdef _WIN32
      const bool truncated = false;
#else
      const bool truncated = ::ftruncate(::fileno(file_), static_cast<off_t>(valid_end)) == 0;
#endif
      if (!truncated) {
        std::fclose(file_);
        file_ = nullptr;
        error_ = JournalError::kIoError;
        return false;
      }
    }
    if (std::fseek(file_, static_cast<long>(valid_end), SEEK_SET) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      error_ = JournalError::kIoError;
      return false;
    }
    return true;
  }

  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    error_ = JournalError::kIoError;
    return false;
  }
  if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) != sizeof(kMagic) ||
      !fsync_file(file_)) {
    std::fclose(file_);
    file_ = nullptr;
    error_ = JournalError::kIoError;
    return false;
  }
  return true;
}

FindingsJournal::AppendOutcome FindingsJournal::append(const FindingRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return append_locked(record, /*allow_fsync=*/true);
}

std::size_t FindingsJournal::append_batch(const std::vector<FindingRecord>& batch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t appended = 0;
  for (const FindingRecord& record : batch) {
    const AppendOutcome outcome = append_locked(record, /*allow_fsync=*/false);
    if (outcome == AppendOutcome::kError) break;
    if (outcome == AppendOutcome::kAppended) ++appended;
  }
  if (appended > 0 && file_ != nullptr) {
    unsynced_ = 0;
    if (!fsync_file(file_)) error_ = JournalError::kIoError;
  }
  return appended;
}

FindingsJournal::AppendOutcome FindingsJournal::append_locked(const FindingRecord& record,
                                                              bool allow_fsync) {
  if (file_ == nullptr) return AppendOutcome::kError;
  if (!keys_.insert(record.key()).second) return AppendOutcome::kDuplicate;

  const Bytes body = encode_record_body(record);
  Bytes frame;
  frame.reserve(8 + body.size());
  put_u32(frame, static_cast<std::uint32_t>(body.size()));
  put_u32(frame, crc32(ByteView(body.data(), body.size())));
  frame.insert(frame.end(), body.begin(), body.end());

  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    error_ = JournalError::kIoError;
    keys_.erase(record.key());
    return AppendOutcome::kError;
  }
  records_.push_back(record);
  if (++unsynced_ >= std::max<std::size_t>(1, config_.fsync_every) && allow_fsync) {
    unsynced_ = 0;
    if (!fsync_file(file_)) {
      error_ = JournalError::kIoError;
      return AppendOutcome::kError;
    }
  }
  return AppendOutcome::kAppended;
}

bool FindingsJournal::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return false;
  unsynced_ = 0;
  if (!fsync_file(file_)) {
    error_ = JournalError::kIoError;
    return false;
  }
  return true;
}

void FindingsJournal::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;
  fsync_file(file_);
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace zc::store
