// Durable findings journal: confirmed findings hit disk as they are
// confirmed, not at campaign exit, so a crash (or SIGKILL) loses at most
// the final partially-written record.
//
// On-disk format ("zcover-journal v1"): an 8-byte magic header followed by
// append-only, length-prefixed, CRC-checksummed records:
//
//   file   := magic records*
//   magic  := "ZCJRNL1\n"                     (8 bytes, version in the magic)
//   record := u32 body_len | u32 crc32(body) | body
//   body   := u8 record_version (=1)
//             u8 device  u8 kind  u8 flags (bit 0: corpus seed, rest 0)
//             u16 cc  u16 cmd  u16 param0    (widened PayloadSignature form)
//             i32 bug_id
//             u64 detected_at  u64 campaign_seed
//             u32 shard_id
//             u16 payload_len | payload bytes
//
// All integers little-endian. Writes are append-only and batched: fsync
// runs every `fsync_every` appends and on flush()/close, so journal I/O
// stays off the zero-allocation RF hot path (a finding is a rare event; a
// test is not).
//
// Recovery contract (the never-run-from-half-read-state rule, mirrored
// from core/checkpoint's strict parser):
//  * a torn tail — truncated length/crc/body, or a crc mismatch — marks
//    the end of the valid prefix; open() recovers every record before it
//    and truncates the tail in place;
//  * an unknown FILE magic or an unknown RECORD version inside a
//    crc-valid record rejects the whole file. A crc-valid record we cannot
//    interpret was written by a different (future) version of this code —
//    truncating it would destroy someone else's valid data, and skipping
//    it would silently drop findings. Neither is acceptable.
//
// Dedup: records are keyed by (device, cc, cmd, param0, flags) — the
// cross-campaign identity of a finding. append() returns kDuplicate for a
// key the journal already holds (loaded keys included), so repeated
// campaigns against the same device grow the journal by new findings only.
// Flags is part of the key so a covfuzz corpus seed (flags bit 0) never
// shadows — or is shadowed by — a confirmed finding with the same
// signature; the key lives in memory only, never in the file framing.
//
// Thread safety: append()/flush() are internally serialized; one journal
// can be shared by every shard of a parallel run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace zc::store {

/// One journaled finding, flattened to plain integers so the store layer
/// depends on nothing above zc_common.
struct FindingRecord {
  /// flags bit 0: the record is a covfuzz corpus-admitted seed, not a
  /// confirmed finding. Stored in the body byte that was reserved (and
  /// already tolerated by v1 readers), so the record version stays 1 and
  /// old journals load unchanged.
  static constexpr std::uint8_t kCorpusSeedFlag = 0x01;

  std::uint8_t device = 0;        // sim::DeviceModel, numeric
  std::uint8_t kind = 0;          // core::DetectionKind, numeric
  std::uint8_t flags = 0;
  std::uint16_t cc = 0;
  std::uint16_t cmd = 0;
  std::uint16_t param0 = 0;       // widened: 0x100 = none, 0x1FF = wildcard
  std::int32_t bug_id = -1;       // ground-truth id; -1 = unattributed
  std::uint64_t detected_at = 0;  // virtual time (us)
  std::uint64_t campaign_seed = 0;
  std::uint32_t shard_id = 0;
  Bytes payload;                  // bug-inducing application payload

  /// The cross-campaign dedup identity.
  struct Key {
    std::uint8_t device;
    std::uint16_t cc;
    std::uint16_t cmd;
    std::uint16_t param0;
    std::uint8_t flags;
    auto operator<=>(const Key&) const = default;
  };
  Key key() const { return Key{device, cc, cmd, param0, flags}; }
};

/// CRC-32 (IEEE 802.3, reflected) over `data`. Exposed for tests and for
/// anything else that wants to frame records the journal's way.
std::uint32_t crc32(ByteView data);

/// Serializes one record body (no length/crc framing) — the exact bytes
/// crc32 is computed over. Exposed so tests can build hostile files.
Bytes encode_record_body(const FindingRecord& record);

/// Strict body parser: nullopt on short bodies, length mismatches, or an
/// unknown record version.
std::optional<FindingRecord> decode_record_body(ByteView body);

/// Why open() refused a file (kTornTail is not a refusal — it recovers).
enum class JournalError : std::uint8_t {
  kNone = 0,
  kIoError,            // cannot open/create/read/write the file
  kBadMagic,           // not a zcover journal at all
  kUnknownVersion,     // future file magic or future record version: whole
                       // file rejected, never skipped or truncated
};

const char* journal_error_name(JournalError error);

struct JournalConfig {
  /// fsync after every N appended records (1 = every record). The batch
  /// also flushes on flush() and close().
  std::size_t fsync_every = 8;
};

/// What open() found and did.
struct RecoveryStats {
  std::size_t records_recovered = 0;
  /// Bytes of torn tail truncated away (0 on a clean open).
  std::uint64_t bytes_truncated = 0;
};

/// Where confirmed findings go. The engine layers (core/campaign,
/// core/covfuzz, core/vfuzz) write through this interface so a shard can
/// be pointed either at the durable journal directly (sequential runs) or
/// at a per-shard staging buffer that core/parallel commits to the journal
/// in shard order — which is what makes the journal *file* byte-identical
/// at any --jobs.
class FindingSink {
 public:
  enum class AppendOutcome : std::uint8_t { kAppended, kDuplicate, kError };

  virtual ~FindingSink() = default;

  /// Accepts one record. kDuplicate when the sink's dedup identity already
  /// holds the record's key; kError when the sink cannot take it.
  virtual AppendOutcome append(const FindingRecord& record) = 0;

  /// Human-readable reason for the last kError ("none" otherwise) — what
  /// the engine layers put in their warning logs.
  virtual const char* error_name() const = 0;
};

/// In-memory staging sink: records accumulate in append order and every
/// append succeeds (no dedup — cross-shard dedup belongs to the commit
/// into the real journal, and deferring it keeps a shard's own journal
/// metrics independent of what other shards found first). core/parallel
/// gives each shard one of these and batch-commits via
/// FindingsJournal::append_batch once the shard settles.
class BufferedFindingSink : public FindingSink {
 public:
  AppendOutcome append(const FindingRecord& record) override {
    records_.push_back(record);
    return AppendOutcome::kAppended;
  }
  const char* error_name() const override { return "none"; }

  const std::vector<FindingRecord>& records() const { return records_; }
  /// Drops staged records, keeping capacity for the next shard.
  void clear() { records_.clear(); }

 private:
  std::vector<FindingRecord> records_;
};

class FindingsJournal : public FindingSink {
 public:
  FindingsJournal() = default;
  ~FindingsJournal() override;
  FindingsJournal(const FindingsJournal&) = delete;
  FindingsJournal& operator=(const FindingsJournal&) = delete;

  /// Opens (or creates) the journal at `path`: scans to the last valid
  /// record, truncates any torn tail, loads every record and its dedup
  /// key, and positions the write cursor at the end. False on kIoError /
  /// kBadMagic / kUnknownVersion (see error()).
  bool open(const std::string& path, JournalConfig config = {});

  /// True once open() succeeded and close() has not run.
  bool is_open() const { return file_ != nullptr; }
  JournalError error() const { return error_; }
  const RecoveryStats& recovery() const { return recovery_; }

  using AppendOutcome = FindingSink::AppendOutcome;

  /// Appends one record (length+crc framed) and registers its dedup key.
  /// kDuplicate when the key is already present — nothing is written.
  AppendOutcome append(const FindingRecord& record) override;

  /// Appends a whole shard's staged records under one lock acquisition and
  /// one trailing fsync (instead of the per-record fsync cadence) — the
  /// batch is the durability unit core/parallel commits per shard.
  /// Duplicates are skipped record-by-record exactly as append() would.
  /// Returns how many records were actually written; on an I/O error the
  /// batch stops there (written prefix stays valid, see error()).
  std::size_t append_batch(const std::vector<FindingRecord>& batch);

  /// journal_error_name(error()) — the FindingSink log hook.
  const char* error_name() const override { return journal_error_name(error()); }

  /// Forces buffered appends to disk (fflush + fsync) regardless of the
  /// batch counter. True when the file is durable.
  bool flush();

  /// Flushes and closes. Safe to call twice.
  void close();

  /// Every record currently known: recovered on open, then appended, in
  /// order.
  const std::vector<FindingRecord>& records() const { return records_; }
  bool contains(const FindingRecord::Key& key) const {
    return keys_.find(key) != keys_.end();
  }
  const std::string& path() const { return path_; }

 private:
  bool recover_locked(const std::string& path);
  AppendOutcome append_locked(const FindingRecord& record, bool allow_fsync);

  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
  JournalConfig config_;
  JournalError error_ = JournalError::kNone;
  RecoveryStats recovery_;
  std::vector<FindingRecord> records_;
  std::set<FindingRecord::Key> keys_;
  std::size_t unsynced_ = 0;
};

}  // namespace zc::store
