// Phase 1 of ZCover: known-properties fingerprinting (§III-B).
//
// * PassiveScanner — sniffs Z-Wave traffic and recovers the network home
//   ID and the node IDs that exchange packets (Fig. 4: capture ->
//   dissection -> analysis). Works even against S2 networks because S2
//   only encrypts the application payload.
// * ActiveScanner — interrogates the target: device-state probe (NOP),
//   then a NIF request whose response lists the controller's *listed*
//   supported command classes.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/dongle.h"
#include "core/resilience.h"
#include "zwave/nif.h"

namespace zc::core {

/// Passive per-device observations — Z-IoT-style traffic fingerprinting:
/// what a node transmits betrays what it is, even under S2.
struct NodeObservation {
  enum class Role { kUnknown, kController, kSecureSlave, kLegacySlave };

  std::size_t frames_sent = 0;
  std::size_t frames_received = 0;                 // non-broadcast dst hits
  std::set<zwave::CommandClassId> classes_seen;    // outer CMDCL of payloads
  bool uses_s2 = false;
  bool uses_s0 = false;
  SimTime first_seen = 0;
  SimTime last_seen = 0;
  Role role = Role::kUnknown;
};

const char* node_role_name(NodeObservation::Role role);

/// Result of passive scanning.
struct PassiveScanResult {
  std::optional<zwave::HomeId> home_id;
  std::set<zwave::NodeId> node_ids;        // every SRC/DST seen
  std::optional<zwave::NodeId> controller; // inferred hub (most-contacted dst)
  std::size_t packets_analyzed = 0;
  std::map<zwave::NodeId, NodeObservation> observations;
};

class PassiveScanner {
 public:
  explicit PassiveScanner(ZWaveDongle& dongle) : dongle_(dongle) {}

  /// Listens for up to `duration` of virtual time. Stops early once a home
  /// ID and at least `min_packets` packets have been observed.
  PassiveScanResult scan(SimTime duration, std::size_t min_packets = 2);

 private:
  ZWaveDongle& dongle_;
};

/// Result of active scanning.
struct ActiveScanResult {
  bool reachable = false;                           // answered the state probe
  std::vector<zwave::CommandClassId> listed;        // NIF-advertised classes
  std::optional<zwave::NodeInfo> node_info;
};

class ActiveScanner {
 public:
  ActiveScanner(ZWaveDongle& dongle, zwave::HomeId home, zwave::NodeId target,
                zwave::NodeId attacker_node)
      : dongle_(dongle), home_(home), target_(target), self_(attacker_node) {}

  /// Retransmission policy for the active probes (state probe + NIF
  /// request). Defaults match the campaign engine's.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Runs the three steps of §III-B2: dynamic interrogation, listed
  /// property querying (NIF), response analysis. Probes are retried under
  /// the policy so one lost exchange does not misreport the target as
  /// unreachable or class-less.
  ActiveScanResult scan(SimTime response_timeout = 500 * kMillisecond);

 private:
  ZWaveDongle& dongle_;
  zwave::HomeId home_;
  zwave::NodeId target_;
  zwave::NodeId self_;
  RetryPolicy retry_;
  Rng retry_rng_{0x5CA22E7B};  // backoff jitter only; fixed, deterministic
};

}  // namespace zc::core
