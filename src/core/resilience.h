// Campaign resilience primitives: bounded retries with exponential backoff
// and the escalating liveness watchdog.
//
// The paper's campaigns run over real, lossy RF against controllers that
// genuinely hang (§III-D liveness monitoring, §IV-A crash verification).
// A robust reproduction must therefore distinguish three situations the
// happy path conflates:
//   * the medium ate the injection (or its ack)  -> retry, then
//     kInconclusive — never a finding;
//   * the controller is in a finite outage       -> wait / soft-reset;
//   * the controller is wedged for good          -> hard reboot, finding.
// CovFUZZ and ThreadFuzzer (PAPERS.md) gate coverage and findings on the
// same kind of timeout/retransmission handling and recovery oracle.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/clock.h"
#include "common/rng.h"

namespace zc::core {

/// Cooperative cancellation: the supervisor (or a signal handler) requests
/// a stop, and the campaign loop observes it at its next test boundary via
/// the abort hook. One writer, many readers, no locks — exactly the
/// thread-safety shape CampaignConfig::abort_hook documents.
class CancellationToken {
 public:
  void request_cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  void reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Restart policy for a failed or hung shard worker. Unlike RetryPolicy —
/// which paces retransmissions in *virtual* time inside a shard — this one
/// lives in the supervisor's wall-clock domain: a crashed worker thread is
/// a host-level event, and the backoff is a real pause between relaunches.
struct ShardRestartPolicy {
  /// Relaunches after the first failure; 0 = quarantine immediately.
  std::size_t max_restarts = 2;
  std::chrono::milliseconds initial_backoff{10};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{250};

  /// Bounded exponential pause before restart number `restart` (1-based).
  std::chrono::milliseconds backoff_before(std::size_t restart) const;
};

/// Bounded retry with exponential backoff + jitter, and a hard per-attempt
/// sequence deadline. Used for test injections, the scanner's active
/// probes, and liveness pings.
struct RetryPolicy {
  std::size_t max_attempts = 3;
  SimTime initial_backoff = 40 * kMillisecond;
  double multiplier = 2.0;
  SimTime max_backoff = 500 * kMillisecond;
  /// Backoff is scaled by a uniform factor in [1-jitter, 1+jitter] so
  /// retries desynchronize from periodic interference.
  double jitter = 0.25;
  /// Total virtual-time budget for one injection including retries; when
  /// exceeded the attempt loop stops early.
  SimTime deadline = 3 * kSecond;

  /// Backoff before retry number `attempt` (1-based: the pause before the
  /// second transmission is attempt 1). Deterministic given the Rng state.
  SimTime backoff_before(std::size_t attempt, Rng& rng) const;
};

/// The watchdog's escalation ladder (§III-D's recovery monitor, made
/// explicit): passive NOP pings first, then a Serial API soft reset, then
/// the operator's power cycle.
enum class RecoveryStage : std::uint8_t { kNopPing, kSoftReset, kHardReboot };

const char* recovery_stage_name(RecoveryStage stage);

/// One recovery episode: when the outage started, what it took to end it.
struct RecoveryStats {
  SimTime outage_started = 0;
  SimTime recovered_at = 0;
  /// Highest rung of the ladder that was needed.
  RecoveryStage stage = RecoveryStage::kNopPing;
  std::size_t nop_probes = 0;
  std::size_t soft_resets = 0;
  std::size_t hard_reboots = 0;
  bool recovered = false;

  SimTime downtime() const {
    return recovered_at > outage_started ? recovered_at - outage_started : 0;
  }
  /// True when the NOP-ping stage alone was not enough.
  bool escalated() const { return stage != RecoveryStage::kNopPing; }
};

/// Per-stage tuning for the escalating watchdog.
struct WatchdogConfig {
  /// Stage 1: passive NOP pings every `ping_interval`, for up to
  /// `ping_stage` — finite firmware outages (the 30-68 s Table III kind)
  /// normally end here without intervention.
  SimTime ping_interval = 5 * kSecond;
  SimTime ping_stage = 45 * kSecond;
  /// Stage 2: Serial API soft resets (bench access, like the packet
  /// tester's oracle sweep); skipped once the chip refuses — an infinite
  /// outage models NVM damage a firmware restart cannot clear.
  std::size_t soft_reset_attempts = 2;
  /// Settle time after a soft reset or power cycle before re-probing.
  SimTime reboot_settle = 1 * kSecond;
};

}  // namespace zc::core
