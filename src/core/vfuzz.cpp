#include "core/vfuzz.h"

#include "obs/recorder.h"
#include "zwave/checksum.h"

namespace zc::core {

VFuzz::VFuzz(sim::Testbed& testbed, VFuzzConfig config)
    : testbed_(testbed),
      config_(config),
      rng_(config.seed),
      dongle_(testbed.medium(), testbed.scheduler(),
              testbed.attacker_radio_config("vfuzz-dongle")),
      home_(testbed.controller().home_id()) {}

Bytes VFuzz::generate_frame() {
  // Start from a valid singlecast template toward the controller.
  zwave::MacFrame frame;
  frame.home_id = home_;
  frame.src = static_cast<zwave::NodeId>(rng_.uniform(2, 232));
  frame.dst = zwave::kControllerNodeId;
  frame.header = zwave::HeaderType::kSinglecast;
  frame.ack_requested = rng_.chance(0.5);
  frame.sequence = static_cast<std::uint8_t>(rng_.uniform(0, 15));
  frame.payload = rng_.bytes(static_cast<std::size_t>(rng_.uniform(2, 8)));

  // §IV-C: "VFuzz focuses on the MAC frame of the Z-Wave packets" — the
  // bulk of its mutations land on header fields; application bytes are a
  // small minority and unguided.
  const double roll = rng_.uniform01();
  if (roll < 0.85) {
    // MAC-field mutation (the tool's focus). Pick one field and distort it.
    switch (rng_.uniform(0, 5)) {
      case 0: {  // frame control P1: header type / flags
        const std::uint8_t p1 = rng_.next_byte();
        frame.header = static_cast<zwave::HeaderType>(p1 & 0x0F);
        frame.ack_requested = (p1 & 0x40) != 0;
        frame.routed = (p1 & 0x80) != 0;
        // Raw-encode: header nibble may be illegal; send_raw keeps it.
        zwave::MacFrame raw = frame;
        Bytes bytes = raw.encode_raw();
        bytes[5] = p1;
        bytes[bytes.size() - 1] = zwave::checksum8(ByteView(bytes.data(), bytes.size() - 1));
        return bytes;
      }
      case 1: {  // P2 sequence/beam bits
        Bytes bytes = frame.encode_raw();
        bytes[6] = rng_.next_byte();
        bytes[bytes.size() - 1] = zwave::checksum8(ByteView(bytes.data(), bytes.size() - 1));
        return bytes;
      }
      case 2:  // LEN corruption (receiver MAC drops these)
        return frame.encode_raw(static_cast<std::uint8_t>(rng_.next_byte()));
      case 3: {  // destination mutation
        frame.dst = rng_.next_byte();
        return frame.encode_raw();
      }
      case 4:  // checksum corruption
        return frame.encode_raw(std::nullopt, rng_.next_byte());
      default: {  // home-id mutation
        frame.home_id ^= rng_.next_u32();
        return frame.encode_raw();
      }
    }
  }
  // Application payload mutation: whole-range CMDCL/CMD, random params.
  zwave::AppPayload app;
  app.cmd_class = rng_.next_byte();
  app.command = rng_.next_byte();
  app.params = rng_.bytes(static_cast<std::size_t>(rng_.uniform(0, 6)));
  frame.payload = app.encode();
  return frame.encode_raw();
}

VFuzzResult VFuzz::run() {
  VFuzzResult result;
  const std::size_t triggers_before = testbed_.controller().triggered().size();
  std::size_t triggers_journaled = triggers_before;
  const SimTime deadline = testbed_.scheduler().now() + config_.duration;

  // Journals any trigger-log entries that appeared since the last call —
  // findings reach disk as they fire, not at campaign exit.
  auto journal_new_triggers = [&] {
    if (config_.journal == nullptr) return;
    const auto& triggered = testbed_.controller().triggered();
    for (; triggers_journaled < triggered.size(); ++triggers_journaled) {
      const auto& vuln = triggered[triggers_journaled];
      store::FindingRecord record;
      record.device = static_cast<std::uint8_t>(testbed_.controller().model());
      record.kind = 0;  // VFuzz has one oracle: the trigger log itself
      if (vuln.payload.size() >= 2) {
        record.cc = vuln.payload[0];
        record.cmd = vuln.payload[1];
      }
      record.param0 = vuln.payload.size() > 2 ? vuln.payload[2] : 0x100;
      record.bug_id = vuln.bug_id;
      record.detected_at = vuln.at;
      record.campaign_seed = config_.seed;
      record.shard_id = config_.journal_shard_id;
      record.payload = vuln.payload;
      const auto outcome = config_.journal->append(record);
      obs::count(outcome == store::FindingsJournal::AppendOutcome::kDuplicate
                     ? obs::MetricId::kJournalDedupSkips
                     : obs::MetricId::kJournalAppends);
    }
  };

  while (testbed_.scheduler().now() < deadline) {
    if (config_.abort_hook && config_.abort_hook()) {
      result.aborted = true;
      break;
    }
    Bytes frame = generate_frame();
    if (config_.dedup) {
      // A duplicate frame would buy a 6-second response wait for a verdict
      // the campaign already has. Redraw instead — bounded, so a saturated
      // generator still injects rather than spinning.
      for (int tries = 0;
           tries < 4 && memo_.check_and_insert(
                            TestMemo::fingerprint(ByteView(frame.data(), frame.size())));
           ++tries) {
        obs::count(obs::MetricId::kVfuzzDedupSkips);
        ++result.dedup_skips;
        frame = generate_frame();
      }
    }
    dongle_.inject_raw(frame);
    obs::count(obs::MetricId::kVfuzzPacketsTx);
    ++result.packets_sent;
    dongle_.run_for(config_.inter_packet_gap);
    journal_new_triggers();
  }

  const auto& triggered = testbed_.controller().triggered();
  for (std::size_t i = triggers_before; i < triggered.size(); ++i) {
    result.unique_bug_ids.insert(triggered[i].bug_id);
  }
  return result;
}

}  // namespace zc::core
