// Phase 3 of ZCover: position-sensitive mutation (§III-D, Table I).
//
// The application layer is a tree (Fig. 6): CMDCL at position 0, CMD at
// position 1, PARAMs from position 2, and the legal values at each position
// depend on the positions above it. The mutator exploits that correlation:
//
//  * CMDCL is always a *valid* class for the target (rand_valid only —
//    mutating it further just gets the packet ignored).
//  * CMD mixes rand_valid / rand_invalid / arith / interesting / insert.
//  * PARAMs are mutated against their schema: in-range values, boundary
//    values (min, max, off-by-one), illegal values, interesting constants,
//    arithmetic neighbors, and appended bytes.
//
// Every class starts with a deterministic enumeration pass (Algorithm 1
// line 6 starts at CMD=0x00/PARAM=0x00 and walks upward) before switching
// to randomized mutation, so shallow parameter spaces are swept exhaustively.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "zwave/command_class.h"
#include "zwave/frame.h"

namespace zc::core {

/// Table I's operator set for CMD/PARAM positions.
enum class MutationOp : std::uint8_t {
  kRandValid,
  kRandInvalid,
  kArith,
  kInteresting,
  kInsert,
};

const char* mutation_op_name(MutationOp op);

/// The "interesting" constants of Table I: boundary-adjacent bytes that
/// historically shake out off-by-one and sign bugs.
inline constexpr std::uint8_t kInterestingBytes[] = {0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF};

/// Per-class mutation stream.
class PositionSensitiveMutator {
 public:
  PositionSensitiveMutator(Rng& rng, zwave::CommandClassId cmd_class);

  /// Produces the next semi-valid payload for this class.
  zwave::AppPayload next();

  /// Allocation-free variant for the campaign hot loop: writes into `out`,
  /// reusing its params buffer's capacity. Identical RNG draw order to
  /// next().
  void next_into(zwave::AppPayload& out);

  /// True while the deterministic enumeration phase is still running.
  bool in_systematic_phase() const { return !systematic_queue_.empty(); }

  std::uint64_t generated() const { return generated_; }

 private:
  void build_systematic_queue();
  void random_mutation_into(zwave::AppPayload& out);
  std::uint8_t mutate_param(const zwave::ParamSpec& spec);
  std::uint8_t pick_valid_command() const;

  Rng& rng_;
  zwave::CommandClassId cmd_class_;
  const zwave::CommandClassSpec* spec_;  // nullptr: unknown to the spec DB
  std::vector<zwave::AppPayload> systematic_queue_;  // consumed back to front
  std::uint64_t generated_ = 0;
};

/// The ablation-γ generator: uniformly random CMDCL/CMD/PARAMs with no
/// property knowledge and no position sensitivity (§IV-D).
class RandomMutator {
 public:
  explicit RandomMutator(Rng& rng) : rng_(rng) {}
  zwave::AppPayload next();
  void next_into(zwave::AppPayload& out);

 private:
  Rng& rng_;
};

}  // namespace zc::core
