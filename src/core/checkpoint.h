// Checkpoint serialization: the campaign's resumable progress in a
// versioned plain-text format, next to the bug-log format of
// core/packet_tester.h.
//
//   zcover-checkpoint v1
//   mode full
//   seed 740680239
//   rng <s0> <s1> <s2> <s3>
//   elapsed 7200000000
//   packets 48123
//   inconclusive 17
//   retried 211
//   class 25
//   retire <cc> <cmd> <param0>
//   reported-sig <cc> <cmd> <param0>
//   reported-bug 7
//   finding <hex payload> | <kind> | <bug id> | <time us> | <packets>
//   end
//
// The trailing `end` sentinel is mandatory: a truncated file (kill during
// a non-atomic copy, disk full) is missing it and is rejected whole.
// One key-value record per line; repeated keys accumulate. param0 uses the
// widened encoding of PayloadSignature (0x100 = none, 0x1FF = wildcard).
// A killed campaign restarts with `CampaignConfig::resume_from` pointing at
// the parsed checkpoint and continues without re-fuzzing retired
// signatures. See docs/robustness.md.
#pragma once

#include <optional>
#include <string>

#include "core/campaign.h"

namespace zc::core {

std::string serialize_checkpoint(const CampaignCheckpoint& checkpoint);

/// Strict v1 parser: returns nullopt on a missing/unknown header, an
/// unknown key, or any malformed record — a resumed campaign must never
/// run from half-read state.
std::optional<CampaignCheckpoint> parse_checkpoint(const std::string& text);

/// Atomically and durably replaces `path` with the serialized checkpoint:
/// the text is written, flushed AND fsynced to `path + ".tmp"`, renamed
/// over the target, and the containing directory is fsynced so the rename
/// itself survives a power loss. A kill mid-write leaves either the
/// previous complete checkpoint or a stray .tmp — never a truncated file
/// that --resume could half-read.
bool write_checkpoint_file(const std::string& path, const CampaignCheckpoint& checkpoint);

/// Removes a stale `path + ".tmp"` left behind by a kill mid-write. Call
/// when a campaign that checkpoints to `path` starts; true when a stale
/// file existed and was removed.
bool remove_stale_checkpoint_tmp(const std::string& path);

/// Reads and parses a checkpoint file; nullopt when the file is missing,
/// unreadable, or fails the strict v1 parse (e.g. truncated by a crash
/// that bypassed the atomic writer).
std::optional<CampaignCheckpoint> read_checkpoint_file(const std::string& path);

}  // namespace zc::core
