#include "core/scanner.h"

#include <algorithm>
#include <map>

#include "obs/recorder.h"
#include "zwave/security.h"

namespace zc::core {

const char* node_role_name(NodeObservation::Role role) {
  switch (role) {
    case NodeObservation::Role::kUnknown: return "unknown";
    case NodeObservation::Role::kController: return "controller";
    case NodeObservation::Role::kSecureSlave: return "secure-slave";
    case NodeObservation::Role::kLegacySlave: return "legacy-slave";
  }
  return "?";
}

PassiveScanResult PassiveScanner::scan(SimTime duration, std::size_t min_packets) {
  PassiveScanResult result;
  dongle_.clear_captures();
  dongle_.start_capture();

  const SimTime deadline = dongle_.scheduler().now() + duration;
  std::map<zwave::NodeId, std::size_t> dst_counts;
  std::size_t consumed = 0;

  while (dongle_.scheduler().now() < deadline) {
    dongle_.run_for(10 * kMillisecond);
    const auto& captures = dongle_.captures();
    for (; consumed < captures.size(); ++consumed) {
      const auto& captured = captures[consumed];
      if (!captured.frame.has_value()) continue;  // noise / checksum failure
      const auto& frame = *captured.frame;
      ++result.packets_analyzed;
      obs::count(obs::MetricId::kScannerFramesSniffed);
      result.home_id = frame.home_id;
      result.node_ids.insert(frame.src);

      auto& sender = result.observations[frame.src];
      ++sender.frames_sent;
      if (sender.first_seen == 0) sender.first_seen = captured.at;
      sender.last_seen = captured.at;
      if (frame.header != zwave::HeaderType::kAck) {
        const auto app = zwave::decode_app_payload(frame.payload);
        if (app.ok()) {
          sender.classes_seen.insert(app.value().cmd_class);
          if (app.value().cmd_class == zwave::kSecurity2Class) sender.uses_s2 = true;
          if (app.value().cmd_class == zwave::kSecurity0Class) sender.uses_s0 = true;
        }
      }

      if (frame.dst != zwave::kBroadcastNodeId) {
        result.node_ids.insert(frame.dst);
        ++result.observations[frame.dst].frames_received;
        // Hub inference: the node the *unsolicited application traffic*
        // converges on. Acks mirror addressing and would cancel out.
        if (frame.header != zwave::HeaderType::kAck && !frame.payload.empty()) {
          ++dst_counts[frame.dst];
        }
      }
    }
    if (result.home_id.has_value() && result.packets_analyzed >= min_packets) break;
  }

  // The node that receives the most traffic is the hub.
  std::size_t best = 0;
  for (const auto& [node, count] : dst_counts) {
    if (count > best) {
      best = count;
      result.controller = node;
    }
  }

  // Role inference per observed node.
  for (auto& [node, observation] : result.observations) {
    if (result.controller.has_value() && node == *result.controller) {
      observation.role = NodeObservation::Role::kController;
    } else if (observation.uses_s2 || observation.uses_s0) {
      observation.role = NodeObservation::Role::kSecureSlave;
    } else if (!observation.classes_seen.empty()) {
      observation.role = NodeObservation::Role::kLegacySlave;
    }
  }

  dongle_.stop_capture();
  return result;
}

ActiveScanResult ActiveScanner::scan(SimTime response_timeout) {
  ActiveScanResult result;
  const std::size_t attempts = std::max<std::size_t>(1, retry_.max_attempts);

  // Step 1: dynamic device interrogation — a state probe (NOP with ack),
  // retried so one exchange eaten by the medium does not misreport an
  // unreachable target. NOP is idempotent; each attempt may use a fresh
  // sequence number.
  for (std::size_t attempt = 0; attempt < attempts && !result.reachable; ++attempt) {
    if (attempt > 0) dongle_.run_for(retry_.backoff_before(attempt, retry_rng_));
    obs::count(obs::MetricId::kScannerProbesTx);
    obs::emit(obs::TraceEventType::kProbeTx,
              static_cast<std::int64_t>(obs::ProbeKind::kState), 0, target_);
    dongle_.send_app(home_, self_, target_, zwave::make_nop(), /*ack_requested=*/true);
    result.reachable = dongle_.await_ack(home_, target_, self_, response_timeout);
  }
  if (!result.reachable) return result;

  // Steps 2+3: listed property querying via a NIF request, then response
  // analysis — retried the same way. A lost NIF response would otherwise
  // silently shrink the fuzz queue to nothing.
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) dongle_.run_for(retry_.backoff_before(attempt, retry_rng_));
    obs::count(obs::MetricId::kScannerProbesTx);
    obs::emit(obs::TraceEventType::kProbeTx,
              static_cast<std::int64_t>(obs::ProbeKind::kNif), 0, target_);
    dongle_.send_app(home_, self_, target_, zwave::make_nif_request(target_));
    const auto response = dongle_.await_frame(
        [&](const zwave::MacFrame& frame) {
          if (frame.home_id != home_ || frame.src != target_) return false;
          const auto app = zwave::decode_app_payload(frame.payload);
          return app.ok() && app.value().cmd_class == 0x01 && app.value().command == 0x07;
        },
        response_timeout);
    if (!response.has_value()) continue;

    const auto app = zwave::decode_app_payload(response->payload);
    const auto info = zwave::decode_node_info(app.value());
    if (info.ok()) {
      result.node_info = info.value();
      result.listed = info.value().supported;
    }
    break;
  }
  return result;
}

}  // namespace zc::core
