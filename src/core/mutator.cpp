#include "core/mutator.h"

#include <algorithm>

namespace zc::core {

const char* mutation_op_name(MutationOp op) {
  switch (op) {
    case MutationOp::kRandValid: return "rand_valid";
    case MutationOp::kRandInvalid: return "rand_invalid";
    case MutationOp::kArith: return "arith";
    case MutationOp::kInteresting: return "interesting";
    case MutationOp::kInsert: return "insert";
  }
  return "?";
}

PositionSensitiveMutator::PositionSensitiveMutator(Rng& rng, zwave::CommandClassId cmd_class)
    : rng_(rng),
      cmd_class_(cmd_class),
      spec_(zwave::SpecDatabase::instance().find(cmd_class)) {
  build_systematic_queue();
}

void PositionSensitiveMutator::build_systematic_queue() {
  // Built in reverse so pop_back() yields ascending CMD order, starting
  // from the Algorithm-1 seed payload [CMDCL, 0x00, 0x00].
  std::vector<zwave::AppPayload> forward;

  zwave::AppPayload seed;
  seed.cmd_class = cmd_class_;
  seed.command = 0x00;
  seed.params = {0x00};
  forward.push_back(seed);

  if (spec_ != nullptr) {
    for (const auto& command : spec_->commands) {
      // All-minimum and all-maximum parameter vectors (boundary testing).
      zwave::AppPayload lo;
      lo.cmd_class = cmd_class_;
      lo.command = command.id;
      zwave::AppPayload hi = lo;
      for (const auto& param : command.params) {
        if (param.type == zwave::ParamType::kVariadic) break;
        lo.params.push_back(param.min);
        hi.params.push_back(param.max);
      }
      forward.push_back(lo);
      if (!command.params.empty()) forward.push_back(hi);

      // First-parameter sweep: positions 0..7 with the rest at minimum.
      // This is the walk that uncovers operation-selector semantics such
      // as NODE_TABLE_UPDATE's five destructive modes.
      if (!command.params.empty() &&
          command.params.front().type != zwave::ParamType::kVariadic) {
        for (std::uint8_t value = 0; value <= 7; ++value) {
          zwave::AppPayload sweep = lo;
          sweep.params[0] = value;
          forward.push_back(sweep);
        }
      }
    }
  }

  systematic_queue_.assign(forward.rbegin(), forward.rend());
}

zwave::AppPayload PositionSensitiveMutator::next() {
  zwave::AppPayload payload;
  next_into(payload);
  return payload;
}

void PositionSensitiveMutator::next_into(zwave::AppPayload& out) {
  ++generated_;
  if (!systematic_queue_.empty()) {
    out = std::move(systematic_queue_.back());
    systematic_queue_.pop_back();
    return;
  }
  random_mutation_into(out);
}

std::uint8_t PositionSensitiveMutator::pick_valid_command() const {
  if (spec_ == nullptr || spec_->commands.empty()) return 0x01;
  const auto& command =
      spec_->commands[static_cast<std::size_t>(
          const_cast<Rng&>(rng_).uniform(0, spec_->commands.size() - 1))];
  return command.id;
}

void PositionSensitiveMutator::random_mutation_into(zwave::AppPayload& out) {
  zwave::AppPayload& payload = out;
  payload.params.clear();
  payload.cmd_class = cmd_class_;  // position 0: rand_valid only (Table I)

  // Position 1 (CMD): weighted operator choice.
  const double cmd_roll = rng_.uniform01();
  bool append_extra = false;
  if (cmd_roll < 0.60) {
    payload.command = pick_valid_command();                      // rand_valid
  } else if (cmd_roll < 0.72) {
    payload.command = rng_.next_byte();                          // rand_invalid
  } else if (cmd_roll < 0.84) {
    const std::uint8_t base = pick_valid_command();              // arith
    const int delta = static_cast<int>(rng_.uniform(1, 4));
    payload.command = static_cast<std::uint8_t>(rng_.chance(0.5) ? base + delta : base - delta);
  } else if (cmd_roll < 0.94) {
    payload.command = kInterestingBytes[rng_.uniform(0, 5)];     // interesting
  } else {
    payload.command = pick_valid_command();                      // insert
    append_extra = true;
  }

  // Positions >= 2 (PARAMs): schema-driven when the command is known.
  const zwave::CommandSpec* command_spec =
      spec_ != nullptr ? spec_->find_command(payload.command) : nullptr;
  if (command_spec != nullptr) {
    for (const auto& param : command_spec->params) {
      if (param.type == zwave::ParamType::kVariadic) {
        const std::size_t n = static_cast<std::size_t>(rng_.uniform(0, 8));
        rng_.append_bytes(payload.params, n);
        break;
      }
      payload.params.push_back(mutate_param(param));
      if (rng_.chance(0.04)) break;  // occasional truncation (short payload)
    }
  } else {
    // Unknown command: a short random parameter vector.
    const std::size_t n = static_cast<std::size_t>(rng_.uniform(0, 4));
    rng_.append_bytes(payload.params, n);
  }

  if (append_extra || rng_.chance(0.05)) payload.params.push_back(rng_.next_byte());

  // Respect the MAC size budget (LEN correlation of Table I: the frame
  // builder recomputes LEN/CS; the payload must simply fit).
  if (payload.params.size() > zwave::kMaxApplicationPayload - 2) {
    payload.params.resize(zwave::kMaxApplicationPayload - 2);
  }
}

std::uint8_t PositionSensitiveMutator::mutate_param(const zwave::ParamSpec& spec) {
  const double roll = rng_.uniform01();
  if (roll < 0.45) {  // rand_valid
    return static_cast<std::uint8_t>(rng_.uniform(spec.min, spec.max));
  }
  if (roll < 0.65) {  // boundary (min/max and off-by-one neighbors)
    switch (rng_.uniform(0, 3)) {
      case 0: return spec.min;
      case 1: return spec.max;
      case 2: return static_cast<std::uint8_t>(spec.min - 1);
      default: return static_cast<std::uint8_t>(spec.max + 1);
    }
  }
  if (roll < 0.78) {  // rand_invalid: outside the legal range when possible
    if (spec.min == 0x00 && spec.max == 0xFF) return rng_.next_byte();
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint8_t value = rng_.next_byte();
      if (!spec.is_legal(value)) return value;
    }
    return static_cast<std::uint8_t>(spec.max + 1);
  }
  if (roll < 0.90) {  // interesting
    return kInterestingBytes[rng_.uniform(0, 5)];
  }
  // arith
  const std::uint8_t base = static_cast<std::uint8_t>(rng_.uniform(spec.min, spec.max));
  const int delta = static_cast<int>(rng_.uniform(1, 4));
  return static_cast<std::uint8_t>(rng_.chance(0.5) ? base + delta : base - delta);
}

zwave::AppPayload RandomMutator::next() {
  zwave::AppPayload payload;
  next_into(payload);
  return payload;
}

void RandomMutator::next_into(zwave::AppPayload& out) {
  out.cmd_class = rng_.next_byte();
  out.command = rng_.next_byte();
  out.params.clear();
  rng_.append_bytes(out.params, static_cast<std::size_t>(rng_.uniform(0, 6)));
}

}  // namespace zc::core
