#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

namespace zc::core {

namespace {

/// Merges one shard's CampaignResult into the TrialSummary exactly the way
/// the sequential run_trials() loop body does.
void merge_into_summary(TrialSummary& summary, const CampaignResult& result) {
  std::set<int> unique;
  std::optional<SimTime> first;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id > 0) unique.insert(finding.matched_bug_id);
    if (!first.has_value()) first = finding.detected_at - result.started_at;
  }
  summary.union_bug_ids.insert(unique.begin(), unique.end());
  summary.per_trial_unique.push_back(unique.size());
  summary.first_finding_at.push_back(first.value_or(0));
  summary.total_packets += result.test_packets;
}

ParallelTrialReport merge_report(std::vector<ShardResult> shards, std::size_t jobs,
                                 double wall_seconds) {
  ParallelTrialReport report;
  report.jobs = jobs;
  report.wall_seconds = wall_seconds;
  report.summary.trials = shards.size();
  for (const ShardResult& shard : shards) {  // already in shard order
    merge_into_summary(report.summary, shard.result);
    report.inconclusive_tests += shard.result.inconclusive_tests;
    report.retried_injections += shard.result.retried_injections;
    report.recovery_episodes += shard.result.recovery_log.size();
  }
  report.shards = std::move(shards);
  return report;
}

}  // namespace

obs::MetricsRegistry ParallelTrialReport::merged_metrics() const {
  obs::MetricsRegistry merged;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.telemetry.collected) merged.merge(shard.telemetry.metrics);
  }
  return merged;
}

std::string ParallelTrialReport::merged_trace_jsonl() const {
  std::string out;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.telemetry.collected) shard.telemetry.append_jsonl(out);
  }
  return out;
}

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t shard_testbed_seed(std::uint64_t base_seed, std::size_t shard_id) {
  return base_seed + static_cast<std::uint64_t>(shard_id) * 0x9E3779B9ULL;
}

std::uint64_t shard_campaign_seed(std::uint64_t base_seed, std::size_t shard_id) {
  return base_seed + static_cast<std::uint64_t>(shard_id) * 0xC2B2AE35ULL;
}

std::vector<ShardResult> run_shards(const std::vector<ShardSpec>& shards,
                                    const ParallelConfig& parallel) {
  std::vector<ShardResult> results(shards.size());
  if (shards.empty()) return results;

  const std::size_t jobs =
      std::min(shards.size(), parallel.jobs == 0 ? default_jobs() : parallel.jobs);

  // The sink is shared by every shard, so calls are funneled through one
  // mutex; shard_id tagging lets the caller keep per-shard files.
  std::mutex sink_mutex;

  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      const std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= shards.size()) return;
      const ShardSpec& spec = shards[index];

      CampaignConfig config = spec.campaign;
      config.checkpoint_interval = parallel.checkpoint_interval;
      if (parallel.checkpoint_sink) {
        config.checkpoint_sink = [&parallel, &sink_mutex,
                                  shard_id = spec.shard_id](const CampaignCheckpoint& cp) {
          const std::lock_guard<std::mutex> lock(sink_mutex);
          parallel.checkpoint_sink(shard_id, cp);
        };
      } else {
        config.checkpoint_sink = nullptr;
      }
      config.abort_hook = parallel.abort_hook;

      // The shard's whole world is local to this iteration: testbed,
      // campaign, RNG streams. Nothing here is visible to other workers;
      // the result slot is exclusively ours by shard index.
      sim::Testbed testbed(spec.testbed);
      Campaign campaign(testbed, config);

      ShardResult& out = results[index];
      out.shard_id = spec.shard_id;
      out.device = spec.testbed.controller_model;
      out.campaign_seed = config.seed;
      if (parallel.collect_telemetry) {
        // The recorder is installed thread-locally for exactly this
        // shard's campaign, so instrumentation sites down the stack reach
        // it without plumbing and concurrent shards never share state.
        obs::Recorder recorder(testbed.scheduler(), spec.shard_id, config.seed,
                               parallel.trace_capacity);
        const obs::ScopedRecorder ambient(recorder);
        out.result = campaign.run();
        out.telemetry = recorder.snapshot();
      } else {
        out.result = campaign.run();
      }
      out.medium_transmissions = testbed.medium().transmissions();
    }
  };

  if (jobs == 1) {
    worker();  // run inline: no pool, identical code path
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  std::sort(results.begin(), results.end(),
            [](const ShardResult& a, const ShardResult& b) { return a.shard_id < b.shard_id; });
  return results;
}

ParallelTrialReport run_trials_parallel(const sim::TestbedConfig& testbed_config,
                                        const CampaignConfig& campaign_config,
                                        std::size_t trials, const ParallelConfig& parallel) {
  std::vector<ShardSpec> shards;
  shards.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    ShardSpec spec;
    spec.shard_id = trial;
    spec.testbed = testbed_config;
    spec.testbed.seed = shard_testbed_seed(testbed_config.seed, trial);
    spec.campaign = campaign_config;
    spec.campaign.seed = shard_campaign_seed(campaign_config.seed, trial);
    shards.push_back(std::move(spec));
  }

  const std::size_t jobs =
      std::min(std::max<std::size_t>(1, trials),
               parallel.jobs == 0 ? default_jobs() : parallel.jobs);
  const auto start = std::chrono::steady_clock::now();
  std::vector<ShardResult> results = run_shards(shards, parallel);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return merge_report(std::move(results), jobs, wall);
}

ParallelTrialReport run_profiles_parallel(const std::vector<sim::DeviceModel>& devices,
                                          const sim::TestbedConfig& testbed_config,
                                          const CampaignConfig& campaign_config,
                                          std::size_t trials_per_device,
                                          const ParallelConfig& parallel) {
  std::vector<ShardSpec> shards;
  shards.reserve(devices.size() * trials_per_device);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    for (std::size_t trial = 0; trial < trials_per_device; ++trial) {
      ShardSpec spec;
      spec.shard_id = d * trials_per_device + trial;
      spec.testbed = testbed_config;
      spec.testbed.controller_model = devices[d];
      // Per-device derivation matches a standalone run_trials() on that
      // device, so sharding a fleet changes nothing about any one member.
      spec.testbed.seed = shard_testbed_seed(testbed_config.seed, trial);
      spec.campaign = campaign_config;
      spec.campaign.seed = shard_campaign_seed(campaign_config.seed, trial);
      shards.push_back(std::move(spec));
    }
  }

  const std::size_t jobs =
      std::min(std::max<std::size_t>(1, shards.size()),
               parallel.jobs == 0 ? default_jobs() : parallel.jobs);
  const auto start = std::chrono::steady_clock::now();
  std::vector<ShardResult> results = run_shards(shards, parallel);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return merge_report(std::move(results), jobs, wall);
}

}  // namespace zc::core
