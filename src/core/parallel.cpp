#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "common/log.h"

namespace zc::core {

namespace {

/// One worker's watchdog registration: while an attempt is armed, the
/// watchdog thread cancels `token` once steady_clock passes `deadline`.
/// Both fields are guarded by `mutex`; the token itself is atomic, so the
/// campaign thread polls it lock-free.
struct WatchdogSlot {
  std::mutex mutex;
  CancellationToken* token = nullptr;
  std::chrono::steady_clock::time_point deadline{};
};

/// Reason codes carried in the shard_failure trace event's third arg.
constexpr std::int64_t kFailureCrash = 0;
constexpr std::int64_t kFailureHang = 1;

/// Merges one shard's CampaignResult into the TrialSummary exactly the way
/// the sequential run_trials() loop body does.
void merge_into_summary(TrialSummary& summary, const CampaignResult& result) {
  std::set<int> unique;
  std::optional<SimTime> first;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id > 0) unique.insert(finding.matched_bug_id);
    if (!first.has_value()) first = finding.detected_at - result.started_at;
  }
  summary.union_bug_ids.insert(unique.begin(), unique.end());
  summary.per_trial_unique.push_back(unique.size());
  summary.first_finding_at.push_back(first.value_or(0));
  summary.total_packets += result.test_packets;
}

/// Runs one coverage-mode shard attempt and shapes its outcome into the
/// CampaignResult form the merge layer already understands: the device's
/// ground-truth trigger log becomes the findings list (coverage mode has
/// one oracle — the trigger log — so every entry is a service-interruption
/// style finding with its bug id pre-matched).
void run_covfuzz_attempt(sim::Testbed& testbed, const ShardSpec& spec,
                         const ParallelConfig& parallel,
                         const std::function<bool()>& abort_hook, ShardResult& out) {
  const std::size_t triggers_before = testbed.controller().triggered().size();
  CovFuzzConfig cov = parallel.covfuzz;
  cov.duration = spec.campaign.duration;
  cov.seed = spec.campaign.seed;
  cov.journal = parallel.journal;
  cov.journal_shard_id = static_cast<std::uint32_t>(spec.shard_id);
  cov.abort_hook = abort_hook;
  CovFuzz fuzzer(testbed, cov);

  out.result = CampaignResult{};
  out.result.started_at = testbed.scheduler().now();
  CovFuzzResult run = fuzzer.run();
  out.result.ended_at = testbed.scheduler().now();
  out.result.test_packets = run.packets_sent;
  out.result.aborted = run.aborted;

  const auto& triggered = testbed.controller().triggered();
  for (std::size_t i = triggers_before; i < triggered.size(); ++i) {
    const sim::TriggeredVuln& vuln = triggered[i];
    BugFinding finding;
    finding.payload = vuln.payload;
    if (!vuln.payload.empty()) finding.cmd_class = vuln.payload[0];
    if (vuln.payload.size() >= 2) finding.command = vuln.payload[1];
    if (vuln.payload.size() >= 3) finding.first_param = vuln.payload[2];
    finding.kind = DetectionKind::kServiceInterruption;
    finding.detected_at = vuln.at;
    finding.packets_sent = run.packets_sent;
    finding.matched_bug_id = vuln.bug_id;
    out.result.findings.push_back(std::move(finding));
  }

  out.coverage_collected = cov.coverage_feedback;
  out.coverage = std::move(run.coverage);
  out.corpus = std::move(run.corpus);
}

ParallelTrialReport merge_report(std::vector<ShardResult> shards, std::size_t jobs,
                                 double wall_seconds) {
  ParallelTrialReport report;
  report.jobs = jobs;
  report.wall_seconds = wall_seconds;
  for (const ShardResult& shard : shards) {  // already in shard order
    report.shard_restarts += shard.restarts;
    if (shard.health == ShardHealth::kQuarantined) {
      // Partial results stay visible in `shards` but never contaminate the
      // summary: the surviving set merges exactly as a failure-free run
      // over those shards would.
      report.degraded_shards.push_back(shard.shard_id);
      continue;
    }
    ++report.summary.trials;
    merge_into_summary(report.summary, shard.result);
    report.inconclusive_tests += shard.result.inconclusive_tests;
    report.retried_injections += shard.result.retried_injections;
    report.recovery_episodes += shard.result.recovery_log.size();
  }
  report.shards = std::move(shards);
  return report;
}

}  // namespace

const char* fuzzer_family_name(FuzzerFamily family) {
  switch (family) {
    case FuzzerFamily::kPsm: return "psm";
    case FuzzerFamily::kCov: return "cov";
  }
  return "unknown";
}

const char* shard_health_name(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kRecovered: return "recovered";
    case ShardHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

obs::MetricsRegistry ParallelTrialReport::merged_metrics() const {
  obs::MetricsRegistry merged;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.telemetry.collected) merged.merge(shard.telemetry.metrics);
  }
  return merged;
}

std::string ParallelTrialReport::merged_trace_jsonl() const {
  std::string out;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.telemetry.collected) shard.telemetry.append_jsonl(out);
  }
  return out;
}

sim::cov::CoverageMap ParallelTrialReport::merged_coverage() const {
  sim::cov::CoverageMap merged;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.health == ShardHealth::kQuarantined) continue;
    if (shard.coverage_collected) merged.merge(shard.coverage);
  }
  return merged;
}

std::vector<Bytes> ParallelTrialReport::merged_corpus() const {
  std::vector<Bytes> merged;
  std::set<std::uint64_t> seen;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.health == ShardHealth::kQuarantined) continue;
    for (const Bytes& payload : shard.corpus) {
      const std::uint64_t fp =
          TestMemo::fingerprint(ByteView(payload.data(), payload.size()));
      if (seen.insert(fp).second) merged.push_back(payload);
    }
  }
  return merged;
}

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t shard_testbed_seed(std::uint64_t base_seed, std::size_t shard_id) {
  return base_seed + static_cast<std::uint64_t>(shard_id) * 0x9E3779B9ULL;
}

std::uint64_t shard_campaign_seed(std::uint64_t base_seed, std::size_t shard_id) {
  return base_seed + static_cast<std::uint64_t>(shard_id) * 0xC2B2AE35ULL;
}

std::vector<ShardResult> run_shards(const std::vector<ShardSpec>& shards,
                                    const ParallelConfig& parallel) {
  std::vector<ShardResult> results(shards.size());
  if (shards.empty()) return results;

  const std::size_t jobs =
      std::min(shards.size(), parallel.jobs == 0 ? default_jobs() : parallel.jobs);

  // The sink is shared by every shard, so calls are funneled through one
  // mutex; shard_id tagging lets the caller keep per-shard files.
  std::mutex sink_mutex;

  // Deadline watchdog: one slot per worker, one scanner thread. The
  // scanner only ever flips an attempt's CancellationToken — the campaign
  // loop notices at its next test boundary, checkpoints, and unwinds
  // normally, so cancellation is always cooperative.
  const bool watchdog_enabled = parallel.shard_deadline.count() > 0;
  std::vector<WatchdogSlot> slots(jobs);
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (watchdog_enabled) {
    watchdog = std::thread([&slots, &watchdog_stop] {
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        const auto now = std::chrono::steady_clock::now();
        for (WatchdogSlot& slot : slots) {
          const std::lock_guard<std::mutex> lock(slot.mutex);
          if (slot.token != nullptr && now >= slot.deadline) {
            slot.token->request_cancel();
            slot.token = nullptr;  // fire once per armed attempt
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::atomic<std::size_t> cursor{0};
  auto worker = [&](std::size_t worker_index) {
    while (true) {
      const std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= shards.size()) break;
      const ShardSpec& spec = shards[index];

      ShardResult& out = results[index];
      out.shard_id = spec.shard_id;
      out.device = spec.testbed.controller_model;
      out.campaign_seed = spec.campaign.seed;

      // --- supervised attempt loop ------------------------------------
      // Each attempt builds the shard's whole world from scratch (testbed,
      // campaign, RNG streams), so a failed attempt leaves nothing behind
      // except the checkpoint we captured from it.
      std::optional<CampaignCheckpoint> last_checkpoint;
      std::size_t failure_count = 0;   // crash + hang attempts
      std::size_t hang_count = 0;
      std::size_t attempt = 0;
      while (true) {
        CancellationToken token;
        CampaignConfig config = spec.campaign;
        config.checkpoint_interval = parallel.checkpoint_interval;
        // Always capture checkpoints locally (restart needs the freshest
        // one); forward to the caller's sink under the shared mutex.
        config.checkpoint_sink = [&parallel, &sink_mutex, &last_checkpoint,
                                  shard_id = spec.shard_id](const CampaignCheckpoint& cp) {
          last_checkpoint = cp;
          if (parallel.checkpoint_sink) {
            const std::lock_guard<std::mutex> lock(sink_mutex);
            parallel.checkpoint_sink(shard_id, cp);
          }
        };
        config.abort_hook = [&parallel, &token] {
          return token.cancelled() || (parallel.abort_hook && parallel.abort_hook());
        };
        config.journal = parallel.journal;
        config.journal_shard_id = static_cast<std::uint32_t>(spec.shard_id);
        if (attempt > 0 && last_checkpoint.has_value()) {
          // A hung attempt checkpointed on its way out; resume there
          // rather than repaying the whole prefix. Crashed attempts only
          // have a checkpoint if periodic checkpointing was on.
          config.resume_from = last_checkpoint;
        }

        if (watchdog_enabled) {
          const std::lock_guard<std::mutex> lock(slots[worker_index].mutex);
          slots[worker_index].token = &token;
          slots[worker_index].deadline =
              std::chrono::steady_clock::now() + parallel.shard_deadline;
        }

        bool crashed = false;
        std::string crash_reason;
        try {
          if (parallel.shard_fault_hook) {
            parallel.shard_fault_hook(spec.shard_id, attempt, token);
          }
          sim::Testbed testbed(spec.testbed);
          // One attempt's work, family-dispatched. A restarted attempt
          // overwrites whatever a failed one left in the slot.
          auto run_attempt = [&] {
            if (parallel.fuzzer == FuzzerFamily::kCov) {
              run_covfuzz_attempt(testbed, spec, parallel, config.abort_hook, out);
              return;
            }
            Campaign campaign(testbed, config);
            if (parallel.collect_coverage) {
              // Same ambient-installation move as the recorder: the map is
              // this thread's for exactly this campaign, so concurrent
              // shards never share coverage state.
              sim::cov::CoverageMap map;
              {
                const sim::cov::ScopedCoverage scoped(map);
                out.result = campaign.run();
              }
              out.coverage_collected = true;
              out.coverage = std::move(map);
            } else {
              out.result = campaign.run();
            }
          };
          if (parallel.collect_telemetry) {
            // The recorder is installed thread-locally for exactly this
            // shard's campaign, so instrumentation sites down the stack
            // reach it without plumbing and concurrent shards never share
            // state. A restarted attempt gets a fresh recorder: the
            // surviving telemetry describes the attempt that completed.
            obs::Recorder recorder(testbed.scheduler(), spec.shard_id, config.seed,
                                   parallel.trace_capacity);
            const obs::ScopedRecorder ambient(recorder);
            run_attempt();
            out.telemetry = recorder.snapshot();
          } else {
            run_attempt();
          }
          out.medium_transmissions = testbed.medium().transmissions();
        } catch (const std::exception& e) {
          crashed = true;
          crash_reason = e.what();
        } catch (...) {
          crashed = true;
          crash_reason = "non-standard exception";
        }

        if (watchdog_enabled) {
          const std::lock_guard<std::mutex> lock(slots[worker_index].mutex);
          slots[worker_index].token = nullptr;
        }

        const bool user_abort = parallel.abort_hook && parallel.abort_hook();
        const bool hung = !crashed && token.cancelled() && !user_abort;
        if (!crashed && !hung) {
          out.health = attempt == 0 ? ShardHealth::kHealthy : ShardHealth::kRecovered;
          out.restarts = attempt;
          break;
        }

        ++failure_count;
        if (hung) ++hang_count;
        out.last_error = crashed ? crash_reason : "deadline exceeded";
        ZC_WARN("shard %zu attempt %zu %s: %s", spec.shard_id, attempt,
                crashed ? "crashed" : "hung", out.last_error.c_str());

        if (attempt >= parallel.restart.max_restarts || user_abort) {
          // Budget exhausted (or the user is tearing the run down):
          // quarantine. Whatever the last attempt produced stays in the
          // slot for forensics but is excluded from the merged summary.
          out.health = ShardHealth::kQuarantined;
          out.restarts = attempt;
          break;
        }

        const auto backoff = parallel.restart.backoff_before(attempt + 1);
        if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
        ++attempt;
      }

      // Fold supervision counters into the shard's telemetry after the
      // attempts settle — no ambient recorder exists on this path, and the
      // values are deterministic for a deterministic fault pattern.
      if (parallel.collect_telemetry && (failure_count > 0 || out.restarts > 0)) {
        obs::Telemetry& t = out.telemetry;
        if (!t.collected) {  // quarantined before any attempt completed
          t.collected = true;
          t.shard_id = spec.shard_id;
          t.seed = spec.campaign.seed;
        }
        t.metrics.add(obs::MetricId::kParallelShardFailures, failure_count);
        t.metrics.add(obs::MetricId::kParallelShardRestarts, out.restarts);
        t.metrics.add(obs::MetricId::kParallelDeadlineCancels, hang_count);
        const SimTime stamp = out.result.ended_at;
        auto emit = [&t, stamp](obs::TraceEventType type, std::int64_t a0, std::int64_t a1,
                                std::int64_t a2, std::int64_t a3) {
          obs::TraceEvent event;
          event.at = stamp;
          event.type = type;
          event.args = {a0, a1, a2, a3};
          t.events.push_back(event);
        };
        emit(obs::TraceEventType::kShardFailure, static_cast<std::int64_t>(spec.shard_id),
             static_cast<std::int64_t>(failure_count),
             hang_count > 0 ? kFailureHang : kFailureCrash, 0);
        if (out.restarts > 0) {
          emit(obs::TraceEventType::kShardRestart, static_cast<std::int64_t>(spec.shard_id),
               static_cast<std::int64_t>(out.restarts),
               static_cast<std::int64_t>(parallel.restart.backoff_before(0).count()),
               last_checkpoint.has_value() ? 1 : 0);
        }
        if (out.health == ShardHealth::kQuarantined) {
          t.metrics.add(obs::MetricId::kParallelShardQuarantines, 1);
          emit(obs::TraceEventType::kShardQuarantine, static_cast<std::int64_t>(spec.shard_id),
               static_cast<std::int64_t>(failure_count), 0, 0);
        }
      }
    }
  };

  if (jobs == 1) {
    worker(0);  // run inline: no pool, identical code path
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker, i);
    for (std::thread& thread : pool) thread.join();
  }

  if (watchdog_enabled) {
    watchdog_stop.store(true, std::memory_order_release);
    watchdog.join();
  }

  std::sort(results.begin(), results.end(),
            [](const ShardResult& a, const ShardResult& b) { return a.shard_id < b.shard_id; });
  return results;
}

ParallelTrialReport run_trials_parallel(const sim::TestbedConfig& testbed_config,
                                        const CampaignConfig& campaign_config,
                                        std::size_t trials, const ParallelConfig& parallel) {
  std::vector<ShardSpec> shards;
  shards.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    ShardSpec spec;
    spec.shard_id = trial;
    spec.testbed = testbed_config;
    spec.testbed.seed = shard_testbed_seed(testbed_config.seed, trial);
    spec.campaign = campaign_config;
    spec.campaign.seed = shard_campaign_seed(campaign_config.seed, trial);
    shards.push_back(std::move(spec));
  }

  const std::size_t jobs =
      std::min(std::max<std::size_t>(1, trials),
               parallel.jobs == 0 ? default_jobs() : parallel.jobs);
  const auto start = std::chrono::steady_clock::now();
  std::vector<ShardResult> results = run_shards(shards, parallel);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return merge_report(std::move(results), jobs, wall);
}

ParallelTrialReport run_profiles_parallel(const std::vector<sim::DeviceModel>& devices,
                                          const sim::TestbedConfig& testbed_config,
                                          const CampaignConfig& campaign_config,
                                          std::size_t trials_per_device,
                                          const ParallelConfig& parallel) {
  std::vector<ShardSpec> shards;
  shards.reserve(devices.size() * trials_per_device);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    for (std::size_t trial = 0; trial < trials_per_device; ++trial) {
      ShardSpec spec;
      spec.shard_id = d * trials_per_device + trial;
      spec.testbed = testbed_config;
      spec.testbed.controller_model = devices[d];
      // Per-device derivation matches a standalone run_trials() on that
      // device, so sharding a fleet changes nothing about any one member.
      spec.testbed.seed = shard_testbed_seed(testbed_config.seed, trial);
      spec.campaign = campaign_config;
      spec.campaign.seed = shard_campaign_seed(campaign_config.seed, trial);
      shards.push_back(std::move(spec));
    }
  }

  const std::size_t jobs =
      std::min(std::max<std::size_t>(1, shards.size()),
               parallel.jobs == 0 ? default_jobs() : parallel.jobs);
  const auto start = std::chrono::steady_clock::now();
  std::vector<ShardResult> results = run_shards(shards, parallel);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return merge_report(std::move(results), jobs, wall);
}

}  // namespace zc::core
