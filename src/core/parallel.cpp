#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "common/log.h"
#include "core/executor.h"

namespace zc::core {

namespace {

/// One worker's watchdog registration: while an attempt is armed, the
/// watchdog thread cancels `token` once steady_clock passes `deadline`.
/// Both fields are guarded by `mutex`; the token itself is atomic, so the
/// campaign thread polls it lock-free.
struct WatchdogSlot {
  std::mutex mutex;
  CancellationToken* token = nullptr;
  std::chrono::steady_clock::time_point deadline{};
};

/// Reason codes carried in the shard_failure trace event's third arg.
constexpr std::int64_t kFailureCrash = 0;
constexpr std::int64_t kFailureHang = 1;

/// Per-worker reusable shard context. Executor workers are persistent
/// (Executor::global never shrinks), so thread_local here means "lives as
/// long as the process fuzzes": the testbed is reset — not reconstructed —
/// between shards, which keeps its RF medium's warm BitBufferPool slots
/// and DeliveryBatch arena, and the dedup memo keeps its grown table.
/// Byte-identity to fresh construction is Testbed::reset's contract
/// (pinned by tests/sim/testbed_reset_test.cpp).
struct WorkerContext {
  std::unique_ptr<sim::Testbed> testbed;
  TestMemo memo;
};

WorkerContext& worker_context() {
  thread_local WorkerContext context;
  return context;
}

/// Merges one shard's CampaignResult into the TrialSummary exactly the way
/// the sequential run_trials() loop body does.
void merge_into_summary(TrialSummary& summary, const CampaignResult& result) {
  std::set<int> unique;
  std::optional<SimTime> first;
  for (const auto& finding : result.findings) {
    if (finding.matched_bug_id > 0) unique.insert(finding.matched_bug_id);
    if (!first.has_value()) first = finding.detected_at - result.started_at;
  }
  summary.union_bug_ids.insert(unique.begin(), unique.end());
  summary.per_trial_unique.push_back(unique.size());
  summary.first_finding_at.push_back(first.value_or(0));
  summary.total_packets += result.test_packets;
}

/// Shapes the device's ground-truth trigger log (entries past
/// `triggers_before`) into the findings list of `out.result` — the shared
/// tail of the single-oracle families (kCov, kVfuzz): every entry is a
/// service-interruption style finding with its bug id pre-matched.
void append_trigger_findings(sim::Testbed& testbed, std::size_t triggers_before,
                             std::uint64_t packets_sent, ShardResult& out) {
  const auto& triggered = testbed.controller().triggered();
  for (std::size_t i = triggers_before; i < triggered.size(); ++i) {
    const sim::TriggeredVuln& vuln = triggered[i];
    BugFinding finding;
    finding.payload = vuln.payload;
    if (!vuln.payload.empty()) finding.cmd_class = vuln.payload[0];
    if (vuln.payload.size() >= 2) finding.command = vuln.payload[1];
    if (vuln.payload.size() >= 3) finding.first_param = vuln.payload[2];
    finding.kind = DetectionKind::kServiceInterruption;
    finding.detected_at = vuln.at;
    finding.packets_sent = packets_sent;
    finding.matched_bug_id = vuln.bug_id;
    out.result.findings.push_back(std::move(finding));
  }
}

/// Runs one coverage-mode shard attempt and shapes its outcome into the
/// CampaignResult form the merge layer already understands.
void run_covfuzz_attempt(sim::Testbed& testbed, const ShardSpec& spec,
                         const ParallelConfig& parallel, store::FindingSink* sink,
                         TestMemo* memo_scratch, const std::function<bool()>& abort_hook,
                         ShardResult& out) {
  const std::size_t triggers_before = testbed.controller().triggered().size();
  CovFuzzConfig cov = parallel.covfuzz;
  cov.duration = spec.campaign.duration;
  cov.seed = spec.campaign.seed;
  cov.journal = sink;
  cov.journal_shard_id = static_cast<std::uint32_t>(spec.shard_id);
  cov.memo_scratch = memo_scratch;
  cov.abort_hook = abort_hook;
  CovFuzz fuzzer(testbed, cov);

  out.result = CampaignResult{};
  out.result.started_at = testbed.scheduler().now();
  CovFuzzResult run = fuzzer.run();
  out.result.ended_at = testbed.scheduler().now();
  out.result.test_packets = run.packets_sent;
  out.result.aborted = run.aborted;
  append_trigger_findings(testbed, triggers_before, run.packets_sent, out);

  out.coverage_collected = cov.coverage_feedback;
  out.coverage = std::move(run.coverage);
  out.corpus = std::move(run.corpus);
}

/// Runs one VFuzz-baseline shard attempt (kVfuzz): duration, seed, dedup
/// and journal wiring come from the shard's campaign-derived spec, the
/// rest from the `vfuzz` template. Like kCov, there is no checkpoint — a
/// restarted attempt replays from scratch under virtual time.
void run_vfuzz_attempt(sim::Testbed& testbed, const ShardSpec& spec,
                       const ParallelConfig& parallel, store::FindingSink* sink,
                       const std::function<bool()>& abort_hook, ShardResult& out) {
  const std::size_t triggers_before = testbed.controller().triggered().size();
  VFuzzConfig vf = parallel.vfuzz;
  vf.duration = spec.campaign.duration;
  vf.seed = spec.campaign.seed;
  vf.dedup = spec.campaign.dedup;
  vf.journal = sink;
  vf.journal_shard_id = static_cast<std::uint32_t>(spec.shard_id);
  vf.abort_hook = abort_hook;
  VFuzz fuzzer(testbed, vf);

  out.result = CampaignResult{};
  out.result.started_at = testbed.scheduler().now();
  const VFuzzResult run = fuzzer.run();
  out.result.ended_at = testbed.scheduler().now();
  out.result.test_packets = run.packets_sent;
  out.result.aborted = run.aborted;
  append_trigger_findings(testbed, triggers_before, run.packets_sent, out);
}

}  // namespace

ParallelTrialReport merge_shard_results(std::vector<ShardResult> shards, std::size_t jobs,
                                        double wall_seconds) {
  ParallelTrialReport report;
  report.jobs = jobs;
  report.wall_seconds = wall_seconds;
  for (const ShardResult& shard : shards) {  // already in shard order
    report.shard_restarts += shard.restarts;
    if (shard.health == ShardHealth::kQuarantined) {
      // Partial results stay visible in `shards` but never contaminate the
      // summary: the surviving set merges exactly as a failure-free run
      // over those shards would.
      report.degraded_shards.push_back(shard.shard_id);
      continue;
    }
    ++report.summary.trials;
    merge_into_summary(report.summary, shard.result);
    report.inconclusive_tests += shard.result.inconclusive_tests;
    report.retried_injections += shard.result.retried_injections;
    report.recovery_episodes += shard.result.recovery_log.size();
  }
  report.shards = std::move(shards);
  return report;
}

namespace {

/// Shared state of one submitted batch: lives (via shared_ptr captured by
/// the executor job) until the last task retires and on_complete fires.
struct ShardRunState {
  std::vector<ShardSpec> shards;
  ParallelConfig parallel;
  std::vector<ShardResult> results;  // slot per shard-list index
  std::function<void(std::vector<ShardResult>)> on_complete;

  /// Serializes the caller's checkpoint sink across workers.
  std::mutex sink_mutex;

  /// Deadline watchdog: one slot per participating worker (indexed by the
  /// executor's job-local worker slot), one scanner thread per batch.
  bool watchdog_enabled = false;
  std::vector<WatchdogSlot> slots;
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;

  /// Ordered journal commit: each shard stages its findings in a private
  /// BufferedFindingSink; completed stages are committed to the shared
  /// journal strictly in shard-list order (a shard finishing early parks
  /// its batch until every predecessor committed). Appends therefore hit
  /// the journal file in the same order at any --jobs — byte-identical —
  /// and each batch costs one lock + one fsync instead of per-finding I/O.
  std::mutex commit_mutex;
  std::size_t next_commit = 0;
  std::vector<std::vector<store::FindingRecord>> staged;
  std::vector<char> staged_ready;
};

void commit_staged(ShardRunState& state, std::size_t index,
                   std::vector<store::FindingRecord> records) {
  const std::lock_guard<std::mutex> lock(state.commit_mutex);
  state.staged[index] = std::move(records);
  state.staged_ready[index] = 1;
  while (state.next_commit < state.staged.size() && state.staged_ready[state.next_commit]) {
    std::vector<store::FindingRecord>& batch = state.staged[state.next_commit];
    if (state.parallel.commit_sink) {
      // Redirected commit (the daemon's job-level staging): same strict
      // shard-list order, same exactly-once discipline, but the caller
      // decides when the records reach the durable journal.
      state.parallel.commit_sink(state.next_commit, std::move(batch));
    } else if (state.parallel.journal != nullptr && !batch.empty()) {
      state.parallel.journal->append_batch(batch);
    }
    batch.clear();
    ++state.next_commit;
  }
}

/// One shard's whole supervised life, executed on an executor worker. The
/// attempt loop, restart budget, watchdog arming and telemetry fold-in are
/// the supervision layer; the surrounding context acquisition and journal
/// staging are the reuse layer.
void run_one_shard(ShardRunState& state, std::size_t index, std::size_t worker_index) {
  const ShardSpec& spec = state.shards[index];
  const ParallelConfig& parallel = state.parallel;

  ShardResult& out = state.results[index];
  out.shard_id = spec.shard_id;
  out.device = spec.testbed.controller_model;
  out.campaign_seed = spec.campaign.seed;

  // Findings stage here across every attempt of this shard (never cleared
  // on restart: a failed attempt's confirmed findings stay committable,
  // which is strictly more durable than the old write-through journal, and
  // the commit-time dedup collapses anything a resumed attempt re-found).
  store::BufferedFindingSink sink;
  store::FindingSink* shard_sink =
      (parallel.journal != nullptr || parallel.commit_sink) ? &sink : nullptr;

  // A job-level pause/cancel that lands before this shard ever started:
  // skip the whole attempt loop (no fingerprint, zero packets) and settle
  // as an aborted-but-healthy shard. Commit order still includes us (an
  // empty batch), so successors are never blocked.
  if (parallel.skip_unstarted_on_abort && parallel.abort_hook && parallel.abort_hook()) {
    out.result.aborted = true;
    commit_staged(state, index, sink.records());
    if (parallel.shard_complete) parallel.shard_complete(index, out);
    return;
  }

  WorkerContext& context = worker_context();
  // Context reuse is off under telemetry: Campaign's end-of-run pool
  // gauges report the medium pool's *cumulative* counters, which a warm
  // recycled pool carries across shards — fresh worlds per shard keep
  // merged metrics byte-identical to a fresh-construct run. The memo
  // scratch stays shared either way (membership behavior is capacity-
  // independent, so no metric can see the difference).
  const bool reuse_context = !parallel.collect_telemetry;

  // --- supervised attempt loop ------------------------------------
  // Each attempt rebuilds the shard's whole world (testbed, campaign, RNG
  // streams) — by reset on the worker's persistent testbed or from scratch
  // — so a failed attempt leaves nothing behind except the checkpoint we
  // captured from it.
  std::optional<CampaignCheckpoint> last_checkpoint;
  std::size_t failure_count = 0;   // crash + hang attempts
  std::size_t hang_count = 0;
  std::size_t attempt = 0;
  while (true) {
    CancellationToken token;
    CampaignConfig config = spec.campaign;
    config.checkpoint_interval = parallel.checkpoint_interval;
    // Always capture checkpoints locally (restart needs the freshest
    // one); forward to the caller's sink under the shared mutex.
    config.checkpoint_sink = [&state, &last_checkpoint,
                              shard_id = spec.shard_id](const CampaignCheckpoint& cp) {
      last_checkpoint = cp;
      if (state.parallel.checkpoint_sink) {
        const std::lock_guard<std::mutex> lock(state.sink_mutex);
        state.parallel.checkpoint_sink(shard_id, cp);
      }
    };
    config.abort_hook = [&parallel, &token] {
      return token.cancelled() || (parallel.abort_hook && parallel.abort_hook());
    };
    config.journal = shard_sink;
    config.journal_shard_id = static_cast<std::uint32_t>(spec.shard_id);
    config.memo_scratch = &context.memo;
    if (attempt > 0 && last_checkpoint.has_value()) {
      // A hung attempt checkpointed on its way out; resume there
      // rather than repaying the whole prefix. Crashed attempts only
      // have a checkpoint if periodic checkpointing was on.
      config.resume_from = last_checkpoint;
    }

    if (state.watchdog_enabled) {
      const std::lock_guard<std::mutex> lock(state.slots[worker_index].mutex);
      state.slots[worker_index].token = &token;
      state.slots[worker_index].deadline =
          std::chrono::steady_clock::now() + parallel.shard_deadline;
    }

    bool crashed = false;
    std::string crash_reason;
    try {
      if (parallel.shard_fault_hook) {
        parallel.shard_fault_hook(spec.shard_id, attempt, token);
      }
      std::unique_ptr<sim::Testbed> fresh;
      sim::Testbed* testbed = nullptr;
      if (reuse_context) {
        if (context.testbed == nullptr) {
          context.testbed = std::make_unique<sim::Testbed>(spec.testbed);
        } else {
          context.testbed->reset(spec.testbed);
        }
        testbed = context.testbed.get();
      } else {
        fresh = std::make_unique<sim::Testbed>(spec.testbed);
        testbed = fresh.get();
      }
      // One attempt's work, family-dispatched. A restarted attempt
      // overwrites whatever a failed one left in the slot.
      auto run_attempt = [&] {
        if (parallel.fuzzer == FuzzerFamily::kCov) {
          run_covfuzz_attempt(*testbed, spec, parallel, shard_sink, &context.memo,
                              config.abort_hook, out);
          return;
        }
        if (parallel.fuzzer == FuzzerFamily::kVfuzz) {
          run_vfuzz_attempt(*testbed, spec, parallel, shard_sink, config.abort_hook, out);
          return;
        }
        Campaign campaign(*testbed, config);
        if (parallel.collect_coverage) {
          // Same ambient-installation move as the recorder: the map is
          // this thread's for exactly this campaign, so concurrent
          // shards never share coverage state.
          sim::cov::CoverageMap map;
          {
            const sim::cov::ScopedCoverage scoped(map);
            out.result = campaign.run();
          }
          out.coverage_collected = true;
          out.coverage = std::move(map);
        } else {
          out.result = campaign.run();
        }
      };
      if (parallel.collect_telemetry) {
        // The recorder is installed thread-locally for exactly this
        // shard's campaign, so instrumentation sites down the stack
        // reach it without plumbing and concurrent shards never share
        // state. A restarted attempt gets a fresh recorder: the
        // surviving telemetry describes the attempt that completed.
        obs::Recorder recorder(testbed->scheduler(), spec.shard_id, config.seed,
                               parallel.trace_capacity);
        const obs::ScopedRecorder ambient(recorder);
        run_attempt();
        out.telemetry = recorder.snapshot();
      } else {
        run_attempt();
      }
      out.medium_transmissions = testbed->medium().transmissions();
    } catch (const std::exception& e) {
      crashed = true;
      crash_reason = e.what();
    } catch (...) {
      crashed = true;
      crash_reason = "non-standard exception";
    }

    if (state.watchdog_enabled) {
      const std::lock_guard<std::mutex> lock(state.slots[worker_index].mutex);
      state.slots[worker_index].token = nullptr;
    }

    const bool user_abort = parallel.abort_hook && parallel.abort_hook();
    const bool hung = !crashed && token.cancelled() && !user_abort;
    if (!crashed && !hung) {
      out.health = attempt == 0 ? ShardHealth::kHealthy : ShardHealth::kRecovered;
      out.restarts = attempt;
      break;
    }

    ++failure_count;
    if (hung) ++hang_count;
    out.last_error = crashed ? crash_reason : "deadline exceeded";
    ZC_WARN("shard %zu attempt %zu %s: %s", spec.shard_id, attempt,
            crashed ? "crashed" : "hung", out.last_error.c_str());

    if (attempt >= parallel.restart.max_restarts || user_abort) {
      // Budget exhausted (or the user is tearing the run down):
      // quarantine. Whatever the last attempt produced stays in the
      // slot for forensics but is excluded from the merged summary.
      out.health = ShardHealth::kQuarantined;
      out.restarts = attempt;
      break;
    }

    const auto backoff = parallel.restart.backoff_before(attempt + 1);
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    ++attempt;
  }

  // Fold supervision counters into the shard's telemetry after the
  // attempts settle — no ambient recorder exists on this path, and the
  // values are deterministic for a deterministic fault pattern.
  if (parallel.collect_telemetry && (failure_count > 0 || out.restarts > 0)) {
    obs::Telemetry& t = out.telemetry;
    if (!t.collected) {  // quarantined before any attempt completed
      t.collected = true;
      t.shard_id = spec.shard_id;
      t.seed = spec.campaign.seed;
    }
    t.metrics.add(obs::MetricId::kParallelShardFailures, failure_count);
    t.metrics.add(obs::MetricId::kParallelShardRestarts, out.restarts);
    t.metrics.add(obs::MetricId::kParallelDeadlineCancels, hang_count);
    const SimTime stamp = out.result.ended_at;
    auto emit = [&t, stamp](obs::TraceEventType type, std::int64_t a0, std::int64_t a1,
                            std::int64_t a2, std::int64_t a3) {
      obs::TraceEvent event;
      event.at = stamp;
      event.type = type;
      event.args = {a0, a1, a2, a3};
      t.events.push_back(event);
    };
    emit(obs::TraceEventType::kShardFailure, static_cast<std::int64_t>(spec.shard_id),
         static_cast<std::int64_t>(failure_count),
         hang_count > 0 ? kFailureHang : kFailureCrash, 0);
    if (out.restarts > 0) {
      emit(obs::TraceEventType::kShardRestart, static_cast<std::int64_t>(spec.shard_id),
           static_cast<std::int64_t>(out.restarts),
           static_cast<std::int64_t>(parallel.restart.backoff_before(0).count()),
           last_checkpoint.has_value() ? 1 : 0);
    }
    if (out.health == ShardHealth::kQuarantined) {
      t.metrics.add(obs::MetricId::kParallelShardQuarantines, 1);
      emit(obs::TraceEventType::kShardQuarantine, static_cast<std::int64_t>(spec.shard_id),
           static_cast<std::int64_t>(failure_count), 0, 0);
    }
  }

  commit_staged(state, index, sink.records());
  if (parallel.shard_complete) parallel.shard_complete(index, out);
}

}  // namespace

const char* fuzzer_family_name(FuzzerFamily family) {
  switch (family) {
    case FuzzerFamily::kPsm: return "psm";
    case FuzzerFamily::kCov: return "cov";
    case FuzzerFamily::kVfuzz: return "vfuzz";
  }
  return "unknown";
}

const char* shard_health_name(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kRecovered: return "recovered";
    case ShardHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

obs::MetricsRegistry ParallelTrialReport::merged_metrics() const {
  obs::MetricsRegistry merged;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.telemetry.collected) merged.merge(shard.telemetry.metrics);
  }
  return merged;
}

std::string ParallelTrialReport::merged_trace_jsonl() const {
  std::string out;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.telemetry.collected) shard.telemetry.append_jsonl(out);
  }
  return out;
}

sim::cov::CoverageMap ParallelTrialReport::merged_coverage() const {
  sim::cov::CoverageMap merged;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.health == ShardHealth::kQuarantined) continue;
    if (shard.coverage_collected) merged.merge(shard.coverage);
  }
  return merged;
}

std::vector<Bytes> ParallelTrialReport::merged_corpus() const {
  std::vector<Bytes> merged;
  std::set<std::uint64_t> seen;
  for (const ShardResult& shard : shards) {  // ascending shard order
    if (shard.health == ShardHealth::kQuarantined) continue;
    for (const Bytes& payload : shard.corpus) {
      const std::uint64_t fp =
          TestMemo::fingerprint(ByteView(payload.data(), payload.size()));
      if (seen.insert(fp).second) merged.push_back(payload);
    }
  }
  return merged;
}

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t shard_testbed_seed(std::uint64_t base_seed, std::size_t shard_id) {
  return base_seed + static_cast<std::uint64_t>(shard_id) * 0x9E3779B9ULL;
}

std::uint64_t shard_campaign_seed(std::uint64_t base_seed, std::size_t shard_id) {
  return base_seed + static_cast<std::uint64_t>(shard_id) * 0xC2B2AE35ULL;
}

Executor::Handle run_shards_async(std::vector<ShardSpec> shards, ParallelConfig parallel,
                                  std::function<void(std::vector<ShardResult>)> on_complete) {
  auto state = std::make_shared<ShardRunState>();
  state->shards = std::move(shards);
  state->parallel = std::move(parallel);
  state->results.resize(state->shards.size());
  state->staged.resize(state->shards.size());
  state->staged_ready.assign(state->shards.size(), 0);
  state->on_complete = std::move(on_complete);

  const std::size_t limit =
      state->shards.empty()
          ? 1
          : std::min(state->shards.size(),
                     state->parallel.jobs == 0 ? default_jobs() : state->parallel.jobs);
  Executor& executor = Executor::global(limit);

  // Deadline watchdog: one slot per participating worker, one scanner
  // thread per batch. The scanner only ever flips an attempt's
  // CancellationToken — the campaign loop notices at its next test
  // boundary, checkpoints, and unwinds normally, so cancellation is
  // always cooperative.
  state->watchdog_enabled =
      state->parallel.shard_deadline.count() > 0 && !state->shards.empty();
  if (state->watchdog_enabled) {
    state->slots = std::vector<WatchdogSlot>(limit);
    state->watchdog = std::thread([state] {
      while (!state->watchdog_stop.load(std::memory_order_acquire)) {
        const auto now = std::chrono::steady_clock::now();
        for (WatchdogSlot& slot : state->slots) {
          const std::lock_guard<std::mutex> lock(slot.mutex);
          if (slot.token != nullptr && now >= slot.deadline) {
            slot.token->request_cancel();
            slot.token = nullptr;  // fire once per armed attempt
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  Executor::Job job;
  job.task_count = state->shards.size();
  job.max_workers = limit;
  job.run = [state](std::size_t task_index, std::size_t worker_index) {
    run_one_shard(*state, task_index, worker_index);
  };
  job.on_complete = [state] {
    if (state->watchdog_enabled) {
      state->watchdog_stop.store(true, std::memory_order_release);
      state->watchdog.join();
    }
    std::sort(state->results.begin(), state->results.end(),
              [](const ShardResult& a, const ShardResult& b) {
                return a.shard_id < b.shard_id;
              });
    if (state->on_complete) state->on_complete(std::move(state->results));
  };
  return executor.submit(std::move(job));
}

std::vector<ShardResult> run_shards(const std::vector<ShardSpec>& shards,
                                    const ParallelConfig& parallel) {
  std::vector<ShardResult> results;
  const Executor::Handle handle = run_shards_async(
      shards, parallel,
      [&results](std::vector<ShardResult> merged) { results = std::move(merged); });
  handle.wait();
  return results;
}

ParallelTrialReport run_trials_parallel(const sim::TestbedConfig& testbed_config,
                                        const CampaignConfig& campaign_config,
                                        std::size_t trials, const ParallelConfig& parallel) {
  std::vector<ShardSpec> shards;
  shards.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    ShardSpec spec;
    spec.shard_id = trial;
    spec.testbed = testbed_config;
    spec.testbed.seed = shard_testbed_seed(testbed_config.seed, trial);
    spec.campaign = campaign_config;
    spec.campaign.seed = shard_campaign_seed(campaign_config.seed, trial);
    shards.push_back(std::move(spec));
  }

  const std::size_t jobs =
      std::min(std::max<std::size_t>(1, trials),
               parallel.jobs == 0 ? default_jobs() : parallel.jobs);
  const auto start = std::chrono::steady_clock::now();
  std::vector<ShardResult> results = run_shards(shards, parallel);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return merge_shard_results(std::move(results), jobs, wall);
}

ParallelTrialReport run_profiles_parallel(const std::vector<sim::DeviceModel>& devices,
                                          const sim::TestbedConfig& testbed_config,
                                          const CampaignConfig& campaign_config,
                                          std::size_t trials_per_device,
                                          const ParallelConfig& parallel) {
  std::vector<ShardSpec> shards;
  shards.reserve(devices.size() * trials_per_device);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    for (std::size_t trial = 0; trial < trials_per_device; ++trial) {
      ShardSpec spec;
      spec.shard_id = d * trials_per_device + trial;
      spec.testbed = testbed_config;
      spec.testbed.controller_model = devices[d];
      // Per-device derivation matches a standalone run_trials() on that
      // device, so sharding a fleet changes nothing about any one member.
      spec.testbed.seed = shard_testbed_seed(testbed_config.seed, trial);
      spec.campaign = campaign_config;
      spec.campaign.seed = shard_campaign_seed(campaign_config.seed, trial);
      shards.push_back(std::move(spec));
    }
  }

  const std::size_t jobs =
      std::min(std::max<std::size_t>(1, shards.size()),
               parallel.jobs == 0 ? default_jobs() : parallel.jobs);
  const auto start = std::chrono::steady_clock::now();
  std::vector<ShardResult> results = run_shards(shards, parallel);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return merge_shard_results(std::move(results), jobs, wall);
}

}  // namespace zc::core
