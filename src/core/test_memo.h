// Duplicate-test memoization (perf layer over Algorithm 1).
//
// The systematic enumeration pass and the position-sensitive random phase
// can regenerate identical (CMDCL, CMD, PARAMs) payloads — boundary vectors
// collide with sweep vectors, and the random operators re-draw popular
// constants constantly. Re-executing an identical test against the same
// deterministic controller model yields the identical verdict, so the
// campaign memoizes canonical payload fingerprints and skips re-execution.
//
// The set is a compact open-addressing table over 64-bit FNV-1a
// fingerprints: no buckets, no per-entry allocation, power-of-two sizing
// with linear probing. Zero is reserved as the empty-slot sentinel
// (fingerprints hashing to 0 are remapped to a fixed nonzero constant).
//
// A 64-bit fingerprint over a ~10^5-test campaign has a collision
// probability around 10^-9 — and a collision merely skips one payload the
// fuzzer believes it already ran, never mis-attributes a finding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "zwave/frame.h"

namespace zc::core {

/// Open-addressing set of 64-bit test fingerprints.
class TestMemo {
 public:
  TestMemo();

  /// Canonical FNV-1a fingerprint of an application payload. Never zero.
  static std::uint64_t fingerprint(const zwave::AppPayload& payload);

  /// Canonical fingerprint of a raw frame byte string. Never zero.
  static std::uint64_t fingerprint(ByteView raw);

  /// Inserts `fp`; returns true if it was already present (duplicate).
  bool check_and_insert(std::uint64_t fp);

  /// Membership test without insertion.
  bool contains(std::uint64_t fp) const;

  std::size_t size() const { return size_; }
  void clear();

 private:
  void grow();

  std::vector<std::uint64_t> slots_;  // 0 = empty
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace zc::core
