#include "core/dongle.h"

#include "obs/recorder.h"

namespace zc::core {

namespace {
constexpr SimTime kPollStep = 2 * kMillisecond;
}

ZWaveDongle::ZWaveDongle(radio::RfMedium& medium, EventScheduler& scheduler,
                         radio::RadioConfig config)
    : scheduler_(scheduler), radio_(medium, std::move(config)) {
  radio_.set_bits_handler(
      [this](const radio::BitStream& bits, double rssi) { on_bits(bits, rssi); });
}

bool ZWaveDongle::configuration_valid() const {
  const std::uint32_t khz = zwave::rf_region_khz(radio_.config().region);
  return khz >= 800000 && khz <= 930000;
}

void ZWaveDongle::on_bits(const radio::BitStream& bits, double rssi_dbm) {
  const auto raw = radio::decode_transmission(bits);
  CapturedFrame captured;
  captured.at = scheduler_.now();
  captured.rssi_dbm = rssi_dbm;
  captured.raw_bit_count = bits.size();
  if (raw.ok()) {
    captured.hex = to_hex(raw.value());
    auto frame = zwave::decode_frame(raw.value());
    if (frame.ok()) {
      captured.frame = frame.value();
      if (obs::Recorder* recorder = obs::current()) {
        // The command class is the first application byte; peeking it keeps
        // this per-frame hook free of the full payload decode.
        recorder->metrics().add(obs::MetricId::kDongleFramesRx);
        const zwave::MacFrame& rx = *captured.frame;
        recorder->emit(obs::TraceEventType::kFrameRx, rx.src,
                       static_cast<std::int64_t>(rx.header),
                       rx.payload.empty() ? -1 : rx.payload[0]);
      }
      inbox_.emplace_back(scheduler_.now(), std::move(frame).take());
    }
  }
  if (capturing_) captures_.push_back(std::move(captured));
}

void ZWaveDongle::inject(const zwave::MacFrame& frame) {
  auto encoded = frame.encode();
  if (!encoded.ok()) return;
  ++injected_;
  obs::count(obs::MetricId::kDongleFramesTx);
  radio_.transmit(encoded.value());
}

void ZWaveDongle::inject_raw(ByteView frame_bytes) {
  ++injected_;
  obs::count(obs::MetricId::kDongleFramesTx);
  radio_.transmit(frame_bytes);
}

void ZWaveDongle::send_app(zwave::HomeId home, zwave::NodeId src, zwave::NodeId dst,
                           const zwave::AppPayload& payload, bool ack_requested) {
  inject(zwave::make_singlecast(home, src, dst, payload, next_sequence(),
                                ack_requested));
}

std::optional<zwave::MacFrame> ZWaveDongle::await_frame(const FramePredicate& pred,
                                                        SimTime timeout) {
  const SimTime since = scheduler_.now();
  const SimTime deadline = since + timeout;
  while (true) {
    while (!inbox_.empty()) {
      auto [at, frame] = std::move(inbox_.front());
      inbox_.pop_front();
      if (at < since) continue;  // stale: predates this exchange
      if (pred(frame)) return frame;
    }
    if (scheduler_.now() >= deadline) return std::nullopt;
    scheduler_.run_for(std::min(kPollStep, deadline - scheduler_.now()));
  }
}

bool ZWaveDongle::await_ack(zwave::HomeId home, zwave::NodeId from, zwave::NodeId self,
                            SimTime timeout) {
  return await_frame(
             [&](const zwave::MacFrame& frame) {
               return frame.home_id == home && frame.src == from && frame.dst == self &&
                      frame.header == zwave::HeaderType::kAck;
             },
             timeout)
      .has_value();
}

}  // namespace zc::core
