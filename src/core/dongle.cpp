#include "core/dongle.h"

#include "obs/recorder.h"

namespace zc::core {

namespace {
constexpr SimTime kPollStep = 2 * kMillisecond;
}

ZWaveDongle::ZWaveDongle(radio::RfMedium& medium, EventScheduler& scheduler,
                         radio::RadioConfig config)
    : scheduler_(scheduler), radio_(medium, std::move(config)) {
  radio_.set_bits_handler(
      [this](const radio::BitStream& bits, double rssi) { on_bits(bits, rssi); });
}

bool ZWaveDongle::configuration_valid() const {
  const std::uint32_t khz = zwave::rf_region_khz(radio_.config().region);
  return khz >= 800000 && khz <= 930000;
}

void ZWaveDongle::on_bits(const radio::BitStream& bits, double rssi_dbm) {
  // Decode into the dongle's reused scratches; the display-oriented
  // CapturedFrame (hex rendering and all) is only materialized while a
  // capture is actually running — promiscuous listening during a fuzz
  // campaign stays allocation-free for valid empty-payload traffic (acks).
  const auto raw = radio::decode_transmission_into(bits, rx_scratch_);
  const bool frame_ok =
      raw.ok() && zwave::decode_frame_into(rx_scratch_, rx_frame_) == Errc::kOk;
  if (frame_ok) {
    if (obs::Recorder* recorder = obs::current()) {
      // The command class is the first application byte; peeking it keeps
      // this per-frame hook free of the full payload decode.
      recorder->metrics().add(obs::MetricId::kDongleFramesRx);
      recorder->emit(obs::TraceEventType::kFrameRx, rx_frame_.src,
                     static_cast<std::int64_t>(rx_frame_.header),
                     rx_frame_.payload.empty() ? -1 : rx_frame_.payload[0]);
    }
    inbox_.emplace_back(scheduler_.now(), rx_frame_);
  }
  if (capturing_) {
    CapturedFrame captured;
    captured.at = scheduler_.now();
    captured.rssi_dbm = rssi_dbm;
    captured.raw_bit_count = bits.size();
    if (raw.ok()) captured.hex = to_hex(rx_scratch_);
    if (frame_ok) captured.frame = rx_frame_;
    captures_.push_back(std::move(captured));
  }
}

std::pair<SimTime, zwave::MacFrame> ZWaveDongle::inbox_pop() {
  std::pair<SimTime, zwave::MacFrame> front = std::move(inbox_[inbox_head_]);
  ++inbox_head_;
  if (inbox_head_ == inbox_.size()) {
    inbox_.clear();  // drained: rewind, keeping the vector's capacity
    inbox_head_ = 0;
  }
  return front;
}

void ZWaveDongle::inject(const zwave::MacFrame& frame) {
  if (frame.encode_into(tx_scratch_) != Errc::kOk) return;
  ++injected_;
  obs::count(obs::MetricId::kDongleFramesTx);
  radio_.transmit(tx_scratch_);
}

void ZWaveDongle::inject_raw(ByteView frame_bytes) {
  ++injected_;
  obs::count(obs::MetricId::kDongleFramesTx);
  radio_.transmit(frame_bytes);
}

void ZWaveDongle::send_app(zwave::HomeId home, zwave::NodeId src, zwave::NodeId dst,
                           const zwave::AppPayload& payload, bool ack_requested) {
  // Reuse the singlecast template so the per-probe path (NOP pings, oracle
  // queries) does not rebuild a MacFrame + payload buffer every call.
  app_frame_.home_id = home;
  app_frame_.src = src;
  app_frame_.dst = dst;
  app_frame_.header = zwave::HeaderType::kSinglecast;
  app_frame_.ack_requested = ack_requested;
  app_frame_.routed = false;
  app_frame_.sequence = next_sequence();
  payload.encode_into(app_frame_.payload);
  inject(app_frame_);
}

std::optional<zwave::MacFrame> ZWaveDongle::await_frame(const FramePredicate& pred,
                                                        SimTime timeout) {
  const SimTime since = scheduler_.now();
  const SimTime deadline = since + timeout;
  while (true) {
    while (!inbox_empty()) {
      auto [at, frame] = inbox_pop();
      if (at < since) continue;  // stale: predates this exchange
      if (pred(frame)) return frame;
    }
    if (scheduler_.now() >= deadline) return std::nullopt;
    scheduler_.run_for(std::min(kPollStep, deadline - scheduler_.now()));
  }
}

bool ZWaveDongle::await_ack(zwave::HomeId home, zwave::NodeId from, zwave::NodeId self,
                            SimTime timeout) {
  return await_frame(
             [&](const zwave::MacFrame& frame) {
               return frame.home_id == home && frame.src == from && frame.dst == self &&
                      frame.header == zwave::HeaderType::kAck;
             },
             timeout)
      .has_value();
}

}  // namespace zc::core
