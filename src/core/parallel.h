// Parallel campaign sharding: N independent trials (or device profiles)
// executed on a fixed thread pool with deterministic, thread-count-
// independent results.
//
// Sharding model: one shard = one trial against one device profile. Every
// shard owns its whole world — a fresh sim::Testbed (scheduler, RF medium,
// controller, slaves), its own Campaign and therefore its own seeded RNG
// streams — so shards share no mutable state and never contend. Shard
// seeds are pure functions of (base seed, shard id), the exact derivation
// the sequential engine has always used, so the merged output is
// bit-identical whether the shards run on 1 thread or 16:
//
//   testbed seed  = base + shard_id * 0x9E3779B9
//   campaign seed = base + shard_id * 0xC2B2AE35
//
// Execution rides the persistent work-stealing pool in core/executor.h:
// shard indices are dealt to per-worker deques and idle workers steal from
// loaded ones, so stealing moves *execution*, never results — each result
// lands in a slot preallocated for its shard id and the merge walks the
// slots in shard order after the batch retires. Workers are long-lived
// across run_* calls and keep a reusable shard context (a Testbed recycled
// via Testbed::reset, a dedup-memo scratch), so steady-state sharded runs
// stop paying construction and allocator churn per shard. Checkpoints are
// serialized through a mutex-guarded sink tagged with the shard id;
// findings stage in a per-shard buffer and are committed to the shared
// journal in shard-list order (batched appends, one fsync per shard), so
// the journal file is byte-identical at any --jobs.
//
// Fault domains: every shard attempt runs under a supervisor. An attempt
// that throws is caught, counted, and relaunched after a bounded
// exponential wall-clock backoff (ShardRestartPolicy); an attempt that
// exceeds `shard_deadline` wall time is cancelled cooperatively — a
// per-worker watchdog thread trips the attempt's CancellationToken, the
// campaign loop observes it at its next test boundary and emits a final
// checkpoint, and the supervisor restarts the shard *resuming from that
// checkpoint*. A shard that exhausts `restart.max_restarts` is
// quarantined: its slot is marked degraded, its partial results (if any)
// are excluded from the merged summary, and every other shard still runs
// to completion — for the non-failed set the merged report is
// byte-identical to a failure-free run at the same seeds, because each
// shard's world is private and its seeds are pure functions of
// (base seed, shard id).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/covfuzz.h"
#include "core/executor.h"
#include "core/vfuzz.h"
#include "obs/recorder.h"
#include "sim/coverage.h"
#include "sim/profile.h"
#include "sim/testbed.h"
#include "store/journal.h"

namespace zc::core {

/// Which fuzzer family every shard runs: the paper's position-sensitive
/// campaign (core/campaign.h), the coverage-guided mode (core/covfuzz.h),
/// or the VFuzz baseline (core/vfuzz.h).
enum class FuzzerFamily : std::uint8_t { kPsm = 0, kCov, kVfuzz };

const char* fuzzer_family_name(FuzzerFamily family);

struct ShardResult;  // defined below; referenced by the control-plane hooks

/// Thread-pool configuration for a sharded run.
struct ParallelConfig {
  /// Worker threads; 0 means hardware_concurrency (at least 1).
  std::size_t jobs = 0;
  /// Periodic checkpoint interval applied to every shard (0 disables).
  SimTime checkpoint_interval = 0;
  /// Serialized checkpoint sink: invoked under an internal mutex, never
  /// concurrently, tagged with the shard the snapshot belongs to.
  std::function<void(std::size_t shard_id, const CampaignCheckpoint&)> checkpoint_sink;
  /// Polled by every shard between tests; must be thread-safe (an
  /// std::atomic<bool> read is the intended shape). Returning true stops
  /// all shards at their next test boundary.
  std::function<bool()> abort_hook;
  /// When true every shard runs under its own obs::Recorder (installed
  /// thread-locally for exactly that shard's campaign) and detaches its
  /// metrics + trace into ShardResult::telemetry. Off by default: the
  /// instrumentation hooks then collapse to a thread-local load + branch.
  bool collect_telemetry = false;
  /// Per-shard trace ring capacity when collecting telemetry.
  std::size_t trace_capacity = obs::TraceRing::kDefaultCapacity;
  /// Restart budget + backoff for failed/hung shard attempts
  /// (`--max-shard-restarts` maps to restart.max_restarts).
  ShardRestartPolicy restart;
  /// Wall-clock deadline per shard attempt; 0 disables the watchdog
  /// (`--shard-deadline`). An expired attempt is cancelled cooperatively
  /// and treated like a hang: checkpoint, restart-with-resume, and
  /// eventually quarantine.
  std::chrono::milliseconds shard_deadline{0};
  /// Durable findings journal shared by the whole run. Shards never write
  /// it directly: each stages findings in a private buffer, and completed
  /// buffers are committed via append_batch strictly in shard-list order —
  /// one lock + one fsync per shard, file bytes independent of --jobs.
  /// Not owned.
  store::FindingsJournal* journal = nullptr;
  /// Chaos/fault injection for the supervision layer itself (tests): runs
  /// at the start of every shard attempt on the worker thread. Throwing
  /// simulates a crashed worker; blocking until `token.cancelled()`
  /// simulates a hang the deadline watchdog must break. Production runs
  /// leave it unset.
  std::function<void(std::size_t shard_id, std::size_t attempt, const CancellationToken& token)>
      shard_fault_hook;
  /// Fuzzer family run by every shard. Under kCov each shard runs a
  /// CovFuzz loop instead of a Campaign; its duration, seed, journal and
  /// abort wiring still come from the shard's CampaignConfig-derived spec,
  /// while the remaining knobs come from `covfuzz` below. Coverage shards
  /// do not checkpoint: a restarted attempt replays from scratch, which is
  /// cheap and exact because the loop is virtual-time deterministic.
  FuzzerFamily fuzzer = FuzzerFamily::kPsm;
  /// Coverage-mode template (kCov only). duration/seed/journal/
  /// journal_shard_id/abort_hook are overwritten per shard.
  CovFuzzConfig covfuzz;
  /// VFuzz-baseline template (kVfuzz only); same per-shard overwrite rule
  /// as `covfuzz`, plus dedup from the shard's campaign spec. VFuzz shards
  /// do not checkpoint — like kCov, a restarted or resumed attempt replays
  /// from scratch, cheap and exact under virtual time.
  VFuzzConfig vfuzz;
  /// PSM shards only: when true, each shard's campaign runs under its own
  /// sim::cov::CoverageMap (installed thread-locally like the telemetry
  /// recorder) and detaches it into ShardResult::coverage. Off by default —
  /// the firmware hooks then collapse to a thread-local load + branch.
  /// kCov shards always collect coverage unless covfuzz.coverage_feedback
  /// is off (`--no-coverage`).
  bool collect_coverage = false;

  // --- job-level control hooks (the service control plane's surface) ----

  /// When set, the ordered per-shard journal commits are handed here
  /// instead of being appended to `journal`: called under the commit lock,
  /// strictly in shard-list order, exactly once per shard (possibly with
  /// an empty batch). The daemon uses this to hold a job's findings until
  /// the job finalizes — so a paused-and-replayed job can replace a
  /// shard's batch wholesale and the eventual journal file stays
  /// byte-identical to an uninterrupted run. `journal` is ignored while
  /// this is set; setting either one still enables finding staging.
  std::function<void(std::size_t shard_list_index, std::vector<store::FindingRecord> batch)>
      commit_sink;
  /// Fires on the worker thread right after a shard's findings commit
  /// (after `commit_sink`/journal append), with the shard's settled
  /// result. Called concurrently across shards — must be thread-safe. The
  /// daemon streams per-shard progress events from here; completion order
  /// is scheduling-dependent and therefore outside the determinism
  /// contract (the merged report is not).
  std::function<void(std::size_t shard_list_index, const ShardResult& result)> shard_complete;
  /// When true, a shard whose abort hook is already tripped before its
  /// first attempt starts is skipped outright (zero packets, result marked
  /// aborted) instead of paying a fingerprint phase just to notice the
  /// abort. Off by default: the one-shot CLI keeps the historical
  /// shape where every shard at least fingerprints; the daemon turns it on
  /// so pausing a wide job stops paying per-shard setup immediately.
  bool skip_unstarted_on_abort = false;
};

/// How a shard's supervision ended.
enum class ShardHealth : std::uint8_t {
  kHealthy = 0,      // first attempt completed
  kRecovered,        // completed after >= 1 restart
  kQuarantined,      // restart budget exhausted; results degraded/partial
};

const char* shard_health_name(ShardHealth health);

/// One shard's definition: everything a worker needs to run it, all by
/// value so the worker touches no shared state.
struct ShardSpec {
  std::size_t shard_id = 0;
  sim::TestbedConfig testbed;
  CampaignConfig campaign;
};

/// One shard's outcome, collected in deterministic shard order.
struct ShardResult {
  std::size_t shard_id = 0;
  sim::DeviceModel device = sim::DeviceModel::kD4_AeotecZw090;
  std::uint64_t campaign_seed = 0;
  CampaignResult result;
  /// Total transmissions that crossed the shard's medium (frame throughput
  /// accounting for BENCH_parallel.json).
  std::uint64_t medium_transmissions = 0;
  /// Per-shard metrics + trace, populated only when
  /// ParallelConfig::collect_telemetry is set (`telemetry.collected`).
  obs::Telemetry telemetry;
  /// Supervision outcome for this shard's fault domain.
  ShardHealth health = ShardHealth::kHealthy;
  /// Restarts consumed (0 for a clean first attempt).
  std::size_t restarts = 0;
  /// Human-readable reason for the last failed attempt ("" if none):
  /// an exception's what() for a crash, "deadline exceeded" for a hang.
  std::string last_error;
  /// True when this shard ran with coverage instrumentation installed
  /// (kCov with feedback on, or a PSM shard under collect_coverage).
  bool coverage_collected = false;
  /// The shard's accumulated handler-coverage map (see coverage_collected).
  sim::cov::CoverageMap coverage;
  /// kCov only: payloads the shard's feedback rule admitted, in admission
  /// order.
  std::vector<Bytes> corpus;
};

/// Merged outcome of a sharded run. `summary` is byte-for-byte what the
/// sequential run_trials() would have produced for the same inputs —
/// quarantined shards are excluded from it (their partial results stay in
/// `shards`, marked degraded), so the surviving set merges identically to
/// a failure-free run over just those shards.
struct ParallelTrialReport {
  TrialSummary summary;
  std::vector<ShardResult> shards;  // sorted by shard_id
  /// Aggregates merged in shard order from every CampaignResult.
  std::uint64_t inconclusive_tests = 0;
  std::uint64_t retried_injections = 0;
  std::size_t recovery_episodes = 0;
  /// Fault-domain aggregates.
  std::size_t shard_restarts = 0;               // restarts across all shards
  std::vector<std::size_t> degraded_shards;     // quarantined shard ids, ascending
  std::size_t jobs = 1;           // worker threads actually used
  double wall_seconds = 0.0;      // host wall clock for the whole pool

  /// Every collecting shard's metrics folded in ascending shard order —
  /// byte-identical JSON at any thread count.
  obs::MetricsRegistry merged_metrics() const;
  /// Every collecting shard's trace serialized as JSONL, shards
  /// concatenated in ascending shard order.
  std::string merged_trace_jsonl() const;
  /// Every coverage-collecting, non-quarantined shard's map folded in
  /// ascending shard order — byte-identical at any thread count (maps are
  /// commutative, but the fixed order makes the guarantee trivial).
  sim::cov::CoverageMap merged_coverage() const;
  /// Shard corpora concatenated in ascending shard order and fingerprint-
  /// deduplicated (first occurrence wins), quarantined shards excluded —
  /// the same list at any thread count.
  std::vector<Bytes> merged_corpus() const;
};

/// hardware_concurrency with a floor of 1 (the value `jobs = 0` resolves to).
std::size_t default_jobs();

/// Shard seed derivation — shared with the sequential engine so a sharded
/// run replays it exactly.
std::uint64_t shard_testbed_seed(std::uint64_t base_seed, std::size_t shard_id);
std::uint64_t shard_campaign_seed(std::uint64_t base_seed, std::size_t shard_id);

/// Folds shard results (already in ascending shard order) into the merged
/// report exactly the way run_trials_parallel does — exposed so a caller
/// holding results from run_shards_async (the daemon's job finalizer) can
/// produce a report byte-identical to the blocking wrappers'. Quarantined
/// shards are excluded from the summary, `jobs`/`wall_seconds` are
/// reporting metadata only.
ParallelTrialReport merge_shard_results(std::vector<ShardResult> shards, std::size_t jobs,
                                        double wall_seconds);

/// Asynchronous submission path (the shape the ROADMAP daemon needs): the
/// shard batch is handed to the persistent executor and the call returns
/// immediately with a Handle. When the last shard retires, `on_complete`
/// receives every ShardResult sorted by shard id — it runs on the executor
/// worker that finished last, so keep it light and do not submit new
/// batches from inside it. Journal commits and checkpoint-sink calls have
/// all happened by the time it fires. `Handle::wait()` returns only after
/// `on_complete` has returned.
Executor::Handle run_shards_async(std::vector<ShardSpec> shards, ParallelConfig parallel,
                                  std::function<void(std::vector<ShardResult>)> on_complete);

/// Blocking wrapper over run_shards_async. Results come back sorted by
/// shard id regardless of completion order.
std::vector<ShardResult> run_shards(const std::vector<ShardSpec>& shards,
                                    const ParallelConfig& parallel = {});

/// The parallel equivalent of run_trials(): N trials of one device, shard
/// i seeded exactly like sequential trial i. `report.summary` matches
/// run_trials() bit-for-bit for any thread count.
ParallelTrialReport run_trials_parallel(const sim::TestbedConfig& testbed_config,
                                        const CampaignConfig& campaign_config,
                                        std::size_t trials,
                                        const ParallelConfig& parallel = {});

/// Multi-profile campaign: `trials_per_device` trials for every listed
/// device model, sharded as device-major blocks (device d, trial t) ->
/// shard d * trials_per_device + t. Per-device seed derivation matches a
/// standalone run_trials() on that device.
ParallelTrialReport run_profiles_parallel(const std::vector<sim::DeviceModel>& devices,
                                          const sim::TestbedConfig& testbed_config,
                                          const CampaignConfig& campaign_config,
                                          std::size_t trials_per_device,
                                          const ParallelConfig& parallel = {});

}  // namespace zc::core
