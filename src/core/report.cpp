#include "core/report.h"

#include <cstdio>

namespace zc::core {

namespace {

std::string cve_for(int bug_id) {
  const auto* spec = sim::find_vulnerability(bug_id);
  if (spec == nullptr) return "-";
  if (spec->cve.empty()) return "vendor-confirmed";
  return std::string(spec->cve);
}

}  // namespace

std::string render_markdown_report(const CampaignResult& result, sim::DeviceModel target) {
  char line[256];
  std::string out;
  out += "# ZCover assessment report\n\n";
  std::snprintf(line, sizeof(line), "- **Target**: %s\n", sim::device_model_name(target));
  out += line;
  std::snprintf(line, sizeof(line), "- **Home ID**: %08X\n",
                result.fingerprint.passive.home_id.value_or(0));
  out += line;
  std::snprintf(line, sizeof(line), "- **Campaign**: %llu test packets over %s\n",
                static_cast<unsigned long long>(result.test_packets),
                format_sim_time(result.ended_at - result.started_at).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "- **Coverage**: %zu command classes, %zu dispatched (class, command) "
                "pairs\n\n",
                result.classes_fuzzed.size(), result.accepted_pairs.size());
  out += line;

  out += "## Fingerprint\n\n";
  std::snprintf(line, sizeof(line),
                "Listed command classes (NIF): %zu; unknown discovered: %zu "
                "(%zu spec-derived, %zu proprietary).\n\n",
                result.fingerprint.active.listed.size(),
                result.fingerprint.discovery.unknown().size(),
                result.fingerprint.discovery.spec_candidates.size(),
                result.fingerprint.discovery.proprietary.size());
  out += line;

  // Campaign health: how much the channel and the device fought back. A
  // vendor reading the report needs to know whether "no finding" means
  // "clean" or "the campaign spent its budget recovering the bench".
  if (result.inconclusive_tests > 0 || result.retried_injections > 0 ||
      !result.recovery_log.empty()) {
    out += "## Campaign resilience\n\n";
    std::snprintf(line, sizeof(line),
                  "- **Inconclusive tests** (injection lost on the medium): %llu\n",
                  static_cast<unsigned long long>(result.inconclusive_tests));
    out += line;
    std::snprintf(line, sizeof(line), "- **Retried injections**: %llu\n",
                  static_cast<unsigned long long>(result.retried_injections));
    out += line;
    std::size_t escalations = 0;
    for (const auto& episode : result.recovery_log) {
      if (episode.escalated()) ++escalations;
    }
    std::snprintf(line, sizeof(line),
                  "- **Watchdog recoveries**: %zu (%zu beyond NOP pings)\n\n",
                  result.recovery_log.size(), escalations);
    out += line;
  }

  out += "## Findings\n\n";
  if (result.findings.empty()) {
    out += "No vulnerabilities confirmed.\n";
    return out;
  }
  out += "| # | class | cmd | detection | at | packets | identifier | payload |\n";
  out += "|---|-------|-----|-----------|----|---------|------------|--------|\n";
  for (const auto& finding : result.findings) {
    std::snprintf(line, sizeof(line), "| %d | 0x%02X | 0x%02X | %s | %s | %llu | %s | `%s` |\n",
                  finding.matched_bug_id, finding.cmd_class, finding.command,
                  detection_kind_name(finding.kind),
                  format_sim_time(finding.detected_at - result.started_at).c_str(),
                  static_cast<unsigned long long>(finding.packets_sent),
                  cve_for(finding.matched_bug_id).c_str(),
                  to_hex(finding.payload).c_str());
    out += line;
  }
  out += "\nAll payloads replay through the packet tester (`zcover_cli replay`).\n";
  return out;
}

std::string render_findings_csv(const CampaignResult& result) {
  std::string out = "bug_id,cmd_class,command,kind,detected_at_us,packets,payload_hex\n";
  char line[192];
  for (const auto& finding : result.findings) {
    std::snprintf(line, sizeof(line), "%d,0x%02X,0x%02X,%s,%llu,%llu,%s\n",
                  finding.matched_bug_id, finding.cmd_class, finding.command,
                  detection_kind_name(finding.kind),
                  static_cast<unsigned long long>(finding.detected_at),
                  static_cast<unsigned long long>(finding.packets_sent),
                  to_hex(finding.payload).c_str());
    out += line;
  }
  return out;
}

std::string render_timeline_csv(const CampaignResult& result) {
  std::string out = "time_s,packets\n";
  char line[64];
  for (const auto& [at, packets] : result.packet_timeline) {
    std::snprintf(line, sizeof(line), "%.3f,%llu\n",
                  static_cast<double>(at - result.started_at) / static_cast<double>(kSecond),
                  static_cast<unsigned long long>(packets));
    out += line;
  }
  return out;
}

}  // namespace zc::core
