#include "core/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace zc::core {

namespace {

constexpr const char* kHeader = "zcover-checkpoint v1";

const char* mode_token(CampaignMode mode) {
  switch (mode) {
    case CampaignMode::kFull: return "full";
    case CampaignMode::kKnownOnly: return "known-only";
    case CampaignMode::kRandom: return "random";
  }
  return "?";
}

std::optional<CampaignMode> parse_mode(const std::string& token) {
  for (CampaignMode mode :
       {CampaignMode::kFull, CampaignMode::kKnownOnly, CampaignMode::kRandom}) {
    if (token == mode_token(mode)) return mode;
  }
  return std::nullopt;
}

std::optional<DetectionKind> parse_kind(const std::string& token) {
  for (DetectionKind kind :
       {DetectionKind::kServiceInterruption, DetectionKind::kMemoryTampering,
        DetectionKind::kHostCrash, DetectionKind::kHostDoS}) {
    if (token == detection_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

void append_signature(std::string& out, const char* key, const PayloadSignature& sig) {
  char line[64];
  std::snprintf(line, sizeof(line), "%s %u %u %u\n", key, sig.cc, sig.cmd, sig.param0);
  out += line;
}

bool parse_signature(std::istringstream& fields, PayloadSignature& sig) {
  unsigned cc = 0, cmd = 0, param0 = 0;
  if (!(fields >> cc >> cmd >> param0)) return false;
  if (cc > 0xFFFF || cmd > 0xFFFF || param0 > 0xFFFF) return false;
  sig.cc = static_cast<std::uint16_t>(cc);
  sig.cmd = static_cast<std::uint16_t>(cmd);
  sig.param0 = static_cast<std::uint16_t>(param0);
  return true;
}

}  // namespace

std::string serialize_checkpoint(const CampaignCheckpoint& checkpoint) {
  std::string out = kHeader;
  out += '\n';
  char line[128];
  std::snprintf(line, sizeof(line), "mode %s\n", mode_token(checkpoint.mode));
  out += line;
  std::snprintf(line, sizeof(line), "seed %llu\n",
                static_cast<unsigned long long>(checkpoint.seed));
  out += line;
  std::snprintf(line, sizeof(line), "rng %llu %llu %llu %llu\n",
                static_cast<unsigned long long>(checkpoint.rng_state[0]),
                static_cast<unsigned long long>(checkpoint.rng_state[1]),
                static_cast<unsigned long long>(checkpoint.rng_state[2]),
                static_cast<unsigned long long>(checkpoint.rng_state[3]));
  out += line;
  std::snprintf(line, sizeof(line), "elapsed %llu\n",
                static_cast<unsigned long long>(checkpoint.elapsed));
  out += line;
  std::snprintf(line, sizeof(line), "packets %llu\n",
                static_cast<unsigned long long>(checkpoint.test_packets));
  out += line;
  std::snprintf(line, sizeof(line), "inconclusive %llu\n",
                static_cast<unsigned long long>(checkpoint.inconclusive_tests));
  out += line;
  std::snprintf(line, sizeof(line), "retried %llu\n",
                static_cast<unsigned long long>(checkpoint.retried_injections));
  out += line;
  for (zwave::CommandClassId cc : checkpoint.classes_fuzzed) {
    std::snprintf(line, sizeof(line), "class %u\n", cc);
    out += line;
  }
  for (const auto& sig : checkpoint.blacklist) append_signature(out, "retire", sig);
  for (const auto& sig : checkpoint.reported_signatures) {
    append_signature(out, "reported-sig", sig);
  }
  for (int bug_id : checkpoint.reported_bug_ids) {
    std::snprintf(line, sizeof(line), "reported-bug %d\n", bug_id);
    out += line;
  }
  for (const auto& finding : checkpoint.findings) {
    std::snprintf(line, sizeof(line), " | %s | %d | %llu | %llu\n",
                  detection_kind_name(finding.kind), finding.matched_bug_id,
                  static_cast<unsigned long long>(finding.detected_at),
                  static_cast<unsigned long long>(finding.packets_sent));
    out += "finding ";
    out += to_hex(finding.payload);
    out += line;
  }
  // Footer sentinel: a file truncated anywhere — even mid-number, which
  // would otherwise parse as a shorter-but-valid value — is missing this
  // line and gets rejected wholesale.
  out += "end\n";
  return out;
}

std::optional<CampaignCheckpoint> parse_checkpoint(const std::string& text) {
  std::istringstream stream(text);
  std::string line;

  // The header is mandatory here (unlike the bug log): resuming from a
  // file of a different or future version must fail loudly.
  do {
    if (!std::getline(stream, line)) return std::nullopt;
  } while (line.empty());
  if (line != kHeader) return std::nullopt;

  CampaignCheckpoint checkpoint;
  bool saw_footer = false;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (saw_footer) return std::nullopt;  // records after "end": not ours
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      std::string extra;
      if (fields >> extra) return std::nullopt;
      saw_footer = true;
    } else if (key == "mode") {
      std::string token;
      if (!(fields >> token)) return std::nullopt;
      const auto mode = parse_mode(token);
      if (!mode.has_value()) return std::nullopt;
      checkpoint.mode = *mode;
    } else if (key == "seed") {
      if (!(fields >> checkpoint.seed)) return std::nullopt;
    } else if (key == "rng") {
      for (auto& word : checkpoint.rng_state) {
        if (!(fields >> word)) return std::nullopt;
      }
    } else if (key == "elapsed") {
      if (!(fields >> checkpoint.elapsed)) return std::nullopt;
    } else if (key == "packets") {
      if (!(fields >> checkpoint.test_packets)) return std::nullopt;
    } else if (key == "inconclusive") {
      if (!(fields >> checkpoint.inconclusive_tests)) return std::nullopt;
    } else if (key == "retried") {
      if (!(fields >> checkpoint.retried_injections)) return std::nullopt;
    } else if (key == "class") {
      unsigned cc = 0;
      if (!(fields >> cc) || cc > 0xFF) return std::nullopt;
      checkpoint.classes_fuzzed.push_back(static_cast<zwave::CommandClassId>(cc));
    } else if (key == "retire") {
      PayloadSignature sig;
      if (!parse_signature(fields, sig)) return std::nullopt;
      checkpoint.blacklist.push_back(sig);
    } else if (key == "reported-sig") {
      PayloadSignature sig;
      if (!parse_signature(fields, sig)) return std::nullopt;
      checkpoint.reported_signatures.push_back(sig);
    } else if (key == "reported-bug") {
      int bug_id = 0;
      if (!(fields >> bug_id)) return std::nullopt;
      checkpoint.reported_bug_ids.push_back(bug_id);
    } else if (key == "finding") {
      std::string hex, bar1, kind_token, bar2, bug_str, bar3, time_str, bar4, packets_str;
      if (!(fields >> hex >> bar1 >> kind_token >> bar2 >> bug_str >> bar3 >> time_str >>
            bar4 >> packets_str) ||
          bar1 != "|" || bar2 != "|" || bar3 != "|" || bar4 != "|") {
        return std::nullopt;
      }
      const auto payload_bytes = from_hex(hex);
      const auto kind = parse_kind(kind_token);
      if (!payload_bytes.has_value() || payload_bytes->empty() || !kind.has_value()) {
        return std::nullopt;
      }
      BugFinding finding;
      finding.payload = *payload_bytes;
      finding.kind = *kind;
      finding.matched_bug_id = std::atoi(bug_str.c_str());
      finding.detected_at = std::strtoull(time_str.c_str(), nullptr, 10);
      finding.packets_sent = std::strtoull(packets_str.c_str(), nullptr, 10);
      // cmd_class/command/first_param are views into the payload; re-derive
      // them instead of trusting redundant fields to stay in sync.
      const auto payload = zwave::decode_app_payload(finding.payload);
      if (!payload.ok()) return std::nullopt;
      finding.cmd_class = payload.value().cmd_class;
      finding.command = payload.value().command;
      if (!payload.value().params.empty()) {
        finding.first_param = payload.value().params[0];
      }
      checkpoint.findings.push_back(std::move(finding));
    } else {
      return std::nullopt;  // unknown key: not a v1 file after all
    }
  }
  // No footer means the tail of the file is gone (kill mid-write outside
  // the atomic writer, disk-full copy, ...): reject rather than resume
  // from silently shortened progress.
  if (!saw_footer) return std::nullopt;
  return checkpoint;
}

namespace {

/// fsyncs the directory holding `path` so a completed rename is on disk,
/// not just in the directory cache. Best-effort on platforms without
/// directory fds.
bool sync_parent_directory(const std::string& path) {
#ifdef _WIN32
  (void)path;
  return true;
#else
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#endif
}

}  // namespace

bool write_checkpoint_file(const std::string& path, const CampaignCheckpoint& checkpoint) {
  const std::string text = serialize_checkpoint(checkpoint);
  const std::string tmp_path = path + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) return false;
  // Durability before visibility: the temp file's bytes must be on disk
  // before the rename publishes them, or a power loss after the rename
  // could leave the *target* pointing at unwritten data.
  bool written = std::fwrite(text.data(), 1, text.size(), out) == text.size() &&
                 std::fflush(out) == 0;
#ifndef _WIN32
  written = written && ::fsync(::fileno(out)) == 0;
#endif
  const bool closed = std::fclose(out) == 0;
  if (!written || !closed) {
    std::remove(tmp_path.c_str());
    return false;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  // The rename is only durable once the directory entry is: fsync the
  // parent so a crash cannot roll the checkpoint back to its predecessor.
  sync_parent_directory(path);
  return true;
}

bool remove_stale_checkpoint_tmp(const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  // remove() failing on a missing file is the common case; only report a
  // cleanup when something was actually there.
  std::FILE* probe = std::fopen(tmp_path.c_str(), "rb");
  if (probe == nullptr) return false;
  std::fclose(probe);
  return std::remove(tmp_path.c_str()) == 0;
}

std::optional<CampaignCheckpoint> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return parse_checkpoint(buffer.str());
}

}  // namespace zc::core
