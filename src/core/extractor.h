// Phase 2 of ZCover: unknown-properties discovery (§III-C).
//
// Two techniques compose:
//  1. Specification clustering — parse the spec database, cluster the
//     classes a controller must implement (application functionality,
//     transport encapsulation, management, networking) and subtract the
//     NIF-listed set. This yields the *spec-derived* unlisted candidates
//     (the paper's 26 for a 17-class NIF).
//  2. Systematic validation testing — probe class IDs from 0x00 upward and
//     watch for any well-formed reaction from the controller. This is what
//     surfaces the proprietary classes 0x01/0x02 that no public document
//     lists.
//
// Candidates are then prioritized by command count (more commands => more
// implementation surface => fuzz first).
#pragma once

#include <set>
#include <vector>

#include "core/dongle.h"
#include "zwave/command_class.h"

namespace zc::core {

struct DiscoveryResult {
  /// Spec-derived unlisted candidates (in the cluster, not in the NIF).
  std::vector<zwave::CommandClassId> spec_candidates;
  /// Classes confirmed responsive by validation testing but absent from
  /// the public specification entirely (proprietary).
  std::vector<zwave::CommandClassId> proprietary;
  /// Everything validation testing confirmed the controller reacts to.
  std::set<zwave::CommandClassId> validated;

  /// All unknown (unlisted) classes: spec candidates + proprietary.
  std::vector<zwave::CommandClassId> unknown() const;
};

class UnknownPropertyExtractor {
 public:
  UnknownPropertyExtractor(ZWaveDongle& dongle, zwave::HomeId home, zwave::NodeId target,
                           zwave::NodeId attacker_node)
      : dongle_(dongle), home_(home), target_(target), self_(attacker_node) {}

  /// Technique 1: offline clustering against the spec database.
  static std::vector<zwave::CommandClassId> cluster_spec_candidates(
      const std::vector<zwave::CommandClassId>& listed);

  /// Technique 2: on-air validation sweep over class IDs
  /// [0x00, probe_ceiling]. A class is "supported" when the controller
  /// reacts with any well-formed application response.
  std::set<zwave::CommandClassId> validation_sweep(std::uint8_t probe_ceiling = 0xFF,
                                                   SimTime per_probe_timeout = 120 * kMillisecond);

  /// Full phase: clustering + sweep, composed per §III-C.
  DiscoveryResult discover(const std::vector<zwave::CommandClassId>& listed);

  /// Prioritization (§III-C): proprietary (validation-discovered) classes
  /// first, then spec command count descending, unlisted first on ties.
  static std::vector<zwave::CommandClassId> prioritize(
      std::vector<zwave::CommandClassId> classes,
      const std::vector<zwave::CommandClassId>& listed);

 private:
  ZWaveDongle& dongle_;
  zwave::HomeId home_;
  zwave::NodeId target_;
  zwave::NodeId self_;
};

}  // namespace zc::core
