// The fifth ZCover module (§IV "Implementation"): the packet tester, which
// validates selected bug-inducing packets saved in the campaign log file.
//
// A campaign's Bug_Logs (Algorithm 1 line 16) serialize to a plain-text
// log; the tester loads a log, replays each entry against a (fresh)
// testbed with the full oracle set, and reports which packets still
// reproduce their effect. This is the PoC-verification step the authors
// ran after fuzzing, and doubles as a regression harness for patched
// firmware.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.h"

namespace zc::core {

/// One replayable log entry.
struct LogEntry {
  Bytes payload;
  DetectionKind kind = DetectionKind::kServiceInterruption;
  int bug_id = -1;              // -1: unattributed
  SimTime detected_at = 0;

  std::string serialize() const;
};

/// Serializes campaign findings into the log-file format:
///   zcover-log v1
///   <hex payload> | <kind> | <bug id> | <virtual time us>
std::string serialize_bug_log(const std::vector<BugFinding>& findings);

/// Parses a log file's contents. Malformed lines are skipped (counted in
/// `rejected_lines` when provided).
std::vector<LogEntry> parse_bug_log(const std::string& text,
                                    std::size_t* rejected_lines = nullptr);

/// Replay verdict for one entry.
struct ReplayResult {
  LogEntry entry;
  bool reproduced = false;
  DetectionKind observed_kind = DetectionKind::kServiceInterruption;
  SimTime observed_outage = 0;  // 0 when none/unmeasured
};

/// Replays each log entry against the testbed, restoring the network and
/// host between entries so effects cannot mask each other.
class PacketTester {
 public:
  PacketTester(sim::Testbed& testbed, std::uint64_t seed = 0x7E57);

  /// Replays a single payload with the full oracle set.
  ReplayResult replay(const LogEntry& entry);

  /// Replays every entry of a parsed log.
  std::vector<ReplayResult> replay_all(const std::vector<LogEntry>& log);

  /// Corpus minimization: drops trailing payload bytes while the effect
  /// still reproduces, returning the shortest still-reproducing payload.
  Bytes minimize(const LogEntry& entry);

 private:
  /// Oracle core shared by replay() and minimize(): fills the verdict
  /// fields of `result` without copying the entry into it.
  void replay_into(const LogEntry& entry, ReplayResult& result);

  bool probe_liveness();
  std::uint64_t table_digest_direct() const;
  void settle();

  sim::Testbed& testbed_;
  ZWaveDongle dongle_;
  zwave::HomeId home_;
};

}  // namespace zc::core
