// Persistent work-stealing executor: the scheduling substrate under
// core/parallel (and, eventually, the campaign-as-a-service daemon of
// ROADMAP item 1).
//
// Why it exists: the original sharded engine spawned a fresh std::thread
// pool on every run_trials_parallel() call and handed out shard indices
// from one atomic cursor. That shape has two costs at fleet scale:
//   * pool churn — thread create/join per call, once per bench row, once
//     per service request;
//   * convoying — a cursor hands each worker the *next* shard, so a list
//     with skewed shard costs ends with every worker idle behind whichever
//     one drew the expensive tail.
//
// This executor keeps one long-lived pool per process (Executor::global(),
// grown on demand, never shrunk) and gives every submitted job per-worker
// deques: task indices are dealt in contiguous blocks, a worker pops from
// the front of its own deque, and when it runs dry it steals from the
// *back* of the first non-empty sibling (scanning round-robin from its own
// slot). Owners and thieves therefore touch opposite deque ends, steals
// grab the work farthest from the victim's current locality, and a skewed
// tail gets rebalanced instead of serialized.
//
// Determinism contract (the property core/parallel is built on): the
// executor moves *execution* between threads, never results. A job's tasks
// are identified by dense indices; what a task writes is the caller's
// business, and core/parallel gives every shard a preallocated result slot
// keyed by index. Which worker runs a task — and in what order tasks
// interleave across workers — is scheduling noise with no data flow, so
// merged outputs stay byte-identical at any worker count.
//
// Threading rules:
//   * submit() may be called from any thread EXCEPT an executor worker —
//     a worker blocking in Handle::wait() on a nested job could deadlock
//     the pool. (Fire-and-forget nested submission would be safe, but no
//     caller needs it; keep the rule simple.)
//   * Job::run must not throw: a task that leaks an exception would take
//     the worker down with std::terminate. core/parallel catches
//     everything inside the task (that is what its supervision layer is
//     for).
//   * on_complete runs on the worker that finishes the job's last task,
//     before the handle unblocks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace zc::core {

/// Lifetime counters for the pool (monotonic; read with stats()).
struct ExecutorStats {
  std::uint64_t jobs_submitted = 0;
  /// Jobs whose last task retired (ticks just before on_complete fires,
  /// so completion callbacks already observe it). jobs_submitted
  /// minus jobs_completed is the pool's in-flight depth — the number the
  /// service control plane publishes as executor.* gauges.
  std::uint64_t jobs_completed = 0;
  std::uint64_t tasks_run = 0;
  /// Tasks a worker claimed from another worker's deque. Zero on a
  /// perfectly balanced workload; > 0 is the work-stealing rebalance
  /// actually firing.
  std::uint64_t tasks_stolen = 0;
};

namespace detail {
struct JobState;
}  // namespace detail

class Executor {
 public:
  /// Task body: dense task index plus the job-local worker slot in
  /// [0, resolved max_workers) running it. The slot, not the pool index:
  /// narrow jobs are rotated across the pool, and core/parallel keys its
  /// per-job watchdog slots by this value, sized to the job's worker cap.
  using TaskFn = std::function<void(std::size_t task_index, std::size_t worker_index)>;

  /// One unit of submission: `task_count` dense tasks fanned over at most
  /// `max_workers` pool workers (0 = every worker).
  struct Job {
    std::size_t task_count = 0;
    std::size_t max_workers = 0;
    TaskFn run;
    /// Optional: runs exactly once, on the worker that retires the last
    /// task, before waiters wake. Empty jobs fire it inside submit().
    std::function<void()> on_complete;
  };

  /// Completion handle. Copyable; all copies observe the same job.
  class Handle {
   public:
    Handle() = default;
    bool valid() const { return state_ != nullptr; }
    /// True once every task retired and on_complete returned.
    bool done() const;
    /// Blocks until done(). No-op on an invalid handle.
    void wait() const;

   private:
    friend class Executor;
    explicit Handle(std::shared_ptr<detail::JobState> state) : state_(std::move(state)) {}
    std::shared_ptr<detail::JobState> state_;
  };

  /// A private pool with exactly `workers` threads (floored at 1). Tests
  /// use private pools; production code shares global().
  explicit Executor(std::size_t workers);
  /// Joins the pool. All submitted jobs must be complete.
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t workers() const;
  /// Grows the pool to at least `n` threads (never shrinks — persistent
  /// workers are what make thread_local shard contexts reusable).
  void ensure_workers(std::size_t n);

  Handle submit(Job job);

  ExecutorStats stats() const;

  /// The process-wide pool. First caller sizes it (min_workers, floored at
  /// 1); later callers grow it on demand via ensure_workers. Never torn
  /// down before static destruction, so worker-thread contexts persist
  /// across run_trials_parallel()/covfuzz calls — the whole point.
  static Executor& global(std::size_t min_workers = 0);

 private:
  void worker_main(std::size_t worker_index);
  std::shared_ptr<detail::JobState> find_runnable_locked(std::size_t worker_index);
  void run_job_tasks(detail::JobState& job, std::size_t worker_index);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  std::vector<std::shared_ptr<detail::JobState>> active_jobs_;
  /// Rotates the starting worker of narrow jobs (max_workers < pool size)
  /// so concurrent narrow jobs spread across the pool. Guarded by mutex_.
  std::size_t next_origin_ = 0;
  bool stopping_ = false;
  // Monotonic counters kept atomic so stats() never contends with task
  // retirement (tasks are coarse, but the read side is a test/diagnostic
  // path that should stay wait-free).
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
};

}  // namespace zc::core
