#include "core/covfuzz.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>

#include "obs/recorder.h"
#include "zwave/command_class.h"

namespace zc::core {

namespace {

/// Settle window after clearing an outage with a reset/power-cycle.
constexpr SimTime kRecoverySettle = 150 * kMillisecond;
/// Short outages are cheaper to wait out than to reset through.
constexpr SimTime kWaitOutLimit = 2 * kSecond;

}  // namespace

CovFuzz::CovFuzz(sim::Testbed& testbed, CovFuzzConfig config)
    : testbed_(testbed),
      config_(std::move(config)),
      rng_(config_.seed),
      dongle_(testbed.medium(), testbed.scheduler(),
              testbed.attacker_radio_config("covfuzz-dongle")),
      home_(testbed.controller().home_id()) {
  // Same scratch-lending move as Campaign: a reused memo is cleared, so
  // only its table capacity (not its contents) survives across runs.
  memo_ = config_.memo_scratch != nullptr ? config_.memo_scratch : &own_memo_;
  if (config_.memo_scratch != nullptr) memo_->clear();
}

std::vector<Bytes> CovFuzz::canonical_seeds() {
  const auto& db = zwave::SpecDatabase::instance();
  std::vector<Bytes> seeds;
  for (zwave::CommandClassId cc : db.controller_cluster(true)) {
    const zwave::CommandClassSpec* spec = db.find(cc);
    if (spec == nullptr || spec->commands.empty()) {
      zwave::AppPayload bare;
      bare.cmd_class = cc;
      bare.command = 0x00;
      seeds.push_back(bare.encode());
      continue;
    }
    for (const zwave::CommandSpec& cmd : spec->commands) {
      zwave::AppPayload payload;
      payload.cmd_class = cc;
      payload.command = cmd.id;
      for (const zwave::ParamSpec& param : cmd.params) payload.params.push_back(param.min);
      seeds.push_back(payload.encode());
    }
  }
  return seeds;
}

bool CovFuzz::save_corpus(const std::string& dir, const std::vector<Bytes>& corpus) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  for (const Bytes& payload : corpus) {
    const std::uint64_t fp = TestMemo::fingerprint(ByteView(payload.data(), payload.size()));
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.seed", static_cast<unsigned long long>(fp));
    const std::filesystem::path path = std::filesystem::path(dir) / name;
    std::FILE* file = std::fopen(path.string().c_str(), "wb");
    if (file == nullptr) return false;
    const bool written =
        payload.empty() ||
        std::fwrite(payload.data(), 1, payload.size(), file) == payload.size();
    const bool closed = std::fclose(file) == 0;
    if (!written || !closed) return false;
  }
  return true;
}

std::vector<Bytes> CovFuzz::load_corpus(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  for (; !ec && it != std::filesystem::directory_iterator(); it.increment(ec)) {
    if (it->path().extension() == ".seed") files.push_back(it->path());
  }
  // Sorted filename order: the load sequence is a function of the corpus
  // content, not of the filesystem's enumeration order.
  std::sort(files.begin(), files.end());
  std::vector<Bytes> corpus;
  for (const std::filesystem::path& path : files) {
    std::FILE* file = std::fopen(path.string().c_str(), "rb");
    if (file == nullptr) continue;
    Bytes payload;
    char buf[256];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
      payload.insert(payload.end(), buf, buf + n);
    }
    std::fclose(file);
    corpus.push_back(std::move(payload));
  }
  return corpus;
}

void CovFuzz::clear_outage() {
  sim::VirtualController& controller = testbed_.controller();
  if (controller.responsive()) return;
  const SimTime remaining = controller.outage_remaining();
  if (remaining <= kWaitOutLimit) {
    // Finite, short: let virtual time absorb it.
    dongle_.run_for(remaining);
    return;
  }
  if (controller.soft_reset()) {
    dongle_.run_for(kRecoverySettle);
    return;
  }
  // NVM-level wedge (infinite outage): only the operator's power cycle
  // clears it — same bottom rung as the campaign watchdog's ladder.
  controller.operator_recover();
  dongle_.run_for(kRecoverySettle);
}

void CovFuzz::journal_new_triggers(std::size_t& cursor) {
  const auto& triggered = testbed_.controller().triggered();
  if (config_.journal == nullptr) {
    cursor = triggered.size();
    return;
  }
  for (; cursor < triggered.size(); ++cursor) {
    const auto& vuln = triggered[cursor];
    store::FindingRecord record;
    record.device = static_cast<std::uint8_t>(testbed_.controller().model());
    record.kind = 0;  // like VFuzz, the oracle is the trigger log itself
    if (vuln.payload.size() >= 2) {
      record.cc = vuln.payload[0];
      record.cmd = vuln.payload[1];
    }
    record.param0 = vuln.payload.size() > 2 ? vuln.payload[2] : 0x100;
    record.bug_id = vuln.bug_id;
    record.detected_at = vuln.at;
    record.campaign_seed = config_.seed;
    record.shard_id = config_.journal_shard_id;
    record.payload = vuln.payload;
    const auto outcome = config_.journal->append(record);
    obs::count(outcome == store::FindingsJournal::AppendOutcome::kDuplicate
                   ? obs::MetricId::kJournalDedupSkips
                   : obs::MetricId::kJournalAppends);
  }
}

void CovFuzz::journal_admission(const zwave::AppPayload& payload) {
  if (config_.journal == nullptr) return;
  store::FindingRecord record;
  record.device = static_cast<std::uint8_t>(testbed_.controller().model());
  record.kind = 0;
  record.flags = store::FindingRecord::kCorpusSeedFlag;
  record.cc = payload.cmd_class;
  record.cmd = payload.command;
  record.param0 = payload.params.empty() ? 0x100 : payload.params[0];
  record.bug_id = 0;  // not a finding; the flag says what this is
  record.detected_at = testbed_.scheduler().now();
  record.campaign_seed = config_.seed;
  record.shard_id = config_.journal_shard_id;
  record.payload = payload.encode();
  const auto outcome = config_.journal->append(record);
  obs::count(outcome == store::FindingsJournal::AppendOutcome::kDuplicate
                 ? obs::MetricId::kJournalDedupSkips
                 : obs::MetricId::kJournalAppends);
}

void CovFuzz::execute_test(CovFuzzResult& result, const zwave::AppPayload& payload) {
  last_new_edges_ = 0;
  if (config_.coverage_feedback) {
    scratch_.clear();
    {
      // The scratch map observes exactly this test's dispatch chain —
      // including slave chatter inside the settle window, which is
      // deterministic in virtual time and therefore stable per seed.
      const sim::cov::ScopedCoverage scoped(scratch_);
      dongle_.send_app(home_, kAttackerNodeId, zwave::kControllerNodeId, payload);
      obs::count(obs::MetricId::kCovfuzzPacketsTx);
      ++result.packets_sent;
      dongle_.run_for(config_.inter_test_gap);
    }
    const std::size_t new_edges = scratch_.fold_into(result.coverage);
    last_new_edges_ = new_edges;
    if (new_edges > 0) {
      // The admission rule: this payload's execution grew the map.
      result.corpus.push_back(payload.encode());
      corpus_by_class_[payload.cmd_class].push_back(result.corpus.size() - 1);
      obs::count(obs::MetricId::kCovfuzzCorpusAdmissions);
      obs::gauge_set(obs::MetricId::kCovfuzzCorpusSize, result.corpus.size());
      obs::gauge_set(obs::MetricId::kCovfuzzEdgesHit, result.coverage.edges_hit());
      obs::emit(obs::TraceEventType::kCoverageNew, payload.cmd_class, payload.command,
                static_cast<std::int64_t>(new_edges),
                static_cast<std::int64_t>(result.corpus.size()));
      journal_admission(payload);
    }
  } else {
    // Blind arm: no map installed anywhere — this is also the
    // instrumentation-off baseline bench_covfuzz_overhead measures.
    dongle_.send_app(home_, kAttackerNodeId, zwave::kControllerNodeId, payload);
    obs::count(obs::MetricId::kCovfuzzPacketsTx);
    ++result.packets_sent;
    dongle_.run_for(config_.inter_test_gap);
  }
  clear_outage();
  journal_new_triggers(triggers_journaled_);
}

CovFuzzResult CovFuzz::run() {
  CovFuzzResult result;
  const std::size_t triggers_before = testbed_.controller().triggered().size();
  triggers_journaled_ = triggers_before;
  const SimTime deadline = testbed_.scheduler().now() + config_.duration;

  auto stopped = [&] {
    if (testbed_.scheduler().now() >= deadline) return true;
    if (config_.abort_hook && config_.abort_hook()) {
      result.aborted = true;
      return true;
    }
    return false;
  };

  // --- phase 1: seed replay -------------------------------------------
  // Canonical spec-derived payloads first, then any caller-provided extra
  // seeds (--corpus-dir). Replaying a previous run's corpus warms the map,
  // so a follow-up run admits only genuinely new edges.
  std::vector<Bytes> seeds = canonical_seeds();
  seeds.insert(seeds.end(), config_.extra_seeds.begin(), config_.extra_seeds.end());
  for (const Bytes& bytes : seeds) {
    if (stopped()) break;
    const auto decoded = zwave::decode_app_payload(ByteView(bytes.data(), bytes.size()));
    if (!decoded.ok()) continue;
    if (config_.dedup &&
        memo_->check_and_insert(TestMemo::fingerprint(ByteView(bytes.data(), bytes.size())))) {
      obs::count(obs::MetricId::kCovfuzzDedupSkips);
      ++result.dedup_skips;
      continue;
    }
    execute_test(result, decoded.value());
  }
  const std::size_t seed_admissions = result.corpus.size();

  // --- phase 2: scheduled mutation rounds -----------------------------
  // One PositionSensitiveMutator per controller-relevant class. The power
  // schedule walks the ring; a class keeps its first turn until its
  // systematic enumeration completes (the PSM-parity guarantee), then
  // earns boosted energy while its tests keep uncovering edges.
  struct ClassState {
    zwave::CommandClassId cc = 0;
    std::optional<PositionSensitiveMutator> mutator;
    bool boosted = false;
    std::size_t havoc_cursor = 0;
  };
  const std::vector<zwave::CommandClassId> ring =
      zwave::SpecDatabase::instance().controller_cluster(true);
  std::vector<ClassState> states(ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i) states[i].cc = ring[i];

  // Re-mutates an admitted corpus entry of this class: one parameter byte
  // nudged to an interesting constant or an arithmetic neighbor. False
  // when the class has no corpus entry with parameters to work on.
  auto havoc_into = [&](ClassState& state, zwave::AppPayload& out) {
    const auto entry = corpus_by_class_.find(state.cc);
    if (entry == corpus_by_class_.end() || entry->second.empty()) return false;
    const std::size_t pick = entry->second[state.havoc_cursor++ % entry->second.size()];
    const Bytes& base = result.corpus[pick];
    const auto decoded = zwave::decode_app_payload(ByteView(base.data(), base.size()));
    if (!decoded.ok() || decoded.value().params.empty()) return false;
    out = decoded.value();
    const std::size_t pos =
        static_cast<std::size_t>(rng_.uniform(0, out.params.size() - 1));
    if (rng_.chance(0.5)) {
      out.params[pos] = kInterestingBytes[rng_.uniform(0, 5)];
    } else {
      out.params[pos] =
          static_cast<std::uint8_t>(out.params[pos] + (rng_.chance(0.5) ? 1 : 0xFF));
    }
    return true;
  };

  while (!stopped()) {
    for (ClassState& state : states) {
      if (stopped()) break;
      if (!state.mutator.has_value()) state.mutator.emplace(rng_, state.cc);
      const std::size_t energy =
          config_.energy_base * (state.boosted ? config_.energy_boost : 1);
      bool grew = false;
      std::size_t tests = 0;
      while ((tests < energy || state.mutator->in_systematic_phase()) && !stopped()) {
        ++tests;
        const bool havoc_turn = config_.havoc_stride > 0 &&
                                tests % config_.havoc_stride == 0 &&
                                havoc_into(state, payload_scratch_);
        if (!havoc_turn) state.mutator->next_into(payload_scratch_);
        if (config_.dedup) {
          // Bounded redraw, as in vfuzz: a duplicate buys nothing but the
          // settle wait for a verdict the map already absorbed.
          bool duplicate =
              memo_->check_and_insert(TestMemo::fingerprint(payload_scratch_));
          for (int tries = 0; duplicate && tries < 4; ++tries) {
            obs::count(obs::MetricId::kCovfuzzDedupSkips);
            ++result.dedup_skips;
            state.mutator->next_into(payload_scratch_);
            duplicate = memo_->check_and_insert(TestMemo::fingerprint(payload_scratch_));
          }
          if (duplicate) continue;  // saturated: spend no settle wait on it
        }
        execute_test(result, payload_scratch_);
        if (last_new_edges_ > 0) grew = true;
      }
      state.boosted = grew;
    }
  }

  result.mutated_admissions = result.corpus.size() - seed_admissions;
  obs::gauge_set(obs::MetricId::kCovfuzzCorpusSize, result.corpus.size());
  obs::gauge_set(obs::MetricId::kCovfuzzEdgesHit, result.coverage.edges_hit());

  const auto& triggered = testbed_.controller().triggered();
  for (std::size_t i = triggers_before; i < triggered.size(); ++i) {
    result.unique_bug_ids.insert(triggered[i].bug_id);
  }
  return result;
}

}  // namespace zc::core
