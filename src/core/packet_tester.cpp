#include "core/packet_tester.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace zc::core {

namespace {

constexpr zwave::NodeId kTesterNodeId = 0xE6;

const char* kind_token(DetectionKind kind) { return detection_kind_name(kind); }

std::optional<DetectionKind> parse_kind(const std::string& token) {
  for (DetectionKind kind :
       {DetectionKind::kServiceInterruption, DetectionKind::kMemoryTampering,
        DetectionKind::kHostCrash, DetectionKind::kHostDoS}) {
    if (token == detection_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace

std::string LogEntry::serialize() const {
  char tail[80];
  std::snprintf(tail, sizeof(tail), " | %s | %d | %llu", kind_token(kind), bug_id,
                static_cast<unsigned long long>(detected_at));
  return to_hex(payload) + tail;
}

std::string serialize_bug_log(const std::vector<BugFinding>& findings) {
  std::string out = "zcover-log v1\n";
  for (const auto& finding : findings) {
    LogEntry entry{finding.payload, finding.kind, finding.matched_bug_id,
                   finding.detected_at};
    out += entry.serialize();
    out += '\n';
  }
  return out;
}

std::vector<LogEntry> parse_bug_log(const std::string& text, std::size_t* rejected_lines) {
  std::vector<LogEntry> entries;
  // One line per entry (header and rejects only ever shrink the estimate).
  entries.reserve(static_cast<std::size_t>(
      std::count(text.begin(), text.end(), '\n')));
  std::size_t rejected = 0;
  std::istringstream stream(text);
  std::string line;
  bool first_content_line = true;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    // The header is strictly optional and only recognized as the first
    // non-empty line; a data first line is parsed as data, never consumed.
    const bool is_first = first_content_line;
    first_content_line = false;
    if (is_first && line.rfind("zcover-log", 0) == 0) {
      if (line != "zcover-log v1") ++rejected;  // unknown version
      continue;
    }
    // Format: <hex> | <kind> | <bug id> | <time us>
    std::istringstream fields(line);
    std::string hex, bar1, kind_token_str, bar2, bug_str, bar3, time_str;
    if (!(fields >> hex >> bar1 >> kind_token_str >> bar2 >> bug_str >> bar3 >> time_str) ||
        bar1 != "|" || bar2 != "|" || bar3 != "|") {
      ++rejected;
      continue;
    }
    const auto payload = from_hex(hex);
    const auto kind = parse_kind(kind_token_str);
    if (!payload.has_value() || payload->empty() || !kind.has_value()) {
      ++rejected;
      continue;
    }
    LogEntry entry;
    entry.payload = *payload;
    entry.kind = *kind;
    entry.bug_id = std::atoi(bug_str.c_str());
    entry.detected_at = std::strtoull(time_str.c_str(), nullptr, 10);
    entries.push_back(std::move(entry));
  }
  if (rejected_lines != nullptr) *rejected_lines = rejected;
  return entries;
}

PacketTester::PacketTester(sim::Testbed& testbed, std::uint64_t seed)
    : testbed_(testbed),
      dongle_(testbed.medium(), testbed.scheduler(),
              testbed.attacker_radio_config("packet-tester")),
      home_(testbed.controller().home_id()) {
  (void)seed;
}

bool PacketTester::probe_liveness() {
  dongle_.send_app(home_, kTesterNodeId, zwave::kControllerNodeId, zwave::make_nop());
  return dongle_.await_ack(home_, zwave::kControllerNodeId, kTesterNodeId,
                           400 * kMillisecond);
}

std::uint64_t PacketTester::table_digest_direct() const {
  return testbed_.controller().node_table().digest();
}

void PacketTester::settle() {
  testbed_.restore_network();
  testbed_.controller().operator_recover();
  dongle_.run_for(500 * kMillisecond);
}

ReplayResult PacketTester::replay(const LogEntry& entry) {
  ReplayResult result;
  result.entry = entry;
  replay_into(entry, result);
  return result;
}

void PacketTester::replay_into(const LogEntry& entry, ReplayResult& result) {
  settle();

  const std::uint64_t table_before = table_digest_direct();
  const auto host_before = testbed_.controller().host().state();

  const auto payload = zwave::decode_app_payload(entry.payload);
  if (!payload.ok()) return;
  const SimTime injected_at = testbed_.scheduler().now();
  dongle_.send_app(home_, kTesterNodeId, zwave::kControllerNodeId, payload.value());
  dongle_.run_for(200 * kMillisecond);

  // Oracle sweep, mirroring the campaign's detection logic but with the
  // operator's bench access (this is offline PoC verification).
  const auto host_after = testbed_.controller().host().state();
  if (host_after != host_before) {
    result.reproduced = true;
    result.observed_kind = host_after == sim::HostSoftware::State::kCrashed
                               ? DetectionKind::kHostCrash
                               : DetectionKind::kHostDoS;
    return;
  }
  if (!probe_liveness()) {
    result.reproduced = true;
    result.observed_kind = DetectionKind::kServiceInterruption;
    // Total outage = what remains plus what the probing already consumed
    // (the outage started within the injection's processing delay).
    const SimTime outage = testbed_.controller().outage_remaining();
    const SimTime consumed = testbed_.scheduler().now() - injected_at;
    result.observed_outage =
        outage == std::numeric_limits<SimTime>::max() ? outage : outage + consumed;
    // Wait it out so the next entry starts clean (capped for "Infinite").
    dongle_.run_for(std::min<SimTime>(outage, 5 * kMinute));
    return;
  }
  if (table_digest_direct() != table_before) {
    result.reproduced = true;
    result.observed_kind = DetectionKind::kMemoryTampering;
  }
}

std::vector<ReplayResult> PacketTester::replay_all(const std::vector<LogEntry>& log) {
  std::vector<ReplayResult> results;
  results.reserve(log.size());
  for (const auto& entry : log) results.push_back(replay(entry));
  return results;
}

Bytes PacketTester::minimize(const LogEntry& entry) {
  Bytes best = entry.payload;
  // One candidate and one verdict reused across the whole shrink loop: the
  // replays themselves dominate, but a long corpus minimization should not
  // also churn a payload copy per dropped byte.
  LogEntry candidate = entry;
  ReplayResult verdict;
  while (best.size() > 2) {
    candidate.payload.assign(best.begin(), best.end() - 1);
    verdict = ReplayResult{};
    replay_into(candidate, verdict);
    if (!verdict.reproduced) break;
    best = candidate.payload;
  }
  // The two-byte floor keeps CMDCL+CMD; some triggers survive with just
  // those. Try the one-byte degenerate form too.
  if (best.size() == 2) {
    candidate.payload.assign(best.begin(), best.begin() + 1);
    verdict = ReplayResult{};
    replay_into(candidate, verdict);
    if (verdict.reproduced) best = candidate.payload;
  }
  return best;
}

}  // namespace zc::core
