// Lightweight intrusion detection for legacy Z-Wave networks — the
// remediation the paper recommends for devices that cannot be patched
// (§V-B, in the spirit of the authors' ZMAD work).
//
// The detector is model-based: it whitelists the nodes of the home, knows
// which command classes the specification expects to travel encrypted, and
// flags MAC-level protocol violations. It consumes decoded frames from any
// promiscuous endpoint.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "zwave/command_class.h"
#include "zwave/frame.h"

namespace zc::core {

enum class AlertKind : std::uint8_t {
  kPlaintextSecureClass,  // controller-critical class outside S0/S2 encap
  kGhostNodeProbe,        // NIF/protocol request naming a non-member node
  kUnknownSource,         // frame from a node id outside the home's roster
  kMacViolation,          // ack-demanding ack / broadcast abuse / bad route
  kTrafficFlood,          // per-source rate above the home's baseline
};

const char* alert_kind_name(AlertKind kind);

struct IdsAlert {
  SimTime at = 0;
  AlertKind kind{};
  zwave::NodeId src = 0;
  std::string detail;
};

struct IdsConfig {
  /// Known member node ids (from inclusion records).
  std::set<zwave::NodeId> roster;
  /// Treat controller-cluster classes as requiring encapsulation.
  bool enforce_secure_classes = true;
  /// Alert on sources outside the roster.
  bool enforce_roster = true;
  /// Per-source rate rule: more than `rate_threshold` frames within
  /// `rate_window` raises kTrafficFlood. 0 disables the rule. Z-Wave homes
  /// idle at a handful of frames per minute; fuzzers and jammers do not.
  std::size_t rate_threshold = 0;
  SimTime rate_window = 1 * kSecond;
};

class IntrusionDetector {
 public:
  explicit IntrusionDetector(IdsConfig config);

  /// Inspects one decoded frame; returns an alert when suspicious.
  std::optional<IdsAlert> inspect(const zwave::MacFrame& frame, SimTime at);

  const std::vector<IdsAlert>& alerts() const { return alerts_; }
  std::uint64_t frames_inspected() const { return frames_inspected_; }

 private:
  IdsConfig config_;
  std::set<zwave::CommandClassId> secure_classes_;
  std::set<zwave::CommandClassId> transparent_;  // encapsulation carriers
  std::map<zwave::NodeId, std::vector<SimTime>> recent_by_source_;
  std::vector<IdsAlert> alerts_;
  std::uint64_t frames_inspected_ = 0;
};

}  // namespace zc::core
