#include "core/executor.h"

#include <algorithm>

namespace zc::core {

namespace detail {

/// One submitted job's scheduling state. Shared (via shared_ptr) between
/// the executor's active list, every participating worker, and any
/// outstanding Handles, so it outlives whichever of them finishes last.
struct JobState {
  Executor::TaskFn run;
  std::function<void()> on_complete;
  std::size_t participants = 0;

  /// First eligible pool worker: participant s runs on pool worker
  /// (origin + s) % pool_span. Rotating origins spread narrow jobs
  /// (max_workers below the pool size) across the pool — without this,
  /// every narrow job would pin to worker 0, and two concurrent
  /// single-worker campaigns would serialize there while the rest of the
  /// pool idled.
  std::size_t origin = 0;
  /// Pool size snapshotted at submit; the origin mapping is computed
  /// against it so a later ensure_workers growth cannot re-map (and
  /// double-assign) participant indices mid-job.
  std::size_t pool_span = 1;

  /// Participant (slot) index of pool worker `worker_index`, or
  /// `participants` when that worker is not eligible for this job.
  std::size_t participant_of(std::size_t worker_index) const {
    if (worker_index >= pool_span) return participants;
    const std::size_t local = (worker_index + pool_span - origin) % pool_span;
    return local < participants ? local : participants;
  }

  /// Per-participant deque of unclaimed task indices. The owner pops from
  /// the front, thieves pop from the back; the mutex is per-slot, so a
  /// steal only ever contends with its victim. Coarse tasks (whole shard
  /// campaigns) make the lock cost irrelevant next to a lock-free deque's
  /// complexity.
  struct Slot {
    std::mutex mutex;
    std::deque<std::size_t> tasks;
  };
  std::vector<std::unique_ptr<Slot>> slots;

  /// Tasks no worker has claimed yet: lets an idle worker park on the pool
  /// condvar instead of rescanning a job whose deques have drained while
  /// its last tasks are still executing elsewhere.
  std::atomic<std::size_t> unclaimed{0};
  /// Tasks not yet retired; the decrement that hits zero runs on_complete
  /// and wakes waiters.
  std::atomic<std::size_t> remaining{0};

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  void mark_done() {
    {
      const std::lock_guard<std::mutex> lock(done_mutex);
      done = true;
    }
    done_cv.notify_all();
  }
};

}  // namespace detail

bool Executor::Handle::done() const {
  if (state_ == nullptr) return true;
  const std::lock_guard<std::mutex> lock(state_->done_mutex);
  return state_->done;
}

void Executor::Handle::wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->done_mutex);
  state_->done_cv.wait(lock, [this] { return state_->done; });
}

Executor::Executor(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  const std::lock_guard<std::mutex> lock(mutex_);
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::size_t Executor::workers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return threads_.size();
}

void Executor::ensure_workers(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  while (threads_.size() < n) {
    const std::size_t index = threads_.size();
    threads_.emplace_back([this, index] { worker_main(index); });
  }
}

Executor::Handle Executor::submit(Job job) {
  auto state = std::make_shared<detail::JobState>();
  state->run = std::move(job.run);
  state->on_complete = std::move(job.on_complete);
  jobs_submitted_.fetch_add(1, std::memory_order_relaxed);

  if (job.task_count == 0) {
    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    if (state->on_complete) state->on_complete();
    state->done = true;  // no concurrency yet: the state never left this thread
    return Handle(std::move(state));
  }

  // Participants are a window of the pool starting at a rotating origin
  // (see JobState::origin); tasks see the job-local slot index, which is
  // what lets core/parallel key per-job state (watchdog slots) by
  // worker_index with vectors sized to the job's worker cap.
  std::size_t participants = job.max_workers == 0
                                 ? workers()
                                 : std::min(job.max_workers, workers());
  participants = std::max<std::size_t>(1, std::min(participants, job.task_count));
  state->participants = participants;

  // Deal task indices in contiguous blocks, like the block decomposition a
  // static scheduler would use — neighbors in the shard list start on the
  // same worker, and a steal takes from the far end of the largest
  // untouched run the scan finds.
  const std::size_t chunk = (job.task_count + participants - 1) / participants;
  state->slots.reserve(participants);
  for (std::size_t s = 0; s < participants; ++s) {
    auto slot = std::make_unique<detail::JobState::Slot>();
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(job.task_count, begin + chunk);
    for (std::size_t task = begin; task < end; ++task) slot->tasks.push_back(task);
    state->slots.push_back(std::move(slot));
  }
  state->unclaimed.store(job.task_count, std::memory_order_relaxed);
  state->remaining.store(job.task_count, std::memory_order_relaxed);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    state->pool_span = threads_.size();
    if (participants < state->pool_span) {
      state->origin = next_origin_ % state->pool_span;
      next_origin_ += participants;  // the next narrow job starts past us
    }
    active_jobs_.push_back(state);
  }
  cv_.notify_all();
  return Handle(std::move(state));
}

ExecutorStats Executor::stats() const {
  ExecutorStats out;
  out.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  out.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  out.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  out.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  return out;
}

Executor& Executor::global(std::size_t min_workers) {
  // Meyers singleton (not a leak): static destruction joins the pool, so
  // sanitizer runs end with zero live threads and zero leaked contexts.
  static Executor instance(std::max<std::size_t>(1, min_workers));
  instance.ensure_workers(min_workers);
  return instance;
}

std::shared_ptr<detail::JobState> Executor::find_runnable_locked(std::size_t worker_index) {
  for (const auto& job : active_jobs_) {
    if (job->participant_of(worker_index) == job->participants) continue;
    if (job->unclaimed.load(std::memory_order_relaxed) == 0) continue;
    return job;
  }
  return nullptr;
}

void Executor::worker_main(std::size_t worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::shared_ptr<detail::JobState> job = find_runnable_locked(worker_index);
    if (job == nullptr) {
      if (stopping_) return;
      cv_.wait(lock);
      continue;
    }
    lock.unlock();
    run_job_tasks(*job, worker_index);
    lock.lock();
  }
}

void Executor::run_job_tasks(detail::JobState& job, std::size_t worker_index) {
  const std::size_t own = job.participant_of(worker_index);  // job-local slot
  for (;;) {
    std::size_t task = 0;
    bool found = false;
    bool stolen = false;
    {
      detail::JobState::Slot& slot = *job.slots[own];
      const std::lock_guard<std::mutex> guard(slot.mutex);
      if (!slot.tasks.empty()) {
        task = slot.tasks.front();
        slot.tasks.pop_front();
        found = true;
      }
    }
    // Own deque dry: steal from the back of the first non-empty sibling,
    // scanning round-robin from our own slot so thieves spread across
    // victims instead of all mobbing slot 0.
    for (std::size_t k = 1; k < job.participants && !found; ++k) {
      detail::JobState::Slot& victim = *job.slots[(own + k) % job.participants];
      const std::lock_guard<std::mutex> guard(victim.mutex);
      if (!victim.tasks.empty()) {
        task = victim.tasks.back();
        victim.tasks.pop_back();
        found = true;
        stolen = true;
      }
    }
    if (!found) return;  // job drained (others may still be executing)

    job.unclaimed.fetch_sub(1, std::memory_order_relaxed);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);

    job.run(task, own);

    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task retired: completion runs here, on a worker, so a
      // submit-and-move-on caller (the future daemon) needs no extra
      // thread to collect results. The stat ticks before on_complete so
      // that anything on_complete unblocks already observes the job as
      // completed.
      jobs_completed_.fetch_add(1, std::memory_order_relaxed);
      if (job.on_complete) job.on_complete();
      job.mark_done();
      const std::lock_guard<std::mutex> lock(mutex_);
      active_jobs_.erase(
          std::remove_if(active_jobs_.begin(), active_jobs_.end(),
                         [&job](const std::shared_ptr<detail::JobState>& entry) {
                           return entry.get() == &job;
                         }),
          active_jobs_.end());
    }
  }
}

}  // namespace zc::core
