#include "core/resilience.h"

#include <algorithm>
#include <cmath>

#include "obs/recorder.h"

namespace zc::core {

SimTime RetryPolicy::backoff_before(std::size_t attempt, Rng& rng) const {
  if (attempt == 0) return 0;
  double backoff = static_cast<double>(initial_backoff) *
                   std::pow(std::max(1.0, multiplier), static_cast<double>(attempt - 1));
  backoff = std::min(backoff, static_cast<double>(max_backoff));
  const double clamped_jitter = std::clamp(jitter, 0.0, 1.0);
  const double factor = 1.0 + clamped_jitter * (2.0 * rng.uniform01() - 1.0);
  const SimTime wait = static_cast<SimTime>(backoff * factor);
  obs::count(obs::MetricId::kResilienceBackoffs);
  obs::observe(obs::MetricId::kResilienceBackoffUs, wait);
  return wait;
}

std::chrono::milliseconds ShardRestartPolicy::backoff_before(std::size_t restart) const {
  if (restart == 0) return std::chrono::milliseconds{0};
  double backoff = static_cast<double>(initial_backoff.count()) *
                   std::pow(std::max(1.0, multiplier), static_cast<double>(restart - 1));
  backoff = std::min(backoff, static_cast<double>(max_backoff.count()));
  return std::chrono::milliseconds{static_cast<std::int64_t>(backoff)};
}

const char* recovery_stage_name(RecoveryStage stage) {
  switch (stage) {
    case RecoveryStage::kNopPing: return "nop-ping";
    case RecoveryStage::kSoftReset: return "soft-reset";
    case RecoveryStage::kHardReboot: return "hard-reboot";
  }
  return "?";
}

}  // namespace zc::core
