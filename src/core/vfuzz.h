// VFuzz baseline (Nkuba et al., IEEE Access 2022), reimplemented from its
// published description for the Table V comparison.
//
// VFuzz differs from ZCover in exactly the ways §IV-C highlights:
//  * it mutates across the whole MAC frame (frame-control bytes, LEN,
//    addressing, checksum) rather than only the application layer;
//  * its command-class coverage is the full 0x00-0xFF range with no
//    property extraction, so most packets never reach a handler;
//  * it paces slowly, waiting on response timeouts per test.
//
// Uniqueness accounting for the comparison is done the same way for both
// tools: distinct root causes confirmed against the device's ground-truth
// trigger log after the campaign.
#pragma once

#include <functional>
#include <set>

#include "core/dongle.h"
#include "core/test_memo.h"
#include "sim/testbed.h"
#include "store/journal.h"

namespace zc::core {

struct VFuzzConfig {
  SimTime duration = 24 * kHour;
  SimTime inter_packet_gap = 6 * kSecond;  // protocol-aware response waits
  std::uint64_t seed = 0xF022;
  /// Skip byte-identical frames (the unguided generator redraws popular
  /// header mutations constantly). Each duplicate is regenerated instead of
  /// spent on a 6-second response wait; regeneration is bounded so a
  /// saturated space still makes progress.
  bool dedup = true;
  /// Findings sink (same contract as CampaignConfig::journal): triggered
  /// root causes are appended as they first fire. Not owned.
  store::FindingSink* journal = nullptr;
  std::uint32_t journal_shard_id = 0;
  /// Polled between packets (same contract as CampaignConfig::abort_hook);
  /// returning true stops the run at its next packet boundary — what lets
  /// core/parallel and the service control plane pause/cancel a vfuzz
  /// shard cooperatively.
  std::function<bool()> abort_hook;
};

struct VFuzzResult {
  std::uint64_t packets_sent = 0;
  /// Duplicate frames regenerated before injection (dedup only).
  std::uint64_t dedup_skips = 0;
  /// Distinct triggered root causes (Table III ids 1-15; MAC quirks 101+).
  std::set<int> unique_bug_ids;
  /// Coverage the tool itself reports: full byte ranges.
  std::size_t cmdcl_space = 256;
  std::size_t cmd_space = 256;
  /// True when the abort hook stopped the run before its deadline.
  bool aborted = false;
};

class VFuzz {
 public:
  VFuzz(sim::Testbed& testbed, VFuzzConfig config);

  VFuzzResult run();

 private:
  Bytes generate_frame();

  sim::Testbed& testbed_;
  VFuzzConfig config_;
  Rng rng_;
  ZWaveDongle dongle_;
  zwave::HomeId home_;
  TestMemo memo_;
};

}  // namespace zc::core
