#include "core/extractor.h"

#include <algorithm>

#include "obs/recorder.h"

namespace zc::core {

std::vector<zwave::CommandClassId> DiscoveryResult::unknown() const {
  std::vector<zwave::CommandClassId> all = spec_candidates;
  all.insert(all.end(), proprietary.begin(), proprietary.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<zwave::CommandClassId> UnknownPropertyExtractor::cluster_spec_candidates(
    const std::vector<zwave::CommandClassId>& listed) {
  const auto cluster =
      zwave::SpecDatabase::instance().controller_cluster(/*include_unlisted=*/false);
  std::vector<zwave::CommandClassId> candidates;
  for (zwave::CommandClassId id : cluster) {
    if (std::find(listed.begin(), listed.end(), id) == listed.end()) {
      candidates.push_back(id);
    }
  }
  return candidates;
}

std::set<zwave::CommandClassId> UnknownPropertyExtractor::validation_sweep(
    std::uint8_t probe_ceiling, SimTime per_probe_timeout) {
  std::set<zwave::CommandClassId> validated;
  for (unsigned cc = 0x00; cc <= probe_ceiling; ++cc) {
    // Algorithm 1's initial payload shape: [CMDCL, 0x00, 0x00]. Command
    // 0x00 is (almost) never assigned, so a supported class answers with a
    // well-formed rejection while an unsupported one stays silent.
    zwave::AppPayload probe;
    probe.cmd_class = static_cast<zwave::CommandClassId>(cc);
    probe.command = 0x00;
    probe.params = {0x00};
    obs::count(obs::MetricId::kScannerProbesTx);
    obs::emit(obs::TraceEventType::kProbeTx,
              static_cast<std::int64_t>(obs::ProbeKind::kValidation),
              static_cast<std::int64_t>(cc), target_);
    dongle_.send_app(home_, self_, target_, probe);

    const auto reaction = dongle_.await_frame(
        [&](const zwave::MacFrame& frame) {
          if (frame.home_id != home_ || frame.src != target_ || frame.dst != self_)
            return false;
          return frame.header != zwave::HeaderType::kAck;  // an application reply
        },
        per_probe_timeout);
    if (reaction.has_value()) {
      validated.insert(static_cast<zwave::CommandClassId>(cc));
      obs::count(obs::MetricId::kScannerCmdclValidated);
      obs::emit(obs::TraceEventType::kCmdclValidated, static_cast<std::int64_t>(cc));
    }
    if (cc == 0xFF) break;  // avoid unsigned wrap
  }
  return validated;
}

DiscoveryResult UnknownPropertyExtractor::discover(
    const std::vector<zwave::CommandClassId>& listed) {
  DiscoveryResult result;
  result.spec_candidates = cluster_spec_candidates(listed);
  result.validated = validation_sweep();

  const auto& db = zwave::SpecDatabase::instance();
  for (zwave::CommandClassId id : result.validated) {
    if (std::find(listed.begin(), listed.end(), id) != listed.end()) continue;
    const auto* spec = db.find(id);
    if (spec == nullptr || !spec->in_public_spec) {
      result.proprietary.push_back(id);
    }
  }
  std::sort(result.proprietary.begin(), result.proprietary.end());
  return result;
}

std::vector<zwave::CommandClassId> UnknownPropertyExtractor::prioritize(
    std::vector<zwave::CommandClassId> classes,
    const std::vector<zwave::CommandClassId>& listed) {
  const auto& db = zwave::SpecDatabase::instance();
  auto is_listed = [&](zwave::CommandClassId id) {
    return std::find(listed.begin(), listed.end(), id) != listed.end();
  };
  auto is_proprietary = [&](zwave::CommandClassId id) {
    const auto* spec = db.find(id);
    return spec == nullptr || !spec->in_public_spec;
  };
  std::stable_sort(classes.begin(), classes.end(),
                   [&](zwave::CommandClassId a, zwave::CommandClassId b) {
                     // Proprietary classes first: undocumented surface that
                     // only validation testing exposed is the prime suspect
                     // (§III-C2 — seven of Table III's bugs live there).
                     const bool pa = is_proprietary(a);
                     const bool pb = is_proprietary(b);
                     if (pa != pb) return pa;
                     const std::size_t ca = db.command_count(a);
                     const std::size_t cb = db.command_count(b);
                     if (ca != cb) return ca > cb;
                     const bool ua = !is_listed(a);
                     const bool ub = !is_listed(b);
                     if (ua != ub) return ua;  // unlisted first on ties
                     return a < b;
                   });
  return classes;
}

}  // namespace zc::core
