// The ZCover campaign engine: Algorithm 1 plus the feedback loop of Fig. 7.
//
// A campaign chains the three phases — fingerprinting, unknown-property
// discovery, position-sensitive fuzzing — against a simulated testbed, and
// detects vulnerabilities through three oracles the real researchers used:
//
//  * liveness: a NOP ping after every test case; silence means a service
//    interruption (§IV-A "Feedback & crash verification"),
//  * memory tampering: the controller's own node-list / cached-node-info
//    protocol surface, the same view the PC-controller UI renders in
//    Figs. 8-11,
//  * host software: the operator watches the companion app / PC program.
//
// Modes implement the ablation arms of Table VI: kFull, kKnownOnly (β) and
// kRandom (γ, batched blind fuzzing with replay triage).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/dongle.h"
#include "core/extractor.h"
#include "core/mutator.h"
#include "core/scanner.h"
#include "sim/testbed.h"

namespace zc::core {

enum class CampaignMode { kFull, kKnownOnly, kRandom };

const char* campaign_mode_name(CampaignMode mode);

struct CampaignConfig {
  CampaignMode mode = CampaignMode::kFull;
  SimTime duration = 24 * kHour;          // Testing_T of Algorithm 1
  SimTime per_class_budget = 30 * kSecond;  // C_T (systematic phase always completes)
  SimTime response_window = 150 * kMillisecond;
  SimTime liveness_timeout = 400 * kMillisecond;
  /// NOP probe attempts before declaring a service interruption. One lost
  /// ack on a noisy channel must not count as a crash (§IV-A's liveliness
  /// monitoring runs on real, lossy RF).
  std::size_t liveness_attempts = 2;
  /// Inline confirmation: after an apparent outage recovers, replay the
  /// suspect payload and require the outage to reproduce before logging.
  /// Off by default — the paper verifies findings offline (packet tester);
  /// turn on for very lossy channels.
  bool confirm_findings = false;
  /// Resume support: bug-inducing payloads from a previous session's log.
  /// Their signatures are pre-blacklisted so a follow-up campaign neither
  /// re-reports nor re-triggers them (each entry's payload is the
  /// serialized application payload, as in the log file).
  std::vector<Bytes> known_payloads;
  SimTime recovery_poll = 5 * kSecond;
  SimTime recovery_give_up = 6 * kMinute;  // then operator power-cycles
  std::uint64_t seed = 0x2C07E12F;
  /// When the prioritized queue drains before `duration`, start another
  /// randomized pass (matches the paper's fixed 24 h trials).
  bool loop_queue = true;
  /// kRandom only: blind packets per batch before an oracle check.
  std::size_t random_batch = 10;
};

enum class DetectionKind : std::uint8_t {
  kServiceInterruption,
  kMemoryTampering,
  kHostCrash,
  kHostDoS,
};

const char* detection_kind_name(DetectionKind kind);

/// One confirmed unique finding (a Bug_Logs entry of Algorithm 1).
struct BugFinding {
  Bytes payload;                       // bug-inducing application payload
  zwave::CommandClassId cmd_class = 0;
  zwave::CommandId command = 0;
  std::optional<std::uint8_t> first_param;
  DetectionKind kind = DetectionKind::kServiceInterruption;
  SimTime detected_at = 0;
  std::uint64_t packets_sent = 0;      // test packets at detection (Fig. 12)
  /// Ground-truth correlation via the public signature tables
  /// (vulnerability_matrix / mac_quirk_matrix); -1 when unmatched.
  int matched_bug_id = -1;
};

struct FingerprintReport {
  PassiveScanResult passive;
  ActiveScanResult active;
  DiscoveryResult discovery;
  std::vector<zwave::CommandClassId> fuzz_queue;  // prioritized
};

struct CampaignResult {
  FingerprintReport fingerprint;
  std::vector<BugFinding> findings;      // unique, in discovery order
  std::uint64_t test_packets = 0;
  SimTime started_at = 0;
  SimTime ended_at = 0;
  std::set<zwave::CommandClassId> classes_fuzzed;
  /// Distinct (class, command) pairs the controller accepted (did not
  /// reject with APPLICATION_STATUS) — Table V's "CMD" column.
  std::set<std::pair<zwave::CommandClassId, zwave::CommandId>> accepted_pairs;
  /// (time, packets) samples every ~10 s of virtual time, for Fig. 12.
  std::vector<std::pair<SimTime, std::uint64_t>> packet_timeline;
};

/// Aggregate of N independent trials — the paper's methodology runs five
/// 24-hour trials per controller ("Following recommended fuzzing
/// practices"). Each trial gets a fresh testbed and a derived seed.
struct TrialSummary {
  std::size_t trials = 0;
  std::set<int> union_bug_ids;             // unique across all trials
  std::vector<std::size_t> per_trial_unique;
  std::vector<SimTime> first_finding_at;   // relative to each trial's start
  std::uint64_t total_packets = 0;
};

TrialSummary run_trials(const sim::TestbedConfig& testbed_config,
                        const CampaignConfig& campaign_config, std::size_t trials);

class Campaign {
 public:
  Campaign(sim::Testbed& testbed, CampaignConfig config);

  /// Phase 1+2 only (Table IV). Reusable without fuzzing.
  FingerprintReport fingerprint();

  /// Full pipeline: fingerprint + fuzz until the configured duration.
  CampaignResult run();

  ZWaveDongle& dongle() { return dongle_; }

  /// The attacker's spoofed node id.
  static constexpr zwave::NodeId kAttackerNodeId = 0xE7;

 private:
  struct Signature {
    zwave::CommandClassId cc;
    zwave::CommandId cmd;
    std::uint16_t param0;  // 0x100 = no parameter
    auto operator<=>(const Signature&) const = default;
  };
  static Signature signature_of(const zwave::AppPayload& payload);

  void fuzz(CampaignResult& result);
  void fuzz_class(CampaignResult& result, zwave::CommandClassId cc, SimTime hard_deadline);
  void fuzz_random(CampaignResult& result);

  /// Sends one test payload and runs every oracle. Returns true when any
  /// new finding was recorded.
  bool execute_test(CampaignResult& result, const zwave::AppPayload& payload);
  void run_oracles(CampaignResult& result, const zwave::AppPayload& suspect);
  bool probe_liveness();
  void await_recovery();
  std::optional<std::uint64_t> query_table_digest();
  void record_finding(CampaignResult& result, const zwave::AppPayload& payload,
                      DetectionKind kind);
  void note_packet(CampaignResult& result);
  int correlate_ground_truth(const zwave::AppPayload& payload, DetectionKind kind) const;

  sim::Testbed& testbed_;
  CampaignConfig config_;
  Rng rng_;
  ZWaveDongle dongle_;
  zwave::HomeId home_ = 0;
  zwave::NodeId target_ = zwave::kControllerNodeId;

  std::set<Signature> blacklist_;
  std::set<Signature> reported_signatures_;  // dedupe for unattributed finds
  std::set<int> reported_bug_ids_;           // dedupe by confirmed root cause
  std::size_t triggers_seen_ = 0;            // cursor into the SUT trigger log
  std::optional<std::uint64_t> baseline_digest_;
  sim::HostSoftware::State last_host_state_ = sim::HostSoftware::State::kRunning;
};

}  // namespace zc::core
