// The ZCover campaign engine: Algorithm 1 plus the feedback loop of Fig. 7.
//
// A campaign chains the three phases — fingerprinting, unknown-property
// discovery, position-sensitive fuzzing — against a simulated testbed, and
// detects vulnerabilities through three oracles the real researchers used:
//
//  * liveness: a NOP ping after every test case; silence means a service
//    interruption (§IV-A "Feedback & crash verification"),
//  * memory tampering: the controller's own node-list / cached-node-info
//    protocol surface, the same view the PC-controller UI renders in
//    Figs. 8-11,
//  * host software: the operator watches the companion app / PC program.
//
// Modes implement the ablation arms of Table VI: kFull, kKnownOnly (β) and
// kRandom (γ, batched blind fuzzing with replay triage).
//
// The engine is built to survive a hostile bench, not just the happy path:
// injections are retried under a RetryPolicy and count as inconclusive —
// never as findings — when the medium ate them; outages are cleared by an
// escalating watchdog (NOP ping → Serial API soft reset → power cycle);
// and progress checkpoints let a killed campaign resume without re-fuzzing
// retired signatures. See docs/robustness.md.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/dongle.h"
#include "core/extractor.h"
#include "core/mutator.h"
#include "core/resilience.h"
#include "core/scanner.h"
#include "core/test_memo.h"
#include "sim/testbed.h"
#include "store/journal.h"

namespace zc::core {

enum class CampaignMode { kFull, kKnownOnly, kRandom };

const char* campaign_mode_name(CampaignMode mode);

enum class DetectionKind : std::uint8_t {
  kServiceInterruption,
  kMemoryTampering,
  kHostCrash,
  kHostDoS,
};

const char* detection_kind_name(DetectionKind kind);

/// How one test injection resolved. kInconclusive means the injection (or
/// every ack) was lost on the medium while the controller stayed alive —
/// the payload may never have arrived, so no oracle verdict is possible.
enum class TestOutcome : std::uint8_t { kClean, kFinding, kInconclusive };

/// One confirmed unique finding (a Bug_Logs entry of Algorithm 1).
struct BugFinding {
  Bytes payload;                       // bug-inducing application payload
  zwave::CommandClassId cmd_class = 0;
  zwave::CommandId command = 0;
  std::optional<std::uint8_t> first_param;
  DetectionKind kind = DetectionKind::kServiceInterruption;
  SimTime detected_at = 0;
  std::uint64_t packets_sent = 0;      // test packets at detection (Fig. 12)
  /// Ground-truth correlation via the public signature tables
  /// (vulnerability_matrix / mac_quirk_matrix); -1 when unmatched.
  int matched_bug_id = -1;
};

/// A (class, command, first-parameter) test signature, the engine's unit of
/// dedupe and retirement. param0 is the widened first parameter byte:
/// 0x100 = the payload had no parameters, 0x1FF = wildcard (any parameter).
struct PayloadSignature {
  std::uint16_t cc = 0;
  std::uint16_t cmd = 0;
  std::uint16_t param0 = 0;
  auto operator<=>(const PayloadSignature&) const = default;
};

/// Resumable campaign progress: everything needed to continue a killed run
/// without re-fuzzing retired signatures or replaying the RNG from zero.
/// Serialized by core/checkpoint.h ("zcover-checkpoint v1").
struct CampaignCheckpoint {
  CampaignMode mode = CampaignMode::kFull;
  std::uint64_t seed = 0;
  std::array<std::uint64_t, 4> rng_state{};
  /// Virtual fuzzing time consumed so far (fingerprinting excluded); the
  /// resumed run fuzzes for `duration - elapsed`.
  SimTime elapsed = 0;
  std::uint64_t test_packets = 0;
  std::uint64_t inconclusive_tests = 0;
  std::uint64_t retried_injections = 0;
  std::vector<zwave::CommandClassId> classes_fuzzed;
  std::vector<PayloadSignature> blacklist;
  std::vector<PayloadSignature> reported_signatures;
  std::vector<int> reported_bug_ids;
  std::vector<BugFinding> findings;
};

struct CampaignConfig {
  CampaignMode mode = CampaignMode::kFull;
  SimTime duration = 24 * kHour;          // Testing_T of Algorithm 1
  SimTime per_class_budget = 30 * kSecond;  // C_T (systematic phase always completes)
  SimTime response_window = 150 * kMillisecond;
  SimTime liveness_timeout = 400 * kMillisecond;
  /// NOP probe attempts before declaring a service interruption. One lost
  /// ack on a noisy channel must not count as a crash (§IV-A's liveliness
  /// monitoring runs on real, lossy RF).
  std::size_t liveness_attempts = 2;
  /// Inline confirmation: after an apparent outage recovers, replay the
  /// suspect payload and require the outage to reproduce before logging.
  /// Off by default — the paper verifies findings offline (packet tester);
  /// turn on for very lossy channels.
  bool confirm_findings = false;
  /// Resume support: bug-inducing payloads from a previous session's log.
  /// Their signatures are pre-blacklisted so a follow-up campaign neither
  /// re-reports nor re-triggers them (each entry's payload is the
  /// serialized application payload, as in the log file).
  std::vector<Bytes> known_payloads;
  /// Retransmission policy for test injections and active probes. Retries
  /// reuse the original MAC sequence number, so the controller's duplicate
  /// suppression guarantees a retried payload is processed at most once.
  RetryPolicy retry;
  /// Escalating recovery ladder replacing the old fixed poll/give-up pair.
  WatchdogConfig watchdog;
  std::uint64_t seed = 0x2C07E12F;
  /// When the prioritized queue drains before `duration`, start another
  /// randomized pass (matches the paper's fixed 24 h trials).
  bool loop_queue = true;
  /// Duplicate-test memoization: the mutators regenerate identical
  /// (CMDCL, CMD, PARAMs) payloads constantly, and against a deterministic
  /// SUT a repeated test repeats its verdict. When enabled, payloads whose
  /// canonical fingerprint already executed with a certified-clean verdict
  /// are skipped (hits/misses are exported as campaign.dedup_* metrics).
  /// Findings and inconclusive tests are never memoized. `--no-dedup`
  /// restores exhaustive re-execution.
  bool dedup = true;
  /// Adaptive liveness schedule: on the clean path, the NOP probe and the
  /// node-table digest run once every `liveness_stride` tests instead of
  /// after every test. Risky tests — lost acks, host-state anomalies —
  /// always probe immediately, and a failed sweep replays the deferred
  /// window under full per-test oracles so attribution stays exact.
  /// 1 = the legacy probe-after-every-test schedule.
  std::size_t liveness_stride = 8;
  /// kRandom only: blind packets per batch before an oracle check.
  std::size_t random_batch = 10;
  /// Checkpointing: every `checkpoint_interval` of virtual fuzz time (0
  /// disables periodic snapshots) the engine hands a fresh checkpoint to
  /// `checkpoint_sink`; a final snapshot is always emitted when the
  /// `abort_hook` stops the run.
  SimTime checkpoint_interval = 0;
  std::function<void(const CampaignCheckpoint&)> checkpoint_sink;
  /// Polled between tests; returning true stops the campaign (the sim
  /// equivalent of SIGTERM / an operator pulling the plug mid-run).
  std::function<bool()> abort_hook;
  /// Findings sink: when set, every finding is appended the moment
  /// record_finding confirms it — not at exit. Sequential runs point this
  /// straight at the durable store::FindingsJournal (internally
  /// serialized, crash-loses-nothing-confirmed); core/parallel points each
  /// shard at a store::BufferedFindingSink it batch-commits in shard
  /// order, which keeps the journal file byte-identical at any --jobs.
  /// Not owned.
  store::FindingSink* journal = nullptr;
  /// Shard identity stamped on journal records (core/parallel sets it).
  std::uint32_t journal_shard_id = 0;
  /// Optional dedup-memo scratch reused across campaigns (core/parallel's
  /// per-worker shard contexts): cleared on campaign construction, so
  /// behavior is identical to the internal memo — the table just keeps its
  /// grown capacity instead of re-growing from 1 KiB every shard. Not
  /// owned; must outlive the campaign.
  TestMemo* memo_scratch = nullptr;
  /// Continue a previous session: restores RNG state, retired signatures,
  /// findings and counters, and shrinks the fuzz budget by the checkpoint's
  /// elapsed time. The queue is re-walked from the top — the restored
  /// blacklist keeps retired signatures from re-triggering or re-reporting,
  /// which makes resuming safe even after a mid-class kill.
  std::optional<CampaignCheckpoint> resume_from;
};

struct FingerprintReport {
  PassiveScanResult passive;
  ActiveScanResult active;
  DiscoveryResult discovery;
  std::vector<zwave::CommandClassId> fuzz_queue;  // prioritized
};

struct CampaignResult {
  FingerprintReport fingerprint;
  std::vector<BugFinding> findings;      // unique, in discovery order
  std::uint64_t test_packets = 0;
  SimTime started_at = 0;
  SimTime ended_at = 0;
  std::set<zwave::CommandClassId> classes_fuzzed;
  /// Distinct (class, command) pairs the controller accepted (did not
  /// reject with APPLICATION_STATUS) — Table V's "CMD" column.
  std::set<std::pair<zwave::CommandClassId, zwave::CommandId>> accepted_pairs;
  /// (time, packets) samples every ~10 s of virtual time, for Fig. 12.
  std::vector<std::pair<SimTime, std::uint64_t>> packet_timeline;
  /// One entry per outage the watchdog had to clear.
  std::vector<RecoveryStats> recovery_log;
  /// Injections whose transmissions (or acks) the medium ate while the
  /// controller stayed alive — retried, then skipped without a verdict.
  std::uint64_t inconclusive_tests = 0;
  /// Extra transmissions spent on retries (not counted as distinct tests).
  std::uint64_t retried_injections = 0;
  /// True when the abort hook stopped the run before its deadline.
  bool aborted = false;
};

/// Aggregate of N independent trials — the paper's methodology runs five
/// 24-hour trials per controller ("Following recommended fuzzing
/// practices"). Each trial gets a fresh testbed and a derived seed.
struct TrialSummary {
  std::size_t trials = 0;
  std::set<int> union_bug_ids;             // unique across all trials
  std::vector<std::size_t> per_trial_unique;
  std::vector<SimTime> first_finding_at;   // relative to each trial's start
  std::uint64_t total_packets = 0;
};

TrialSummary run_trials(const sim::TestbedConfig& testbed_config,
                        const CampaignConfig& campaign_config, std::size_t trials);

class Campaign {
 public:
  Campaign(sim::Testbed& testbed, CampaignConfig config);

  /// Phase 1+2 only (Table IV). Reusable without fuzzing.
  FingerprintReport fingerprint();

  /// Full pipeline: fingerprint + fuzz until the configured duration.
  CampaignResult run();

  ZWaveDongle& dongle() { return dongle_; }

  /// The attacker's spoofed node id.
  static constexpr zwave::NodeId kAttackerNodeId = 0xE7;

 private:
  using Signature = PayloadSignature;
  static Signature signature_of(const zwave::AppPayload& payload);

  void fuzz(CampaignResult& result);
  /// Returns the number of tests actually executed (not skipped by the
  /// blacklist or the dedup memo) so fuzz() can detect a saturated queue.
  std::size_t fuzz_class(CampaignResult& result, zwave::CommandClassId cc,
                         SimTime hard_deadline);
  void fuzz_random(CampaignResult& result);

  /// Sends one test payload (with retries) and runs every oracle.
  TestOutcome execute_test(CampaignResult& result, const zwave::AppPayload& payload);
  /// Adaptive-schedule variant for fuzz_class: per-test host oracle, but
  /// liveness/digest deferred to the stride boundary on the clean path.
  TestOutcome run_test_adaptive(CampaignResult& result, const zwave::AppPayload& payload);
  /// Stride-boundary oracle pass over the deferred window; certifies (and
  /// memoizes) it when clean, triages it otherwise. True when clean.
  bool sweep_window(CampaignResult& result);
  /// Replays the deferred window under full per-test oracles after an
  /// anomalous sweep, so the finding lands on the payload that caused it.
  void triage_window(CampaignResult& result, bool alive);
  /// Records a certified-clean payload in the dedup memo.
  void memoize_clean(const zwave::AppPayload& payload);
  /// Drains the controller's replies until `deadline` (feedback loop).
  void drain_responses(SimTime deadline);
  void run_oracles(CampaignResult& result, const zwave::AppPayload& suspect);
  /// Ack-verified injection under the retry policy; true once the frame's
  /// delivery was confirmed by a MAC ack.
  bool inject_acked(CampaignResult& result, const zwave::AppPayload& payload);
  bool probe_liveness();
  /// The escalating watchdog: NOP pings, then Serial API soft resets, then
  /// the operator's power cycle. Appends its episode to result.recovery_log.
  RecoveryStats await_recovery(CampaignResult& result);
  std::optional<std::uint64_t> query_table_digest();
  void record_finding(CampaignResult& result, const zwave::AppPayload& payload,
                      DetectionKind kind);
  /// Appends one confirmed finding to the configured durable journal.
  void journal_finding(const BugFinding& finding);
  void note_packet(CampaignResult& result);
  int correlate_ground_truth(const zwave::AppPayload& payload, DetectionKind kind) const;

  CampaignCheckpoint make_checkpoint(const CampaignResult& result) const;
  /// Snapshots progress into the configured sink, with telemetry.
  void emit_checkpoint(CampaignResult& result);
  /// Abort polling + periodic checkpoint emission; true when the campaign
  /// should stop now.
  bool should_stop(CampaignResult& result);
  void restore_from_checkpoint(const CampaignCheckpoint& checkpoint);

  sim::Testbed& testbed_;
  CampaignConfig config_;
  Rng rng_;
  /// Dedicated stream for retry/backoff jitter. Deliberately NOT forked
  /// from rng_: the mutators share rng_ by reference, and resilience draws
  /// interleaving with mutation draws would perturb the payload sequence
  /// (and with it, seed-stable test expectations).
  Rng resilience_rng_;
  ZWaveDongle dongle_;
  zwave::HomeId home_ = 0;
  zwave::NodeId target_ = zwave::kControllerNodeId;

  std::set<Signature> blacklist_;
  std::set<Signature> reported_signatures_;  // dedupe for unattributed finds
  std::set<int> reported_bug_ids_;           // dedupe by confirmed root cause
  TestMemo own_memo_;                        // backing store when no scratch is lent
  TestMemo* memo_ = nullptr;                 // certified-clean payload fingerprints
  std::vector<zwave::AppPayload> window_;    // clean tests awaiting a sweep
  /// Scratch buffers for the injection hot path: the test frame and the
  /// mutation payload are rebuilt in place each test, so a steady-state
  /// clean-channel iteration performs no heap allocation.
  zwave::MacFrame tx_frame_;
  zwave::AppPayload payload_scratch_;
  std::size_t triggers_seen_ = 0;            // cursor into the SUT trigger log
  std::optional<std::uint64_t> baseline_digest_;
  sim::HostSoftware::State last_host_state_ = sim::HostSoftware::State::kRunning;

  SimTime fuzz_started_at_ = 0;    // when this process began fuzzing
  SimTime elapsed_offset_ = 0;     // fuzz time consumed by resumed-from runs
  SimTime last_checkpoint_ = 0;
  bool aborted_ = false;
};

}  // namespace zc::core
