// Coverage-guided fuzzing mode — the third fuzzer family next to the
// paper's PSM campaign (core/campaign.h) and the VFuzz baseline
// (core/vfuzz.h), in the style CovFUZZ and ThreadFuzzer brought to
// protocol stacks: a feedback loop over the handler-level coverage map the
// simulated firmware exports (sim/coverage.h).
//
// The loop, per test:
//   1. pick a payload — the scheduled class's PositionSensitiveMutator
//      stream (systematic enumeration first, randomized ops after), with a
//      periodic corpus-havoc step that re-mutates an admitted seed;
//   2. skip it when core/test_memo has already executed the identical
//      payload (corpus minimization: the corpus can never collect two
//      byte-identical entries, and saturated generators stop burning
//      response waits);
//   3. execute it under a per-test scratch CoverageMap;
//   4. fold the scratch map into the accumulated map — when the fold
//      uncovers edges never seen before, the payload is *interesting*:
//      admitted to the corpus, journaled (FindingRecord flags bit 0), and
//      announced as a `coverage_new` trace event.
//
// Seed scheduling is a deterministic power schedule over command classes:
// a class whose tests recently grew the map gets `energy_boost` times the
// base energy on its next turn; a class whose systematic enumeration phase
// is still running keeps its turn until the phase completes (which is the
// property that makes coverage mode find everything the PSM campaign
// finds under a fixed seed — the systematic sweep is a superset of
// Algorithm 1's line 6 walk).
//
// Everything is virtual-time deterministic: same testbed seed + same
// config => byte-identical corpus, coverage map, and findings at any
// shard/thread arrangement (core/parallel merges per-shard maps in
// ascending shard order).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/dongle.h"
#include "core/mutator.h"
#include "core/test_memo.h"
#include "sim/coverage.h"
#include "sim/testbed.h"
#include "store/journal.h"

namespace zc::core {

struct CovFuzzConfig {
  SimTime duration = 24 * kHour;
  /// Post-injection settle window: long enough for the dispatch chain and
  /// any reply to land, far shorter than VFuzz's 6 s response waits.
  SimTime inter_test_gap = 300 * kMillisecond;
  std::uint64_t seed = 0xC0F2;
  /// Duplicate-payload skip through core/test_memo (see step 2 above).
  bool dedup = true;
  /// The feedback loop itself. Off = the blind ablation arm (and the
  /// instrumentation-disabled overhead baseline): no scratch map is ever
  /// installed, nothing is admitted, the corpus stays at its seeds.
  bool coverage_feedback = true;
  /// Power schedule: tests per class turn, and the multiplier a class
  /// earns while its tests keep growing the coverage map.
  std::size_t energy_base = 8;
  std::size_t energy_boost = 4;
  /// Every 4th test of a turn re-mutates an admitted corpus entry of the
  /// scheduled class instead of drawing from the mutator stream.
  std::size_t havoc_stride = 4;
  /// Extra seed payloads (encoded application payloads) replayed after the
  /// canonical spec-derived seeds — `--corpus-dir` loads land here.
  std::vector<Bytes> extra_seeds;
  /// Findings sink: confirmed findings (flags = 0) and corpus-admitted
  /// seeds (flags bit 0 set) are appended as they happen. Sequential runs
  /// pass the durable journal; core/parallel passes a per-shard staging
  /// buffer it commits in shard order. Not owned.
  store::FindingSink* journal = nullptr;
  std::uint32_t journal_shard_id = 0;
  /// Optional dedup-memo scratch reused across runs (same contract as
  /// CampaignConfig::memo_scratch): cleared on construction, capacity
  /// kept. Not owned; must outlive the fuzzer.
  TestMemo* memo_scratch = nullptr;
  /// Polled between tests; returning true stops the run at the next test
  /// boundary (same contract as CampaignConfig::abort_hook).
  std::function<bool()> abort_hook;
};

struct CovFuzzResult {
  std::uint64_t packets_sent = 0;
  std::uint64_t dedup_skips = 0;
  /// Corpus entries admitted by the feedback rule, in admission order.
  /// Seed payloads that uncovered edges count too — the corpus is exactly
  /// "every payload whose execution grew the map".
  std::vector<Bytes> corpus;
  /// Admissions beyond the canonical + extra seed replay phase.
  std::uint64_t mutated_admissions = 0;
  /// The accumulated coverage map for the whole run.
  sim::cov::CoverageMap coverage;
  /// Distinct triggered root causes from the device's ground-truth log.
  std::set<int> unique_bug_ids;
  bool aborted = false;
};

class CovFuzz {
 public:
  CovFuzz(sim::Testbed& testbed, CovFuzzConfig config);

  CovFuzzResult run();

  /// One canonical payload per (class, command) of the controller-relevant
  /// cluster: every parameter at its schema minimum. The corpus every run
  /// starts from, before any `extra_seeds`.
  static std::vector<Bytes> canonical_seeds();

  /// Corpus on-disk format (documented in docs/FUZZING.md): one file per
  /// payload named `<16-hex fingerprint>.seed` holding the raw encoded
  /// application payload. save_corpus writes every entry (returns false on
  /// the first I/O error); load_corpus reads `*.seed` files in sorted
  /// filename order, so reloading is deterministic regardless of the
  /// directory's enumeration order.
  static bool save_corpus(const std::string& dir, const std::vector<Bytes>& corpus);
  static std::vector<Bytes> load_corpus(const std::string& dir);

  static constexpr zwave::NodeId kAttackerNodeId = 0xE7;

 private:
  /// Injects one payload, settles, folds coverage, admits, journals.
  void execute_test(CovFuzzResult& result, const zwave::AppPayload& payload);
  /// Clears an outage the test opened so the next test is deliverable
  /// (soft reset first, operator power-cycle for NVM-level wedges).
  void clear_outage();
  void journal_new_triggers(std::size_t& cursor);
  void journal_admission(const zwave::AppPayload& payload);

  sim::Testbed& testbed_;
  CovFuzzConfig config_;
  Rng rng_;
  ZWaveDongle dongle_;
  zwave::HomeId home_;
  TestMemo own_memo_;   // backing store when no scratch is lent
  TestMemo* memo_ = nullptr;
  /// Per-test scratch map; folded into the result's accumulated map after
  /// every execution (fold_into == the admission rule).
  sim::cov::CoverageMap scratch_;
  /// Corpus indices grouped by command class — the havoc step only
  /// re-mutates entries of the class currently holding the turn.
  std::map<zwave::CommandClassId, std::vector<std::size_t>> corpus_by_class_;
  zwave::AppPayload payload_scratch_;
  std::size_t triggers_journaled_ = 0;
  std::uint64_t last_new_edges_ = 0;  // set by execute_test for the scheduler
};

}  // namespace zc::core
