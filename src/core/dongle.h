// The ZCover RF front-end: a software model of the Yardstick One dongle.
//
// Runs promiscuously on the shared medium and exposes the exact pipeline
// of the paper's Fig. 4: raw demodulated bits -> preamble/SOF stripping ->
// hex frame bytes -> MAC dissection. Injection can send well-formed frames
// or raw byte blobs (for deliberately broken LEN/CS fuzz cases).
//
// Because the whole system is discrete-event and single-threaded, the
// dongle also owns the "wait for a response" primitives that drive the
// scheduler forward while watching its inbox.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "radio/medium.h"
#include "zwave/frame.h"

namespace zc::core {

/// One sniffed transmission, with every stage of the dissection pipeline
/// kept for display/logging (Fig. 4's raw -> hex -> fields view).
struct CapturedFrame {
  SimTime at = 0;
  double rssi_dbm = 0.0;
  std::size_t raw_bit_count = 0;
  std::string hex;                       // frame bytes as hex
  std::optional<zwave::MacFrame> frame;  // nullopt: failed MAC validation
};

class ZWaveDongle {
 public:
  ZWaveDongle(radio::RfMedium& medium, EventScheduler& scheduler,
              radio::RadioConfig config);

  /// Verifies the RF configuration (region/frequency), Fig. 4 step 1.
  bool configuration_valid() const;

  // --- capture -------------------------------------------------------------
  void start_capture() { capturing_ = true; }
  void stop_capture() { capturing_ = false; }
  const std::vector<CapturedFrame>& captures() const { return captures_; }
  void clear_captures() { captures_.clear(); }

  // --- injection -----------------------------------------------------------
  void inject(const zwave::MacFrame& frame);
  void inject_raw(ByteView frame_bytes);
  /// Builds and injects a singlecast application frame.
  void send_app(zwave::HomeId home, zwave::NodeId src, zwave::NodeId dst,
                const zwave::AppPayload& payload, bool ack_requested = true);

  /// Claims the next MAC sequence number from the dongle's shared counter.
  /// Callers that build frames themselves (so a retry can reuse the same
  /// sequence and ride the controller's retransmission handling) must draw
  /// from here, or their sequences would collide with `send_app`'s and be
  /// suppressed as duplicates.
  std::uint8_t next_sequence() { return tx_sequence_++ & 0x0F; }

  // --- scheduler-driving waits ----------------------------------------------
  using FramePredicate = std::function<bool(const zwave::MacFrame&)>;

  /// Runs virtual time forward until a frame matching `pred` arrives or
  /// `timeout` elapses. Only frames *received at or after the call* are
  /// considered (stale inbox entries are discarded — responses cannot be
  /// correlated with probes sent later). Consumes matching and earlier
  /// frames from the inbox.
  std::optional<zwave::MacFrame> await_frame(const FramePredicate& pred, SimTime timeout);

  /// Waits for a MAC acknowledgment from `from` addressed to us.
  bool await_ack(zwave::HomeId home, zwave::NodeId from, zwave::NodeId self, SimTime timeout);

  /// Plain time advance.
  void run_for(SimTime duration) { scheduler_.run_for(duration); }

  EventScheduler& scheduler() { return scheduler_; }
  std::uint64_t injected() const { return injected_; }

 private:
  void on_bits(const radio::BitStream& bits, double rssi_dbm);

  bool inbox_empty() const { return inbox_head_ == inbox_.size(); }
  std::pair<SimTime, zwave::MacFrame> inbox_pop();

  EventScheduler& scheduler_;
  radio::Transceiver radio_;
  bool capturing_ = false;
  std::vector<CapturedFrame> captures_;
  /// FIFO inbox as a vector + head cursor: pop is a cursor bump, and once
  /// drained the vector resets (capacity kept) — unlike a deque, whose
  /// block churn allocates every few frames at steady state.
  std::vector<std::pair<SimTime, zwave::MacFrame>> inbox_;
  std::size_t inbox_head_ = 0;
  /// Reused receive-path scratches (PHY bytes + parsed MAC frame) and the
  /// injection encode buffer / singlecast template for send_app().
  Bytes rx_scratch_;
  zwave::MacFrame rx_frame_;
  Bytes tx_scratch_;
  zwave::MacFrame app_frame_;
  std::uint8_t tx_sequence_ = 1;
  std::uint64_t injected_ = 0;
};

}  // namespace zc::core
