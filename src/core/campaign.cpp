#include "core/campaign.h"

#include <algorithm>

#include "common/log.h"
#include "obs/recorder.h"

namespace zc::core {

namespace {

constexpr SimTime kInterTestGap = 300 * kMillisecond;
constexpr SimTime kOracleTimeout = 200 * kMillisecond;
/// MAC ack turnaround allowance per injection attempt; real acks land in a
/// few ms, so this only delays the retry path, never the clean one.
constexpr SimTime kAckWait = 80 * kMillisecond;
constexpr std::uint16_t kNoParam = 0x100;
constexpr std::uint16_t kAnyParam = 0x1FF;
/// Dedup saturation guard: a class whose random stream produces this many
/// consecutive already-executed payloads has exhausted its reachable space
/// (tiny parameter schemas saturate fast); move on instead of spinning
/// without advancing sim time.
constexpr std::size_t kDedupSaturationLimit = 512;
/// Decorrelates the resilience jitter stream from the mutation stream.
constexpr std::uint64_t kResilienceSeedSalt = 0x9E3779B97F4A7C15ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ULL;
  return h;
}

}  // namespace

TrialSummary run_trials(const sim::TestbedConfig& testbed_config,
                        const CampaignConfig& campaign_config, std::size_t trials) {
  TrialSummary summary;
  summary.trials = trials;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    sim::TestbedConfig tb = testbed_config;
    tb.seed = testbed_config.seed + trial * 0x9E3779B9ULL;
    CampaignConfig config = campaign_config;
    config.seed = campaign_config.seed + trial * 0xC2B2AE35ULL;

    sim::Testbed testbed(tb);
    Campaign campaign(testbed, config);
    const CampaignResult result = campaign.run();

    std::set<int> unique;
    std::optional<SimTime> first;
    for (const auto& finding : result.findings) {
      if (finding.matched_bug_id > 0) unique.insert(finding.matched_bug_id);
      if (!first.has_value()) first = finding.detected_at - result.started_at;
    }
    summary.union_bug_ids.insert(unique.begin(), unique.end());
    summary.per_trial_unique.push_back(unique.size());
    summary.first_finding_at.push_back(first.value_or(0));
    summary.total_packets += result.test_packets;
  }
  return summary;
}

const char* campaign_mode_name(CampaignMode mode) {
  switch (mode) {
    case CampaignMode::kFull: return "ZCover full";
    case CampaignMode::kKnownOnly: return "ZCover beta (known CMDCLs only)";
    case CampaignMode::kRandom: return "ZCover gamma (random mutation)";
  }
  return "?";
}

const char* detection_kind_name(DetectionKind kind) {
  switch (kind) {
    case DetectionKind::kServiceInterruption: return "service-interruption";
    case DetectionKind::kMemoryTampering: return "memory-tampering";
    case DetectionKind::kHostCrash: return "host-crash";
    case DetectionKind::kHostDoS: return "host-dos";
  }
  return "?";
}

Campaign::Campaign(sim::Testbed& testbed, CampaignConfig config)
    : testbed_(testbed),
      config_(config),
      rng_(config.seed),
      resilience_rng_(config.seed ^ kResilienceSeedSalt),
      dongle_(testbed.medium(), testbed.scheduler(),
              testbed.attacker_radio_config("zcover-dongle")) {
  // A lent scratch memo starts empty (capacity kept), so the dedup
  // behavior is exactly the internal memo's.
  memo_ = config_.memo_scratch != nullptr ? config_.memo_scratch : &own_memo_;
  if (config_.memo_scratch != nullptr) memo_->clear();
  // Resume: retire everything a previous session already confirmed.
  for (const Bytes& payload_bytes : config_.known_payloads) {
    const auto payload = zwave::decode_app_payload(payload_bytes);
    if (!payload.ok()) continue;
    const Signature sig = signature_of(payload.value());
    blacklist_.insert(sig);
    reported_signatures_.insert(sig);
    const int bug_id =
        correlate_ground_truth(payload.value(), DetectionKind::kMemoryTampering);
    if (bug_id > 0) reported_bug_ids_.insert(bug_id);
    // Parameter-selected families (the NODE_TABLE_UPDATE operations) stay
    // exact so sibling operations remain discoverable; everything else
    // retires the whole (class, command).
    const auto* spec = sim::find_vulnerability(bug_id);
    if (spec == nullptr || !spec->operation.has_value()) {
      blacklist_.insert(Signature{sig.cc, sig.cmd, kAnyParam});
    }
  }
  if (config_.resume_from.has_value()) {
    restore_from_checkpoint(*config_.resume_from);
  }
}

Campaign::Signature Campaign::signature_of(const zwave::AppPayload& payload) {
  return Signature{payload.cmd_class, payload.command,
                   payload.params.empty() ? kNoParam
                                          : static_cast<std::uint16_t>(payload.params[0])};
}

void Campaign::restore_from_checkpoint(const CampaignCheckpoint& checkpoint) {
  rng_.set_state(checkpoint.rng_state);
  elapsed_offset_ = checkpoint.elapsed;
  blacklist_.insert(checkpoint.blacklist.begin(), checkpoint.blacklist.end());
  reported_signatures_.insert(checkpoint.reported_signatures.begin(),
                              checkpoint.reported_signatures.end());
  reported_bug_ids_.insert(checkpoint.reported_bug_ids.begin(),
                           checkpoint.reported_bug_ids.end());
}

CampaignCheckpoint Campaign::make_checkpoint(const CampaignResult& result) const {
  CampaignCheckpoint cp;
  cp.mode = config_.mode;
  cp.seed = config_.seed;
  cp.rng_state = rng_.state();
  cp.elapsed = elapsed_offset_ + (testbed_.scheduler().now() - fuzz_started_at_);
  cp.test_packets = result.test_packets;
  cp.inconclusive_tests = result.inconclusive_tests;
  cp.retried_injections = result.retried_injections;
  cp.classes_fuzzed.assign(result.classes_fuzzed.begin(), result.classes_fuzzed.end());
  cp.blacklist.assign(blacklist_.begin(), blacklist_.end());
  cp.reported_signatures.assign(reported_signatures_.begin(), reported_signatures_.end());
  cp.reported_bug_ids.assign(reported_bug_ids_.begin(), reported_bug_ids_.end());
  cp.findings = result.findings;
  return cp;
}

bool Campaign::should_stop(CampaignResult& result) {
  if (!aborted_ && config_.abort_hook && config_.abort_hook()) {
    aborted_ = true;
    result.aborted = true;
    // No payload escapes oracle coverage: certify or triage the deferred
    // window before the final snapshot. aborted_ is already set, so the
    // nested should_stop calls inside a triage replay cannot re-enter.
    sweep_window(result);
    // Final snapshot: the kill must not lose the session's progress.
    if (config_.checkpoint_sink) emit_checkpoint(result);
    return true;
  }
  if (config_.checkpoint_sink && config_.checkpoint_interval > 0 &&
      testbed_.scheduler().now() - last_checkpoint_ >= config_.checkpoint_interval) {
    last_checkpoint_ = testbed_.scheduler().now();
    emit_checkpoint(result);
  }
  return aborted_;
}

void Campaign::emit_checkpoint(CampaignResult& result) {
  const CampaignCheckpoint cp = make_checkpoint(result);
  obs::count(obs::MetricId::kCampaignCheckpoints);
  obs::emit(obs::TraceEventType::kCheckpoint, static_cast<std::int64_t>(cp.elapsed),
            static_cast<std::int64_t>(cp.test_packets),
            static_cast<std::int64_t>(cp.findings.size()));
  config_.checkpoint_sink(cp);
}

FingerprintReport Campaign::fingerprint() {
  FingerprintReport report;

  // Phase 1a: passive scanning (needs ambient slave traffic).
  PassiveScanner passive(dongle_);
  report.passive = passive.scan(90 * kSecond);
  home_ = report.passive.home_id.value_or(testbed_.controller().home_id());
  target_ = report.passive.controller.value_or(zwave::kControllerNodeId);

  // Phase 1b: active scanning.
  ActiveScanner active(dongle_, home_, target_, kAttackerNodeId);
  active.set_retry_policy(config_.retry);
  report.active = active.scan();

  // Phase 2: unknown-property discovery.
  UnknownPropertyExtractor extractor(dongle_, home_, target_, kAttackerNodeId);
  report.discovery = extractor.discover(report.active.listed);

  // Queue assembly + prioritization (§III-C1).
  std::vector<zwave::CommandClassId> queue = report.active.listed;
  if (config_.mode == CampaignMode::kFull) {
    const auto unknown = report.discovery.unknown();
    queue.insert(queue.end(), unknown.begin(), unknown.end());
  }
  report.fuzz_queue = UnknownPropertyExtractor::prioritize(queue, report.active.listed);
  return report;
}

CampaignResult Campaign::run() {
  CampaignResult result;
  result.started_at = testbed_.scheduler().now();
  result.fingerprint = fingerprint();

  baseline_digest_ = query_table_digest();
  last_host_state_ = testbed_.controller().host().state();
  triggers_seen_ = testbed_.controller().triggered().size();

  // Resumed sessions carry their predecessor's progress forward; the
  // restored blacklist keeps the re-walked queue from re-triggering any of
  // these findings.
  if (config_.resume_from.has_value()) {
    const CampaignCheckpoint& cp = *config_.resume_from;
    result.findings = cp.findings;
    result.test_packets = cp.test_packets;
    result.inconclusive_tests = cp.inconclusive_tests;
    result.retried_injections = cp.retried_injections;
    result.classes_fuzzed.insert(cp.classes_fuzzed.begin(), cp.classes_fuzzed.end());
    // Re-offer restored findings to the sink. Against the durable journal
    // this dedups to a no-op; against a staged per-shard sink (a restarted
    // shard under core/parallel) it is what carries pre-checkpoint
    // findings into the batch the supervisor finally commits.
    for (const BugFinding& finding : result.findings) journal_finding(finding);
  }

  if (config_.mode == CampaignMode::kRandom) {
    fuzz_random(result);
  } else {
    fuzz(result);
  }
  result.ended_at = testbed_.scheduler().now();
  // Coverage for Table V's CMD column: the distinct (class, command) pairs
  // the SUT's firmware genuinely dispatched during the campaign, read from
  // the device instrumentation after the run.
  result.accepted_pairs = testbed_.controller().stats().accepted_pairs;
  // End-of-run levels for the summary table.
  obs::gauge_set(obs::MetricId::kCampaignQueueLength, result.fingerprint.fuzz_queue.size());
  obs::gauge_set(obs::MetricId::kCampaignBlacklistSize, blacklist_.size());
  obs::gauge_set(obs::MetricId::kPoolBuffers, testbed_.medium().pool().size());
  obs::gauge_set(obs::MetricId::kPoolAcquires, testbed_.medium().pool().acquires());
  obs::gauge_set(obs::MetricId::kPoolReuses, testbed_.medium().pool().reuses());
  return result;
}

void Campaign::fuzz(CampaignResult& result) {
  fuzz_started_at_ = testbed_.scheduler().now();
  last_checkpoint_ = fuzz_started_at_;
  const SimTime budget =
      config_.duration > elapsed_offset_ ? config_.duration - elapsed_offset_ : 0;
  const SimTime hard_deadline = fuzz_started_at_ + budget;
  while (testbed_.scheduler().now() < hard_deadline && !aborted_) {
    std::size_t executed = 0;
    for (zwave::CommandClassId cc : result.fingerprint.fuzz_queue) {
      if (testbed_.scheduler().now() >= hard_deadline || aborted_) break;
      executed += fuzz_class(result, cc, hard_deadline);
    }
    if (!config_.loop_queue || result.fingerprint.fuzz_queue.empty()) break;
    // A full walk that executed nothing means the memo has retired every
    // payload the queue can still produce; further passes would spin
    // without advancing virtual time.
    if (config_.dedup && executed == 0) break;
  }
}

std::size_t Campaign::fuzz_class(CampaignResult& result, zwave::CommandClassId cc,
                                 SimTime hard_deadline) {
  result.classes_fuzzed.insert(cc);
  PositionSensitiveMutator mutator(rng_, cc);
  // A class entered near the end of the campaign gets only the remaining
  // global budget, systematic phase or not.
  const SimTime class_deadline =
      std::min(testbed_.scheduler().now() + config_.per_class_budget, hard_deadline);

  std::size_t executed = 0;
  std::size_t consecutive_memo_hits = 0;
  zwave::AppPayload& payload = payload_scratch_;  // reused across iterations
  while (true) {
    const SimTime now = testbed_.scheduler().now();
    if (now >= hard_deadline) break;  // the global budget binds even mid-systematic
    if (!mutator.in_systematic_phase() && now >= class_deadline) break;
    mutator.next_into(payload);
    obs::count(obs::MetricId::kCampaignMutations);
    obs::emit(obs::TraceEventType::kMutation, payload.cmd_class, payload.command,
              payload.params.empty() ? kNoParam : payload.params[0],
              static_cast<std::int64_t>(payload.params.size()));

    const Signature sig = signature_of(payload);
    const Signature wildcard{sig.cc, sig.cmd, kAnyParam};
    if (blacklist_.contains(sig) || blacklist_.contains(wildcard)) continue;

    if (config_.dedup) {
      if (memo_->contains(TestMemo::fingerprint(payload))) {
        obs::count(obs::MetricId::kCampaignDedupHits);
        // Skipped tests consume no virtual time; a class whose remaining
        // stream is all duplicates must not spin against the deadline.
        if (++consecutive_memo_hits >= kDedupSaturationLimit &&
            !mutator.in_systematic_phase()) {
          break;
        }
        continue;
      }
      obs::count(obs::MetricId::kCampaignDedupMisses);
      consecutive_memo_hits = 0;
    }

    ++executed;
    run_test_adaptive(result, payload);
    if (should_stop(result)) break;
  }
  // Whatever ended the loop, no payload leaves the class un-oracled: sweep
  // (and, if anomalous, triage) the residual deferred window.
  sweep_window(result);
  return executed;
}

void Campaign::fuzz_random(CampaignResult& result) {
  fuzz_started_at_ = testbed_.scheduler().now();
  last_checkpoint_ = fuzz_started_at_;
  const SimTime budget =
      config_.duration > elapsed_offset_ ? config_.duration - elapsed_offset_ : 0;
  const SimTime hard_deadline = fuzz_started_at_ + budget;
  RandomMutator mutator(rng_);

  while (testbed_.scheduler().now() < hard_deadline && !aborted_) {
    // Blind volley: no per-packet feedback (the γ arm has none of ZCover's
    // pacing or properties).
    std::vector<zwave::AppPayload> batch;
    for (std::size_t i = 0; i < config_.random_batch; ++i) {
      batch.push_back(mutator.next());
      const zwave::AppPayload& generated = batch.back();
      obs::count(obs::MetricId::kCampaignMutations);
      obs::emit(obs::TraceEventType::kMutation, generated.cmd_class, generated.command,
                generated.params.empty() ? kNoParam : generated.params[0],
                static_cast<std::int64_t>(generated.params.size()));
      result.classes_fuzzed.insert(batch.back().cmd_class);
      dongle_.send_app(home_, kAttackerNodeId, target_, batch.back());
      note_packet(result);
      dongle_.run_for(50 * kMillisecond);
    }
    if (should_stop(result)) break;

    // Coarse oracle pass over the whole batch.
    const bool alive = probe_liveness();
    const auto digest = alive ? query_table_digest() : std::nullopt;
    const bool table_changed =
        digest.has_value() && baseline_digest_.has_value() && *digest != *baseline_digest_;
    const bool host_changed = testbed_.controller().host().state() != last_host_state_;

    if (alive && !table_changed && !host_changed) continue;

    // Anomaly: recover the testbed, then triage by replaying candidates
    // one at a time with full oracles (crash triage / PoC verification).
    if (!alive) await_recovery(result);
    testbed_.restore_network();
    testbed_.controller().host().restart();
    last_host_state_ = testbed_.controller().host().state();
    baseline_digest_ = query_table_digest();

    for (const auto& payload : batch) {
      if (testbed_.scheduler().now() >= hard_deadline) break;
      const Signature sig = signature_of(payload);
      const Signature wildcard{sig.cc, sig.cmd, kAnyParam};
      if (blacklist_.contains(sig) || blacklist_.contains(wildcard)) continue;
      execute_test(result, payload);
      if (should_stop(result)) break;
    }
  }
}

bool Campaign::inject_acked(CampaignResult& result, const zwave::AppPayload& payload) {
  // Build the frame once so every retry reuses the same MAC sequence
  // number: the controller re-acks a repeated sequence without
  // re-processing it, so a retried payload is applied at most once. The
  // frame is assembled in the tx_frame_ scratch, reusing its payload
  // buffer's capacity across tests.
  zwave::MacFrame& frame = tx_frame_;
  frame.home_id = home_;
  frame.src = kAttackerNodeId;
  frame.dst = target_;
  frame.header = zwave::HeaderType::kSinglecast;
  frame.ack_requested = true;
  frame.sequence = dongle_.next_sequence() & 0x0F;
  payload.encode_into(frame.payload);

  const SimTime injection_started = testbed_.scheduler().now();
  const SimTime injection_deadline = injection_started + config_.retry.deadline;
  const std::size_t max_attempts = std::max<std::size_t>(1, config_.retry.max_attempts);
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      if (testbed_.scheduler().now() >= injection_deadline) break;
      dongle_.run_for(config_.retry.backoff_before(attempt, resilience_rng_));
      ++result.retried_injections;
      obs::count(obs::MetricId::kCampaignRetriedInjections);
    }
    dongle_.inject(frame);
    if (dongle_.await_ack(home_, target_, kAttackerNodeId, kAckWait)) {
      obs::observe(obs::MetricId::kCampaignInjectionAckUs,
                   testbed_.scheduler().now() - injection_started);
      return true;
    }
  }
  return false;
}

TestOutcome Campaign::execute_test(CampaignResult& result,
                                   const zwave::AppPayload& payload) {
  const std::size_t findings_before = result.findings.size();
  obs::count(obs::MetricId::kCampaignTests);

  const SimTime window_start = testbed_.scheduler().now();
  note_packet(result);
  const bool acked = inject_acked(result, payload);

  if (!acked) {
    // Neither the injection nor any ack made it through. If the controller
    // still answers NOP pings, the medium simply ate the exchange — the
    // payload may never have arrived, so no oracle verdict is possible:
    // inconclusive, not a finding.
    if (probe_liveness()) {
      ++result.inconclusive_tests;
      obs::count(obs::MetricId::kCampaignInconclusive);
      dongle_.run_for(kInterTestGap);
      return TestOutcome::kInconclusive;
    }
    // Controller down: fall through and let the liveness oracle decide
    // (confirm_findings separates payload kills from blanket channel loss).
  }

  // Drain the controller's reaction within the response window. The reply
  // classification (positive response vs APPLICATION_STATUS rejection) is
  // what the feedback loop of Fig. 7 feeds back into test generation.
  drain_responses(window_start + config_.response_window);

  run_oracles(result, payload);
  dongle_.run_for(kInterTestGap);
  return result.findings.size() != findings_before ? TestOutcome::kFinding
                                                   : TestOutcome::kClean;
}

void Campaign::drain_responses(SimTime deadline) {
  while (testbed_.scheduler().now() < deadline) {
    const auto reply = dongle_.await_frame(
        [&](const zwave::MacFrame& reply_frame) {
          return reply_frame.home_id == home_ && reply_frame.src == target_ &&
                 reply_frame.dst == kAttackerNodeId &&
                 reply_frame.header != zwave::HeaderType::kAck;
        },
        deadline - testbed_.scheduler().now());
    if (!reply.has_value()) break;
  }
}

TestOutcome Campaign::run_test_adaptive(CampaignResult& result,
                                        const zwave::AppPayload& payload) {
  if (config_.liveness_stride <= 1) {
    // Legacy schedule: every oracle after every test.
    const TestOutcome outcome = execute_test(result, payload);
    if (outcome == TestOutcome::kClean) memoize_clean(payload);
    return outcome;
  }

  const std::size_t findings_before = result.findings.size();
  obs::count(obs::MetricId::kCampaignTests);
  const SimTime window_start = testbed_.scheduler().now();
  note_packet(result);
  const bool acked = inject_acked(result, payload);
  if (!acked) {
    if (probe_liveness()) {
      // A full retry envelope vanished yet the controller answers pings.
      // Either the medium ate the exchange, or a short self-healing outage
      // (one that expires before the probe lands) swallowed it — and its
      // trigger would be a deferred payload that a later clean sweep would
      // certify. Replay the window under per-test oracles so short-outage
      // bugs cannot be memoized away; the lost payload itself stays
      // inconclusive either way.
      ++result.inconclusive_tests;
      obs::count(obs::MetricId::kCampaignInconclusive);
      if (!window_.empty()) triage_window(result, /*alive=*/true);
      dongle_.run_for(kInterTestGap);
      return result.findings.size() != findings_before
                 ? TestOutcome::kFinding
                 : TestOutcome::kInconclusive;
    }
    // Silence. The outage started somewhere inside the un-probed window —
    // possibly before this payload ever arrived — so the whole window (plus
    // this payload) is replayed under per-test oracles; the finding lands
    // on the test that caused the outage, not the one that noticed it.
    window_.push_back(payload);
    triage_window(result, /*alive=*/false);
    return result.findings.size() != findings_before ? TestOutcome::kFinding
                                                     : TestOutcome::kInconclusive;
  }

  drain_responses(window_start + config_.response_window);

  // The host oracle stays per-test: it is a free read of bench state, and a
  // host anomaly right after an injection attributes exactly.
  const auto host_state = testbed_.controller().host().state();
  if (host_state != last_host_state_ &&
      host_state != sim::HostSoftware::State::kRunning) {
    record_finding(result, payload,
                   host_state == sim::HostSoftware::State::kCrashed
                       ? DetectionKind::kHostCrash
                       : DetectionKind::kHostDoS);
    testbed_.controller().host().restart();
  }
  last_host_state_ = testbed_.controller().host().state();

  // Liveness and the (expensive) node-table digest are deferred to the
  // stride boundary.
  window_.push_back(payload);
  dongle_.run_for(kInterTestGap);
  if (window_.size() >= config_.liveness_stride) sweep_window(result);
  return result.findings.size() != findings_before ? TestOutcome::kFinding
                                                   : TestOutcome::kClean;
}

bool Campaign::sweep_window(CampaignResult& result) {
  if (window_.empty()) return true;
  obs::count(obs::MetricId::kCampaignOracleSweeps);
  const bool alive = probe_liveness();
  if (alive) {
    const auto digest = query_table_digest();
    const bool tampered = digest.has_value() && baseline_digest_.has_value() &&
                          *digest != *baseline_digest_;
    if (!tampered) {
      if (digest.has_value() && baseline_digest_.has_value()) {
        // Certified clean: every deferred payload ran against a live
        // controller whose table still matches the baseline.
        for (const auto& clean : window_) memoize_clean(clean);
        window_.clear();
        return true;
      }
      if (digest.has_value()) {
        // The reference digest was lost (a lossy re-baseline) while deferred
        // tests ran. The digest just read may already include their
        // tampering, so adopting it as the baseline would certify the very
        // payloads that corrupted the table — and poison every later
        // comparison. Triage instead: restore, re-baseline from a
        // known-good table, and replay the window under per-test oracles.
        triage_window(result, /*alive=*/true);
        return false;
      }
      // Digest timeout (lossy channel): alive but unverifiable. Keep the
      // window so the next sweep re-checks it — dropping it here would let
      // a tampering payload slip past the oracle entirely.
      return false;
    }
  }
  triage_window(result, alive);
  return false;
}

void Campaign::triage_window(CampaignResult& result, bool alive) {
  obs::count(obs::MetricId::kCampaignWindowTriages);
  // Clear the anomaly so every replay starts from a known-good bench: wait
  // the outage out, restore the node table, restart the host, re-baseline.
  if (!alive) await_recovery(result);
  testbed_.restore_network();
  testbed_.controller().host().restart();
  last_host_state_ = testbed_.controller().host().state();
  // The replays below compare against this baseline, so a lossy-channel
  // timeout here would blind the tamper oracle for the whole window: retry
  // the exchange a couple of times before giving up.
  baseline_digest_ = query_table_digest();
  for (int attempt = 0; !baseline_digest_.has_value() && attempt < 2; ++attempt) {
    baseline_digest_ = query_table_digest();
  }
  // Deliberately leave triggers_seen_ alone: the window's executions may
  // have appended trigger-log entries, and record_finding's newest-entry
  // attribution must still be able to read them if a replay turns
  // inconclusive on a lossy channel (same policy as fuzz_random's triage).

  std::vector<zwave::AppPayload> replay;
  replay.swap(window_);
  for (const auto& suspect : replay) {
    const Signature sig = signature_of(suspect);
    const Signature wildcard{sig.cc, sig.cmd, kAnyParam};
    if (blacklist_.contains(sig) || blacklist_.contains(wildcard)) continue;
    if (execute_test(result, suspect) == TestOutcome::kClean) memoize_clean(suspect);
    if (should_stop(result)) break;
  }
}

void Campaign::memoize_clean(const zwave::AppPayload& payload) {
  if (!config_.dedup) return;
  memo_->check_and_insert(TestMemo::fingerprint(payload));
}

void Campaign::run_oracles(CampaignResult& result, const zwave::AppPayload& suspect) {
  // Oracle 1: host software (the operator watches the app / PC program).
  const auto host_state = testbed_.controller().host().state();
  if (host_state != last_host_state_ &&
      host_state != sim::HostSoftware::State::kRunning) {
    record_finding(result, suspect,
                   host_state == sim::HostSoftware::State::kCrashed
                       ? DetectionKind::kHostCrash
                       : DetectionKind::kHostDoS);
    testbed_.controller().host().restart();
  }
  last_host_state_ = testbed_.controller().host().state();

  // Oracle 2: liveness (NOP ping).
  if (!probe_liveness()) {
    if (config_.confirm_findings) {
      // Wait the apparent outage out, replay the suspect, and require the
      // silence to reproduce — transient RF loss does not.
      await_recovery(result);
      if (!inject_acked(result, suspect)) {
        // The replay itself never got through: the channel is still eating
        // frames, so the renewed silence proves nothing about the payload.
        return;
      }
      dongle_.run_for(config_.response_window);
      if (probe_liveness()) return;  // transient: not a finding
      // Second opinion clear of any short interference window: a real
      // Table III outage lasts tens of seconds, a loss burst does not.
      dongle_.run_for(config_.watchdog.ping_interval);
      if (probe_liveness()) return;
    }
    record_finding(result, suspect, DetectionKind::kServiceInterruption);
    await_recovery(result);
    return;  // the outage window hid any concurrent table change
  }

  // Oracle 3: memory tampering via the node-list / cached-info surface.
  const auto digest = query_table_digest();
  if (digest.has_value() && baseline_digest_.has_value() && *digest != *baseline_digest_) {
    record_finding(result, suspect, DetectionKind::kMemoryTampering);
    testbed_.restore_network();
    baseline_digest_ = query_table_digest();
  } else if (digest.has_value() && !baseline_digest_.has_value()) {
    baseline_digest_ = digest;
  }
}

bool Campaign::probe_liveness() {
  const SimTime started = testbed_.scheduler().now();
  const std::size_t max_attempts = std::max<std::size_t>(1, config_.liveness_attempts);
  bool alive = false;
  std::size_t attempts = 0;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    // Jittered spacing between attempts so repeated probes do not all land
    // inside the same periodic interference window.
    if (attempt > 0) {
      dongle_.run_for(config_.retry.backoff_before(attempt, resilience_rng_));
    }
    obs::emit(obs::TraceEventType::kProbeTx,
              static_cast<std::int64_t>(obs::ProbeKind::kNop), 0, target_);
    dongle_.send_app(home_, kAttackerNodeId, target_, zwave::make_nop());
    ++attempts;
    if (dongle_.await_ack(home_, target_, kAttackerNodeId, config_.liveness_timeout)) {
      alive = true;
      break;
    }
  }
  obs::count(obs::MetricId::kCampaignLivenessChecks);
  if (!alive) obs::count(obs::MetricId::kCampaignLivenessFailures);
  obs::observe(obs::MetricId::kCampaignLivenessProbeUs, testbed_.scheduler().now() - started);
  obs::emit(obs::TraceEventType::kLivenessCheck, alive ? 1 : 0,
            static_cast<std::int64_t>(attempts));
  return alive;
}

RecoveryStats Campaign::await_recovery(CampaignResult& result) {
  RecoveryStats stats;
  stats.outage_started = testbed_.scheduler().now();

  // Stage 1: passive NOP pings — finite firmware outages (the 30-68 s
  // Table III kind) normally clear on their own.
  const SimTime ping_deadline = stats.outage_started + config_.watchdog.ping_stage;
  while (testbed_.scheduler().now() < ping_deadline) {
    dongle_.run_for(config_.watchdog.ping_interval);
    ++stats.nop_probes;
    if (probe_liveness()) {
      stats.recovered = true;
      break;
    }
  }

  // Stage 2: Serial API soft resets over the bench link. A chip that
  // refuses is wedged below the firmware — skip straight to power.
  if (!stats.recovered) {
    stats.stage = RecoveryStage::kSoftReset;
    for (std::size_t i = 0; i < config_.watchdog.soft_reset_attempts; ++i) {
      ++stats.soft_resets;
      if (!testbed_.controller().soft_reset()) break;
      dongle_.run_for(config_.watchdog.reboot_settle);
      ++stats.nop_probes;
      if (probe_liveness()) {
        stats.recovered = true;
        break;
      }
    }
  }

  // Stage 3: the operator power-cycles the device.
  if (!stats.recovered) {
    stats.stage = RecoveryStage::kHardReboot;
    ++stats.hard_reboots;
    testbed_.controller().operator_recover();
    dongle_.run_for(config_.watchdog.reboot_settle);
    stats.recovered = probe_liveness();
  }

  stats.recovered_at = testbed_.scheduler().now();
  obs::count(obs::MetricId::kCampaignRecoveries);
  obs::observe(obs::MetricId::kCampaignRecoveryDowntimeUs, stats.downtime());
  obs::emit(obs::TraceEventType::kRecovery, static_cast<std::int64_t>(stats.stage),
            static_cast<std::int64_t>(stats.downtime()),
            static_cast<std::int64_t>(stats.nop_probes),
            static_cast<std::int64_t>(stats.soft_resets));
  ZC_INFO("watchdog: outage at %s cleared via %s after %s",
          format_sim_time(stats.outage_started).c_str(),
          recovery_stage_name(stats.stage),
          format_sim_time(stats.downtime()).c_str());
  result.recovery_log.push_back(stats);
  return stats;
}

std::optional<std::uint64_t> Campaign::query_table_digest() {
  // Node list.
  zwave::AppPayload list_get;
  list_get.cmd_class = 0x52;
  list_get.command = 0x01;
  list_get.params = {0x01};
  dongle_.send_app(home_, kAttackerNodeId, target_, list_get);
  const auto list_reply = dongle_.await_frame(
      [&](const zwave::MacFrame& frame) {
        if (frame.home_id != home_ || frame.src != target_ || frame.dst != kAttackerNodeId)
          return false;
        const auto app = zwave::decode_app_payload(frame.payload);
        return app.ok() && app.value().cmd_class == 0x52 && app.value().command == 0x02;
      },
      kOracleTimeout);
  if (!list_reply.has_value()) return std::nullopt;

  const auto list_app = zwave::decode_app_payload(list_reply->payload);
  const auto& params = list_app.value().params;
  if (params.size() < 3) return std::nullopt;

  std::uint64_t digest = 1469598103934665603ULL;
  std::vector<zwave::NodeId> members;
  for (std::size_t i = 3; i < params.size(); ++i) {
    digest = fnv_mix(digest, params[i]);
    for (int bit = 0; bit < 8; ++bit) {
      if (params[i] & (1 << bit)) {
        members.push_back(static_cast<zwave::NodeId>((i - 3) * 8 + bit + 1));
      }
    }
  }

  // Cached info per member (type / security / wake-up bytes).
  for (zwave::NodeId member : members) {
    zwave::AppPayload info_get;
    info_get.cmd_class = 0x52;
    info_get.command = 0x03;
    info_get.params = {0x02, member};
    dongle_.send_app(home_, kAttackerNodeId, target_, info_get);
    const auto info_reply = dongle_.await_frame(
        [&](const zwave::MacFrame& frame) {
          if (frame.home_id != home_ || frame.src != target_ || frame.dst != kAttackerNodeId)
            return false;
          const auto app = zwave::decode_app_payload(frame.payload);
          return app.ok() && app.value().cmd_class == 0x52 && app.value().command == 0x04;
        },
        kOracleTimeout);
    if (!info_reply.has_value()) return std::nullopt;
    const auto info_app = zwave::decode_app_payload(info_reply->payload);
    digest = fnv_mix(digest, member);
    for (std::uint8_t b : info_app.value().params) digest = fnv_mix(digest, b);
  }
  return digest;
}

void Campaign::record_finding(CampaignResult& result, const zwave::AppPayload& payload,
                              DetectionKind kind) {
  const Signature sig = signature_of(payload);

  // Blacklist so we stop re-triggering the same outage. Memory tampering is
  // parameter-selected (the NODE_TABLE_UPDATE operation byte), so only the
  // exact signature is retired; everything else retires (class, command).
  if (kind == DetectionKind::kMemoryTampering) {
    blacklist_.insert(sig);
  } else {
    blacklist_.insert(Signature{sig.cc, sig.cmd, kAnyParam});
  }

  // Attribution — the paper's manual-verification step: the operator
  // confirms which flaw fired by inspecting the device after the anomaly.
  // The SUT's trigger log stands in for that expert analysis; the payload
  // signature remains the fallback for anything the log cannot explain.
  int matched = -1;
  const auto& triggered = testbed_.controller().triggered();
  if (triggered.size() > triggers_seen_) {
    matched = triggered.back().bug_id;
    triggers_seen_ = triggered.size();
  } else {
    matched = correlate_ground_truth(payload, kind);
  }

  // Unique-vulnerability dedupe: by confirmed root cause when attributable,
  // by payload signature otherwise.
  if (matched > 0) {
    if (!reported_bug_ids_.insert(matched).second) return;
  } else if (!reported_signatures_.insert(sig).second) {
    return;
  }

  BugFinding finding;
  finding.payload = payload.encode();
  finding.cmd_class = payload.cmd_class;
  finding.command = payload.command;
  if (!payload.params.empty()) finding.first_param = payload.params[0];
  finding.kind = kind;
  finding.detected_at = testbed_.scheduler().now();
  finding.packets_sent = result.test_packets;
  finding.matched_bug_id = matched;
  obs::count(obs::MetricId::kCampaignFindings);
  obs::emit(obs::TraceEventType::kBug, finding.cmd_class, finding.command,
            static_cast<std::int64_t>(kind), finding.matched_bug_id);
  ZC_INFO("finding: cc=%02X cmd=%02X kind=%s bug#%d at %s", finding.cmd_class,
          finding.command, detection_kind_name(kind), finding.matched_bug_id,
          format_sim_time(finding.detected_at).c_str());
  // Durability at confirmation time: the journal write happens here, on
  // the rare finding path, never on the per-test hot path.
  journal_finding(finding);
  result.findings.push_back(std::move(finding));
}

void Campaign::journal_finding(const BugFinding& finding) {
  if (config_.journal == nullptr) return;
  store::FindingRecord record;
  record.device = static_cast<std::uint8_t>(testbed_.controller().model());
  record.kind = static_cast<std::uint8_t>(finding.kind);
  record.cc = finding.cmd_class;
  record.cmd = finding.command;
  record.param0 = finding.first_param.has_value()
                      ? static_cast<std::uint16_t>(*finding.first_param)
                      : kNoParam;
  record.bug_id = finding.matched_bug_id;
  record.detected_at = finding.detected_at;
  record.campaign_seed = config_.seed;
  record.shard_id = config_.journal_shard_id;
  record.payload = finding.payload;
  const auto outcome = config_.journal->append(record);
  const bool duplicate = outcome == store::FindingsJournal::AppendOutcome::kDuplicate;
  obs::count(duplicate ? obs::MetricId::kJournalDedupSkips
                       : obs::MetricId::kJournalAppends);
  obs::emit(obs::TraceEventType::kJournalAppend, record.cc, record.cmd, record.bug_id,
            duplicate ? 1 : 0);
  if (outcome == store::FindingsJournal::AppendOutcome::kError) {
    ZC_WARN("journal: append failed (%s) — finding kept in memory only",
            config_.journal->error_name());
  }
}

void Campaign::note_packet(CampaignResult& result) {
  ++result.test_packets;
  const SimTime now = testbed_.scheduler().now();
  if (result.packet_timeline.empty() ||
      now - result.packet_timeline.back().first >= 10 * kSecond) {
    result.packet_timeline.emplace_back(now, result.test_packets);
  }
}

int Campaign::correlate_ground_truth(const zwave::AppPayload& payload,
                                     DetectionKind kind) const {
  (void)kind;
  const sim::DeviceModel model = testbed_.controller().model();
  for (const auto& spec : sim::vulnerability_matrix()) {
    if (!spec.affects(model)) continue;
    if (spec.cmd_class != payload.cmd_class || spec.command != payload.command) continue;
    if (spec.operation.has_value()) {
      if (payload.params.empty() || payload.params[0] != *spec.operation) continue;
    }
    return spec.bug_id;
  }
  return -1;
}

}  // namespace zc::core
