// Campaign report rendering: turns a CampaignResult into the assessment
// document an operator hands to a vendor (the shape the iotcube service
// mentioned in the paper's conclusion would serve).
#pragma once

#include <string>

#include "core/campaign.h"

namespace zc::core {

/// Full markdown report: target identification, fingerprinting summary,
/// per-finding table with payloads/CVE correlation, and coverage numbers.
std::string render_markdown_report(const CampaignResult& result,
                                   sim::DeviceModel target);

/// Machine-readable CSV of the findings (one row per unique finding):
/// bug_id,cmd_class,command,kind,detected_at_us,packets,payload_hex
std::string render_findings_csv(const CampaignResult& result);

/// Timeline CSV for plotting Fig.12-style curves: time_s,packets
std::string render_timeline_csv(const CampaignResult& result);

}  // namespace zc::core
