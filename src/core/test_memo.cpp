#include "core/test_memo.h"

namespace zc::core {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
constexpr std::size_t kInitialSlots = 1024;  // power of two

inline std::uint64_t fnv_step(std::uint64_t h, std::uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

/// Final avalanche (splitmix64 tail) so linear probing over a power-of-two
/// table sees well-mixed low bits even for near-identical payloads.
inline std::uint64_t finalize(std::uint64_t h) {
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h != 0 ? h : 0x5EEDULL;  // 0 is the empty-slot sentinel
}

}  // namespace

TestMemo::TestMemo() : slots_(kInitialSlots, 0), mask_(kInitialSlots - 1) {}

std::uint64_t TestMemo::fingerprint(const zwave::AppPayload& payload) {
  std::uint64_t h = kFnvOffset;
  h = fnv_step(h, payload.cmd_class);
  h = fnv_step(h, payload.command);
  // Length byte disambiguates [0x00] from [] trailing-zero style prefixes.
  h = fnv_step(h, static_cast<std::uint8_t>(payload.params.size()));
  for (std::uint8_t b : payload.params) h = fnv_step(h, b);
  return finalize(h);
}

std::uint64_t TestMemo::fingerprint(ByteView raw) {
  std::uint64_t h = kFnvOffset;
  h = fnv_step(h, static_cast<std::uint8_t>(raw.size()));
  for (std::uint8_t b : raw) h = fnv_step(h, b);
  return finalize(h);
}

bool TestMemo::check_and_insert(std::uint64_t fp) {
  if (fp == 0) fp = 0x5EEDULL;
  std::size_t index = static_cast<std::size_t>(fp) & mask_;
  while (slots_[index] != 0) {
    if (slots_[index] == fp) return true;
    index = (index + 1) & mask_;
  }
  slots_[index] = fp;
  ++size_;
  // Grow at ~0.7 load so probe chains stay short.
  if (size_ * 10 >= slots_.size() * 7) grow();
  return false;
}

bool TestMemo::contains(std::uint64_t fp) const {
  if (fp == 0) fp = 0x5EEDULL;
  std::size_t index = static_cast<std::size_t>(fp) & mask_;
  while (slots_[index] != 0) {
    if (slots_[index] == fp) return true;
    index = (index + 1) & mask_;
  }
  return false;
}

void TestMemo::clear() {
  slots_.assign(slots_.size(), 0);
  size_ = 0;
}

void TestMemo::grow() {
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  mask_ = slots_.size() - 1;
  for (std::uint64_t fp : old) {
    if (fp == 0) continue;
    std::size_t index = static_cast<std::size_t>(fp) & mask_;
    while (slots_[index] != 0) index = (index + 1) & mask_;
    slots_[index] = fp;
  }
}

}  // namespace zc::core
