#include "core/ids.h"

#include <algorithm>
#include <cstdio>

namespace zc::core {

const char* alert_kind_name(AlertKind kind) {
  switch (kind) {
    case AlertKind::kPlaintextSecureClass: return "plaintext-secure-class";
    case AlertKind::kGhostNodeProbe: return "ghost-node-probe";
    case AlertKind::kUnknownSource: return "unknown-source";
    case AlertKind::kMacViolation: return "mac-violation";
    case AlertKind::kTrafficFlood: return "traffic-flood";
  }
  return "?";
}

IntrusionDetector::IntrusionDetector(IdsConfig config) : config_(std::move(config)) {
  // Classes a controller processes that the 2024 specification update says
  // must arrive encapsulated — the proprietary protocol classes above all.
  const auto cluster = zwave::SpecDatabase::instance().controller_cluster(true);
  secure_classes_.insert(cluster.begin(), cluster.end());
  // Encapsulation carriers and liveness probes legitimately ride plaintext.
  transparent_ = {0x98, 0x9F, 0x22, 0x20, 0x25, 0x80};
  for (zwave::CommandClassId cc : transparent_) secure_classes_.erase(cc);
}

std::optional<IdsAlert> IntrusionDetector::inspect(const zwave::MacFrame& frame, SimTime at) {
  ++frames_inspected_;
  auto alert = [&](AlertKind kind, std::string detail) {
    IdsAlert a{at, kind, frame.src, std::move(detail)};
    alerts_.push_back(a);
    return a;
  };

  // Rate rule: sliding per-source window.
  if (config_.rate_threshold > 0) {
    auto& recent = recent_by_source_[frame.src];
    recent.push_back(at);
    const SimTime horizon = at > config_.rate_window ? at - config_.rate_window : 0;
    recent.erase(std::remove_if(recent.begin(), recent.end(),
                                [&](SimTime t) { return t < horizon; }),
                 recent.end());
    if (recent.size() > config_.rate_threshold) {
      recent.clear();  // rearm after alerting
      return alert(AlertKind::kTrafficFlood, "per-source frame rate above baseline");
    }
  }

  // MAC-level protocol violations.
  if (frame.header == zwave::HeaderType::kAck && frame.ack_requested) {
    return alert(AlertKind::kMacViolation, "acknowledgment frame demanding an ack");
  }
  if (frame.header == zwave::HeaderType::kMulticast && frame.ack_requested) {
    return alert(AlertKind::kMacViolation, "multicast frame demanding an ack");
  }
  if (frame.dst == zwave::kBroadcastNodeId && frame.ack_requested) {
    return alert(AlertKind::kMacViolation, "broadcast frame demanding an ack");
  }

  if (config_.enforce_roster && !config_.roster.contains(frame.src)) {
    return alert(AlertKind::kUnknownSource,
                 "frame from node outside the inclusion roster");
  }

  const auto app = zwave::decode_app_payload(frame.payload);
  if (!app.ok()) return std::nullopt;

  // NOP liveness probes are benign plaintext protocol traffic.
  if (app.value().cmd_class == 0x01 && app.value().command == 0x01) return std::nullopt;

  if (app.value().cmd_class == 0x01 && app.value().command == 0x02 &&
      !app.value().params.empty() && !config_.roster.contains(app.value().params[0])) {
    return alert(AlertKind::kGhostNodeProbe, "NIF request for a non-member node");
  }

  if (config_.enforce_secure_classes && secure_classes_.contains(app.value().cmd_class)) {
    char detail[80];
    std::snprintf(detail, sizeof(detail),
                  "class 0x%02X command 0x%02X outside secure encapsulation",
                  app.value().cmd_class, app.value().command);
    return alert(AlertKind::kPlaintextSecureClass, detail);
  }
  return std::nullopt;
}

}  // namespace zc::core
