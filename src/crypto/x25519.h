// X25519 Diffie-Hellman (RFC 7748), implemented from scratch.
//
// Z-Wave S2 inclusion bootstraps its network keys with Curve25519 ECDH;
// the simulated controllers and the S2 door lock run a real key agreement
// so the derived CCM/CMAC keys are honest secrets rather than constants.
// Validated against RFC 7748 section 5.2 / 6.1 vectors in tests.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace zc::crypto {

using X25519Key = std::array<std::uint8_t, 32>;

/// Scalar multiplication: out = scalar * point (u-coordinate only).
X25519Key x25519(const X25519Key& scalar, const X25519Key& u);

/// Computes the public key for a private scalar (scalar * base point 9).
X25519Key x25519_public(const X25519Key& private_key);

/// Builds a key from exactly 32 bytes.
X25519Key make_x25519_key(ByteView bytes);

}  // namespace zc::crypto
