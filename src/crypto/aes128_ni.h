// Internal AES-NI primitives (x86 hardware AES rounds). Only aes128.cpp
// should include this; everything dispatches through the Aes128 class.
//
// The functions are compiled with per-function target("aes,sse2")
// attributes in aes128_ni.cpp, so the library builds without global -maes
// and plain builds still run on CPUs without the extension — callers must
// gate on aes128_ni_supported() (which reports raw hardware capability;
// policy overrides like ZC_DISABLE_AESNI live in crypto::active_aes_backend).
#pragma once

#include <cstdint>

namespace zc::crypto::ni {

/// True when the host CPU executes AES-NI (and the build targets x86).
bool aes128_ni_supported();

/// Expands `key` (16 bytes) into the standard 176-byte AES-128 round-key
/// schedule — byte-identical to the portable expansion.
void aes128_ni_expand_key(const std::uint8_t* key, std::uint8_t* round_keys);

/// Encrypts/decrypts one 16-byte block in place against the 176-byte
/// schedule produced by aes128_ni_expand_key (or the portable expansion —
/// the bytes are the same).
void aes128_ni_encrypt_block(const std::uint8_t* round_keys, std::uint8_t* block);
void aes128_ni_decrypt_block(const std::uint8_t* round_keys, std::uint8_t* block);

}  // namespace zc::crypto::ni
