#include "crypto/ctr.h"

#include <cassert>
#include <cstring>

namespace zc::crypto {

namespace {

void increment_be(AesBlock& counter) {
  for (int i = 15; i >= 0; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}

}  // namespace

Bytes aes_ctr_crypt(const AesKey& key, const AesBlock& iv, ByteView data) {
  const Aes128 cipher(key);
  Bytes out(data.begin(), data.end());
  AesBlock counter = iv;
  std::size_t offset = 0;
  while (offset < out.size()) {
    const AesBlock ks = cipher.encrypt(counter);
    const std::size_t chunk = std::min(kAesBlockSize, out.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) out[offset + i] ^= ks[i];
    increment_be(counter);
    offset += chunk;
  }
  return out;
}

Bytes aes_ofb_crypt(const AesKey& key, const AesBlock& iv, ByteView data) {
  const Aes128 cipher(key);
  Bytes out(data.begin(), data.end());
  AesBlock feedback = iv;
  std::size_t offset = 0;
  while (offset < out.size()) {
    cipher.encrypt_block(feedback);
    const std::size_t chunk = std::min(kAesBlockSize, out.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) out[offset + i] ^= feedback[i];
    offset += chunk;
  }
  return out;
}

CtrDrbg::CtrDrbg(ByteView seed32) {
  assert(seed32.size() == 32);
  update(seed32);
}

void CtrDrbg::update(ByteView provided32) {
  assert(provided32.size() == 32);
  const Aes128 cipher(key_);
  std::uint8_t temp[32];
  AesBlock counter = v_;
  for (int block = 0; block < 2; ++block) {
    increment_be(counter);
    const AesBlock ks = cipher.encrypt(counter);
    std::memcpy(temp + block * 16, ks.data(), 16);
  }
  for (int i = 0; i < 32; ++i) temp[i] ^= provided32[static_cast<std::size_t>(i)];
  std::memcpy(key_.data(), temp, 16);
  std::memcpy(v_.data(), temp + 16, 16);
}

Bytes CtrDrbg::generate(std::size_t n) {
  const Aes128 cipher(key_);
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    increment_be(v_);
    const AesBlock ks = cipher.encrypt(v_);
    const std::size_t chunk = std::min(kAesBlockSize, n - out.size());
    out.insert(out.end(), ks.begin(), ks.begin() + static_cast<std::ptrdiff_t>(chunk));
  }
  const std::uint8_t zeros[32] = {};
  update(ByteView(zeros, 32));
  return out;
}

void CtrDrbg::reseed(ByteView seed32) { update(seed32); }

}  // namespace zc::crypto
