#include "crypto/kdf.h"

#include <algorithm>
#include <cassert>

#include "crypto/cmac.h"

namespace zc::crypto {

AesBlock ckdf_extract(const AesKey& salt, ByteView ikm) { return aes_cmac(salt, ikm); }

Bytes ckdf_expand(const AesKey& prk, ByteView info, std::size_t length) {
  Bytes out;
  out.reserve(length);
  Bytes t;  // T(0) = empty
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    const AesBlock block = aes_cmac(prk, input);
    t.assign(block.begin(), block.end());
    const std::size_t chunk = std::min(kAesBlockSize, length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(chunk));
  }
  return out;
}

S2Keys derive_s2_keys(ByteView ecdh_shared, ByteView pub_a, ByteView pub_b) {
  assert(ecdh_shared.size() == 32);
  // Extract: PRK = CMAC(const_salt, shared || pubA || pubB).
  AesKey salt{};
  for (auto& b : salt) b = 0x33;  // "SmartStart" constant salt shape
  Bytes ikm(ecdh_shared.begin(), ecdh_shared.end());
  ikm.insert(ikm.end(), pub_a.begin(), pub_a.end());
  ikm.insert(ikm.end(), pub_b.begin(), pub_b.end());
  const AesBlock prk_block = ckdf_extract(salt, ikm);
  AesKey prk{};
  std::copy(prk_block.begin(), prk_block.end(), prk.begin());

  static constexpr std::uint8_t kInfo[] = {'S', '2', 'K', 'e', 'y', 's'};
  const Bytes okm = ckdf_expand(prk, ByteView(kInfo, sizeof(kInfo)), 48);

  S2Keys keys;
  std::copy_n(okm.begin(), 16, keys.ccm_key.begin());
  std::copy_n(okm.begin() + 16, 16, keys.auth_key.begin());
  std::copy_n(okm.begin() + 32, 16, keys.nonce_key.begin());
  return keys;
}

S0Keys derive_s0_keys(const AesKey& network_key) {
  const Aes128 cipher(network_key);
  AesBlock pe{};
  AesBlock pa{};
  pe.fill(0xAA);
  pa.fill(0x55);
  cipher.encrypt_block(pe);
  cipher.encrypt_block(pa);
  S0Keys keys;
  std::copy(pe.begin(), pe.end(), keys.enc_key.begin());
  std::copy(pa.begin(), pa.end(), keys.auth_key.begin());
  return keys;
}

}  // namespace zc::crypto
