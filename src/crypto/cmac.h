// AES-CMAC (RFC 4493).
//
// Z-Wave S2 uses AES-128-CMAC both for message authentication and as the
// PRF inside its key-derivation function (CKDF). Validated against the RFC
// 4493 test vectors in tests/crypto/cmac_test.cpp.
#pragma once

#include "common/bytes.h"
#include "crypto/aes128.h"

namespace zc::crypto {

/// Computes the full 16-byte AES-CMAC tag of `message` under `key`.
AesBlock aes_cmac(const AesKey& key, ByteView message);

/// Computes a truncated tag of `tag_len` (<= 16) bytes, as used by S2
/// frames which carry 8-byte auth tags on air.
Bytes aes_cmac_truncated(const AesKey& key, ByteView message, std::size_t tag_len);

/// Verifies a (possibly truncated) tag in constant time.
bool aes_cmac_verify(const AesKey& key, ByteView message, ByteView tag);

}  // namespace zc::crypto
