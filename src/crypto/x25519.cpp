#include "crypto/x25519.h"

#include <cassert>
#include <cstring>

namespace zc::crypto {

namespace {

// Field arithmetic mod p = 2^255 - 19 using five 51-bit limbs and the
// unsigned __int128 extension for products.
using u64 = std::uint64_t;
using u128 = unsigned __int128;

struct Fe {
  u64 v[5];
};

constexpr u64 kMask51 = (1ULL << 51) - 1;

Fe fe_from_bytes(const std::uint8_t* s) {
  auto load64 = [](const std::uint8_t* p) {
    u64 r = 0;
    for (int i = 7; i >= 0; --i) r = (r << 8) | p[i];
    return r;
  };
  Fe h;
  h.v[0] = load64(s) & kMask51;
  h.v[1] = (load64(s + 6) >> 3) & kMask51;
  h.v[2] = (load64(s + 12) >> 6) & kMask51;
  h.v[3] = (load64(s + 19) >> 1) & kMask51;
  h.v[4] = (load64(s + 24) >> 12) & kMask51;
  return h;
}

void fe_to_bytes(std::uint8_t* s, Fe h) {
  // Fully reduce.
  for (int pass = 0; pass < 2; ++pass) {
    u64 carry = 0;
    for (int i = 0; i < 5; ++i) {
      h.v[i] += carry;
      carry = h.v[i] >> 51;
      h.v[i] &= kMask51;
    }
    h.v[0] += carry * 19;
  }
  // Conditionally subtract p.
  u64 q = (h.v[0] + 19) >> 51;
  q = (h.v[1] + q) >> 51;
  q = (h.v[2] + q) >> 51;
  q = (h.v[3] + q) >> 51;
  q = (h.v[4] + q) >> 51;
  h.v[0] += 19 * q;
  u64 carry = h.v[0] >> 51;
  h.v[0] &= kMask51;
  h.v[1] += carry;
  carry = h.v[1] >> 51;
  h.v[1] &= kMask51;
  h.v[2] += carry;
  carry = h.v[2] >> 51;
  h.v[2] &= kMask51;
  h.v[3] += carry;
  carry = h.v[3] >> 51;
  h.v[3] &= kMask51;
  h.v[4] += carry;
  h.v[4] &= kMask51;

  std::uint8_t out[40] = {};
  auto store = [&](int bit_offset, u64 value) {
    for (int i = 0; i < 8; ++i) {
      const int byte = bit_offset / 8 + i;
      out[byte] |= static_cast<std::uint8_t>((value << (bit_offset % 8)) >> (8 * i));
    }
  };
  store(0, h.v[0]);
  store(51, h.v[1]);
  store(102, h.v[2]);
  store(153, h.v[3]);
  store(204, h.v[4]);
  std::memcpy(s, out, 32);
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

Fe fe_sub(const Fe& a, const Fe& b) {
  // Add 2*p (limbwise: 2*(2^51-19), then 2*(2^51-1)) before subtracting so
  // limbs never go negative.
  Fe r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDAULL - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFEULL - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFEULL - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFEULL - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFEULL - b.v[4];
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  const u128 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
  u128 t1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
  u128 t2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
  u128 t3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
  u128 t4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

  Fe r;
  u64 carry;
  r.v[0] = static_cast<u64>(t0) & kMask51;
  carry = static_cast<u64>(t0 >> 51);
  t1 += carry;
  r.v[1] = static_cast<u64>(t1) & kMask51;
  carry = static_cast<u64>(t1 >> 51);
  t2 += carry;
  r.v[2] = static_cast<u64>(t2) & kMask51;
  carry = static_cast<u64>(t2 >> 51);
  t3 += carry;
  r.v[3] = static_cast<u64>(t3) & kMask51;
  carry = static_cast<u64>(t3 >> 51);
  t4 += carry;
  r.v[4] = static_cast<u64>(t4) & kMask51;
  carry = static_cast<u64>(t4 >> 51);
  r.v[0] += carry * 19;
  carry = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += carry;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, u64 k) {
  u128 t;
  Fe r;
  u64 carry = 0;
  for (int i = 0; i < 5; ++i) {
    t = static_cast<u128>(a.v[i]) * k + carry;
    r.v[i] = static_cast<u64>(t) & kMask51;
    carry = static_cast<u64>(t >> 51);
  }
  r.v[0] += carry * 19;
  return r;
}

// Inversion via Fermat: a^(p-2).
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);                 // 2
  Fe z8 = fe_sq(fe_sq(z2));         // 8
  Fe z9 = fe_mul(z8, z);            // 9
  Fe z11 = fe_mul(z9, z2);          // 11
  Fe z22 = fe_sq(z11);              // 22
  Fe z_5_0 = fe_mul(z22, z9);       // 2^5 - 2^0
  Fe t = z_5_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  Fe z_10_0 = fe_mul(t, z_5_0);     // 2^10 - 2^0
  t = z_10_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_20_0 = fe_mul(t, z_10_0);    // 2^20 - 2^0
  t = z_20_0;
  for (int i = 0; i < 20; ++i) t = fe_sq(t);
  Fe z_40_0 = fe_mul(t, z_20_0);    // 2^40 - 2^0
  t = z_40_0;
  for (int i = 0; i < 10; ++i) t = fe_sq(t);
  Fe z_50_0 = fe_mul(t, z_10_0);    // 2^50 - 2^0
  t = z_50_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_100_0 = fe_mul(t, z_50_0);   // 2^100 - 2^0
  t = z_100_0;
  for (int i = 0; i < 100; ++i) t = fe_sq(t);
  Fe z_200_0 = fe_mul(t, z_100_0);  // 2^200 - 2^0
  t = z_200_0;
  for (int i = 0; i < 50; ++i) t = fe_sq(t);
  Fe z_250_0 = fe_mul(t, z_50_0);   // 2^250 - 2^0
  t = z_250_0;
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  return fe_mul(t, z11);            // 2^255 - 21
}

void fe_cswap(Fe& a, Fe& b, u64 swap) {
  const u64 mask = 0 - swap;
  for (int i = 0; i < 5; ++i) {
    const u64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& u) {
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  // RFC 7748 clamping.
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  std::uint8_t u_bytes[32];
  std::memcpy(u_bytes, u.data(), 32);
  u_bytes[31] &= 127;  // mask the high bit per RFC 7748

  const Fe x1 = fe_from_bytes(u_bytes);
  Fe x2{{1, 0, 0, 0, 0}};
  Fe z2{{0, 0, 0, 0, 0}};
  Fe x3 = x1;
  Fe z3{{1, 0, 0, 0, 0}};
  u64 swap = 0;

  for (int pos = 254; pos >= 0; --pos) {
    const u64 bit = (e[pos / 8] >> (pos % 8)) & 1;
    swap ^= bit;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = bit;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e_ = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e_, fe_add(aa, fe_mul_small(e_, 121665)));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  const Fe out = fe_mul(x2, fe_invert(z2));
  X25519Key result{};
  fe_to_bytes(result.data(), out);
  return result;
}

X25519Key x25519_public(const X25519Key& private_key) {
  X25519Key base{};
  base[0] = 9;
  return x25519(private_key, base);
}

X25519Key make_x25519_key(ByteView bytes) {
  assert(bytes.size() == 32);
  X25519Key key{};
  std::memcpy(key.data(), bytes.data(), 32);
  return key;
}

}  // namespace zc::crypto
