#include "crypto/aes128_ni.h"

#include "common/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#define ZC_HAVE_AESNI_BUILD 1
#include <immintrin.h>
#endif

namespace zc::crypto::ni {

bool aes128_ni_supported() {
#if ZC_HAVE_AESNI_BUILD
  return cpu::detect().aesni;
#else
  return false;
#endif
}

#if ZC_HAVE_AESNI_BUILD

namespace {

// FIPS-197 key expansion, one aeskeygenassist per round: RotWord+SubWord+
// Rcon arrive in lane 3 of `gen`; the three slli/xor steps fold the running
// prefix-xor of the previous round key exactly like the scalar loop.
__attribute__((target("aes,sse2"))) inline __m128i expand_step(__m128i key,
                                                               __m128i gen) {
  gen = _mm_shuffle_epi32(gen, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, gen);
}

}  // namespace

__attribute__((target("aes,sse2"))) void aes128_ni_expand_key(
    const std::uint8_t* key, std::uint8_t* round_keys) {
  __m128i* out = reinterpret_cast<__m128i*>(round_keys);
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  _mm_storeu_si128(out + 0, k);
#define ZC_EXPAND_ROUND(index, rcon)                                \
  k = expand_step(k, _mm_aeskeygenassist_si128(k, rcon));           \
  _mm_storeu_si128(out + (index), k)
  ZC_EXPAND_ROUND(1, 0x01);
  ZC_EXPAND_ROUND(2, 0x02);
  ZC_EXPAND_ROUND(3, 0x04);
  ZC_EXPAND_ROUND(4, 0x08);
  ZC_EXPAND_ROUND(5, 0x10);
  ZC_EXPAND_ROUND(6, 0x20);
  ZC_EXPAND_ROUND(7, 0x40);
  ZC_EXPAND_ROUND(8, 0x80);
  ZC_EXPAND_ROUND(9, 0x1b);
  ZC_EXPAND_ROUND(10, 0x36);
#undef ZC_EXPAND_ROUND
}

__attribute__((target("aes,sse2"))) void aes128_ni_encrypt_block(
    const std::uint8_t* round_keys, std::uint8_t* block) {
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys);
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  b = _mm_xor_si128(b, _mm_loadu_si128(rk + 0));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 1));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 2));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 3));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 4));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 5));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 6));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 7));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 8));
  b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + 9));
  b = _mm_aesenclast_si128(b, _mm_loadu_si128(rk + 10));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), b);
}

__attribute__((target("aes,sse2"))) void aes128_ni_decrypt_block(
    const std::uint8_t* round_keys, std::uint8_t* block) {
  // Equivalent inverse cipher: aesdec expects InvMixColumns-transformed
  // round keys, produced on the fly with aesimc. Decryption is off the
  // campaign hot path (the fuzzer mostly encapsulates), so the ten extra
  // aesimc ops per block beat caching a second schedule per cipher.
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys);
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  b = _mm_xor_si128(b, _mm_loadu_si128(rk + 10));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 9)));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 8)));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 7)));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 6)));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 5)));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 4)));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 3)));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 2)));
  b = _mm_aesdec_si128(b, _mm_aesimc_si128(_mm_loadu_si128(rk + 1)));
  b = _mm_aesdeclast_si128(b, _mm_loadu_si128(rk + 0));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), b);
}

#else  // !ZC_HAVE_AESNI_BUILD

// Non-x86 builds: aes128_ni_supported() returns false, so these stubs are
// unreachable; they exist to keep the link happy without #ifdef at callers.
void aes128_ni_expand_key(const std::uint8_t*, std::uint8_t*) {}
void aes128_ni_encrypt_block(const std::uint8_t*, std::uint8_t*) {}
void aes128_ni_decrypt_block(const std::uint8_t*, std::uint8_t*) {}

#endif

}  // namespace zc::crypto::ni
