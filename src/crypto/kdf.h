// Key derivation for the Z-Wave security transports.
//
// * S2 uses a CMAC-based extract-and-expand construction ("CKDF" in the
//   Silicon Labs S2 spec) to turn the ECDH shared secret into the CCM key,
//   the personalization string, and the MPAN key, and to derive per-frame
//   nonce material.
// * S0 derives its frame-encryption key Ke and authentication key Ka from
//   the 16-byte network key Kn via two fixed AES plaintexts.
#pragma once

#include "common/bytes.h"
#include "crypto/aes128.h"

namespace zc::crypto {

/// CMAC-based extract step: PRK = CMAC(salt, ikm).
AesBlock ckdf_extract(const AesKey& salt, ByteView ikm);

/// CMAC-based expand step (counter-mode, RFC 5869 shaped but with CMAC):
/// T(i) = CMAC(prk, T(i-1) || info || i). Returns `length` bytes.
Bytes ckdf_expand(const AesKey& prk, ByteView info, std::size_t length);

/// Derived key material for an established S2 security class.
struct S2Keys {
  AesKey ccm_key{};        // payload encryption (CTR+CMAC composition)
  AesKey auth_key{};       // frame authentication
  AesKey nonce_key{};      // nonce/SPAN personalization
};

/// Derives the S2 key set from the ECDH shared secret and both public keys
/// (the spec mixes both sides' public keys into the extract step).
S2Keys derive_s2_keys(ByteView ecdh_shared, ByteView pub_a, ByteView pub_b);

/// Derived S0 key pair.
struct S0Keys {
  AesKey enc_key{};   // Ke = AES(Kn, 0xAA * 16)
  AesKey auth_key{};  // Ka = AES(Kn, 0x55 * 16)
};

/// Derives S0 keys from the 16-byte network key.
S0Keys derive_s0_keys(const AesKey& network_key);

}  // namespace zc::crypto
