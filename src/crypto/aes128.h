// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// Z-Wave S0 uses AES-128 in OFB mode with a CBC-MAC; S2 uses AES-128 for
// CCM-style authenticated encryption and CMAC-based key derivation. The
// reproduction implements the real cipher (validated against FIPS-197 /
// NIST vectors in tests) so the simulated secure transports genuinely
// reject forged or unencrypted traffic — which is exactly the property the
// paper's seeded specification flaws violate.
//
// This is a straightforward table-free implementation (S-box only); Z-Wave
// frames are tiny and infrequent, so per-block cost is irrelevant here.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace zc::crypto {

constexpr std::size_t kAesBlockSize = 16;
constexpr std::size_t kAesKeySize = 16;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;
using AesKey = std::array<std::uint8_t, kAesKeySize>;

/// AES-128 with a precomputed key schedule.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(AesBlock& block) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(AesBlock& block) const;

  /// Convenience: ECB-encrypt a single block by value.
  AesBlock encrypt(const AesBlock& block) const {
    AesBlock out = block;
    encrypt_block(out);
    return out;
  }

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

/// Builds an AesKey from a byte view; requires exactly 16 bytes.
AesKey make_key(ByteView bytes);

/// Builds an AesBlock from a byte view; requires exactly 16 bytes.
AesBlock make_block(ByteView bytes);

}  // namespace zc::crypto
