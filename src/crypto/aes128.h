// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// Z-Wave S0 uses AES-128 in OFB mode with a CBC-MAC; S2 uses AES-128 for
// CCM-style authenticated encryption and CMAC-based key derivation. The
// reproduction implements the real cipher (validated against FIPS-197 /
// NIST vectors in tests) so the simulated secure transports genuinely
// reject forged or unencrypted traffic — which is exactly the property the
// paper's seeded specification flaws violate.
//
// Two backends sit behind the same class: the from-scratch portable
// implementation (the validated reference), and an AES-NI path that runs
// the identical schedule/rounds in hardware — under a fuzzing campaign the
// S0/S2 encap path encrypts thousands of blocks per trial, so the ~10x
// hardware speedup is a first-order throughput win. The backend is chosen
// per cipher instance at construction from cpu::enabled() (AES-NI when the
// CPU has it; ZC_DISABLE_AESNI=1 or cpu::ScopedForcePortable force the
// portable path). Both backends are byte-identical on every input — pinned
// by tests/crypto/aes_backend_test.cpp against FIPS-197 vectors and
// randomized cross-checks.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace zc::crypto {

constexpr std::size_t kAesBlockSize = 16;
constexpr std::size_t kAesKeySize = 16;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;
using AesKey = std::array<std::uint8_t, kAesKeySize>;

/// The implementation behind an Aes128 instance.
enum class AesBackend { kPortable, kAesni };

/// Backend the dispatcher would select for a cipher constructed right now
/// (honors ZC_DISABLE_AESNI and cpu::ScopedForcePortable).
AesBackend active_aes_backend();

/// Human-readable backend name ("portable", "aes-ni") for docs/telemetry.
const char* aes_backend_name(AesBackend backend);

/// AES-128 with a precomputed key schedule.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(AesBlock& block) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(AesBlock& block) const;

  /// Convenience: ECB-encrypt a single block by value.
  AesBlock encrypt(const AesBlock& block) const {
    AesBlock out = block;
    encrypt_block(out);
    return out;
  }

  /// The backend this instance captured at construction.
  AesBackend backend() const { return backend_; }

 private:
  // 11 round keys of 16 bytes each (identical bytes under either backend).
  std::array<std::uint8_t, 176> round_keys_{};
  AesBackend backend_ = AesBackend::kPortable;
};

/// Builds an AesKey from a byte view; requires exactly 16 bytes.
AesKey make_key(ByteView bytes);

/// Builds an AesBlock from a byte view; requires exactly 16 bytes.
AesBlock make_block(ByteView bytes);

}  // namespace zc::crypto
