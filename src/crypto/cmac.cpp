#include "crypto/cmac.h"

#include <algorithm>
#include <cassert>

namespace zc::crypto {

namespace {

// Doubling in GF(2^128) with the CMAC polynomial (RFC 4493 subkey step).
AesBlock double_block(const AesBlock& in) {
  AesBlock out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    const std::uint8_t b = in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((b << 1) | carry);
    carry = static_cast<std::uint8_t>(b >> 7);
  }
  if (carry) out[15] ^= 0x87;
  return out;
}

void xor_into(AesBlock& acc, const std::uint8_t* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] ^= data[i];
}

}  // namespace

AesBlock aes_cmac(const AesKey& key, ByteView message) {
  const Aes128 cipher(key);

  AesBlock zero{};
  const AesBlock l = cipher.encrypt(zero);
  const AesBlock k1 = double_block(l);
  const AesBlock k2 = double_block(k1);

  const std::size_t n = message.size();
  const std::size_t full_blocks = n / kAesBlockSize;
  const std::size_t rem = n % kAesBlockSize;
  // Number of blocks processed before the (specially masked) last block.
  const std::size_t lead =
      (n == 0) ? 0 : (rem == 0 ? full_blocks - 1 : full_blocks);

  AesBlock x{};
  for (std::size_t i = 0; i < lead; ++i) {
    xor_into(x, message.data() + i * kAesBlockSize, kAesBlockSize);
    cipher.encrypt_block(x);
  }

  AesBlock last{};
  if (n != 0 && rem == 0) {
    std::copy_n(message.data() + lead * kAesBlockSize, kAesBlockSize, last.begin());
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= k1[i];
  } else {
    const std::size_t tail = n - lead * kAesBlockSize;
    std::copy_n(message.data() + lead * kAesBlockSize, tail, last.begin());
    last[tail] = 0x80;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= k2[i];
  }

  for (std::size_t i = 0; i < kAesBlockSize; ++i) x[i] ^= last[i];
  cipher.encrypt_block(x);
  return x;
}

Bytes aes_cmac_truncated(const AesKey& key, ByteView message, std::size_t tag_len) {
  assert(tag_len <= kAesBlockSize);
  const AesBlock full = aes_cmac(key, message);
  return Bytes(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(tag_len));
}

bool aes_cmac_verify(const AesKey& key, ByteView message, ByteView tag) {
  if (tag.empty() || tag.size() > kAesBlockSize) return false;
  const AesBlock full = aes_cmac(key, message);
  return equal_constant_time(ByteView(full.data(), tag.size()), tag);
}

}  // namespace zc::crypto
