// AES-CTR keystream encryption and AES-OFB (for S0), plus a tiny
// deterministic CTR-DRBG used for S2 nonce generation.
#pragma once

#include "common/bytes.h"
#include "crypto/aes128.h"

namespace zc::crypto {

/// XORs `data` with the AES-CTR keystream derived from (key, iv).
/// Encryption and decryption are the same operation.
Bytes aes_ctr_crypt(const AesKey& key, const AesBlock& iv, ByteView data);

/// AES-OFB, the mode Z-Wave S0 uses for payload confidentiality.
Bytes aes_ofb_crypt(const AesKey& key, const AesBlock& iv, ByteView data);

/// Minimal deterministic random bit generator (AES-CTR based, modeled on
/// SP 800-90A CTR-DRBG without derivation function). S2 nodes use a DRBG
/// to produce the entropy inputs of the nonce-synchronization scheme.
class CtrDrbg {
 public:
  /// Seeds from 32 bytes of entropy (key || V).
  explicit CtrDrbg(ByteView seed32);

  /// Generates `n` pseudorandom bytes and ratchets the internal state.
  Bytes generate(std::size_t n);

  /// Mixes fresh entropy into the state.
  void reseed(ByteView seed32);

 private:
  void update(ByteView provided32);

  AesKey key_{};
  AesBlock v_{};
};

}  // namespace zc::crypto
