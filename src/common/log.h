// Minimal leveled logger.
//
// ZCover writes a campaign log file (Algorithm 1's Bug_Logs) plus normal
// diagnostics; this logger keeps both paths allocation-light and lets tests
// capture output through a custom sink.
//
// Thread-safety contract (required since the sharded pool of
// core/parallel runs campaigns — and therefore ZC_LOG sites — on worker
// threads): `set_level` / `level` / `enabled` are atomic and callable from
// any thread at any time. `set_sink` swaps the sink under the same
// internal mutex that guards every emission — the discipline
// core/parallel applies to checkpoint sinks — so a swap never races an
// in-flight logf and two concurrent logf calls never interleave inside a
// sink. Consequently the installed sink is always invoked serialized
// (never concurrently with itself) and must not call back into set_sink
// on the same thread (self-deadlock). Message formatting happens outside
// the lock; only the sink invocation is serialized.
#pragma once

#include <atomic>
#include <cstdarg>
#include <functional>
#include <mutex>
#include <string>

namespace zc {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-wide logger used by default throughout the library.
  static Logger& global();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  /// Safe to call while other threads are logging: the swap happens under
  /// the emission mutex, so the old sink has fully returned from any
  /// in-flight call before it is destroyed.
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const {
    const LogLevel current = this->level();
    return level >= current && current != LogLevel::kOff;
  }

  void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 3, 4)));
  void vlogf(LogLevel level, const char* fmt, va_list args);

 private:
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  /// Guards sink_ — both the swap and every invocation, so concurrent
  /// shard logs serialize and a swap cannot free a sink mid-call.
  std::mutex sink_mutex_;
  Sink sink_;
};

#define ZC_LOG(level, ...)                                       \
  do {                                                           \
    if (::zc::Logger::global().enabled(level)) {                 \
      ::zc::Logger::global().logf(level, __VA_ARGS__);           \
    }                                                            \
  } while (0)

#define ZC_TRACE(...) ZC_LOG(::zc::LogLevel::kTrace, __VA_ARGS__)
#define ZC_DEBUG(...) ZC_LOG(::zc::LogLevel::kDebug, __VA_ARGS__)
#define ZC_INFO(...) ZC_LOG(::zc::LogLevel::kInfo, __VA_ARGS__)
#define ZC_WARN(...) ZC_LOG(::zc::LogLevel::kWarn, __VA_ARGS__)
#define ZC_ERROR(...) ZC_LOG(::zc::LogLevel::kError, __VA_ARGS__)

}  // namespace zc
