// Minimal leveled logger.
//
// ZCover writes a campaign log file (Algorithm 1's Bug_Logs) plus normal
// diagnostics; this logger keeps both paths allocation-light and lets tests
// capture output through a custom sink.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace zc {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-wide logger used by default throughout the library.
  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 3, 4)));
  void vlogf(LogLevel level, const char* fmt, va_list args);

 private:
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

#define ZC_LOG(level, ...)                                       \
  do {                                                           \
    if (::zc::Logger::global().enabled(level)) {                 \
      ::zc::Logger::global().logf(level, __VA_ARGS__);           \
    }                                                            \
  } while (0)

#define ZC_TRACE(...) ZC_LOG(::zc::LogLevel::kTrace, __VA_ARGS__)
#define ZC_DEBUG(...) ZC_LOG(::zc::LogLevel::kDebug, __VA_ARGS__)
#define ZC_INFO(...) ZC_LOG(::zc::LogLevel::kInfo, __VA_ARGS__)
#define ZC_WARN(...) ZC_LOG(::zc::LogLevel::kWarn, __VA_ARGS__)
#define ZC_ERROR(...) ZC_LOG(::zc::LogLevel::kError, __VA_ARGS__)

}  // namespace zc
