// A minimal expected-style result type.
//
// ZCover runs as an external black-box tester: malformed frames, rejected
// packets and radio noise are *expected* outcomes, not exceptional ones, so
// decode/verify paths return Result<T> instead of throwing (exceptions are
// reserved for programming errors / broken invariants).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace zc {

enum class Errc {
  kOk = 0,
  kTruncated,        // buffer shorter than the layout requires
  kBadChecksum,      // CS-8 / CRC-16 mismatch
  kBadLength,        // LEN field disagrees with physical size
  kBadField,         // a field holds an illegal value
  kUnsupported,      // feature/CMDCL not implemented by the peer
  kAuthFailed,       // S0/S2 MAC verification failed
  kNotJoined,        // node not part of the network
  kTimeout,          // no response within the deadline
  kBusy,             // device busy / resource exhausted
  kInternal,         // simulator-internal failure
};

/// Human-readable name of an error code (stable, for logs and tests).
const char* errc_name(Errc code);

struct Error {
  Errc code = Errc::kInternal;
  std::string message;
};

/// Result<T>: holds either a value or an Error. Intentionally tiny — just
/// enough expected<> surface for this codebase (C++23 std::expected is not
/// assumed available).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}                    // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}                // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string message)
      : data_(Error{code, std::move(message)}) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }
  Errc code() const { return ok() ? Errc::kOk : error().code; }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)
  Status(Errc code, std::string message)
      : error_{code, std::move(message)}, failed_(true) {}

  static Status ok_status() { return {}; }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }
  Errc code() const { return failed_ ? error_.code : Errc::kOk; }

 private:
  Error error_;
  bool failed_ = false;
};

inline const char* errc_name(Errc code) {
  switch (code) {
    case Errc::kOk: return "ok";
    case Errc::kTruncated: return "truncated";
    case Errc::kBadChecksum: return "bad_checksum";
    case Errc::kBadLength: return "bad_length";
    case Errc::kBadField: return "bad_field";
    case Errc::kUnsupported: return "unsupported";
    case Errc::kAuthFailed: return "auth_failed";
    case Errc::kNotJoined: return "not_joined";
    case Errc::kTimeout: return "timeout";
    case Errc::kBusy: return "busy";
    case Errc::kInternal: return "internal";
  }
  return "unknown";
}

}  // namespace zc
