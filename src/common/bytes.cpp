#include "common/bytes.h"

#include <array>
#include <cctype>

namespace zc {

namespace {

constexpr char kHexLower[] = "0123456789abcdef";
constexpr char kHexUpper[] = "0123456789ABCDEF";

int hex_digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexLower[b >> 4]);
    out.push_back(kHexLower[b & 0x0F]);
  }
  return out;
}

std::string to_hex_spaced(ByteView data) {
  std::string out;
  out.reserve(data.size() * 5);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out += "0x";
    out.push_back(kHexUpper[data[i] >> 4]);
    out.push_back(kHexUpper[data[i] & 0x0F]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view text) {
  Bytes out;
  int pending = -1;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == ' ' || c == ',' || c == ':' || c == '\t' || c == '\n') {
      if (pending >= 0) return std::nullopt;  // split mid-byte
      continue;
    }
    // Accept a leading "0x"/"0X" before each byte group.
    if (c == '0' && i + 1 < text.size() && (text[i + 1] == 'x' || text[i + 1] == 'X') &&
        pending < 0) {
      ++i;
      continue;
    }
    int v = hex_digit_value(c);
    if (v < 0) return std::nullopt;
    if (pending < 0) {
      pending = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((pending << 4) | v));
      pending = -1;
    }
  }
  if (pending >= 0) return std::nullopt;
  return out;
}

std::uint32_t read_be32(ByteView data, std::size_t offset) {
  return (static_cast<std::uint32_t>(data[offset]) << 24) |
         (static_cast<std::uint32_t>(data[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(data[offset + 2]) << 8) |
         static_cast<std::uint32_t>(data[offset + 3]);
}

void write_be32(Bytes& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint16_t read_be16(ByteView data, std::size_t offset) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(data[offset]) << 8) |
                                    data[offset + 1]);
}

void write_be16(Bytes& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

bool equal_constant_time(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

Bytes concat(ByteView a, ByteView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace zc
