#include "common/version.h"

// The definitions arrive per-source from src/common/CMakeLists.txt; the
// fallbacks keep non-CMake builds (IDE single-file checks) compiling.
#ifndef ZC_VERSION
#define ZC_VERSION "0.0.0"
#endif
#ifndef ZC_GIT_DESCRIBE
#define ZC_GIT_DESCRIBE "unknown"
#endif
#ifndef ZC_BUILD_TYPE
#define ZC_BUILD_TYPE ""
#endif

namespace zc {

const char* build_version() { return ZC_VERSION; }
const char* build_git_describe() { return ZC_GIT_DESCRIBE; }
const char* build_type() { return ZC_BUILD_TYPE; }

}  // namespace zc
