#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace zc {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = range * (UINT64_MAX / range);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit && limit != 0);
  return lo + (v % range);
}

bool Rng::chance(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform01() < p;
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = next_byte();
  return out;
}

void Rng::append_bytes(Bytes& out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_byte());
}

Rng Rng::fork() { return Rng(next_u64()); }

std::array<std::uint64_t, 4> Rng::state() const {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  std::copy(state.begin(), state.end(), state_);
}

}  // namespace zc
