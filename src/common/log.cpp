#include "common/log.h"

#include <cstdio>
#include <utility>
#include <vector>

namespace zc {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_sink(Sink sink) {
  // Swap under the emission mutex: any in-flight vlogf has either finished
  // with the old sink or has not yet taken the lock and will see the new
  // one. The old sink is destroyed outside the lock.
  Sink old;
  {
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    old = std::exchange(sink_, std::move(sink));
  }
}

void Logger::logf(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlogf(level, fmt, args);
  va_end(args);
}

void Logger::vlogf(LogLevel level, const char* fmt, va_list args) {
  if (!enabled(level)) return;
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed < 0) return;
  std::string text(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(text.data(), text.size() + 1, fmt, args);
  // Formatting above ran lock-free; only the sink read + invocation is
  // serialized so shard threads cannot race a concurrent set_sink swap.
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_) {
    sink_(level, text);
  } else {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), text.c_str());
  }
}

}  // namespace zc
