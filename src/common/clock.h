// Virtual time and discrete-event scheduling.
//
// The paper's campaigns run for wall-clock hours (five 24-hour trials per
// controller). The reproduction replaces wall time with a discrete-event
// virtual clock: a "24-hour" campaign is just ~86 million virtual
// milliseconds consumed by packet airtime, device processing delays and
// outage windows, and completes in real milliseconds, deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace zc {

/// Virtual time in microseconds since simulation start.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/// Formats a SimTime as "1h02m03.004s" for logs and bench output.
std::string format_sim_time(SimTime t);

/// A monotonically advancing virtual clock with an event queue.
///
/// Components schedule callbacks at absolute or relative virtual times;
/// `run_until` / `run_for` drain the queue in timestamp order. Events with
/// equal timestamps fire in scheduling order (stable), which keeps whole
/// campaigns reproducible.
class EventScheduler {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (clamped to now).
  void schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` to run `delay` after the current time.
  void schedule_after(SimTime delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Runs events until the queue is empty or virtual time would pass
  /// `deadline`. Time advances to `deadline` even if the queue drains early.
  void run_until(SimTime deadline);

  /// Convenience: run for a relative duration.
  void run_for(SimTime duration) { run_until(now_ + duration); }

  /// Runs every queued event regardless of timestamp.
  void run_all();

  /// Advances time with no event processing (used by drivers that poll).
  void advance(SimTime delta) { run_until(now_ + delta); }

  std::size_t pending() const { return queue_.size(); }

  /// Returns the clock to its just-constructed state: time zero, empty
  /// queue, sequence counter rewound. Pending callbacks are destroyed
  /// unrun — callers (sim::Testbed::reset) must first tear down anything
  /// those closures point at, or reclaim it afterwards (the RF medium
  /// reclaims its in-flight delivery batches this way). Rewinding
  /// `next_seq_` matters for determinism: equal-timestamp events tie-break
  /// on it, so a reused scheduler must deal the same sequence numbers a
  /// fresh one would.
  void reset() {
    now_ = 0;
    next_seq_ = 0;
    queue_ = {};
  }

 private:
  struct Item {
    SimTime when;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
};

}  // namespace zc
