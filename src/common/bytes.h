// Byte-buffer utilities shared by every ZCover module.
//
// Z-Wave frames are short (<= 64 bytes on air), so the library passes
// around `zc::Bytes` (a std::vector<uint8_t>) by value freely and uses
// std::span<const uint8_t> for read-only views.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace zc {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Renders `data` as lowercase hex, e.g. {0xCB, 0x95} -> "cb95".
std::string to_hex(ByteView data);

/// Renders `data` as spaced uppercase hex pairs, e.g. "0xCB 0x95" style used
/// by the paper's packet dissection stage (Fig. 4).
std::string to_hex_spaced(ByteView data);

/// Parses a hex string ("cb95a34a", "CB 95 A3 4A", "0xCB,0x95") into bytes.
/// Returns std::nullopt on any non-hex content or odd digit count.
std::optional<Bytes> from_hex(std::string_view text);

/// Big-endian 32-bit read/write helpers (Z-Wave home IDs are 4-byte BE).
std::uint32_t read_be32(ByteView data, std::size_t offset);
void write_be32(Bytes& out, std::uint32_t value);

/// Big-endian 16-bit helpers (CRC-16 trailers).
std::uint16_t read_be16(ByteView data, std::size_t offset);
void write_be16(Bytes& out, std::uint16_t value);

/// Constant-time comparison, for MAC/checksum verification paths.
bool equal_constant_time(ByteView a, ByteView b);

/// Concatenates buffers (used when assembling encapsulated payloads).
Bytes concat(ByteView a, ByteView b);

}  // namespace zc
