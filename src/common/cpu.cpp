#include "common/cpu.h"

#include <atomic>
#include <cstdlib>

namespace zc::cpu {

namespace {

bool env_disabled(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && !(value[0] == '0' && value[1] == '\0');
}

struct EnvOverrides {
  bool simd_off;
  bool aesni_off;
};

const EnvOverrides& env_overrides() {
  static const EnvOverrides overrides{env_disabled("ZC_DISABLE_SIMD"),
                                      env_disabled("ZC_DISABLE_AESNI")};
  return overrides;
}

std::atomic<int> g_force_simd_off{0};
std::atomic<int> g_force_aesni_off{0};

}  // namespace

Features detect() {
#if defined(__x86_64__) || defined(__i386__)
  static const Features features = [] {
    Features f;
    f.sse2 = __builtin_cpu_supports("sse2");
    f.avx2 = __builtin_cpu_supports("avx2");
    f.aesni = __builtin_cpu_supports("aes");
    return f;
  }();
  return features;
#else
  return Features{};
#endif
}

bool simd_forced_portable() {
  return env_overrides().simd_off || g_force_simd_off.load(std::memory_order_relaxed) > 0;
}

Features enabled() {
  Features f = detect();
  const EnvOverrides& env = env_overrides();
  if (env.simd_off || g_force_simd_off.load(std::memory_order_relaxed) > 0) {
    f.sse2 = false;
    f.avx2 = false;
  }
  if (env.aesni_off || g_force_aesni_off.load(std::memory_order_relaxed) > 0) {
    f.aesni = false;
  }
  return f;
}

ScopedForcePortable::ScopedForcePortable(bool force_simd_off, bool force_aesni_off)
    : simd_off_(force_simd_off), aesni_off_(force_aesni_off) {
  if (simd_off_) g_force_simd_off.fetch_add(1, std::memory_order_relaxed);
  if (aesni_off_) g_force_aesni_off.fetch_add(1, std::memory_order_relaxed);
}

ScopedForcePortable::~ScopedForcePortable() {
  if (simd_off_) g_force_simd_off.fetch_sub(1, std::memory_order_relaxed);
  if (aesni_off_) g_force_aesni_off.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace zc::cpu
