// Build provenance stamps: which sources, which build type. Values are
// injected at configure time (root CMakeLists.txt) into version.cpp only,
// so touching the git head re-compiles one translation unit, not the tree.
//
// The stamps exist to correlate artifacts: daemon logs, BENCH_*.json
// provenance and findings journals all come from *some* build, and
// `zc version` (examples/zcover_cli.cpp) prints these next to the runtime
// dispatch state (active SIMD ISA, AES backend) so an operator can tell
// exactly what produced a number.
#pragma once

namespace zc {

/// Project version from CMake (`project(... VERSION)`), e.g. "1.0.0".
const char* build_version();

/// `git describe --always --dirty --tags` captured at configure time;
/// "unknown" when the source tree was not a git checkout (tarball builds).
const char* build_git_describe();

/// CMAKE_BUILD_TYPE of this binary (e.g. "Release", "RelWithDebInfo").
const char* build_type();

}  // namespace zc
