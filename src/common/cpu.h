// Host CPU feature detection and runtime dispatch control.
//
// The PHY symbol kernels (radio/phy_simd.h) and the AES backend
// (crypto/aes128.h) pick their fastest implementation at runtime from the
// features reported here. Two environment variables force the portable
// fallbacks for A/B testing and for running both code paths under
// sanitizers (read once, at first query):
//
//   ZC_DISABLE_SIMD=1    never use SSE2/AVX2 (or wide-word) symbol kernels
//   ZC_DISABLE_AESNI=1   never use hardware AES rounds
//
// Tests that need to exercise the portable paths in-process (the
// dispatch-equivalence suite) use ScopedForcePortable instead of the
// environment, which is cached.
#pragma once

namespace zc::cpu {

struct Features {
  bool sse2 = false;   // x86-64 baseline, but reported honestly
  bool avx2 = false;
  bool aesni = false;  // AES-NI (x86) hardware rounds
};

/// Raw features the host advertises (CPUID on x86; all-false elsewhere).
/// Never affected by environment or test overrides.
Features detect();

/// Features the dispatchers may actually use: detect() minus the
/// ZC_DISABLE_* environment overrides minus any live ScopedForcePortable.
Features enabled();

/// True when ZC_DISABLE_SIMD or a live ScopedForcePortable forces the
/// symbol kernels all the way down to the scalar reference loop (as opposed
/// to merely lacking vector ISA, where the wide-word fallback still runs).
bool simd_forced_portable();

/// RAII test hook: while alive, enabled() reports no SIMD and/or no AES-NI,
/// so freshly-constructed ciphers and kernel calls take the portable path.
/// Counts nest; not thread-safe against concurrent dispatch (test-only).
class ScopedForcePortable {
 public:
  explicit ScopedForcePortable(bool force_simd_off = true, bool force_aesni_off = true);
  ~ScopedForcePortable();

  ScopedForcePortable(const ScopedForcePortable&) = delete;
  ScopedForcePortable& operator=(const ScopedForcePortable&) = delete;

 private:
  bool simd_off_;
  bool aesni_off_;
};

}  // namespace zc::cpu
