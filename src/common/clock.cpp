#include "common/clock.h"

#include <cstdio>

namespace zc {

std::string format_sim_time(SimTime t) {
  const std::uint64_t hours = t / kHour;
  const std::uint64_t minutes = (t % kHour) / kMinute;
  const std::uint64_t seconds = (t % kMinute) / kSecond;
  const std::uint64_t millis = (t % kSecond) / kMillisecond;
  char buf[48];
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%lluh%02llum%02llu.%03llus",
                  static_cast<unsigned long long>(hours),
                  static_cast<unsigned long long>(minutes),
                  static_cast<unsigned long long>(seconds),
                  static_cast<unsigned long long>(millis));
  } else if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%llum%02llu.%03llus",
                  static_cast<unsigned long long>(minutes),
                  static_cast<unsigned long long>(seconds),
                  static_cast<unsigned long long>(millis));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu.%03llus",
                  static_cast<unsigned long long>(seconds),
                  static_cast<unsigned long long>(millis));
  }
  return buf;
}

void EventScheduler::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Item{when, next_seq_++, std::move(fn)});
}

void EventScheduler::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // Copy out before pop: the callback may schedule new events.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.when;
    item.fn();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventScheduler::run_all() {
  while (!queue_.empty()) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.when;
    item.fn();
  }
}

}  // namespace zc
