// Deterministic random number generation.
//
// Every stochastic decision in ZCover (mutation choices, radio noise, loss)
// flows from a single seed so that campaigns replay bit-identically — the
// property the paper relies on when re-validating bug-inducing packets from
// the log file (Algorithm 1, line 16).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace zc {

/// xoshiro256** seeded via SplitMix64. Not cryptographic; the crypto module
/// has its own DRBG for S2 nonces.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedC0DE2C04E4ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next_u64();
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }
  std::uint8_t next_byte() { return static_cast<std::uint8_t>(next_u64() >> 56); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[static_cast<std::size_t>(uniform(0, items.size() - 1))];
  }

  /// Fills `n` random bytes.
  Bytes bytes(std::size_t n);

  /// Appends `n` random bytes to `out` — the same draw sequence as
  /// `bytes(n)`, without the fresh buffer (mutation hot path).
  void append_bytes(Bytes& out, std::size_t n);

  /// Derives an independent child generator (for per-device noise streams).
  Rng fork();

  /// Raw generator state, for checkpoint/resume: a campaign snapshot stores
  /// these four words so a resumed run continues the exact random sequence
  /// instead of replaying it from the seed.
  std::array<std::uint64_t, 4> state() const;
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace zc
