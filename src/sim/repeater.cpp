#include "sim/repeater.h"

namespace zc::sim {

namespace {
constexpr SimTime kRelayDelay = 2 * kMillisecond;
}

Repeater::Repeater(radio::RfMedium& medium, EventScheduler& scheduler, zwave::HomeId home,
                   zwave::NodeId node, double x_meters, double y_meters)
    : scheduler_(scheduler),
      // Mains-powered: transmits at full power (4 dBm), like real repeaters.
      endpoint_(medium, radio::RadioConfig{"repeater-" + std::to_string(node),
                                           zwave::RfRegion::kUs908, x_meters, y_meters, 4.0}),
      home_(home),
      node_(node) {
  endpoint_.set_frame_handler(
      [this](const zwave::MacFrame& frame, double /*rssi*/) { on_frame(frame); });
}

void Repeater::on_frame(const zwave::MacFrame& frame) {
  if (frame.home_id != home_ || !frame.routed) return;
  const auto routed = zwave::split_routed_payload(frame.payload);
  if (!routed.ok()) return;
  const auto& route = routed.value().route;
  if (route.complete()) return;  // destination's business, not ours
  if (route.repeaters[route.hop_index] != node_) return;  // another hop's turn

  // Advance the hop index and retransmit the otherwise-identical frame.
  zwave::RouteHeader advanced = route;
  advanced.hop_index = static_cast<std::uint8_t>(route.hop_index + 1);
  zwave::MacFrame relay = frame;
  relay.payload = advanced.encode();
  relay.payload.insert(relay.payload.end(), routed.value().app_payload.begin(),
                       routed.value().app_payload.end());
  ++relayed_;
  scheduler_.schedule_after(kRelayDelay, [this, relay] { endpoint_.send(relay); });
}

}  // namespace zc::sim
