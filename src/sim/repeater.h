// Mains-powered repeater node: relays routed frames hop by hop, extending
// the mesh beyond direct RF range (the reason a Z-Wave home has no dead
// corners — and the reason an attacker's routed injection can reach a hub
// their radio cannot).
#pragma once

#include "radio/endpoint.h"
#include "zwave/routing.h"

namespace zc::sim {

class Repeater {
 public:
  Repeater(radio::RfMedium& medium, EventScheduler& scheduler, zwave::HomeId home,
           zwave::NodeId node, double x_meters, double y_meters);

  zwave::NodeId node_id() const { return node_; }
  std::uint64_t frames_relayed() const { return relayed_; }

 private:
  void on_frame(const zwave::MacFrame& frame);

  EventScheduler& scheduler_;
  radio::MacEndpoint endpoint_;
  zwave::HomeId home_;
  zwave::NodeId node_;
  std::uint64_t relayed_ = 0;
};

}  // namespace zc::sim
