// Host-side software models.
//
// Several of the paper's bugs live outside the RF chipset: #05 kills the
// SmartThings companion app (hub controllers D6/D7), #06 crashes the
// Z-Wave PC Controller program, and #13 wedges it permanently (USB
// controllers D1-D5). These are small state machines observable by the
// campaign's operator oracle, the way the researchers watched the real
// program/app during fuzzing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace zc::sim {

/// Companion software driven through the controller's host interface.
class HostSoftware {
 public:
  enum class State { kRunning, kCrashed, kDenialOfService };

  HostSoftware(std::string name, EventScheduler& scheduler)
      : name_(std::move(name)), scheduler_(scheduler) {}

  const std::string& name() const { return name_; }
  State state() const { return state_; }
  bool responsive() const { return state_ == State::kRunning; }

  /// Records a crash (restartable: the paper notes the PC program "only
  /// functions normally if the attack stops" / after restart).
  void crash();

  /// Enters a persistent denial-of-service state.
  void denial_of_service();

  /// Operator restarts the program / reinstalls the app session.
  void restart();

  std::uint64_t crash_count() const { return crash_count_; }

  /// Event log: (virtual time, description) for reports.
  const std::vector<std::pair<SimTime, std::string>>& events() const { return events_; }

 private:
  void log_event(const std::string& what);

  std::string name_;
  EventScheduler& scheduler_;
  State state_ = State::kRunning;
  std::uint64_t crash_count_ = 0;
  std::vector<std::pair<SimTime, std::string>> events_;
};

}  // namespace zc::sim
