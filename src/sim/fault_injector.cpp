#include "sim/fault_injector.h"

#include "common/log.h"
#include "zwave/frame.h"

namespace zc::sim {

namespace {

/// P1 sits at byte 5 of the MAC layout (H-ID(4) SRC(1) P1(1) ...); its low
/// nibble is the header type. Frames too short to carry P1 are treated as
/// data so malformed fuzz blobs still ride the generic loss path.
bool is_ack_frame(ByteView frame) {
  return frame.size() > 5 &&
         (frame[5] & 0x0F) == static_cast<std::uint8_t>(zwave::HeaderType::kAck);
}

}  // namespace

FaultInjector::FaultInjector(radio::RfMedium& medium, VirtualController& controller,
                             FaultPlan plan)
    : medium_(medium), controller_(controller), plan_(std::move(plan)), rng_(plan_.seed) {
  medium_.set_fault_tap(this);
  controller_.set_serial_tap([this](Bytes& bytes) { return serial_tap(bytes); });

  EventScheduler& scheduler = medium_.scheduler();
  for (const FaultPlan::Stall& stall : plan_.stalls) {
    scheduler.schedule_at(stall.at, [this, stall] {
      ++stats_.stalls_injected;
      ZC_DEBUG("fault: controller stall (%s)",
               stall.duration.has_value() ? format_sim_time(*stall.duration).c_str()
                                          : "until hard reboot");
      controller_.inject_stall(stall.duration);
    });
  }
  for (const FaultPlan::Reboot& reboot : plan_.reboots) {
    scheduler.schedule_at(reboot.at, [this, reboot] {
      ++stats_.reboots_injected;
      ZC_DEBUG("fault: spontaneous controller reboot");
      controller_.inject_reboot(reboot.boot_delay);
    });
  }
}

FaultInjector::~FaultInjector() {
  if (medium_.fault_tap() == this) medium_.set_fault_tap(nullptr);
  controller_.set_serial_tap(nullptr);
}

template <typename Window>
bool FaultInjector::window_active(const Window& window, SimTime now) {
  if (window.duration == 0 || now < window.start) return false;
  if (window.period == 0) return now < window.start + window.duration;
  return (now - window.start) % window.period < window.duration;
}

bool FaultInjector::drop_transmission(ByteView frame) {
  const SimTime now = medium_.scheduler().now();
  const bool ack = is_ack_frame(frame);
  for (const FaultPlan::LossBurst& burst : plan_.loss_bursts) {
    if (!window_active(burst, now)) continue;
    if (burst.ack_only && !ack) continue;
    if (!rng_.chance(burst.drop_probability)) continue;
    ++stats_.transmissions_dropped;
    if (ack) ++stats_.acks_dropped;
    return true;
  }
  return false;
}

void FaultInjector::corrupt_bits(radio::BitStream& bits) {
  const SimTime now = medium_.scheduler().now();
  double rate = 0.0;
  for (const FaultPlan::NoiseBurst& burst : plan_.noise_bursts) {
    if (window_active(burst, now)) rate += burst.bit_flip_rate;
  }
  if (rate <= 0.0) return;
  std::uint64_t flipped = 0;
  for (auto& bit : bits) {
    if (rng_.chance(rate)) {
      bit ^= 1;
      ++flipped;
    }
  }
  if (flipped > 0) {
    ++stats_.deliveries_corrupted;
    stats_.bits_flipped += flipped;
  }
}

bool FaultInjector::serial_tap(Bytes& frame_bytes) {
  const SimTime now = medium_.scheduler().now();
  for (const FaultPlan::SerialDesync& window : plan_.serial_desyncs) {
    if (!window_active(window, now)) continue;
    if (rng_.chance(window.drop_probability)) {
      ++stats_.serial_frames_dropped;
      return false;
    }
    if (rng_.chance(window.stray_byte_probability)) {
      // A non-SOF garbage byte ahead of the frame: the host program's
      // parser must resynchronize on the next SOF without misfiring its
      // malformed-frame (bug #06) path.
      frame_bytes.insert(frame_bytes.begin(), std::uint8_t{0xA5});
      ++stats_.serial_strays_injected;
    }
  }
  return true;
}

}  // namespace zc::sim
