// Handler-level coverage instrumentation for the simulated firmware.
//
// The real controllers are black boxes; their simulated stand-ins are not.
// This map exploits that: every application-layer dispatch outcome and
// every per-command handler branch in sim/controller.cpp (and the slave
// devices) records a (CMDCL, CMD, branch) edge into a compact fixed-size
// array of hit counters — the signal core/covfuzz.h turns into corpus
// admission decisions, the way CovFUZZ and ThreadFuzzer bolt coverage
// feedback onto otherwise black-box protocol stacks.
//
// The recording hook copies the obs layer's ambient-recorder design move
// exactly (see obs/recorder.h): a thread-local CoverageMap pointer
// installed with RAII (`ScopedCoverage`) for precisely the test window
// being measured. With no map installed every hook collapses to one
// thread-local load and a branch, which is what keeps the always-compiled
// instrumentation under the ≤3% budget bench_covfuzz_overhead enforces.
// Per-shard isolation in a pool comes for free, as with telemetry: each
// worker thread installs the map of the shard it is currently running.
//
// Determinism contract: slot indexing is a pure function of
// (cc, cmd, branch); merge() is element-wise addition, performed by the
// parallel layer in ascending shard order, so merged maps (and their
// serialized form) are byte-identical at any --jobs count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace zc::sim::cov {

/// Branch identifiers for the instrumented dispatch/handler sites. One
/// byte, hashed together with (cc, cmd) into the map — two sites with the
/// same id on different commands still occupy distinct edges.
enum Branch : std::uint8_t {
  kDispatchUnrecognized = 0,  // class not in the device profile
  kDispatchRejected = 1,      // APPLICATION_STATUS rejection path
  kDispatchSupporting = 2,    // supporting-direction silent consume
  kDispatchAccepted = 3,      // command reached its handler
  kVulnTriggered = 4,         // a seeded vulnerability fired
  kHandlerCase = 5,           // per-command switch case inside a handler
  kHandlerDefault = 6,        // handler fell through to its default arm
  kDecapAccepted = 7,         // S0/S2/CRC16 encapsulation decoded clean
  kDecapRejected = 8,         // auth/CRC failure on an encapsulated frame
  kSlaveHandled = 9,          // a slave device's application handler ran
};

/// Compact fixed-size coverage map: kSlots saturating 32-bit hit counters
/// indexed by an AFL-style hash of (cc, cmd, branch). Collisions merge
/// edges (acceptable, deterministic); the map never grows or allocates.
class CoverageMap {
 public:
  static constexpr std::size_t kSlots = 4096;  // 16 KiB per shard

  /// Pure function of the edge — identical on every shard and platform.
  static constexpr std::size_t slot_index(std::uint8_t cc, std::uint8_t cmd,
                                          std::uint8_t branch) {
    // FNV-1a over the three bytes, folded into the table.
    std::uint32_t h = 2166136261u;
    h = (h ^ cc) * 16777619u;
    h = (h ^ cmd) * 16777619u;
    h = (h ^ branch) * 16777619u;
    return static_cast<std::size_t>(h & (kSlots - 1));
  }

  void record(std::uint8_t cc, std::uint8_t cmd, std::uint8_t branch) {
    std::uint32_t& slot = slots_[slot_index(cc, cmd, branch)];
    if (slot != UINT32_MAX) ++slot;  // saturate, never wrap
  }

  std::uint32_t hits(std::size_t slot) const { return slots_[slot]; }

  /// Distinct edges observed (nonzero slots).
  std::size_t edges_hit() const;
  std::uint64_t total_hits() const;
  bool empty() const { return edges_hit() == 0; }
  void clear() { slots_.fill(0); }

  /// Element-wise saturating addition. The parallel layer folds shard maps
  /// in ascending shard order; since addition here is commutative the
  /// order is a discipline, not a requirement — kept so every merged
  /// artifact in the report pipeline follows one rule.
  void merge(const CoverageMap& other);

  /// Folds this (per-test scratch) map into `accumulated` and returns the
  /// number of edges that were new — nonzero here, zero there before the
  /// fold. The covfuzz admission rule in one call: a payload is
  /// interesting iff its fold returns > 0.
  std::size_t fold_into(CoverageMap& accumulated) const;

  bool operator==(const CoverageMap& other) const { return slots_ == other.slots_; }

  /// Canonical serialization: `slot:hits` pairs for nonzero slots,
  /// ascending slot order, one per line. Byte-identical for equal maps.
  std::string to_text() const;

 private:
  std::array<std::uint32_t, kSlots> slots_{};
};

namespace detail {
inline thread_local CoverageMap* g_current = nullptr;
}

/// The map installed on this thread, or nullptr (instrumentation off).
inline CoverageMap* current_map() { return detail::g_current; }

/// RAII installation of a map as this thread's ambient coverage sink.
/// Nests (the previous map is restored on destruction) so covfuzz can
/// wrap a per-test scratch map inside a campaign-lifetime map.
class ScopedCoverage {
 public:
  explicit ScopedCoverage(CoverageMap& map) : previous_(detail::g_current) {
    detail::g_current = &map;
  }
  ~ScopedCoverage() { detail::g_current = previous_; }
  ScopedCoverage(const ScopedCoverage&) = delete;
  ScopedCoverage& operator=(const ScopedCoverage&) = delete;

 private:
  CoverageMap* previous_;
};

/// Hot-path hook: one thread-local load + branch when no map is installed.
inline void record(std::uint8_t cc, std::uint8_t cmd, std::uint8_t branch) {
  if (CoverageMap* map = current_map()) map->record(cc, cmd, branch);
}

}  // namespace zc::sim::cov
