#include "sim/testbed.h"

#include <cassert>

#include "crypto/x25519.h"
#include "obs/recorder.h"
#include "zwave/s2_inclusion.h"

namespace zc::sim {

Testbed::Testbed(TestbedConfig config) : config_(config), rng_(config.seed) {
  medium_ = std::make_unique<radio::RfMedium>(scheduler_, rng_.fork(), config_.channel);
  build();
}

void Testbed::reset(TestbedConfig config) {
  // Devices go first, in reverse construction order, so their transceivers
  // detach from the medium and the injector's taps disarm before anything
  // is rebuilt. The host program holds a reference into the controller, so
  // it dies before the controller does.
  fault_injector_.reset();
  sensor_.reset();
  switch_.reset();
  lock_.reset();
  host_program_.reset();
  controller_.reset();

  config_ = std::move(config);
  // Queue entries may capture the devices just destroyed; drop them unrun,
  // then let the medium reclaim the delivery batches those entries held.
  scheduler_.reset();
  rng_.reseed(config_.seed);
  // Same draw order as construction: the medium's noise stream is the
  // first fork off the testbed RNG.
  medium_->recycle(rng_.fork(), config_.channel);
  build();
}

void Testbed::build() {
  controller_ = std::make_unique<VirtualController>(*medium_, scheduler_,
                                                    config_.controller_model,
                                                    /*x=*/0.0, /*y=*/0.0, rng_.fork());
  const zwave::HomeId home = controller_->home_id();

  // USB sticks are driven by the Z-Wave PC Controller program over the
  // emulated serial link; hubs talk to the cloud/app instead.
  if (!controller_->profile().hub) {
    host_program_ = std::make_unique<HostProgram>(controller_->host(), scheduler_);
    controller_->attach_host_program(host_program_.get());
  }

  if (config_.include_slaves) {
    lock_ = std::make_unique<DoorLock>(*medium_, scheduler_, home, kLockNodeId, 4.0, 3.0);
    switch_ = std::make_unique<SmartSwitch>(*medium_, scheduler_, home, kSwitchNodeId, 6.0, 2.0);

    controller_->adopt_node(NodeRecord{kLockNodeId, zwave::kBasicClassSlave, true,
                                       zwave::SecurityLevel::kS2, 3600, "Smart Lock"});
    controller_->adopt_node(NodeRecord{kSwitchNodeId, zwave::kBasicClassRoutingSlave, true,
                                       zwave::SecurityLevel::kNone, 0, "Smart Switch"});

    // Real S2 inclusion: the full KEX exchange (KEX_GET/REPORT/SET, public
    // key reports, ECDH derivation, key confirmation) runs between the two
    // parties at join time.
    zwave::S2InclusionMachine including(zwave::S2InclusionMachine::Role::kIncluding,
                                        crypto::make_x25519_key(rng_.bytes(32)));
    zwave::S2InclusionMachine joining(zwave::S2InclusionMachine::Role::kJoining,
                                      crypto::make_x25519_key(rng_.bytes(32)));
    zwave::InclusionStep step = including.start();
    bool from_including = true;
    while (step.send.has_value() && step.failure == zwave::KexFail::kNone) {
      zwave::S2InclusionMachine& receiver = from_including ? joining : including;
      step = receiver.on_message(*step.send);
      from_including = !from_including;
    }
    assert(including.established().has_value() && joining.established().has_value());
    controller_->install_s2_session(kLockNodeId, including.established()->keys,
                                    including.established()->span_seed);
    lock_->install_s2_session(joining.established()->keys,
                              joining.established()->span_seed);

    lock_->start_reporting(config_.slave_report_interval);
    switch_->start_reporting(config_.slave_report_interval + 7 * kSecond);

    if (config_.include_s0_sensor) {
      sensor_ = std::make_unique<S0Sensor>(*medium_, scheduler_, home, kS0SensorNodeId,
                                           3.0, 6.0);
      controller_->adopt_node(NodeRecord{kS0SensorNodeId, zwave::kBasicClassSlave, false,
                                         zwave::SecurityLevel::kS0, 600, "Motion Sensor"});
      crypto::AesKey s0_key{};
      const Bytes key_bytes = rng_.bytes(16);
      std::copy(key_bytes.begin(), key_bytes.end(), s0_key.begin());
      controller_->install_s0_session(kS0SensorNodeId, s0_key);
      sensor_->install_s0_key(s0_key);
      sensor_->start_reporting(config_.slave_report_interval + 11 * kSecond);
    }
  }
}

void Testbed::restore_network() {
  obs::count(obs::MetricId::kSimNetworkRestores);
  auto& table = controller_->node_table();
  table.clear();
  table.upsert(NodeRecord{zwave::kControllerNodeId, zwave::kBasicClassStaticController, true,
                          zwave::SecurityLevel::kS2, 0, "Primary Controller"});
  if (config_.include_slaves) {
    table.upsert(NodeRecord{kLockNodeId, zwave::kBasicClassSlave, true,
                            zwave::SecurityLevel::kS2, 3600, "Smart Lock"});
    table.upsert(NodeRecord{kSwitchNodeId, zwave::kBasicClassRoutingSlave, true,
                            zwave::SecurityLevel::kNone, 0, "Smart Switch"});
    if (config_.include_s0_sensor) {
      table.upsert(NodeRecord{kS0SensorNodeId, zwave::kBasicClassSlave, false,
                              zwave::SecurityLevel::kS0, 600, "Motion Sensor"});
    }
  }
}

FaultInjector& Testbed::arm_faults(FaultPlan plan) {
  fault_injector_.reset();  // detach the old taps before installing new ones
  fault_injector_ = std::make_unique<FaultInjector>(*medium_, *controller_, std::move(plan));
  return *fault_injector_;
}

radio::RadioConfig Testbed::attacker_radio_config(const std::string& label) const {
  return radio::RadioConfig{label, zwave::RfRegion::kUs908, config_.attacker_distance_m, 0.0,
                            /*tx_power_dbm=*/4.0};
}

}  // namespace zc::sim
