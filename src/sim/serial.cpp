#include "sim/serial.h"

#include <algorithm>

namespace zc::sim {

std::uint8_t serial_checksum(ByteView len_through_data) {
  std::uint8_t cs = 0xFF;
  for (std::uint8_t b : len_through_data) cs ^= b;
  return cs;
}

Bytes SerialFrame::encode() const {
  Bytes out;
  out.reserve(5 + data.size());
  out.push_back(kSerialSof);
  // LEN counts TYPE + FUNC + DATA + CHECKSUM.
  out.push_back(static_cast<std::uint8_t>(3 + data.size()));
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(func);
  out.insert(out.end(), data.begin(), data.end());
  out.push_back(serial_checksum(ByteView(out.data() + 1, out.size() - 1)));
  return out;
}

Bytes SerialFrame::encode_corrupted() const {
  Bytes out = encode();
  out.back() ^= 0x5A;
  return out;
}

Result<SerialFrame> decode_serial_frame(ByteView raw, std::size_t* consumed) {
  if (raw.empty()) return Error{Errc::kTruncated, "empty serial buffer"};
  if (raw[0] != kSerialSof) return Error{Errc::kBadField, "missing serial SOF"};
  if (raw.size() < 2) return Error{Errc::kTruncated, "missing LEN byte"};
  const std::uint8_t len = raw[1];
  if (len < 3) return Error{Errc::kBadLength, "serial LEN below minimum"};
  const std::size_t total = 2 + len;  // SOF + LEN + (len bytes)
  if (raw.size() < total) return Error{Errc::kTruncated, "incomplete serial frame"};

  const ByteView covered(raw.data() + 1, static_cast<std::size_t>(len));  // LEN..DATA
  const std::uint8_t expected = serial_checksum(covered);
  if (expected != raw[total - 1]) return Error{Errc::kBadChecksum, "serial checksum mismatch"};

  SerialFrame frame;
  const std::uint8_t type_byte = raw[2];
  if (type_byte > 1) return Error{Errc::kBadField, "unknown serial frame type"};
  frame.type = static_cast<SerialType>(type_byte);
  frame.func = raw[3];
  frame.data.assign(raw.begin() + 4, raw.begin() + static_cast<std::ptrdiff_t>(total) - 1);
  if (consumed != nullptr) *consumed = total;
  return frame;
}

HostProgram::HostProgram(HostSoftware& state, EventScheduler& scheduler,
                         HostProgramConfig config)
    : state_(state), scheduler_(scheduler), config_(config) {}

void HostProgram::on_serial_bytes(ByteView bytes) {
  if (!state_.responsive()) {
    pending_.clear();  // crashed/wedged programs read nothing; OS drops bytes
    return;
  }
  pending_.insert(pending_.end(), bytes.begin(), bytes.end());

  while (!pending_.empty()) {
    // Resynchronize on SOF.
    const auto sof = std::find(pending_.begin(), pending_.end(), kSerialSof);
    if (sof != pending_.begin()) {
      ++resyncs_;
      resync_bytes_skipped_ += static_cast<std::uint64_t>(sof - pending_.begin());
      pending_.erase(pending_.begin(), sof);
      continue;
    }
    if (pending_.empty()) break;

    std::size_t consumed = 0;
    const auto frame = decode_serial_frame(pending_, &consumed);
    if (!frame.ok()) {
      if (frame.error().code == Errc::kTruncated) break;  // wait for more bytes
      // Malformed frame: the real program's parser mishandles this — the
      // implementation flaw behind bug #06.
      ++frames_bad_;
      pending_.clear();
      state_.crash();
      return;
    }
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(consumed));
    ++frames_ok_;
    register_callback();
    if (!state_.responsive()) return;  // flood tripped mid-stream
  }
}

void HostProgram::register_callback() {
  const SimTime now = scheduler_.now();
  recent_callbacks_.push_back(now);
  const SimTime horizon = now > config_.flood_window ? now - config_.flood_window : 0;
  recent_callbacks_.erase(
      std::remove_if(recent_callbacks_.begin(), recent_callbacks_.end(),
                     [&](SimTime t) { return t < horizon; }),
      recent_callbacks_.end());
  if (recent_callbacks_.size() >= config_.flood_threshold) {
    // Event-loop starvation: the UI stops responding until restarted —
    // bug #13's persistent denial of service.
    state_.denial_of_service();
  }
}

}  // namespace zc::sim
