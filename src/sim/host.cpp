#include "sim/host.h"

#include "common/log.h"

namespace zc::sim {

void HostSoftware::crash() {
  if (state_ == State::kRunning) {
    state_ = State::kCrashed;
    ++crash_count_;
    log_event("crashed");
  }
}

void HostSoftware::denial_of_service() {
  if (state_ != State::kDenialOfService) {
    state_ = State::kDenialOfService;
    log_event("denial of service");
  }
}

void HostSoftware::restart() {
  if (state_ != State::kRunning) {
    state_ = State::kRunning;
    log_event("restarted by operator");
  }
}

void HostSoftware::log_event(const std::string& what) {
  events_.emplace_back(scheduler_.now(), what);
  ZC_DEBUG("host '%s': %s at %s", name_.c_str(), what.c_str(),
           format_sim_time(scheduler_.now()).c_str());
}

}  // namespace zc::sim
