#include "sim/coverage.h"

#include <cinttypes>
#include <cstdio>

namespace zc::sim::cov {

std::size_t CoverageMap::edges_hit() const {
  std::size_t edges = 0;
  for (std::uint32_t slot : slots_) edges += slot != 0 ? 1 : 0;
  return edges;
}

std::uint64_t CoverageMap::total_hits() const {
  std::uint64_t total = 0;
  for (std::uint32_t slot : slots_) total += slot;
  return total;
}

void CoverageMap::merge(const CoverageMap& other) {
  for (std::size_t i = 0; i < kSlots; ++i) {
    const std::uint64_t sum =
        static_cast<std::uint64_t>(slots_[i]) + other.slots_[i];
    slots_[i] = sum > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(sum);
  }
}

std::size_t CoverageMap::fold_into(CoverageMap& accumulated) const {
  std::size_t new_edges = 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    if (slots_[i] == 0) continue;
    if (accumulated.slots_[i] == 0) ++new_edges;
    const std::uint64_t sum =
        static_cast<std::uint64_t>(accumulated.slots_[i]) + slots_[i];
    accumulated.slots_[i] =
        sum > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(sum);
  }
  return new_edges;
}

std::string CoverageMap::to_text() const {
  std::string out;
  char line[32];
  for (std::size_t i = 0; i < kSlots; ++i) {
    if (slots_[i] == 0) continue;
    std::snprintf(line, sizeof(line), "%zu:%" PRIu32 "\n", i, slots_[i]);
    out += line;
  }
  return out;
}

}  // namespace zc::sim::cov
