#include "sim/slave.h"

#include "sim/coverage.h"
#include "zwave/multicast.h"

namespace zc::sim {

namespace {
constexpr SimTime kAckTurnaround = 1 * kMillisecond;
}

SlaveDevice::SlaveDevice(radio::RfMedium& medium, EventScheduler& scheduler, DeviceModel model,
                         zwave::HomeId home, zwave::NodeId node, double x_meters,
                         double y_meters)
    : scheduler_(scheduler),
      endpoint_(medium, radio::RadioConfig{std::string("slave-") + device_model_name(model),
                                           zwave::RfRegion::kUs908, x_meters, y_meters, 0.0}),
      model_(model),
      home_(home),
      node_(node) {
  endpoint_.set_frame_handler(
      [this](const zwave::MacFrame& frame, double /*rssi*/) { on_frame(frame); });
}

void SlaveDevice::start_reporting(SimTime interval) { report_tick(interval); }

void SlaveDevice::report_tick(SimTime interval) {
  scheduler_.schedule_after(interval, [this, interval] {
    send_app(zwave::kControllerNodeId, make_report());
    ++reports_sent_;
    report_tick(interval);
  });
}

void SlaveDevice::send_app(zwave::NodeId dst, const zwave::AppPayload& payload) {
  const zwave::MacFrame frame =
      zwave::make_singlecast(home_, node_, dst, payload, tx_sequence_++ & 0x0F, true);
  endpoint_.send(frame);
}

void SlaveDevice::on_frame(const zwave::MacFrame& frame) {
  if (frame.home_id != home_) return;
  if (frame.dst != node_ && frame.dst != zwave::kBroadcastNodeId) return;
  if (frame.header == zwave::HeaderType::kAck) return;

  if (frame.header == zwave::HeaderType::kMulticast) {
    // Mask-addressed, never acknowledged.
    const auto multicast = zwave::split_multicast_payload(frame.payload);
    if (!multicast.ok() || !multicast.value().addresses(node_)) return;
    const auto app = zwave::decode_app_payload(multicast.value().app_payload);
    if (app.ok()) on_app_payload(app.value(), frame.src);
    return;
  }

  if (frame.ack_requested) {
    const zwave::MacFrame ack = zwave::make_ack(frame, node_);
    scheduler_.schedule_after(kAckTurnaround, [this, ack] { endpoint_.send(ack); });
  }
  const auto app = zwave::decode_app_payload(frame.payload);
  if (app.ok()) on_app_payload(app.value(), frame.src);
}

DoorLock::DoorLock(radio::RfMedium& medium, EventScheduler& scheduler, zwave::HomeId home,
                   zwave::NodeId node, double x, double y)
    : SlaveDevice(medium, scheduler, DeviceModel::kD8_SchlageLock, home, node, x, y),
      home_for_s2_(home) {}

void DoorLock::install_s2_session(const crypto::S2Keys& keys, ByteView span_seed32) {
  s2_.emplace(keys, span_seed32);
}

void DoorLock::on_app_payload(const zwave::AppPayload& app, zwave::NodeId src) {
  // The lock only accepts commands through its S2 channel — it is not the
  // vulnerable party in the paper's attack; the controller is.
  if (app.cmd_class != zwave::kSecurity2Class || app.command != zwave::kS2MessageEncap) return;
  if (!s2_.has_value()) return;
  auto inner = s2_->decapsulate(app, home_for_s2_, src, node_id());
  if (!inner.ok()) {
    cov::record(app.cmd_class, app.command, cov::kDecapRejected);
    return;
  }
  const auto& payload = inner.value();
  if (payload.cmd_class == 0x62 && payload.command == 0x01 && !payload.params.empty()) {
    cov::record(payload.cmd_class, payload.command, cov::kSlaveHandled);
    locked_ = payload.params[0] == 0xFF;
  } else if (payload.cmd_class == 0x62 && payload.command == 0x02) {
    cov::record(payload.cmd_class, payload.command, cov::kSlaveHandled);
    zwave::AppPayload report;
    report.cmd_class = 0x62;
    report.command = 0x03;
    report.params = {static_cast<std::uint8_t>(locked_ ? 0xFF : 0x00), 0x00, 0x00, 0x00, 0x00};
    send_app(src, s2_->encapsulate(report, home_for_s2_, node_id(), src));
  }
}

zwave::AppPayload DoorLock::make_report() {
  zwave::AppPayload report;
  report.cmd_class = 0x80;  // BATTERY REPORT
  report.command = 0x03;
  report.params = {battery_};
  if (s2_.has_value()) {
    return s2_->encapsulate(report, home_for_s2_, node_id(), zwave::kControllerNodeId);
  }
  return report;
}

S0Sensor::S0Sensor(radio::RfMedium& medium, EventScheduler& scheduler, zwave::HomeId home,
                   zwave::NodeId node, double x, double y)
    : SlaveDevice(medium, scheduler, DeviceModel::kExtraS0Sensor, home, node, x, y),
      drbg_(Bytes(32, static_cast<std::uint8_t>(0x40 + node))) {}

void S0Sensor::install_s0_key(const crypto::AesKey& network_key) {
  s0_.emplace(network_key);
}

void S0Sensor::send_secure_report() {
  if (!s0_.has_value() || awaiting_nonce_) return;
  awaiting_nonce_ = true;
  zwave::AppPayload nonce_get;
  nonce_get.cmd_class = zwave::kSecurity0Class;
  nonce_get.command = zwave::kS0NonceGet;
  send_app(zwave::kControllerNodeId, nonce_get);
}

void S0Sensor::notify_awake() {
  zwave::AppPayload notification;
  notification.cmd_class = 0x84;
  notification.command = 0x07;  // WAKE_UP NOTIFICATION
  send_app(zwave::kControllerNodeId, notification);
}

void S0Sensor::on_app_payload(const zwave::AppPayload& app, zwave::NodeId src) {
  if (app.cmd_class != zwave::kSecurity0Class) return;
  if (app.command == zwave::kS0NonceReport && awaiting_nonce_ && s0_.has_value() &&
      app.params.size() == 8) {
    cov::record(app.cmd_class, app.command, cov::kSlaveHandled);
    awaiting_nonce_ = false;
    zwave::AppPayload report;
    report.cmd_class = 0x30;  // SENSOR_BINARY REPORT
    report.command = 0x03;
    report.params = {static_cast<std::uint8_t>(motion_ ? 0xFF : 0x00), 0x0C};
    const zwave::AppPayload outer =
        s0_->encapsulate(report, node_id(), src, app.params, drbg_);
    send_app(src, outer);
    ++secure_reports_;
    motion_ = !motion_;
  }
}

zwave::AppPayload S0Sensor::make_report() {
  // Periodic reporting kicks off the nonce handshake; the payload returned
  // here is only the fallback when no key is installed.
  send_secure_report();
  zwave::AppPayload heartbeat;
  heartbeat.cmd_class = 0x01;
  heartbeat.command = 0x01;  // NOP heartbeat when S0 is unavailable
  return heartbeat;
}

SmartSwitch::SmartSwitch(radio::RfMedium& medium, EventScheduler& scheduler, zwave::HomeId home,
                         zwave::NodeId node, double x, double y)
    : SlaveDevice(medium, scheduler, DeviceModel::kD9_GeSwitch, home, node, x, y) {}

void SmartSwitch::on_app_payload(const zwave::AppPayload& app, zwave::NodeId src) {
  if (app.cmd_class == 0x25 && app.command == 0x01 && !app.params.empty()) {
    cov::record(app.cmd_class, app.command, cov::kSlaveHandled);
    on_ = app.params[0] != 0x00;
  } else if (app.cmd_class == 0x25 && app.command == 0x02) {
    cov::record(app.cmd_class, app.command, cov::kSlaveHandled);
    zwave::AppPayload report;
    report.cmd_class = 0x25;
    report.command = 0x03;
    report.params = {static_cast<std::uint8_t>(on_ ? 0xFF : 0x00)};
    send_app(src, report);
  } else if (app.cmd_class == 0x20 && app.command == 0x01 && !app.params.empty()) {
    cov::record(app.cmd_class, app.command, cov::kSlaveHandled);
    on_ = app.params[0] != 0x00;
  }
}

zwave::AppPayload SmartSwitch::make_report() {
  zwave::AppPayload report;
  report.cmd_class = 0x25;  // SWITCH_BINARY REPORT (plaintext: legacy device)
  report.command = 0x03;
  report.params = {static_cast<std::uint8_t>(on_ ? 0xFF : 0x00)};
  return report;
}

}  // namespace zc::sim
