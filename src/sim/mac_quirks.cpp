#include "sim/mac_quirks.h"

#include <algorithm>

namespace zc::sim {

namespace {

std::vector<MacQuirkSpec> build_quirks() {
  using M = DeviceModel;
  std::vector<MacQuirkSpec> quirks;
  quirks.push_back({101, "routed header with garbage route descriptor", "ZWAVE-ONE-DAY-01",
                    10 * kSecond,
                    {M::kD1_ZoozZst10, M::kD2_SilabsUzb7, M::kD4_AeotecZw090}});
  quirks.push_back({102, "acknowledgment frame demanding an acknowledgment",
                    "ZWAVE-ONE-DAY-02", 8 * kSecond,
                    {M::kD2_SilabsUzb7, M::kD4_AeotecZw090}});
  quirks.push_back({103, "multicast frame demanding a singlecast acknowledgment",
                    "ZWAVE-ONE-DAY-03", 12 * kSecond,
                    {M::kD2_SilabsUzb7, M::kD4_AeotecZw090}});
  quirks.push_back({104, "broadcast-addressed singlecast demanding ack",
                    "ZWAVE-ONE-DAY-04", 9 * kSecond, {M::kD4_AeotecZw090}});
  return quirks;
}

}  // namespace

bool MacQuirkSpec::affects(DeviceModel model) const {
  return std::find(affected.begin(), affected.end(), model) != affected.end();
}

bool MacQuirkSpec::matches(const zwave::MacFrame& frame) const {
  switch (quirk_id) {
    case 101:
      return frame.routed && !frame.payload.empty() && frame.payload[0] > 0xE0;
    case 102:
      return frame.header == zwave::HeaderType::kAck && frame.ack_requested;
    case 103:
      return frame.header == zwave::HeaderType::kMulticast && frame.ack_requested;
    case 104:
      return frame.header == zwave::HeaderType::kSinglecast &&
             frame.dst == zwave::kBroadcastNodeId && frame.ack_requested;
    default:
      return false;
  }
}

const std::vector<MacQuirkSpec>& mac_quirk_matrix() {
  static const std::vector<MacQuirkSpec> quirks = build_quirks();
  return quirks;
}

}  // namespace zc::sim
