// Virtual Z-Wave controller firmware.
//
// Implements a believable application layer for the seven testbed
// controllers: MAC ack behavior, NIF fingerprinting surface, S0/S2
// decapsulation with real crypto, a dispatch table of genuinely handled
// (CMDCL, CMD) pairs, a node table in emulated NVM, host-software side
// effects — and the seeded Table III vulnerability matrix, reachable only
// through *unencapsulated* payloads exactly as the paper describes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "radio/endpoint.h"
#include "sim/host.h"
#include "sim/node_table.h"
#include "sim/profile.h"
#include "sim/serial.h"
#include "sim/vulnerability.h"
#include "zwave/command_class.h"
#include "zwave/nif.h"
#include "zwave/security.h"
#include "zwave/transport_service.h"

namespace zc::sim {

/// Record of one triggered vulnerability (the controller-side ground truth
/// that benchmarks compare the fuzzer's findings against).
struct TriggeredVuln {
  int bug_id = 0;
  SimTime at = 0;
  Bytes payload;  // the application payload that fired it
};

class VirtualController {
 public:
  VirtualController(radio::RfMedium& medium, EventScheduler& scheduler, DeviceModel model,
                    double x_meters, double y_meters, Rng rng);

  // --- identity -----------------------------------------------------------
  DeviceModel model() const { return model_; }
  const ControllerProfile& profile() const { return profile_; }
  zwave::HomeId home_id() const { return profile_.home_id; }
  zwave::NodeId node_id() const { return zwave::kControllerNodeId; }

  // --- network composition (testbed setup) --------------------------------
  /// Registers a slave in the node table (normal inclusion result).
  void adopt_node(NodeRecord record);

  /// Installs an established S2 channel with `peer`.
  void install_s2_session(zwave::NodeId peer, const crypto::S2Keys& keys, ByteView span_seed32);

  /// Installs an S0 channel with `peer` under the given network key.
  void install_s0_session(zwave::NodeId peer, const crypto::AesKey& network_key);

  NodeTable& node_table() { return table_; }
  const NodeTable& node_table() const { return table_; }

  // --- host software -------------------------------------------------------
  /// The companion software: SmartThings-style app for hubs, the Z-Wave PC
  /// Controller program for USB sticks.
  HostSoftware& host() { return *host_; }
  const HostSoftware& host() const { return *host_; }

  /// Connects the PC-controller program model over the emulated serial
  /// link (USB models). When attached, host-side bug effects travel as
  /// real serial frames: #06 becomes a malformed callback, #13 a callback
  /// flood; normal application payloads are forwarded as
  /// APPLICATION_COMMAND_HANDLER callbacks.
  void attach_host_program(HostProgram* program) { host_program_ = program; }
  HostProgram* host_program() { return host_program_; }

  /// Host-to-chip half of the Serial API: the PC tool's requests
  /// (SEND_DATA, GET_NODE_PROTOCOL_INFO, REQUEST_NODE_INFO). Returns the
  /// synchronous response frame the chip puts on the wire.
  SerialFrame handle_host_request(const SerialFrame& request);

  /// Commands queued for a sleeping (non-listening) node, awaiting its
  /// next WAKE_UP NOTIFICATION.
  std::size_t queued_for(zwave::NodeId node) const;

  // --- automations ----------------------------------------------------------
  /// "When <trigger node> reports <class/command[/param0]>, send <action>
  /// to <action node>" — the hub's automation role (§II-A2). Actions only
  /// fire while the action node is still in the table and, for S2 nodes,
  /// ride the secure session: memory tampering visibly breaks routines.
  struct AutomationRule {
    zwave::NodeId trigger_node = 0;
    zwave::CommandClassId trigger_class = 0;
    zwave::CommandId trigger_command = 0;
    std::optional<std::uint8_t> trigger_value;  // matches params[0] when set
    zwave::NodeId action_node = 0;
    zwave::AppPayload action;
  };
  void add_automation(AutomationRule rule);
  std::uint64_t automations_fired() const { return automations_fired_; }
  std::uint64_t automations_blocked() const { return automations_blocked_; }

  /// Hubs: whether the homeowner can currently control devices through the
  /// cloud/app path (degraded by app DoS and wake-up bookkeeping damage).
  bool cloud_control_available() const;

  // --- status --------------------------------------------------------------
  /// False while a service-interruption/busy-scan outage is in effect.
  bool responsive() const;

  /// Remaining outage (0 when responsive; SimTime max for infinite).
  SimTime outage_remaining() const;

  /// Operator-side manual recovery: ends infinite outages and restarts the
  /// host software. Deliberately does NOT repair the node table — real
  /// memory tampering persists until devices are re-included.
  void operator_recover();

  /// Host-side Serial API soft reset (FUNC_ID_SERIAL_API_SOFT_RESET): the
  /// firmware restarts, clearing a wedged main loop and volatile MAC state.
  /// Returns false for infinite outages — those model NVM-level damage
  /// that survives a firmware restart and needs a power cycle
  /// (operator_recover). Used by the campaign's recovery watchdog.
  bool soft_reset();

  // --- fault injection ------------------------------------------------------
  /// Wedges the chip as if the firmware hung: unresponsive for `duration`,
  /// or until a hard reboot when nullopt (see fault_injector.h).
  void inject_stall(OutageDuration duration);

  /// Spontaneous reboot (brownout): the chip restarts after `boot_delay`,
  /// losing volatile MAC state (retransmit filter, sequence counters).
  void inject_reboot(SimTime boot_delay = 250 * kMillisecond);

  /// Serial-link fault tap, applied to every chip-to-host frame at emission
  /// time. Return false to drop the frame (link glitch); the tap may also
  /// mutate the bytes in place. Installed by the fault injector.
  using SerialTap = std::function<bool(Bytes& frame_bytes)>;
  void set_serial_tap(SerialTap tap) { serial_tap_ = std::move(tap); }

  // --- statistics ----------------------------------------------------------
  struct Stats {
    std::uint64_t frames_received = 0;
    std::uint64_t app_payloads = 0;
    std::uint64_t dropped_while_busy = 0;
    std::uint64_t duplicates_dropped = 0;  // MAC retransmissions suppressed
    std::uint64_t unrecognized_class = 0;   // silent ignores
    std::uint64_t rejected_commands = 0;    // APPLICATION_STATUS replies
    std::uint64_t auth_failures = 0;        // S0/S2 MAC failures
    std::uint64_t responses_sent = 0;
    /// Distinct genuinely-dispatched (class, command) pairs seen.
    std::set<std::pair<zwave::CommandClassId, zwave::CommandId>> accepted_pairs;
  };
  const Stats& stats() const { return stats_; }
  const std::vector<TriggeredVuln>& triggered() const { return triggered_; }

  radio::MacEndpoint& endpoint() { return endpoint_; }

 private:
  enum class Origin { kPlaintext, kS0, kS2 };

  void on_frame(const zwave::MacFrame& frame);
  void dispatch(const zwave::AppPayload& app, zwave::NodeId src, Origin origin,
                int depth = 0);
  /// Returns true when a seeded vulnerability fired (and applies effects).
  bool check_vulnerabilities(const zwave::AppPayload& app, Origin origin);
  void apply_effect(const VulnSpec& spec, const zwave::AppPayload& app);
  void apply_node_table_update(const zwave::AppPayload& app);
  void begin_outage(OutageDuration duration);
  void evaluate_automations(const zwave::AppPayload& app, zwave::NodeId src);
  void emit_serial(const Bytes& frame_bytes, SimTime delay);
  void reply(zwave::NodeId dst, zwave::AppPayload payload);
  void reply_rejected(zwave::NodeId dst);
  void send_ack(const zwave::MacFrame& received);

  // Handlers for the legit surface.
  void handle_protocol(const zwave::AppPayload& app, zwave::NodeId src, Origin origin);
  void handle_security2(const zwave::AppPayload& app, zwave::NodeId src, Origin origin);
  void handle_security0(const zwave::AppPayload& app, zwave::NodeId src);
  void handle_management(const zwave::AppPayload& app, zwave::NodeId src);
  void handle_network_mgmt(const zwave::AppPayload& app, zwave::NodeId src);
  void handle_encapsulation(const zwave::AppPayload& app, zwave::NodeId src, Origin origin,
                            int depth);

  DeviceModel model_;
  const ControllerProfile& profile_;
  EventScheduler& scheduler_;
  Rng rng_;
  radio::MacEndpoint endpoint_;
  NodeTable table_;
  std::unique_ptr<HostSoftware> host_;
  HostProgram* host_program_ = nullptr;  // non-owning; testbed wires it

  std::set<zwave::CommandClassId> recognized_;  // the 45-class cluster
  const HandledCommands& dispatch_table_;

  zwave::TransportReassembler reassembler_;
  std::map<zwave::NodeId, zwave::S2Session> s2_sessions_;
  std::map<zwave::NodeId, zwave::S0Session> s0_sessions_;
  std::map<zwave::NodeId, Bytes> s0_outstanding_nonce_;
  crypto::CtrDrbg drbg_;

  SimTime busy_until_ = 0;  // UINT64_MAX = infinite outage
  SerialTap serial_tap_;
  std::map<zwave::NodeId, std::uint8_t> last_sequence_;  // retransmit filter
  bool wakeup_books_damaged_ = false;
  std::uint8_t tx_sequence_ = 0;
  std::uint8_t powerlevel_ = 0;
  std::map<std::uint8_t, std::uint8_t> config_params_;
  std::map<std::uint8_t, std::set<zwave::NodeId>> association_groups_;
  /// Wake-up mailbox: payloads held for sleeping nodes. Flushing depends on
  /// the wake-up bookkeeping that bug #12 wipes.
  std::map<zwave::NodeId, std::vector<zwave::AppPayload>> wakeup_queue_;
  std::vector<AutomationRule> automations_;
  std::uint64_t automations_fired_ = 0;
  std::uint64_t automations_blocked_ = 0;

  Stats stats_;
  std::vector<TriggeredVuln> triggered_;
};

}  // namespace zc::sim
