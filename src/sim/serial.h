// Serial API substrate: the host interface between a USB stick controller
// (D1-D5) and the Z-Wave PC Controller program.
//
// Bugs #06 and #13 of Table III live *here*: the chip survives the
// malicious RF packet, but the callback it forwards over the serial link
// crashes (or wedges) the host program. Modeling the link makes those
// root causes mechanical instead of scripted: #06 is a malformed callback
// frame the program's parser chokes on, #13 is a callback flood that
// starves its event loop.
//
// Framing follows the public Serial API shape:
//   SOF(0x01) LEN TYPE FUNC DATA... CHECKSUM    + ACK(0x06)/NAK(0x15)
// where CHECKSUM = 0xFF XOR LEN XOR TYPE XOR FUNC XOR DATA...
#pragma once

#include <functional>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "sim/host.h"

namespace zc::sim {

constexpr std::uint8_t kSerialSof = 0x01;
constexpr std::uint8_t kSerialAck = 0x06;
constexpr std::uint8_t kSerialNak = 0x15;

enum class SerialType : std::uint8_t { kRequest = 0x00, kResponse = 0x01 };

/// Host-interface function identifiers (public Serial API subset).
enum class SerialFunc : std::uint8_t {
  kApplicationCommandHandler = 0x04,  // RF application payload forwarded up
  kSendData = 0x13,                   // host -> chip transmit request
  kGetNodeProtocolInfo = 0x41,
  kApplicationUpdate = 0x49,          // NIF / node table events
  kRequestNodeInfo = 0x60,
  kPowerlevelTestReport = 0xBB,       // powerlevel test progress callbacks
  kSecurityEvent = 0x9D,              // S2 nonce / KEX host notifications
};

struct SerialFrame {
  SerialType type = SerialType::kRequest;
  std::uint8_t func = 0;
  Bytes data;

  /// Serializes with correct LEN and checksum.
  Bytes encode() const;

  /// Serializes with a deliberately corrupted checksum (bug #06's shape).
  Bytes encode_corrupted() const;
};

/// XOR checksum over LEN..DATA, seeded with 0xFF.
std::uint8_t serial_checksum(ByteView len_through_data);

/// Decodes one frame from the start of `raw`; on success also reports the
/// consumed byte count through `consumed`.
Result<SerialFrame> decode_serial_frame(ByteView raw, std::size_t* consumed = nullptr);

/// Tuning knobs for the host program model.
struct HostProgramConfig {
  /// Callback-flood threshold: this many callbacks inside `flood_window`
  /// wedges the UI event loop (bug #13's manifestation).
  std::size_t flood_threshold = 16;
  SimTime flood_window = 100 * kMillisecond;
};

/// The Z-Wave PC Controller program's serial front-end: parses the byte
/// stream from the chip, acknowledges good frames, and reproduces the two
/// host-side failure modes.
class HostProgram {
 public:
  HostProgram(HostSoftware& state, EventScheduler& scheduler,
              HostProgramConfig config = HostProgramConfig());

  /// Feeds raw serial bytes from the chip side.
  void on_serial_bytes(ByteView bytes);

  std::uint64_t frames_ok() const { return frames_ok_; }
  std::uint64_t frames_bad() const { return frames_bad_; }
  /// SOF-resynchronization events: times the parser had to skip leading
  /// garbage to find a frame start (serial-link desync observability).
  std::uint64_t resyncs() const { return resyncs_; }
  std::uint64_t resync_bytes_skipped() const { return resync_bytes_skipped_; }
  HostSoftware& state() { return state_; }

 private:
  void register_callback();

  HostSoftware& state_;
  EventScheduler& scheduler_;
  HostProgramConfig config_;
  Bytes pending_;  // partial frame bytes
  std::uint64_t frames_ok_ = 0;
  std::uint64_t frames_bad_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t resync_bytes_skipped_ = 0;
  std::vector<SimTime> recent_callbacks_;
};

}  // namespace zc::sim
