#include "sim/controller.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "sim/coverage.h"
#include "sim/mac_quirks.h"
#include "zwave/checksum.h"
#include "zwave/multicast.h"
#include "zwave/routing.h"

namespace zc::sim {

namespace {

constexpr SimTime kAckTurnaround = 1 * kMillisecond;
constexpr SimTime kProcessingDelay = 4 * kMillisecond;
constexpr SimTime kInfinite = std::numeric_limits<SimTime>::max();

constexpr zwave::CommandClassId kProtocol = 0x01;
constexpr zwave::CommandClassId kZensor = 0x02;
constexpr zwave::CommandClassId kAppStatus = 0x22;

Bytes seed32_from_rng(Rng& rng) { return rng.bytes(32); }

}  // namespace

VirtualController::VirtualController(radio::RfMedium& medium, EventScheduler& scheduler,
                                     DeviceModel model, double x_meters, double y_meters,
                                     Rng rng)
    : model_(model),
      profile_(controller_profile(model)),
      scheduler_(scheduler),
      rng_(rng),
      endpoint_(medium,
                radio::RadioConfig{std::string("controller-") + device_model_name(model),
                                   zwave::RfRegion::kUs908, x_meters, y_meters, 0.0}),
      host_(std::make_unique<HostSoftware>(
          profile_.hub ? "SmartThings app" : "Z-Wave PC Controller program", scheduler)),
      dispatch_table_(firmware_dispatch_table()),
      drbg_(seed32_from_rng(rng_)) {
  const auto cluster = zwave::SpecDatabase::instance().controller_cluster(true);
  recognized_.insert(cluster.begin(), cluster.end());
  // The controller itself occupies node 1.
  table_.upsert(NodeRecord{node_id(), zwave::kBasicClassStaticController, true,
                           zwave::SecurityLevel::kS2, 0, "Primary Controller"});
  endpoint_.set_frame_handler(
      [this](const zwave::MacFrame& frame, double /*rssi*/) { on_frame(frame); });
}

void VirtualController::adopt_node(NodeRecord record) { table_.upsert(std::move(record)); }

void VirtualController::install_s2_session(zwave::NodeId peer, const crypto::S2Keys& keys,
                                           ByteView span_seed32) {
  s2_sessions_.emplace(peer, zwave::S2Session(keys, span_seed32));
}

void VirtualController::install_s0_session(zwave::NodeId peer,
                                           const crypto::AesKey& network_key) {
  s0_sessions_.emplace(peer, zwave::S0Session(network_key));
}

bool VirtualController::cloud_control_available() const {
  if (!profile_.hub) return false;
  return host_->responsive() && !wakeup_books_damaged_ && responsive();
}

bool VirtualController::responsive() const { return scheduler_.now() >= busy_until_; }

SimTime VirtualController::outage_remaining() const {
  const SimTime now = scheduler_.now();
  if (now >= busy_until_) return 0;
  return busy_until_ == kInfinite ? kInfinite : busy_until_ - now;
}

void VirtualController::operator_recover() {
  busy_until_ = 0;
  wakeup_books_damaged_ = false;
  host_->restart();
}

bool VirtualController::soft_reset() {
  if (busy_until_ == kInfinite) return false;  // NVM-level wedge: power-cycle only
  busy_until_ = scheduler_.now() + 100 * kMillisecond;  // firmware boot time
  last_sequence_.clear();
  return true;
}

void VirtualController::inject_stall(OutageDuration duration) { begin_outage(duration); }

void VirtualController::inject_reboot(SimTime boot_delay) {
  busy_until_ = scheduler_.now() + boot_delay;
  last_sequence_.clear();
  tx_sequence_ = 0;
}

void VirtualController::on_frame(const zwave::MacFrame& frame) {
  ++stats_.frames_received;
  if (frame.home_id != profile_.home_id) return;  // foreign network
  if (frame.dst != node_id() && frame.dst != zwave::kBroadcastNodeId) return;

  if (!responsive()) {
    ++stats_.dropped_while_busy;
    return;  // no ack, no processing: the outage the fuzzer's NOP probe sees
  }
  // Known one-day MAC quirks (VFuzz's hunting ground; see mac_quirks.h).
  for (const auto& quirk : mac_quirk_matrix()) {
    if (!quirk.affects(model_) || !quirk.matches(frame)) continue;
    begin_outage(OutageDuration{quirk.outage});
    triggered_.push_back(TriggeredVuln{quirk.quirk_id, scheduler_.now(), frame.payload});
    ZC_DEBUG("%s: MAC quirk #%d fired", device_model_name(model_), quirk.quirk_id);
    return;
  }

  if (frame.header == zwave::HeaderType::kAck) return;

  // Retransmission suppression: a frame repeating the previous sequence
  // number from the same source is the sender retrying a lost ack — it is
  // re-acknowledged but not re-processed (otherwise every retry would
  // double-apply SET-style commands).
  if (frame.header == zwave::HeaderType::kSinglecast) {
    const auto last = last_sequence_.find(frame.src);
    if (last != last_sequence_.end() && last->second == frame.sequence) {
      if (frame.ack_requested) send_ack(frame);
      ++stats_.duplicates_dropped;
      return;
    }
    last_sequence_[frame.src] = frame.sequence;
  }

  if (frame.ack_requested) send_ack(frame);

  ByteView app_bytes(frame.payload);
  Bytes multicast_inner;
  if (frame.header == zwave::HeaderType::kMulticast) {
    const auto multicast = zwave::split_multicast_payload(frame.payload);
    if (!multicast.ok() || !multicast.value().addresses(node_id())) return;
    multicast_inner = multicast.value().app_payload;
    app_bytes = ByteView(multicast_inner);
  }
  Bytes routed_inner;
  if (frame.routed) {
    const auto routed = zwave::split_routed_payload(frame.payload);
    if (!routed.ok()) return;                    // garbage route header
    if (!routed.value().route.complete()) return;  // mid-route: a repeater's job
    routed_inner = routed.value().app_payload;
    app_bytes = ByteView(routed_inner);
  }

  const auto app = zwave::decode_app_payload(app_bytes);
  if (!app.ok()) return;  // empty payload: MAC-level traffic only
  ++stats_.app_payloads;
  dispatch(app.value(), frame.src, Origin::kPlaintext);
}

void VirtualController::dispatch(const zwave::AppPayload& app, zwave::NodeId src,
                                 Origin origin, int depth) {
  // Encapsulation-depth guard: nested CRC-16 / Multi Cmd / Supervision /
  // Multi Channel wrappers (an "encap bomb") must not recurse unboundedly.
  if (depth > 4) return;

  // Automations watch *everything* the hub hears — including slave-report
  // classes the controller does not otherwise implement.
  evaluate_automations(app, src);

  if (!recognized_.contains(app.cmd_class)) {
    ++stats_.unrecognized_class;  // silent ignore: class truly unsupported
    cov::record(app.cmd_class, app.command, cov::kDispatchUnrecognized);
    return;
  }

  // Seeded flaws fire before the legit handler, and only for payloads that
  // arrived outside secure encapsulation (the paper's root cause).
  const bool fired = check_vulnerabilities(app, origin);
  if (fired) cov::record(app.cmd_class, app.command, cov::kVulnTriggered);

  const auto it = dispatch_table_.find(app.cmd_class);
  const bool command_handled =
      it != dispatch_table_.end() &&
      std::find(it->second.begin(), it->second.end(), app.command) != it->second.end();
  if (!command_handled) {
    // Supporting-direction commands (REPORTs and friends) are inputs the
    // controller consumes silently even without a dedicated handler.
    const auto* cls_spec = zwave::SpecDatabase::instance().find(app.cmd_class);
    const zwave::CommandSpec* cmd_spec =
        cls_spec != nullptr ? cls_spec->find_command(app.command) : nullptr;
    if (cmd_spec != nullptr && cmd_spec->direction == zwave::CmdDirection::kSupporting) {
      cov::record(app.cmd_class, app.command, cov::kDispatchSupporting);
      // WAKE_UP NOTIFICATION: a sleeping node announced itself — flush its
      // mailbox, provided the wake-up bookkeeping still exists (bug #12
      // wipes it, silently orphaning every queued command).
      if (app.cmd_class == 0x84 && app.command == 0x07) {
        const NodeRecord* record = table_.find(src);
        const auto queued = wakeup_queue_.find(src);
        if (record != nullptr && record->wakeup_interval_s > 0 &&
            queued != wakeup_queue_.end()) {
          for (const auto& pending : queued->second) reply(src, pending);
          wakeup_queue_.erase(queued);
          zwave::AppPayload no_more;
          no_more.cmd_class = 0x84;
          no_more.command = 0x08;  // NO_MORE_INFORMATION
          reply(src, no_more);
        }
      }
      return;
    }
    // Recognized class, unimplemented command/request: a well-formed
    // rejection. This is what makes systematic validation testing
    // (§III-C2) work.
    ++stats_.rejected_commands;
    cov::record(app.cmd_class, app.command, cov::kDispatchRejected);
    reply_rejected(src);
    return;
  }

  stats_.accepted_pairs.insert({app.cmd_class, app.command});
  cov::record(app.cmd_class, app.command, cov::kDispatchAccepted);

  // Forward the application payload to the host program, the way a USB
  // stick raises APPLICATION_COMMAND_HANDLER callbacks for the PC tool.
  if (host_program_ != nullptr) {
    SerialFrame callback;
    callback.type = SerialType::kRequest;
    callback.func = static_cast<std::uint8_t>(SerialFunc::kApplicationCommandHandler);
    callback.data.push_back(src);
    callback.data.push_back(static_cast<std::uint8_t>(2 + app.params.size()));
    const Bytes payload_bytes = app.encode();
    callback.data.insert(callback.data.end(), payload_bytes.begin(), payload_bytes.end());
    emit_serial(callback.encode(), 1 * kMillisecond);
  }

  if (fired && !responsive()) return;  // outage began: no further processing

  switch (app.cmd_class) {
    case kProtocol:
    case kZensor:
      handle_protocol(app, src, origin);
      break;
    case zwave::kSecurity2Class:
      handle_security2(app, src, origin);
      break;
    case zwave::kSecurity0Class:
      handle_security0(app, src);
      break;
    case 0x56:  // CRC-16 encap
    case 0x60:  // Multi Channel
    case 0x6C:  // Supervision
    case 0x8F:  // Multi Cmd
    case 0x55:  // Transport Service
      handle_encapsulation(app, src, origin, depth);
      break;
    case 0x34:  // NM Inclusion
    case 0x52:  // NM Proxy
      handle_network_mgmt(app, src);
      break;
    default:
      handle_management(app, src);
      break;
  }
}

bool VirtualController::check_vulnerabilities(const zwave::AppPayload& app, Origin origin) {
  if (origin != Origin::kPlaintext) return false;  // secure path is enforced
  for (const auto& spec : vulnerability_matrix()) {
    if (!spec.affects(model_)) continue;
    if (spec.cmd_class != app.cmd_class || spec.command != app.command) continue;
    if (spec.operation.has_value()) {
      if (app.params.empty() || app.params[0] != *spec.operation) continue;
    }
    // Semantic preconditions that distinguish the buggy path from the
    // legitimate flow the same command serves.
    switch (spec.effect) {
      case VulnEffect::kHostAppDoS: {
        // #05: a NIF request for a ghost target floods the host interface.
        const bool ghost_target = app.params.empty() || app.params[0] == 0x00 ||
                                  (app.params[0] != node_id() &&
                                   table_.find(app.params[0]) == nullptr);
        if (!ghost_target) continue;
        break;
      }
      case VulnEffect::kServiceInterruption: {
        if (spec.cmd_class == 0x86 && spec.command == 0x13) {
          // #10: VERSION COMMAND_CLASS_GET stalls on an unsupported class.
          const bool bogus = app.params.empty() || !recognized_.contains(app.params[0]);
          if (!bogus) continue;
        }
        break;
      }
      default:
        break;
    }
    apply_effect(spec, app);
    triggered_.push_back(TriggeredVuln{spec.bug_id, scheduler_.now(), app.encode()});
    ZC_DEBUG("%s: bug #%02d fired (%s)", device_model_name(model_), spec.bug_id,
             vuln_effect_name(spec.effect));
    return true;
  }
  return false;
}

void VirtualController::apply_effect(const VulnSpec& spec, const zwave::AppPayload& app) {
  switch (spec.effect) {
    case VulnEffect::kCorruptNodeProperties:
    case VulnEffect::kInsertRogueNode:
    case VulnEffect::kRemoveNode:
    case VulnEffect::kOverwriteDatabase:
    case VulnEffect::kClearWakeupInterval:
      apply_node_table_update(app);
      if (spec.effect == VulnEffect::kClearWakeupInterval) wakeup_books_damaged_ = true;
      break;
    case VulnEffect::kHostAppDoS:
      // Hub models: the cloud/app path has no serial link to model.
      host_->denial_of_service();
      break;
    case VulnEffect::kHostProgramDoS:
      if (host_program_ != nullptr) {
        // #13: the chip streams powerlevel-test progress callbacks far
        // faster than the program's event loop drains them.
        SerialFrame progress;
        progress.type = SerialType::kRequest;
        progress.func = static_cast<std::uint8_t>(SerialFunc::kPowerlevelTestReport);
        progress.data = {app.params.empty() ? std::uint8_t{0} : app.params[0], 0x01};
        const Bytes encoded = progress.encode();
        for (int i = 0; i < 24; ++i) emit_serial(encoded, (1 + i * 2) * kMillisecond);
      } else {
        host_->denial_of_service();
      }
      break;
    case VulnEffect::kHostProgramCrash:
      if (host_program_ != nullptr) {
        // #06: the S2 nonce event is forwarded with a mangled frame the
        // program's parser mishandles.
        SerialFrame event;
        event.type = SerialType::kRequest;
        event.func = static_cast<std::uint8_t>(SerialFunc::kSecurityEvent);
        event.data = {0x01 /* nonce-get */,
                      app.params.empty() ? std::uint8_t{0} : app.params[0]};
        emit_serial(event.encode_corrupted(), 1 * kMillisecond);
      } else {
        host_->crash();
      }
      break;
    case VulnEffect::kServiceInterruption:
    case VulnEffect::kBusyScan:
      begin_outage(spec.outage);
      break;
  }
}

void VirtualController::apply_node_table_update(const zwave::AppPayload& app) {
  // Payload layout (class 0x01, cmd 0x0D): [operation, node_id, properties].
  const std::uint8_t op = app.params.empty() ? 0 : app.params[0];
  const zwave::NodeId target = app.params.size() > 1 ? app.params[1] : 0;
  switch (op) {
    case 0x00: {  // corrupt properties (Fig. 8: lock becomes routing slave)
      if (NodeRecord* record = table_.find_mutable(target)) {
        record->basic_class = zwave::kBasicClassRoutingSlave;
        record->security = zwave::SecurityLevel::kNone;
      }
      break;
    }
    case 0x01: {  // insert rogue controller (Fig. 9: IDs #10 and #200)
      const zwave::NodeId id = target == 0 ? 10 : target;
      table_.upsert(NodeRecord{id, zwave::kBasicClassController, true,
                               zwave::SecurityLevel::kNone, 0, "Rogue Controller"});
      break;
    }
    case 0x02:  // remove valid device (Fig. 10)
      table_.remove(target);
      break;
    case 0x03: {  // overwrite database (Fig. 11)
      table_.clear();
      table_.upsert(NodeRecord{10, zwave::kBasicClassController, true,
                               zwave::SecurityLevel::kNone, 0, "Fake Controller A"});
      table_.upsert(NodeRecord{200, zwave::kBasicClassController, true,
                               zwave::SecurityLevel::kNone, 0, "Fake Controller B"});
      break;
    }
    case 0x04: {  // clear wake-up bookkeeping (#12): the NVM region holding
      // wake-up intervals is wiped wholesale, whatever node was named.
      for (zwave::NodeId id : table_.node_ids()) {
        if (NodeRecord* record = table_.find_mutable(id)) record->wakeup_interval_s = 0;
      }
      break;
    }
    default:
      break;
  }
}

void VirtualController::begin_outage(OutageDuration duration) {
  busy_until_ = duration.has_value() ? scheduler_.now() + *duration : kInfinite;
}

SerialFrame VirtualController::handle_host_request(const SerialFrame& request) {
  SerialFrame response;
  response.type = SerialType::kResponse;
  response.func = request.func;

  if (!responsive()) {
    response.data = {0x00};  // chip busy: request refused
    return response;
  }

  switch (static_cast<SerialFunc>(request.func)) {
    case SerialFunc::kSendData: {
      // [dst, len, payload..., txOptions]
      if (request.data.size() < 3) {
        response.data = {0x00};
        return response;
      }
      const zwave::NodeId dst = request.data[0];
      const std::size_t len = request.data[1];
      if (2 + len > request.data.size()) {
        response.data = {0x00};
        return response;
      }
      const auto app = zwave::decode_app_payload(
          ByteView(request.data.data() + 2, len));
      if (!app.ok()) {
        response.data = {0x00};
        return response;
      }
      // Sleeping (non-listening) destinations get their command mailboxed
      // until the next WAKE_UP NOTIFICATION.
      const NodeRecord* record = table_.find(dst);
      if (record != nullptr && !record->listening) {
        wakeup_queue_[dst].push_back(app.value());
        response.data = {0x01};
        return response;
      }
      const zwave::MacFrame frame = zwave::make_singlecast(
          profile_.home_id, node_id(), dst, app.value(), tx_sequence_++ & 0x0F, true);
      scheduler_.schedule_after(kProcessingDelay, [this, frame] { endpoint_.send(frame); });
      response.data = {0x01};
      return response;
    }
    case SerialFunc::kGetNodeProtocolInfo: {
      if (request.data.empty()) {
        response.data = {0x00};
        return response;
      }
      const NodeRecord* record = table_.find(request.data[0]);
      if (record == nullptr) {
        response.data = {0x00, 0x00, 0x00, 0x00};
        return response;
      }
      response.data = {0x01, static_cast<std::uint8_t>(record->listening ? 0x80 : 0x00),
                       static_cast<std::uint8_t>(record->security), record->basic_class};
      return response;
    }
    case SerialFunc::kRequestNodeInfo: {
      if (request.data.empty()) {
        response.data = {0x00};
        return response;
      }
      const zwave::NodeId target = request.data[0];
      const zwave::MacFrame frame =
          zwave::make_singlecast(profile_.home_id, node_id(), target,
                                 zwave::make_nif_request(target), tx_sequence_++ & 0x0F, true);
      scheduler_.schedule_after(kProcessingDelay, [this, frame] { endpoint_.send(frame); });
      response.data = {0x01};
      return response;
    }
    default:
      response.data = {0x00};  // unsupported function id
      return response;
  }
}

void VirtualController::add_automation(AutomationRule rule) {
  automations_.push_back(std::move(rule));
}

void VirtualController::evaluate_automations(const zwave::AppPayload& app,
                                             zwave::NodeId src) {
  for (const AutomationRule& rule : automations_) {
    if (rule.trigger_node != src || rule.trigger_class != app.cmd_class ||
        rule.trigger_command != app.command) {
      continue;
    }
    if (rule.trigger_value.has_value() &&
        (app.params.empty() || app.params[0] != *rule.trigger_value)) {
      continue;
    }
    // A routine only actuates devices the controller still knows; S2 nodes
    // only through their secure session. Bugs #01/#03/#04 break exactly
    // these conditions.
    const NodeRecord* target = table_.find(rule.action_node);
    if (target == nullptr) {
      ++automations_blocked_;
      continue;
    }
    if (target->security == zwave::SecurityLevel::kS2) {
      const auto session = s2_sessions_.find(rule.action_node);
      if (session == s2_sessions_.end() ||
          table_.find(rule.action_node)->security != zwave::SecurityLevel::kS2) {
        ++automations_blocked_;
        continue;
      }
      reply(rule.action_node,
            session->second.encapsulate(rule.action, profile_.home_id, node_id(),
                                        rule.action_node));
    } else {
      reply(rule.action_node, rule.action);
    }
    ++automations_fired_;
  }
}

std::size_t VirtualController::queued_for(zwave::NodeId node) const {
  const auto it = wakeup_queue_.find(node);
  return it == wakeup_queue_.end() ? 0 : it->second.size();
}

void VirtualController::emit_serial(const Bytes& frame_bytes, SimTime delay) {
  scheduler_.schedule_after(delay, [this, frame_bytes] {
    if (host_program_ == nullptr) return;
    // The fault tap models the physical link between chip and host: a
    // desync window may eat or garble the frame at delivery time.
    Bytes on_wire = frame_bytes;
    if (serial_tap_ && !serial_tap_(on_wire)) return;
    host_program_->on_serial_bytes(on_wire);
  });
}

void VirtualController::reply(zwave::NodeId dst, zwave::AppPayload payload) {
  const zwave::MacFrame frame = zwave::make_singlecast(
      profile_.home_id, node_id(), dst, payload, tx_sequence_++ & 0x0F, false);
  ++stats_.responses_sent;
  scheduler_.schedule_after(kProcessingDelay, [this, frame] { endpoint_.send(frame); });
}

void VirtualController::reply_rejected(zwave::NodeId dst) {
  zwave::AppPayload status;
  status.cmd_class = kAppStatus;
  status.command = 0x02;  // APPLICATION_REJECTED_REQUEST
  status.params = {0x00};
  reply(dst, status);
}

void VirtualController::send_ack(const zwave::MacFrame& received) {
  const zwave::MacFrame ack = zwave::make_ack(received, node_id());
  scheduler_.schedule_after(kAckTurnaround, [this, ack] { endpoint_.send(ack); });
}

void VirtualController::handle_protocol(const zwave::AppPayload& app, zwave::NodeId src,
                                        Origin origin) {
  if (app.cmd_class == kZensor) {
    if (app.command == 0x01) {  // BIND_REQUEST -> BIND_ACCEPT
      cov::record(app.cmd_class, app.command, cov::kHandlerCase);
      zwave::AppPayload accept;
      accept.cmd_class = kZensor;
      accept.command = 0x02;
      accept.params = app.params;
      reply(src, accept);
    }
    return;
  }
  switch (app.command) {
    case 0x01:  // NOP: MAC ack (already sent) is the liveness answer
      break;
    case 0x02: {  // NODE_INFO_REQUEST -> NIF
      zwave::NodeInfo info;
      info.capabilities = 0x80;  // listening
      info.basic_class = zwave::kBasicClassStaticController;
      info.generic_class = 0x02;
      info.specific_class = 0x07;
      info.supported = profile_.listed;
      reply(src, info.encode());
      break;
    }
    case 0x03:  // ASSIGN_IDS: only honored during inclusion; ignore here
      break;
    case 0x05: {  // GET_NODES_IN_RANGE -> RANGE_INFO with the node bitmask
      zwave::AppPayload range;
      range.cmd_class = kProtocol;
      range.command = 0x06;
      Bytes mask(29, 0x00);
      for (zwave::NodeId id : table_.node_ids()) {
        mask[static_cast<std::size_t>((id - 1) / 8)] |=
            static_cast<std::uint8_t>(1u << ((id - 1) % 8));
      }
      range.params.push_back(static_cast<std::uint8_t>(mask.size()));
      range.params.insert(range.params.end(), mask.begin(), mask.end());
      reply(src, range);
      break;
    }
    case 0x0D:
      // NODE_TABLE_UPDATE over a *secure* channel is the legitimate
      // management path; the plaintext variant was handled by the
      // vulnerability matrix.
      if (origin == Origin::kS2) {
        cov::record(app.cmd_class, app.command, cov::kHandlerCase);
        apply_node_table_update(app);
      }
      break;
    default:
      break;
  }
}

void VirtualController::handle_security2(const zwave::AppPayload& app, zwave::NodeId src,
                                         Origin origin) {
  switch (app.command) {
    case zwave::kS2NonceGet: {
      zwave::AppPayload report;
      report.cmd_class = zwave::kSecurity2Class;
      report.command = zwave::kS2NonceReport;
      report.params.push_back(app.params.empty() ? 0 : app.params[0]);
      report.params.push_back(0x01);  // SOS flag
      const Bytes entropy = drbg_.generate(16);
      report.params.insert(report.params.end(), entropy.begin(), entropy.end());
      reply(src, report);
      break;
    }
    case zwave::kS2NonceReport:
      break;  // stored by higher-level resync flows; nothing to answer
    case zwave::kS2MessageEncap: {
      const auto session = s2_sessions_.find(src);
      if (session == s2_sessions_.end()) {
        ++stats_.auth_failures;
        cov::record(app.cmd_class, app.command, cov::kDecapRejected);
        return;
      }
      auto inner =
          session->second.decapsulate(app, profile_.home_id, src, node_id());
      if (!inner.ok()) {
        ++stats_.auth_failures;
        cov::record(app.cmd_class, app.command, cov::kDecapRejected);
        return;
      }
      cov::record(app.cmd_class, app.command, cov::kDecapAccepted);
      dispatch(inner.value(), src, Origin::kS2);
      break;
    }
    case 0x04: {  // KEX_GET -> KEX_REPORT
      zwave::AppPayload report;
      report.cmd_class = zwave::kSecurity2Class;
      report.command = 0x05;
      report.params = {0x00, 0x02, 0x01, 0x87};  // schemes/profiles/keys
      reply(src, report);
      break;
    }
    case 0x0D: {  // COMMANDS_SUPPORTED_GET
      zwave::AppPayload report;
      report.cmd_class = zwave::kSecurity2Class;
      report.command = 0x0E;
      report.params.assign(profile_.listed.begin(), profile_.listed.end());
      reply(src, report);
      break;
    }
    case 0x0F: {  // CAPABILITIES_GET
      zwave::AppPayload report;
      report.cmd_class = zwave::kSecurity2Class;
      report.command = 0x10;
      report.params = {0x02, 0x01};
      reply(src, report);
      break;
    }
    default:
      break;
  }
  (void)origin;
}

void VirtualController::handle_security0(const zwave::AppPayload& app, zwave::NodeId src) {
  switch (app.command) {
    case 0x02: {  // COMMANDS_SUPPORTED_GET
      zwave::AppPayload report;
      report.cmd_class = zwave::kSecurity0Class;
      report.command = 0x03;
      report.params.push_back(0x00);
      report.params.insert(report.params.end(), profile_.listed.begin(), profile_.listed.end());
      reply(src, report);
      break;
    }
    case 0x04: {  // SCHEME_GET -> SCHEME_REPORT
      zwave::AppPayload report;
      report.cmd_class = zwave::kSecurity0Class;
      report.command = 0x05;
      report.params = {0x00};
      reply(src, report);
      break;
    }
    case zwave::kS0NonceGet: {
      const auto session = s0_sessions_.find(src);
      if (session == s0_sessions_.end()) return;
      Bytes nonce = session->second.make_nonce(drbg_);
      s0_outstanding_nonce_[src] = nonce;
      zwave::AppPayload report;
      report.cmd_class = zwave::kSecurity0Class;
      report.command = zwave::kS0NonceReport;
      report.params = nonce;
      reply(src, report);
      break;
    }
    case zwave::kS0MessageEncap: {
      const auto session = s0_sessions_.find(src);
      const auto nonce = s0_outstanding_nonce_.find(src);
      if (session == s0_sessions_.end() || nonce == s0_outstanding_nonce_.end()) {
        ++stats_.auth_failures;
        cov::record(app.cmd_class, app.command, cov::kDecapRejected);
        return;
      }
      auto inner = session->second.decapsulate(app, src, node_id(), nonce->second);
      s0_outstanding_nonce_.erase(nonce);  // single use
      if (!inner.ok()) {
        ++stats_.auth_failures;
        cov::record(app.cmd_class, app.command, cov::kDecapRejected);
        return;
      }
      cov::record(app.cmd_class, app.command, cov::kDecapAccepted);
      dispatch(inner.value(), src, Origin::kS0);
      break;
    }
    default:
      break;
  }
}

void VirtualController::handle_management(const zwave::AppPayload& app, zwave::NodeId src) {
  switch (app.cmd_class) {
    case 0x86:  // VERSION
      if (app.command == 0x11) {
        zwave::AppPayload report;
        report.cmd_class = 0x86;
        report.command = 0x12;
        const std::uint8_t lib = profile_.chip_series == "700" ? 7 : 3;
        report.params = {lib, 6, 7, 1, static_cast<std::uint8_t>(profile_.year % 100)};
        reply(src, report);
      } else if (app.command == 0x13 && !app.params.empty()) {
        const bool known = recognized_.contains(app.params[0]);
        cov::record(app.cmd_class, app.command,
                    known ? cov::kHandlerCase : cov::kHandlerDefault);
        zwave::AppPayload report;
        report.cmd_class = 0x86;
        report.command = 0x14;
        report.params = {app.params[0], static_cast<std::uint8_t>(known ? 1 : 0)};
        reply(src, report);
      } else if (app.command == 0x15) {
        zwave::AppPayload report;
        report.cmd_class = 0x86;
        report.command = 0x16;
        report.params = {0x07};
        reply(src, report);
      }
      break;
    case 0x70:  // CONFIGURATION
      if (app.command == 0x04 && app.params.size() >= 3) {
        cov::record(app.cmd_class, app.command, cov::kHandlerCase);
        config_params_[app.params[0]] = app.params[2];
      } else if (app.command == 0x05 && !app.params.empty()) {
        zwave::AppPayload report;
        report.cmd_class = 0x70;
        report.command = 0x06;
        const auto it = config_params_.find(app.params[0]);
        report.params = {app.params[0], 0x01,
                         it == config_params_.end() ? std::uint8_t{0} : it->second};
        reply(src, report);
      }
      break;
    case 0x72:  // MANUFACTURER_SPECIFIC GET
      if (app.command == 0x04) {
        zwave::AppPayload report;
        report.cmd_class = 0x72;
        report.command = 0x05;
        report.params = {0x00, static_cast<std::uint8_t>(model_), 0x00, 0x01, 0x00, 0x01};
        reply(src, report);
      }
      break;
    case 0x5E:  // ZWAVEPLUS_INFO GET
      if (app.command == 0x01) {
        zwave::AppPayload report;
        report.cmd_class = 0x5E;
        report.command = 0x02;
        report.params = {0x02, 0x05, 0x00, 0x07, 0x00, 0x07, 0x00};
        reply(src, report);
      }
      break;
    case 0x59:  // AGI (the legit side of #08/#11 when encrypted)
      if (app.command == 0x01 && !app.params.empty()) {
        zwave::AppPayload report;
        report.cmd_class = 0x59;
        report.command = 0x02;
        report.params = {app.params[0], 0x08, 'L', 'i', 'f', 'e', 'l', 'i', 'n', 'e'};
        reply(src, report);
      }
      break;
    case 0x73:  // POWERLEVEL
      if (app.command == 0x01 && !app.params.empty()) {
        cov::record(app.cmd_class, app.command,
                    app.params[0] <= 9 ? cov::kHandlerCase : cov::kHandlerDefault);
        powerlevel_ = app.params[0] <= 9 ? app.params[0] : powerlevel_;
      } else if (app.command == 0x02) {
        zwave::AppPayload report;
        report.cmd_class = 0x73;
        report.command = 0x03;
        report.params = {powerlevel_, 0x00};
        reply(src, report);
      } else if (app.command == 0x04) {
        // TEST_NODE_SET: status is streamed to the host interface, which is
        // where bug #13 wedged the PC program; the chip replies normally.
        zwave::AppPayload report;
        report.cmd_class = 0x73;
        report.command = 0x06;
        report.params = {app.params.empty() ? std::uint8_t{0} : app.params[0], 0x01, 0x00, 0x00};
        reply(src, report);
      }
      break;
    case 0x85:  // ASSOCIATION
      if (app.command == 0x01 && app.params.size() >= 2) {
        // SET: record group members (bounded per group, like real NVM).
        cov::record(app.cmd_class, app.command, cov::kHandlerCase);
        auto& group = association_groups_[app.params[0]];
        for (std::size_t i = 1; i < app.params.size() && group.size() < 8; ++i) {
          group.insert(app.params[i]);
        }
      } else if (app.command == 0x02 && !app.params.empty()) {
        zwave::AppPayload report;
        report.cmd_class = 0x85;
        report.command = 0x03;
        report.params = {app.params[0], 0x08, 0x00};
        const auto it_group = association_groups_.find(app.params[0]);
        if (it_group != association_groups_.end()) {
          report.params.insert(report.params.end(), it_group->second.begin(),
                               it_group->second.end());
        }
        reply(src, report);
      } else if (app.command == 0x05) {
        zwave::AppPayload report;
        report.cmd_class = 0x85;
        report.command = 0x06;
        report.params = {0x01};
        reply(src, report);
      }
      break;
    case 0x84:  // WAKE_UP
      if (app.command == 0x04 && app.params.size() >= 3) {
        // INTERVAL_SET records the *sender's* wake-up interval; a node not
        // in the table (e.g. an attacker id) has no row to update.
        if (NodeRecord* record = table_.find_mutable(src)) {
          cov::record(app.cmd_class, app.command, cov::kHandlerCase);
          record->wakeup_interval_s = (static_cast<std::uint32_t>(app.params[0]) << 16) |
                                      (static_cast<std::uint32_t>(app.params[1]) << 8) |
                                      app.params[2];
        }
      } else if (app.command == 0x05) {
        zwave::AppPayload report;
        report.cmd_class = 0x84;
        report.command = 0x06;
        report.params = {0x00, 0x0E, 0x10, node_id()};  // 3600 s
        reply(src, report);
      }
      break;
    case 0x7A:  // FIRMWARE_UPDATE_MD: only UPDATE_GET is on the legit path
      if (app.command == 0x05) {
        zwave::AppPayload report;
        report.cmd_class = 0x7A;
        report.command = 0x07;
        report.params = {0xFF, 0x00, 0x00};
        reply(src, report);
      }
      break;
    default:
      break;
  }
}

void VirtualController::handle_network_mgmt(const zwave::AppPayload& app, zwave::NodeId src) {
  const std::uint8_t seq = app.params.empty() ? 0 : app.params[0];
  if (app.cmd_class == 0x34) {
    // Unauthenticated inclusion/removal requests fail cleanly.
    cov::record(app.cmd_class, app.command, cov::kHandlerCase);
    zwave::AppPayload status;
    status.cmd_class = 0x34;
    status.command = app.command == 0x01 ? std::uint8_t{0x02} : std::uint8_t{0x04};
    status.params = {seq, 0x07 /* failed */, 0x00};
    reply(src, status);
    return;
  }
  // 0x52 NM Proxy.
  if (app.command == 0x01) {  // NODE_LIST_GET -> NODE_LIST_REPORT
    zwave::AppPayload report;
    report.cmd_class = 0x52;
    report.command = 0x02;
    report.params = {seq, 0x00, node_id()};
    Bytes mask(29, 0x00);
    for (zwave::NodeId id : table_.node_ids()) {
      mask[static_cast<std::size_t>((id - 1) / 8)] |=
          static_cast<std::uint8_t>(1u << ((id - 1) % 8));
    }
    report.params.insert(report.params.end(), mask.begin(), mask.end());
    reply(src, report);
  } else if (app.command == 0x03) {  // NODE_INFO_CACHED_GET
    const zwave::NodeId target = app.params.size() > 1 ? app.params[1] : 0;
    zwave::AppPayload report;
    report.cmd_class = 0x52;
    report.command = 0x04;
    const NodeRecord* record = table_.find(target);
    cov::record(app.cmd_class, app.command,
                record == nullptr ? cov::kHandlerDefault : cov::kHandlerCase);
    if (record == nullptr) {
      report.params = {seq, 0x01 /* status: unknown */};
    } else {
      report.params = {seq,
                       0x00,
                       static_cast<std::uint8_t>(record->listening ? 0x80 : 0x00),
                       static_cast<std::uint8_t>(record->security),
                       record->basic_class,
                       static_cast<std::uint8_t>(record->wakeup_interval_s >> 16),
                       static_cast<std::uint8_t>(record->wakeup_interval_s >> 8),
                       static_cast<std::uint8_t>(record->wakeup_interval_s)};
    }
    reply(src, report);
  }
}

void VirtualController::handle_encapsulation(const zwave::AppPayload& app, zwave::NodeId src,
                                             Origin origin, int depth) {
  switch (app.cmd_class) {
    case 0x56: {  // CRC-16 encap: [inner..., crc_hi, crc_lo]
      if (app.params.size() < 3) return;
      Bytes covered;
      covered.push_back(app.cmd_class);
      covered.push_back(app.command);
      covered.insert(covered.end(), app.params.begin(), app.params.end() - 2);
      const std::uint16_t expected = zwave::crc16_ccitt(covered);
      const std::uint16_t got = read_be16(app.params, app.params.size() - 2);
      if (expected != got) {
        cov::record(app.cmd_class, app.command, cov::kDecapRejected);
        return;
      }
      cov::record(app.cmd_class, app.command, cov::kDecapAccepted);
      const auto inner =
          zwave::decode_app_payload(ByteView(app.params.data(), app.params.size() - 2));
      if (inner.ok()) dispatch(inner.value(), src, origin, depth + 1);
      break;
    }
    case 0x60: {  // Multi Channel
      if (app.command == 0x07) {
        zwave::AppPayload report;
        report.cmd_class = 0x60;
        report.command = 0x08;
        report.params = {0x00, 0x01};
        reply(src, report);
      } else if (app.command == 0x09) {
        zwave::AppPayload report;
        report.cmd_class = 0x60;
        report.command = 0x0A;
        report.params = {0x01, 0x02, 0x07};
        reply(src, report);
      } else if (app.command == 0x0D && app.params.size() >= 3) {
        const auto inner =
            zwave::decode_app_payload(ByteView(app.params.data() + 2, app.params.size() - 2));
        if (inner.ok()) dispatch(inner.value(), src, origin, depth + 1);
      }
      break;
    }
    case 0x6C: {  // Supervision GET wraps an inner command
      if (app.command == 0x01 && app.params.size() >= 2) {
        const std::uint8_t session = app.params[0];
        const std::size_t inner_len = app.params[1];
        if (inner_len + 2 <= app.params.size()) {
          const auto inner =
              zwave::decode_app_payload(ByteView(app.params.data() + 2, inner_len));
          if (inner.ok()) {
            cov::record(app.cmd_class, app.command, cov::kDecapAccepted);
            dispatch(inner.value(), src, origin, depth + 1);
          }
        }
        zwave::AppPayload report;
        report.cmd_class = 0x6C;
        report.command = 0x02;
        report.params = {session, 0xFF /* success */, 0x00};
        reply(src, report);
      }
      break;
    }
    case 0x8F: {  // Multi Cmd: [count, (len, payload)...]
      if (app.command != 0x01 || app.params.empty()) return;
      std::size_t pos = 1;
      int remaining = app.params[0];
      while (remaining-- > 0 && pos < app.params.size()) {
        const std::size_t len = app.params[pos++];
        if (len == 0 || pos + len > app.params.size()) break;
        const auto inner = zwave::decode_app_payload(ByteView(app.params.data() + pos, len));
        if (inner.ok()) {
          cov::record(app.cmd_class, app.command, cov::kDecapAccepted);
          dispatch(inner.value(), src, origin, depth + 1);
        }
        pos += len;
      }
      break;
    }
    case 0x55: {  // Transport Service: reassemble, then dispatch the datagram
      auto reaction = reassembler_.feed(app, src, scheduler_.now());
      if (!reaction.ok()) return;  // malformed segment: dropped
      if (reaction.value().reply.has_value()) reply(src, *reaction.value().reply);
      if (reaction.value().completed.has_value()) {
        const auto inner = zwave::decode_app_payload(*reaction.value().completed);
        if (inner.ok()) {
          cov::record(app.cmd_class, app.command, cov::kDecapAccepted);
          dispatch(inner.value(), src, origin, depth + 1);
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace zc::sim
