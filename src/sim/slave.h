// Simulated slave devices: the S2 smart door lock (D8, Schlage BE469ZP)
// and the legacy no-security smart switch (D9, GE ZW4201) that complete
// the paper's "realistic smart home" testbed (Table II footnote).
//
// Slaves produce the periodic report traffic the passive scanner feeds on
// (Fig. 4) and answer the basic application commands a homeowner's
// automations exercise.
#pragma once

#include <memory>
#include <optional>

#include "common/clock.h"
#include "common/rng.h"
#include "crypto/ctr.h"
#include "radio/endpoint.h"
#include "sim/vulnerability.h"
#include "zwave/security.h"

namespace zc::sim {

/// Common slave machinery: MAC endpoint, ack behavior, periodic reporting.
class SlaveDevice {
 public:
  SlaveDevice(radio::RfMedium& medium, EventScheduler& scheduler, DeviceModel model,
              zwave::HomeId home, zwave::NodeId node, double x_meters, double y_meters);
  virtual ~SlaveDevice() = default;

  DeviceModel model() const { return model_; }
  zwave::NodeId node_id() const { return node_; }

  /// Starts periodic status reports every `interval` of virtual time.
  void start_reporting(SimTime interval);

  std::uint64_t reports_sent() const { return reports_sent_; }

 protected:
  virtual void on_app_payload(const zwave::AppPayload& app, zwave::NodeId src) = 0;
  virtual zwave::AppPayload make_report() = 0;

  void send_app(zwave::NodeId dst, const zwave::AppPayload& payload);

  EventScheduler& scheduler_;
  radio::MacEndpoint endpoint_;

 private:
  void on_frame(const zwave::MacFrame& frame);
  void report_tick(SimTime interval);

  DeviceModel model_;
  zwave::HomeId home_;
  zwave::NodeId node_;
  std::uint8_t tx_sequence_ = 0;
  std::uint64_t reports_sent_ = 0;
};

/// D8: S2 smart door lock. Status reports and operations ride the S2
/// channel with the controller.
class DoorLock : public SlaveDevice {
 public:
  DoorLock(radio::RfMedium& medium, EventScheduler& scheduler, zwave::HomeId home,
           zwave::NodeId node, double x, double y);

  /// Installs the lock's half of the S2 channel with the controller.
  void install_s2_session(const crypto::S2Keys& keys, ByteView span_seed32);

  bool locked() const { return locked_; }
  void set_locked(bool locked) { locked_ = locked; }

 protected:
  void on_app_payload(const zwave::AppPayload& app, zwave::NodeId src) override;
  zwave::AppPayload make_report() override;

 private:
  std::optional<zwave::S2Session> s2_;
  zwave::HomeId home_for_s2_;
  bool locked_ = true;
  std::uint8_t battery_ = 95;
};

/// An S0-era motion sensor: reports ride Security 0 with the live
/// NONCE_GET / NONCE_REPORT handshake against the controller — the
/// full S0 transport exercised over RF, not just in unit tests.
class S0Sensor : public SlaveDevice {
 public:
  S0Sensor(radio::RfMedium& medium, EventScheduler& scheduler, zwave::HomeId home,
           zwave::NodeId node, double x, double y);

  /// Installs the shared S0 network key (inclusion result).
  void install_s0_key(const crypto::AesKey& network_key);

  /// Sends one S0-encapsulated SENSOR_BINARY report: requests a nonce,
  /// then encapsulates against the controller's NONCE_REPORT.
  void send_secure_report();

  /// Announces a wake-up (WAKE_UP NOTIFICATION): the controller flushes
  /// any mailboxed commands for this node.
  void notify_awake();

  std::uint64_t secure_reports_sent() const { return secure_reports_; }

 protected:
  void on_app_payload(const zwave::AppPayload& app, zwave::NodeId src) override;
  zwave::AppPayload make_report() override;

 private:
  std::optional<zwave::S0Session> s0_;
  crypto::CtrDrbg drbg_;
  bool awaiting_nonce_ = false;
  std::uint64_t secure_reports_ = 0;
  bool motion_ = false;
};

/// D9: legacy smart switch, plaintext transport.
class SmartSwitch : public SlaveDevice {
 public:
  SmartSwitch(radio::RfMedium& medium, EventScheduler& scheduler, zwave::HomeId home,
              zwave::NodeId node, double x, double y);

  bool on() const { return on_; }

 protected:
  void on_app_payload(const zwave::AppPayload& app, zwave::NodeId src) override;
  zwave::AppPayload make_report() override;

 private:
  bool on_ = false;
};

}  // namespace zc::sim
