// The controller's device database ("the controller's memory" of the
// paper's Figs. 8-11), modeled as an NVM-backed node table.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "zwave/nif.h"
#include "zwave/types.h"

namespace zc::sim {

/// One row of the controller's device table.
struct NodeRecord {
  zwave::NodeId node_id = 0;
  std::uint8_t basic_class = zwave::kBasicClassSlave;  // device type byte
  bool listening = true;
  zwave::SecurityLevel security = zwave::SecurityLevel::kNone;
  std::uint32_t wakeup_interval_s = 0;  // 0 = none / cleared
  std::string label;                    // human name ("Smart Lock")

  std::string describe() const;
};

/// The device database. Every mutation bumps a generation counter so an
/// external observer (the fuzzer's tamper oracle, the PC-controller UI of
/// Figs. 8-11) can detect unexpected changes cheaply.
class NodeTable {
 public:
  void upsert(NodeRecord record);
  bool remove(zwave::NodeId id);
  void clear();

  const NodeRecord* find(zwave::NodeId id) const;
  NodeRecord* find_mutable(zwave::NodeId id);

  std::vector<zwave::NodeId> node_ids() const;
  std::size_t size() const { return records_.size(); }
  std::uint64_t generation() const { return generation_; }

  /// Stable digest of the table contents, for tamper detection.
  std::uint64_t digest() const;

  /// Multi-line rendering in the style of the PC-controller node list
  /// (the before/after views of Figs. 8-11).
  std::string render() const;

  /// Snapshot/restore for campaign isolation between trials.
  std::map<zwave::NodeId, NodeRecord> snapshot() const { return records_; }
  void restore(std::map<zwave::NodeId, NodeRecord> records);

  /// NVM image: the binary layout a chipset persists across power cycles.
  ///   magic "ZWNV" | version(1) | count(1) | records...
  /// Each record: id, basic_class, flags(listening|security<<1), wakeup
  /// interval (3 bytes BE), label length, label bytes.
  zc::Bytes serialize_nvm() const;
  /// Parses an NVM image into a table. Rejects bad magic, truncated
  /// records, and duplicate node ids (a corrupted image must not half-load).
  static zc::Result<NodeTable> deserialize_nvm(zc::ByteView image);

 private:
  std::map<zwave::NodeId, NodeRecord> records_;
  std::uint64_t generation_ = 0;
};

}  // namespace zc::sim
