// Deterministic fault injection for the simulated testbed.
//
// The paper's evaluation runs on real, misbehaving hardware: lossy 868/908
// MHz RF, controllers that hang mid-campaign, serial links that glitch —
// the NOP-ping liveness monitor of §III-D exists precisely because the
// device under test misbehaves. This module reproduces that hostility on
// demand: a FaultPlan schedules bursts of packet loss (optionally ACK-only),
// extra frame bit-flips, controller stalls and spontaneous reboots, and
// serial desync windows, all driven by one seeded Rng so a faulty campaign
// replays bit-identically.
//
// The injector attaches through small hook points — RfMedium's fault tap,
// VirtualController's stall/reboot/serial-tap surface — and detaches on
// destruction. It never draws from the channel's own noise Rng, so arming
// a plan does not perturb the medium's deterministic loss/noise stream.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "radio/medium.h"
#include "sim/controller.h"

namespace zc::sim {

/// A scheduled set of faults. All times are absolute virtual times on the
/// testbed's scheduler; windows with `period > 0` recur every `period`.
struct FaultPlan {
  std::uint64_t seed = 0xFA017B57ULL;

  /// Burst packet loss: during each active window every transmission is
  /// dropped channel-wide with `drop_probability`. With `ack_only`, only
  /// MAC acknowledgments are eaten — the classic "command arrived, ack
  /// didn't" retransmission trap.
  struct LossBurst {
    SimTime start = 0;
    SimTime duration = 0;
    SimTime period = 0;  // 0 = one-shot window
    double drop_probability = 0.3;
    bool ack_only = false;
  };
  std::vector<LossBurst> loss_bursts;

  /// Extra bit-flip noise on delivered transmissions, on top of the
  /// channel model's own `bit_flip_rate`.
  struct NoiseBurst {
    SimTime start = 0;
    SimTime duration = 0;
    SimTime period = 0;
    double bit_flip_rate = 0.001;
  };
  std::vector<NoiseBurst> noise_bursts;

  /// Controller firmware hang at `at`, for `duration` (nullopt = wedged
  /// until a hard reboot — the watchdog's worst case).
  struct Stall {
    SimTime at = 0;
    std::optional<SimTime> duration;
  };
  std::vector<Stall> stalls;

  /// Spontaneous controller reboot (brownout) at `at`; the chip is back
  /// after `boot_delay` with volatile MAC state cleared.
  struct Reboot {
    SimTime at = 0;
    SimTime boot_delay = 250 * kMillisecond;
  };
  std::vector<Reboot> reboots;

  /// Serial-link desync: during each active window a chip-to-host frame is
  /// dropped with `drop_probability`, and with `stray_byte_probability` a
  /// non-SOF garbage byte is prepended, forcing the host program's
  /// SOF-resynchronization path.
  struct SerialDesync {
    SimTime start = 0;
    SimTime duration = 0;
    SimTime period = 0;
    double drop_probability = 0.5;
    double stray_byte_probability = 0.25;
  };
  std::vector<SerialDesync> serial_desyncs;
};

/// What the injector actually did (for assertions and reports).
struct FaultStats {
  std::uint64_t transmissions_dropped = 0;
  std::uint64_t acks_dropped = 0;
  std::uint64_t deliveries_corrupted = 0;
  std::uint64_t bits_flipped = 0;
  std::uint64_t stalls_injected = 0;
  std::uint64_t reboots_injected = 0;
  std::uint64_t serial_frames_dropped = 0;
  std::uint64_t serial_strays_injected = 0;
};

/// Arms a FaultPlan against one medium + controller pair. Typically built
/// through Testbed::arm_faults().
class FaultInjector final : public radio::MediumFaultTap {
 public:
  FaultInjector(radio::RfMedium& medium, VirtualController& controller, FaultPlan plan);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  // MediumFaultTap:
  bool drop_transmission(ByteView frame) override;
  void corrupt_bits(radio::BitStream& bits) override;

 private:
  template <typename Window>
  static bool window_active(const Window& window, SimTime now);
  bool serial_tap(Bytes& frame_bytes);

  radio::RfMedium& medium_;
  VirtualController& controller_;
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace zc::sim
