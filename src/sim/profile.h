// Per-device firmware profiles for the paper's testbed (Tables II & IV).
//
// A profile fixes what the paper's fingerprinting measures: the home ID the
// network runs, the command classes the controller *lists* in its NIF
// (15 on 500-series-era firmware, 17 on the later builds), and the set of
// (CMDCL, CMD) pairs the firmware genuinely dispatches — which is larger
// than the listed set and includes the proprietary classes 0x01/0x02.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "sim/vulnerability.h"
#include "zwave/types.h"

namespace zc::sim {

/// Dispatch table shape: class -> commands the firmware really processes.
using HandledCommands = std::map<zwave::CommandClassId, std::vector<zwave::CommandId>>;

struct ControllerProfile {
  DeviceModel model{};
  std::string_view brand;
  std::string_view product;
  int year = 0;
  std::string_view chip_series;  // "500" or "700"
  zwave::HomeId home_id = 0;
  /// True for hub devices (D6/D7: companion smartphone app over cloud);
  /// false for USB sticks driven by the Z-Wave PC Controller program.
  bool hub = false;
  /// Classes advertised in the NIF (Table IV "Known CMDCLs": 17 or 15).
  std::vector<zwave::CommandClassId> listed;
};

/// The profile for one of the seven controllers D1-D7.
const ControllerProfile& controller_profile(DeviceModel model);

/// All seven controller models, in Table II order.
const std::vector<DeviceModel>& all_controller_models();

/// The chipset-common dispatch table (identical across vendors because
/// every device embeds the same Z-Wave chipset family — paper §V-C).
/// Exactly 53 (CMDCL, CMD) pairs, the "CMD" coverage column of Table V.
const HandledCommands& firmware_dispatch_table();

/// Total number of (class, command) pairs in the dispatch table.
std::size_t firmware_handled_pair_count();

}  // namespace zc::sim
