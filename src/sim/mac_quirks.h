// Known one-day MAC-layer quirks.
//
// Table V shows VFuzz finding a handful of *already-known* vulnerabilities
// (1/3/0/4/0 across D1-D5) with no overlap with ZCover's 15 zero-days —
// because VFuzz mutates MAC frame fields while ZCover mutates only the
// application layer. These entries model that disjoint bug population:
// malformed MAC headers (routed/ack/multicast abuse) that older chipset
// firmware mishandles, in the spirit of the public Silicon Labs advisories
// the VFuzz work produced (e.g. VU#142629).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "sim/vulnerability.h"
#include "zwave/frame.h"

namespace zc::sim {

struct MacQuirkSpec {
  int quirk_id = 0;  // 101.. (kept clear of Table III's 1-15)
  std::string_view name;
  std::string_view advisory;  // prior-work identifier
  SimTime outage = 0;
  std::vector<DeviceModel> affected;

  bool affects(DeviceModel model) const;
  /// Whether a (home-id-valid) frame trips this quirk.
  bool matches(const zwave::MacFrame& frame) const;
};

/// The known one-day matrix: D1 exposes 1, D2 exposes 3, D4 exposes 4;
/// D3/D5 run patched firmware and expose none (Table V's VFuzz column).
const std::vector<MacQuirkSpec>& mac_quirk_matrix();

}  // namespace zc::sim
