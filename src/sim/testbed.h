// Testbed assembly: the paper's smart-home lab in one object.
//
// Builds the scheduler, RF medium, one controller (any of D1-D7), the S2
// door lock (D8) and legacy switch (D9), establishes the S2 channel via a
// real X25519 agreement, and places an attacker position 10-70 m away for
// the ZCover dongle to attach to.
#pragma once

#include <memory>

#include "common/clock.h"
#include "common/rng.h"
#include "radio/medium.h"
#include "sim/controller.h"
#include "sim/fault_injector.h"
#include "sim/slave.h"

namespace zc::sim {

struct TestbedConfig {
  DeviceModel controller_model = DeviceModel::kD4_AeotecZw090;
  std::uint64_t seed = 0x2C07E12;
  bool include_slaves = true;
  /// Adds an S0-era motion sensor (node 4) whose reports run the live
  /// S0 nonce handshake against the controller (extension device).
  bool include_s0_sensor = false;
  double attacker_distance_m = 35.0;  // paper: 10-70 m
  SimTime slave_report_interval = 30 * kSecond;
  radio::ChannelModel channel;  // defaults: clean in-home links
};

/// Owns every simulated component; the fuzzer attaches through
/// `attacker_radio_config()` + the shared medium.
class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Rebuilds this testbed for `config` as if freshly constructed, but
  /// recycling the expensive substrate: the scheduler rewinds (time zero,
  /// sequence zero), the RF medium keeps its warm BitBufferPool slots and
  /// DeliveryBatch arena, and only the devices themselves are
  /// reconstructed. The RNG reseeds and is consumed in exactly the
  /// constructor's draw order, so a reset testbed produces byte-identical
  /// campaigns to a fresh Testbed(config) — the property
  /// tests/sim/testbed_reset_test.cpp pins down and core/parallel's
  /// per-worker context reuse relies on. Any FaultInjector armed on the
  /// old world is disarmed and destroyed.
  void reset(TestbedConfig config);

  EventScheduler& scheduler() { return scheduler_; }
  radio::RfMedium& medium() { return *medium_; }
  VirtualController& controller() { return *controller_; }
  const TestbedConfig& config() const { return config_; }

  DoorLock* door_lock() { return lock_.get(); }
  SmartSwitch* smart_switch() { return switch_.get(); }
  S0Sensor* s0_sensor() { return sensor_.get(); }

  /// Radio placement for an external attacker/test tool.
  radio::RadioConfig attacker_radio_config(const std::string& label) const;

  /// Arms a fault plan against this testbed's medium + controller,
  /// replacing any previously armed plan. Returns the live injector for
  /// stats inspection; the testbed owns it.
  FaultInjector& arm_faults(FaultPlan plan);

  /// The armed injector, or nullptr when the testbed runs clean.
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Operator-side restoration after destructive tests: re-includes the
  /// original devices into the controller's table (the researchers rebuilt
  /// the network between memory-tampering trials). Radio state, sessions
  /// and statistics are untouched.
  void restore_network();

  /// Node ids used by the standard smart-home composition.
  static constexpr zwave::NodeId kLockNodeId = 0x02;
  static constexpr zwave::NodeId kSwitchNodeId = 0x03;
  static constexpr zwave::NodeId kS0SensorNodeId = 0x04;

 private:
  /// Everything downstream of the medium: controller, host program,
  /// slaves, S2/S0 session establishment. Shared verbatim by the
  /// constructor and reset() so the two paths cannot drift.
  void build();

  TestbedConfig config_;
  EventScheduler scheduler_;
  Rng rng_;
  std::unique_ptr<radio::RfMedium> medium_;
  std::unique_ptr<VirtualController> controller_;
  std::unique_ptr<HostProgram> host_program_;  // USB models only
  std::unique_ptr<DoorLock> lock_;
  std::unique_ptr<SmartSwitch> switch_;
  std::unique_ptr<S0Sensor> sensor_;
  std::unique_ptr<FaultInjector> fault_injector_;
};

}  // namespace zc::sim
