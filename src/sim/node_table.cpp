#include "sim/node_table.h"

#include <algorithm>
#include <cstdio>

namespace zc::sim {

std::string NodeRecord::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "#%-3u %-18s type=%-17s sec=%-4s listening=%d wakeup=%us",
                node_id, label.empty() ? "(unnamed)" : label.c_str(),
                zwave::basic_class_name(basic_class), zwave::security_level_name(security),
                listening ? 1 : 0, wakeup_interval_s);
  return buf;
}

void NodeTable::upsert(NodeRecord record) {
  records_[record.node_id] = std::move(record);
  ++generation_;
}

bool NodeTable::remove(zwave::NodeId id) {
  const bool erased = records_.erase(id) > 0;
  if (erased) ++generation_;
  return erased;
}

void NodeTable::clear() {
  if (!records_.empty()) ++generation_;
  records_.clear();
}

const NodeRecord* NodeTable::find(zwave::NodeId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

NodeRecord* NodeTable::find_mutable(zwave::NodeId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return nullptr;
  ++generation_;  // caller intends to mutate
  return &it->second;
}

std::vector<zwave::NodeId> NodeTable::node_ids() const {
  std::vector<zwave::NodeId> ids;
  ids.reserve(records_.size());
  for (const auto& [id, record] : records_) ids.push_back(id);
  return ids;
}

std::uint64_t NodeTable::digest() const {
  // FNV-1a over the semantic fields.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& [id, r] : records_) {
    mix(id);
    mix(r.basic_class);
    mix(r.listening ? 1 : 0);
    mix(static_cast<std::uint64_t>(r.security));
    mix(r.wakeup_interval_s);
  }
  return h;
}

std::string NodeTable::render() const {
  std::string out = "node table (" + std::to_string(records_.size()) + " devices):\n";
  for (const auto& [id, record] : records_) {
    out += "  " + record.describe() + "\n";
  }
  if (records_.empty()) out += "  (empty)\n";
  return out;
}

void NodeTable::restore(std::map<zwave::NodeId, NodeRecord> records) {
  records_ = std::move(records);
  ++generation_;
}

namespace {
constexpr char kNvmMagic[4] = {'Z', 'W', 'N', 'V'};
constexpr std::uint8_t kNvmVersion = 1;
}  // namespace

zc::Bytes NodeTable::serialize_nvm() const {
  zc::Bytes out;
  for (char magic : kNvmMagic) out.push_back(static_cast<std::uint8_t>(magic));
  out.push_back(kNvmVersion);
  out.push_back(static_cast<std::uint8_t>(records_.size()));
  for (const auto& [id, r] : records_) {
    out.push_back(id);
    out.push_back(r.basic_class);
    out.push_back(static_cast<std::uint8_t>((r.listening ? 0x01 : 0x00) |
                                            (static_cast<std::uint8_t>(r.security) << 1)));
    out.push_back(static_cast<std::uint8_t>(r.wakeup_interval_s >> 16));
    out.push_back(static_cast<std::uint8_t>(r.wakeup_interval_s >> 8));
    out.push_back(static_cast<std::uint8_t>(r.wakeup_interval_s));
    const std::size_t label_len = std::min<std::size_t>(r.label.size(), 32);
    out.push_back(static_cast<std::uint8_t>(label_len));
    for (std::size_t j = 0; j < label_len; ++j) {
      out.push_back(static_cast<std::uint8_t>(r.label[j]));
    }
  }
  return out;
}

zc::Result<NodeTable> NodeTable::deserialize_nvm(zc::ByteView image) {
  if (image.size() < 6) return zc::Error{zc::Errc::kTruncated, "NVM image below header size"};
  if (!std::equal(kNvmMagic, kNvmMagic + 4, image.begin())) {
    return zc::Error{zc::Errc::kBadField, "bad NVM magic"};
  }
  if (image[4] != kNvmVersion) {
    return zc::Error{zc::Errc::kUnsupported, "unknown NVM version"};
  }
  const std::size_t count = image[5];
  NodeTable table;
  std::size_t pos = 6;
  for (std::size_t i = 0; i < count; ++i) {
    if (pos + 7 > image.size()) return zc::Error{zc::Errc::kTruncated, "record truncated"};
    NodeRecord record;
    record.node_id = image[pos];
    record.basic_class = image[pos + 1];
    const std::uint8_t flags = image[pos + 2];
    record.listening = (flags & 0x01) != 0;
    const std::uint8_t security = flags >> 1;
    if (security > 2) return zc::Error{zc::Errc::kBadField, "bad security bits"};
    record.security = static_cast<zwave::SecurityLevel>(security);
    record.wakeup_interval_s = (static_cast<std::uint32_t>(image[pos + 3]) << 16) |
                               (static_cast<std::uint32_t>(image[pos + 4]) << 8) |
                               image[pos + 5];
    const std::size_t label_len = image[pos + 6];
    pos += 7;
    if (pos + label_len > image.size()) {
      return zc::Error{zc::Errc::kTruncated, "label truncated"};
    }
    record.label.assign(image.begin() + static_cast<std::ptrdiff_t>(pos),
                        image.begin() + static_cast<std::ptrdiff_t>(pos + label_len));
    pos += label_len;
    if (table.find(record.node_id) != nullptr) {
      return zc::Error{zc::Errc::kBadField, "duplicate node id in NVM image"};
    }
    table.upsert(std::move(record));
  }
  return table;
}

}  // namespace zc::sim
