#include "sim/profile.h"

#include <cassert>

namespace zc::sim {

namespace {

// NIF list on 700-series-era firmware (D1, D2, D4, D6): 17 classes.
std::vector<zwave::CommandClassId> listed_17() {
  return {0x22, 0x55, 0x56, 0x59, 0x5A, 0x5E, 0x60, 0x6C, 0x70,
          0x72, 0x73, 0x7A, 0x85, 0x86, 0x8F, 0x98, 0x9F};
}

// NIF list on 500-series firmware (D3, D5, D7): 15 classes.
std::vector<zwave::CommandClassId> listed_15() {
  return {0x56, 0x59, 0x5A, 0x5E, 0x60, 0x6C, 0x70, 0x72,
          0x73, 0x7A, 0x85, 0x86, 0x8F, 0x98, 0x9F};
}

std::vector<ControllerProfile> build_profiles() {
  return {
      {DeviceModel::kD1_ZoozZst10, "ZooZ", "ZST10", 2022, "700", 0xE7DE3F3D, false, listed_17()},
      {DeviceModel::kD2_SilabsUzb7, "SiLab", "UZB-7", 2019, "700", 0xCD007171, false, listed_17()},
      {DeviceModel::kD3_NortekHusbzb1, "Nortek", "HUSBZB-1", 2015, "500", 0xCB51722D, false,
       listed_15()},
      {DeviceModel::kD4_AeotecZw090, "Aeotec", "ZW090-A", 2015, "500", 0xC7E9DD54, false,
       listed_17()},
      {DeviceModel::kD5_ZwaveMeUzb1, "ZWaveMe", "ZMEUUZB1", 2015, "500", 0xF4C3754D, false,
       listed_15()},
      {DeviceModel::kD6_SamsungWv520, "Samsung", "ET-WV520", 2017, "500", 0xCB95A34A, true,
       listed_17()},
      {DeviceModel::kD7_SamsungSth200, "Samsung", "STH-ETH-200", 2015, "500", 0xEDC87EE4, true,
       listed_15()},
  };
}

HandledCommands build_dispatch_table() {
  HandledCommands handled;
  // Proprietary protocol classes.
  handled[0x01] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x0D};  // NOP, NIF, assign, scans, table update
  handled[0x02] = {0x01};                                 // Zensor bind
  // Transport / encapsulation.
  handled[0x9F] = {0x01, 0x02, 0x03, 0x04, 0x0D, 0x0F};  // S2
  handled[0x98] = {0x02, 0x04, 0x40, 0x81};              // S0
  handled[0x55] = {0xC0, 0xE0};                          // Transport Service segments
  handled[0x56] = {0x01};                                // CRC-16 encap
  handled[0x60] = {0x07, 0x09, 0x0D};                    // Multi Channel
  handled[0x6C] = {0x01, 0x02};                          // Supervision
  handled[0x8F] = {0x01};                                // Multi Cmd
  // Management.
  handled[0x86] = {0x11, 0x13, 0x15};                    // Version
  handled[0x70] = {0x04, 0x05};                          // Configuration
  handled[0x72] = {0x04};                                // Manufacturer Specific
  handled[0x5E] = {0x01};                                // Z-Wave Plus Info
  handled[0x59] = {0x01, 0x03, 0x05};                    // AGI
  handled[0x5A] = {0x01};                                // Device Reset Locally
  handled[0x73] = {0x01, 0x02, 0x04};                    // Powerlevel
  handled[0x7A] = {0x01, 0x03, 0x05};                    // Firmware Update MD
  handled[0x85] = {0x01, 0x02, 0x05};                    // Association
  handled[0x84] = {0x04, 0x05, 0x06};                    // Wake Up
  // Network.
  handled[0x34] = {0x01, 0x03};                          // NM Inclusion
  handled[0x52] = {0x01, 0x03};                          // NM Proxy (node list / cached info)
  return handled;
}

}  // namespace

const ControllerProfile& controller_profile(DeviceModel model) {
  static const std::vector<ControllerProfile> profiles = build_profiles();
  for (const auto& profile : profiles) {
    if (profile.model == model) return profile;
  }
  assert(false && "not a controller model");
  return profiles.front();
}

const std::vector<DeviceModel>& all_controller_models() {
  static const std::vector<DeviceModel> models = {
      DeviceModel::kD1_ZoozZst10,  DeviceModel::kD2_SilabsUzb7, DeviceModel::kD3_NortekHusbzb1,
      DeviceModel::kD4_AeotecZw090, DeviceModel::kD5_ZwaveMeUzb1, DeviceModel::kD6_SamsungWv520,
      DeviceModel::kD7_SamsungSth200};
  return models;
}

const HandledCommands& firmware_dispatch_table() {
  static const HandledCommands table = build_dispatch_table();
  return table;
}

std::size_t firmware_handled_pair_count() {
  std::size_t count = 0;
  for (const auto& [cc, cmds] : firmware_dispatch_table()) count += cmds.size();
  return count;
}

}  // namespace zc::sim
