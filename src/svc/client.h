// Client: the blocking line-protocol counterpart of svc::Server, used by
// the CLI's submit/status/watch/pause/resume/cancel commands and by the
// loopback tests. One connection, one request/response at a time, plus a
// recv_line loop for watch streams.
#pragma once

#include <cstdint>
#include <string>

namespace zc::svc {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect(const std::string& host, std::uint16_t port, std::string* error);
  bool connected() const { return fd_ >= 0; }

  /// Sends one request line ('\n' appended here).
  bool send_line(const std::string& line);

  /// Blocks for the next line (response or streamed event). False on EOF
  /// or error — the server went away.
  bool recv_line(std::string* line);

  /// One round trip: send, then receive exactly one line.
  bool request(const std::string& line, std::string* response);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace zc::svc
