// Server: the daemon's wire front-end — a dependency-free TCP listener
// speaking the newline-delimited JSON protocol (svc/protocol.h) and
// bridging it onto a JobManager.
//
// Connection model: one accept thread, one thread per connection. That is
// the right shape for a control plane (a handful of operators and
// scripts, not a web tier), and it keeps every connection's read loop
// trivially blocking. Watch subscriptions fan events out from manager
// hooks onto the connection's socket through a per-connection write mutex,
// so a response and a concurrently streamed event never interleave bytes.
//
// Binding 127.0.0.1 with port 0 and reading the kernel-assigned port back
// (port()) is the loopback-test path: no privileges, no fixed-port races.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "svc/jobs.h"

namespace zc::svc {

class Server {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = kernel-assigned (read back via port())
    JobManager* jobs = nullptr;           // required; not owned
    obs::MetricsRegistry* metrics = nullptr;  // daemon registry; may be null
    /// Invoked when a client sends {"op":"shutdown"} — the serve loop
    /// decides what that means (normally: same path as SIGTERM).
    std::function<void()> on_shutdown_request;
  };

  explicit Server(Config config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts accepting. False (with reason) on failure.
  bool start(std::string* error);

  /// The bound port (the kernel's pick when Config::port was 0).
  std::uint16_t port() const { return port_; }

  /// Stops accepting, closes every connection and joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  struct Connection;

  void accept_main();
  void connection_main(std::shared_ptr<Connection> connection);
  std::string dispatch(const Request& request, const std::shared_ptr<Connection>& connection);

  Config config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace zc::svc
