#include "svc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace zc::svc {

Client::~Client() { close(); }

bool Client::connect(const std::string& host, std::uint16_t port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid address \"" + host + "\"";
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::recv_line(std::string* line) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::request(const std::string& line, std::string* response) {
  return send_line(line) && recv_line(response);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace zc::svc
