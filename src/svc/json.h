// Minimal strict JSON for the service line protocol (docs/SERVICE.md).
//
// The daemon speaks newline-delimited JSON over a raw TCP socket, so the
// codec has two unusual requirements that rule out a generic library even
// if the image shipped one:
//
//  * strictness — a control plane should reject, not guess. The parser
//    accepts exactly the RFC 8259 grammar (minus nothing, plus nothing),
//    fails on trailing garbage, duplicate object keys and over-deep
//    nesting, and keeps every number's raw lexeme so integer fields can be
//    validated with the same no-sloppy-coercion rules the CLI's
//    parse_count applies to argv (rejecting "1e3", "1.0", "-0", 2^64);
//  * determinism — responses and events are byte-compared in tests, so
//    the writer side is explicit string assembly with a fixed key order
//    (helpers here only handle escaping and number formatting).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace zc::svc {

/// One parsed JSON value. Plain tagged struct, not a variant: the protocol
/// layer walks it read-only and the shapes are tiny.
struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool bool_value = false;
  /// Numbers keep their exact source lexeme ("17", "-2.5e3"); strict
  /// integer extraction happens downstream via as_u64.
  std::string number;
  std::string string_value;
  /// Object members in source order (duplicates are a parse error).
  std::vector<std::pair<std::string, JsonValue>> members;
  std::vector<JsonValue> elements;

  /// Member lookup; nullptr when absent or when this is not an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parses exactly one JSON document (leading/trailing whitespace allowed,
/// anything else after the value is an error). On failure returns nullopt
/// and, when `error` is non-null, a one-line reason with a byte offset.
std::optional<JsonValue> parse_json(const std::string& text, std::string* error = nullptr);

/// Strict unsigned extraction: the value must be a JSON number whose
/// lexeme is a bare base-10 natural ("0" or [1-9][0-9]*; no sign, dot,
/// exponent or leading zeros) that fits in 64 bits. The same contract as
/// the CLI's parse_count, applied to a wire field.
bool as_u64(const JsonValue& value, std::uint64_t* out);

/// Appends `text` JSON-escaped (quotes not included) to `out`.
void append_json_escaped(std::string& out, const std::string& text);

/// `"key":` with escaping — the writer-side building block.
std::string json_quote(const std::string& text);

}  // namespace zc::svc
