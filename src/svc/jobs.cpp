#include "svc/jobs.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/clock.h"
#include "common/log.h"
#include "core/executor.h"
#include "sim/profile.h"
#include "svc/json.h"

namespace zc::svc {

namespace {

core::FuzzerFamily family_of(const JobSpec& spec) {
  if (spec.fuzzer == "cov") return core::FuzzerFamily::kCov;
  if (spec.fuzzer == "vfuzz") return core::FuzzerFamily::kVfuzz;
  return core::FuzzerFamily::kPsm;
}

/// The job's shard list, derived exactly like run_trials_parallel derives
/// it from (testbed, campaign, trials) — same seed functions, same order —
/// so the daemon's merged results can be byte-compared against the
/// one-shot path.
std::vector<core::ShardSpec> build_shards(const JobSpec& spec) {
  sim::TestbedConfig testbed;
  testbed.controller_model = spec.device;
  testbed.seed = spec.seed;

  core::CampaignConfig campaign;
  campaign.seed = spec.seed;
  campaign.loop_queue = false;
  if (spec.duration_ms != 0) {
    campaign.duration = static_cast<SimTime>(spec.duration_ms) * kMillisecond;
  }

  std::vector<core::ShardSpec> shards;
  shards.reserve(spec.trials);
  for (std::size_t trial = 0; trial < spec.trials; ++trial) {
    core::ShardSpec shard;
    shard.shard_id = trial;
    shard.testbed = testbed;
    shard.testbed.seed = core::shard_testbed_seed(testbed.seed, trial);
    shard.campaign = campaign;
    shard.campaign.seed = core::shard_campaign_seed(campaign.seed, trial);
    shards.push_back(std::move(shard));
  }
  return shards;
}

void append_u64_field(std::string& out, const char* key, std::uint64_t value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPaused: return "paused";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool job_state_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// Everything the manager tracks about one job. Guarded by the manager
/// mutex except `stop`, which worker threads poll lock-free through the
/// run's abort hook.
struct JobManager::Job {
  std::string id;
  JobSpec spec;
  JobState state = JobState::kQueued;

  std::vector<core::ShardSpec> shards;           // full list, shard_id == index
  std::vector<core::ShardResult> results;        // slot per shard
  std::vector<char> settled;                     // results[i] is this run's outcome
  std::vector<std::vector<store::FindingRecord>> staged;  // ordered findings
  std::map<std::size_t, core::CampaignCheckpoint> checkpoints;  // abort-final, by shard id

  /// The active run's cooperative stop flag; replaced on every launch so a
  /// late poll from a draining run can never cancel the next one.
  std::shared_ptr<std::atomic<bool>> stop = std::make_shared<std::atomic<bool>>(false);
  std::vector<std::size_t> run_map;              // subset index -> shard index
  bool run_active = false;
  bool pause_requested = false;
  bool cancel_requested = false;
  ResumeMode next_resume = ResumeMode::kReplay;

  std::optional<core::ParallelTrialReport> final_report;
  std::string error;

  std::vector<EventSink> sinks;
  std::vector<std::string> event_log;
};

JobManager::JobManager(Config config) : config_(std::move(config)) {
  const std::size_t workers = config_.executor_workers == 0 ? core::default_jobs()
                                                            : config_.executor_workers;
  core::Executor::global(workers);  // size the shared pool once, up front
  control_ = std::thread([this] { control_main(); });
}

JobManager::~JobManager() {
  shutdown_and_checkpoint();
  if (control_.joinable()) control_.join();
}

std::string JobManager::submit(const JobSpec& spec, std::string* error) {
  return enqueue(spec, nullptr, error);
}

std::string JobManager::submit_recovered(const RecoveredJob& recovered, std::string* error) {
  return enqueue(recovered.spec, &recovered, error);
}

std::string JobManager::enqueue(const JobSpec& spec, const RecoveredJob* recovered,
                                std::string* error) {
  if (spec.trials == 0) {
    if (error != nullptr) *error = "trials must be >= 1";
    return "";
  }
  if (!valid_fuzzer_name(spec.fuzzer)) {
    if (error != nullptr) *error = "unknown fuzzer \"" + spec.fuzzer + "\"";
    return "";
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    if (error != nullptr) *error = "daemon is shutting down";
    return "";
  }
  auto job = std::make_unique<Job>();
  job->id = "job-" + std::to_string(next_id_++);
  job->spec = spec;
  job->shards = build_shards(spec);
  job->results.resize(job->shards.size());
  job->settled.assign(job->shards.size(), 0);
  job->staged.resize(job->shards.size());
  if (recovered != nullptr) {
    // Attached before the control thread can see the job: launch_locked
    // reads next_resume and the checkpoint map, so writing them after the
    // enqueue would race an immediate launch into a from-scratch replay.
    job->checkpoints = recovered->checkpoints;
    job->next_resume = ResumeMode::kCheckpoint;
  }
  Job* raw = job.get();
  jobs_.push_back(std::move(job));
  pending_.push_back(raw);
  count_locked(obs::MetricId::kSvcJobsSubmitted);
  emit_state_locked(*raw);
  control_cv_.notify_all();
  return raw->id;
}

bool JobManager::pause(const std::string& id, std::string* error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr) {
    if (error != nullptr) *error = "unknown job \"" + id + "\"";
    return false;
  }
  if (job->state != JobState::kRunning) {
    if (error != nullptr) {
      *error = "job is " + std::string(job_state_name(job->state)) + ", not running";
    }
    return false;
  }
  job->pause_requested = true;
  job->stop->store(true, std::memory_order_relaxed);
  count_locked(obs::MetricId::kSvcJobPauses);
  return true;
}

bool JobManager::resume(const std::string& id, ResumeMode mode, std::string* error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr) {
    if (error != nullptr) *error = "unknown job \"" + id + "\"";
    return false;
  }
  if (job->state != JobState::kPaused) {
    if (error != nullptr) {
      *error = "job is " + std::string(job_state_name(job->state)) + ", not paused";
    }
    return false;
  }
  if (stopping_) {
    if (error != nullptr) *error = "daemon is shutting down";
    return false;
  }
  job->next_resume = mode;
  job->pause_requested = false;
  set_state_locked(*job, JobState::kQueued);
  pending_.push_back(job);
  count_locked(obs::MetricId::kSvcJobResumes);
  control_cv_.notify_all();
  return true;
}

bool JobManager::cancel(const std::string& id, std::string* error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr) {
    if (error != nullptr) *error = "unknown job \"" + id + "\"";
    return false;
  }
  if (job_state_terminal(job->state)) {
    if (error != nullptr) {
      *error = "job already " + std::string(job_state_name(job->state));
    }
    return false;
  }
  job->cancel_requested = true;
  job->stop->store(true, std::memory_order_relaxed);
  if (job->state == JobState::kQueued || job->state == JobState::kPaused) {
    // Not running: settle immediately and drop any queue entry.
    pending_.erase(std::remove(pending_.begin(), pending_.end(), job), pending_.end());
    set_state_locked(*job, JobState::kCancelled);
    count_locked(obs::MetricId::kSvcJobsCancelled);
    cv_.notify_all();
  }
  return true;
}

std::optional<JobStatus> JobManager::status(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  if (job == nullptr) return std::nullopt;
  return status_locked(*job);
}

std::vector<JobStatus> JobManager::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) out.push_back(status_locked(*job));
  return out;
}

bool JobManager::subscribe(const std::string& id, EventSink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Job* job = find_locked(id);
  if (job == nullptr) return false;
  // Full history first: a late watcher sees the same stream an early one
  // did, which is what makes `zc watch` usable after submit returns.
  for (const std::string& line : job->event_log) {
    count_locked(obs::MetricId::kSvcEventsStreamed);
    if (!sink(line)) return true;  // sink died during replay; drop silently
  }
  job->sinks.push_back(std::move(sink));
  return true;
}

bool JobManager::wait(const std::string& id, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  if (job == nullptr) return false;
  return cv_.wait_for(lock, timeout, [job] { return job_state_terminal(job->state); });
}

bool JobManager::wait_state(const std::string& id, JobState target,
                            std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  if (job == nullptr) return false;
  return cv_.wait_for(lock, timeout, [job, target] { return job->state == target; });
}

std::optional<core::ParallelTrialReport> JobManager::report(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Job* job = find_locked(id);
  if (job == nullptr) return std::nullopt;
  return job->final_report;
}

std::vector<RecoveredJob> JobManager::shutdown_and_checkpoint() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) return {};
  stopping_ = true;
  // Ask every active run to stop at its next packet boundary; queued jobs
  // simply never start (start_next_locked checks stopping_).
  for (const auto& job : jobs_) {
    if (job->run_active) job->stop->store(true, std::memory_order_relaxed);
  }
  control_cv_.notify_all();
  cv_.wait(lock, [this] { return active_runs_ == 0 && batch_done_.empty(); });

  std::vector<RecoveredJob> recovered;
  for (const auto& job : jobs_) {
    if (job_state_terminal(job->state)) continue;
    // Durability first: whatever this job staged goes to the journal now,
    // in shard order. A later resubmission re-finds the same records and
    // the journal's dedup absorbs the overlap — superset, no duplicates.
    if (config_.journal != nullptr) {
      for (const auto& batch : job->staged) {
        if (!batch.empty()) config_.journal->append_batch(batch);
      }
    }
    if (!config_.checkpoint_dir.empty()) {
      for (const auto& [shard_id, checkpoint] : job->checkpoints) {
        const std::string path = config_.checkpoint_dir + "/" + job->id + ".shard" +
                                 std::to_string(shard_id);
        if (!core::write_checkpoint_file(path, checkpoint)) {
          ZC_WARN("svc: cannot write %s", path.c_str());
        }
      }
    }
    RecoveredJob entry;
    entry.id = job->id;
    entry.spec = job->spec;
    entry.checkpoints = job->checkpoints;
    recovered.push_back(std::move(entry));
  }
  if (config_.journal != nullptr && config_.journal->is_open()) config_.journal->flush();
  return recovered;
}

std::string JobManager::stats_json() {
  const core::Executor& executor = core::Executor::global();
  const core::ExecutorStats stats = executor.stats();
  const std::size_t workers = executor.workers();

  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t by_state[6] = {0, 0, 0, 0, 0, 0};
  for (const auto& job : jobs_) ++by_state[static_cast<std::size_t>(job->state)];

  if (config_.metrics != nullptr) {
    config_.metrics->set(obs::MetricId::kSvcJobsRunning,
                         by_state[static_cast<std::size_t>(JobState::kRunning)]);
    config_.metrics->set(obs::MetricId::kSvcJobsQueued,
                         by_state[static_cast<std::size_t>(JobState::kQueued)]);
    config_.metrics->set(obs::MetricId::kExecutorWorkers, workers);
    config_.metrics->set(obs::MetricId::kExecutorJobsSubmitted, stats.jobs_submitted);
    config_.metrics->set(obs::MetricId::kExecutorJobsCompleted, stats.jobs_completed);
    config_.metrics->set(obs::MetricId::kExecutorTasksRun, stats.tasks_run);
    config_.metrics->set(obs::MetricId::kExecutorTasksStolen, stats.tasks_stolen);
  }

  std::string out = "\"jobs\":{";
  bool first = true;
  for (std::size_t s = 0; s < 6; ++s) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += job_state_name(static_cast<JobState>(s));
    out += "\":";
    out += std::to_string(by_state[s]);
  }
  out += "},\"executor\":{\"workers\":";
  out += std::to_string(workers);
  append_u64_field(out, "jobs_submitted", stats.jobs_submitted);
  append_u64_field(out, "jobs_completed", stats.jobs_completed);
  append_u64_field(out, "tasks_run", stats.tasks_run);
  append_u64_field(out, "tasks_stolen", stats.tasks_stolen);
  out += '}';
  return ok_response(out);
}

std::size_t JobManager::peak_active_jobs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_active_;
}

bool JobManager::shutting_down() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

// --- control thread ----------------------------------------------------

void JobManager::control_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    control_cv_.wait(lock, [this] {
      return !batch_done_.empty() ||
             (!stopping_ && !pending_.empty() && active_runs_ < config_.max_parallel_jobs) ||
             (stopping_ && active_runs_ == 0);
    });

    while (!batch_done_.empty()) {
      Job* job = batch_done_.back();
      batch_done_.pop_back();
      job->run_active = false;
      --active_runs_;
      if (job->cancel_requested) {
        set_state_locked(*job, JobState::kCancelled);
        count_locked(obs::MetricId::kSvcJobsCancelled);
      } else if (!unfinished_indices_locked(*job).empty()) {
        // Aborted mid-flight: a pause or a daemon shutdown. Either way the
        // job parks with its settled shards, staged findings and any
        // abort-final checkpoints intact.
        job->pause_requested = false;
        set_state_locked(*job, JobState::kPaused);
      } else {
        job->pause_requested = false;  // pause landed after the last shard
        finalize_locked(*job);
      }
      cv_.notify_all();
    }

    if (stopping_) {
      if (active_runs_ == 0 && batch_done_.empty()) return;
      continue;
    }
    start_next_locked();
  }
}

void JobManager::start_next_locked() {
  while (!stopping_ && !pending_.empty() && active_runs_ < config_.max_parallel_jobs) {
    Job* job = pending_.front();
    pending_.pop_front();
    if (job->state != JobState::kQueued) continue;  // cancelled while queued
    launch_locked(*job);
  }
}

void JobManager::launch_locked(Job& job) {
  std::vector<std::size_t> subset = unfinished_indices_locked(job);
  if (subset.empty()) {
    // Resumed with nothing left to run (pause landed after the last
    // shard settled): finalize straight from the parked results.
    finalize_locked(job);
    cv_.notify_all();
    return;
  }

  std::vector<core::ShardSpec> specs;
  specs.reserve(subset.size());
  for (const std::size_t index : subset) {
    // Replaced wholesale: a replayed shard's results, telemetry and staged
    // findings come entirely from the new attempt.
    job.settled[index] = 0;
    job.staged[index].clear();
    job.results[index] = core::ShardResult{};
    core::ShardSpec spec = job.shards[index];
    if (job.next_resume == ResumeMode::kCheckpoint) {
      const auto it = job.checkpoints.find(spec.shard_id);
      if (it != job.checkpoints.end()) spec.campaign.resume_from = it->second;
    }
    specs.push_back(std::move(spec));
  }
  job.run_map = std::move(subset);
  job.stop = std::make_shared<std::atomic<bool>>(false);

  core::ParallelConfig parallel;
  parallel.jobs = config_.workers_per_job;
  parallel.collect_telemetry = job.spec.telemetry;
  parallel.restart = config_.restart;
  parallel.fuzzer = family_of(job.spec);
  parallel.shard_fault_hook = config_.shard_gate;
  // Pause machinery: no periodic checkpoints (they would perturb the
  // metrics stream) — only the abort-final snapshot a pausing PSM shard
  // emits on its way out.
  parallel.checkpoint_interval = 0;
  parallel.skip_unstarted_on_abort = true;
  const std::shared_ptr<std::atomic<bool>> stop = job.stop;
  parallel.abort_hook = [stop] { return stop->load(std::memory_order_relaxed); };

  Job* raw = &job;
  parallel.checkpoint_sink = [this, raw](std::size_t shard_id,
                                         const core::CampaignCheckpoint& checkpoint) {
    const std::lock_guard<std::mutex> lock(mutex_);
    raw->checkpoints[shard_id] = checkpoint;
  };
  const std::vector<std::size_t> run_map = job.run_map;  // immutable copy for hooks
  parallel.commit_sink = [this, raw, run_map](std::size_t subset_index,
                                              std::vector<store::FindingRecord> batch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    raw->staged[run_map[subset_index]] = std::move(batch);
  };
  parallel.shard_complete = [this, raw, run_map](std::size_t subset_index,
                                                 const core::ShardResult& result) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = run_map[subset_index];
    raw->results[index] = result;
    raw->settled[index] = 1;
    std::string line = "{\"event\":\"shard\",\"job\":";
    line += json_quote(raw->id);
    append_u64_field(line, "shard", result.shard_id);
    append_u64_field(line, "packets", result.result.test_packets);
    append_u64_field(line, "findings", raw->staged[index].size());
    line += ",\"health\":";
    line += json_quote(core::shard_health_name(result.health));
    line += ",\"aborted\":";
    line += result.result.aborted ? "true" : "false";
    line += '}';
    emit_locked(*raw, line);
    cv_.notify_all();
  };

  set_state_locked(job, JobState::kRunning);
  job.run_active = true;
  ++active_runs_;
  peak_active_ = std::max(peak_active_, active_runs_);

  // The completion callback runs on the executor worker that retires the
  // last shard; submitting the *next* batch from there would violate the
  // executor's threading rule, so it only posts a message back to the
  // control thread.
  core::run_shards_async(std::move(specs), std::move(parallel),
                         [this, raw](std::vector<core::ShardResult>) {
                           const std::lock_guard<std::mutex> lock(mutex_);
                           batch_done_.push_back(raw);
                           control_cv_.notify_all();
                         });
}

void JobManager::finalize_locked(Job& job) {
  // Merge exactly as run_trials_parallel would have: full shard vector in
  // shard order, same jobs arithmetic; wall time is reporting metadata.
  const std::size_t limit =
      std::min(std::max<std::size_t>(1, job.shards.size()),
               config_.workers_per_job == 0 ? core::default_jobs() : config_.workers_per_job);
  std::vector<core::ShardResult> copy = job.results;
  job.final_report = core::merge_shard_results(std::move(copy), limit, 0.0);

  // Findings reach the shared journal here and only here, strictly in
  // shard order — the same append_batch sequence the one-shot path makes,
  // so the journal file is byte-identical for an identical job.
  if (config_.journal != nullptr) {
    for (const auto& batch : job.staged) {
      if (!batch.empty()) config_.journal->append_batch(batch);
    }
    if (config_.journal->is_open()) config_.journal->flush();
  }

  const bool degraded = !job.final_report->degraded_shards.empty();
  if (degraded) {
    job.error = "quarantined shards:";
    for (const std::size_t id : job.final_report->degraded_shards) {
      job.error += " " + std::to_string(id);
    }
  }
  set_state_locked(job, degraded ? JobState::kFailed : JobState::kDone);
  count_locked(degraded ? obs::MetricId::kSvcJobsFailed : obs::MetricId::kSvcJobsCompleted);
}

void JobManager::emit_locked(Job& job, const std::string& line) {
  job.event_log.push_back(line);
  auto it = job.sinks.begin();
  while (it != job.sinks.end()) {
    count_locked(obs::MetricId::kSvcEventsStreamed);
    if ((*it)(line)) {
      ++it;
    } else {
      it = job.sinks.erase(it);
    }
  }
}

void JobManager::emit_state_locked(Job& job) {
  std::string line = "{\"event\":";
  line += job_state_terminal(job.state) ? json_quote("done") : json_quote("state");
  line += ",\"job\":";
  line += json_quote(job.id);
  line += ",\"state\":";
  line += json_quote(job_state_name(job.state));
  if (!job.spec.name.empty()) {
    line += ",\"name\":";
    line += json_quote(job.spec.name);
  }
  if (job_state_terminal(job.state)) {
    const JobStatus view = status_locked(job);
    append_u64_field(line, "trials", view.shards_total);
    append_u64_field(line, "packets", view.packets);
    append_u64_field(line, "findings", view.findings);
    append_u64_field(line, "bugs", view.bugs);
    append_u64_field(line, "degraded", view.degraded);
    if (!job.error.empty()) {
      line += ",\"error\":";
      line += json_quote(job.error);
    }
  }
  line += '}';
  emit_locked(job, line);
}

void JobManager::set_state_locked(Job& job, JobState next) {
  job.state = next;
  emit_state_locked(job);
}

void JobManager::count_locked(obs::MetricId id, std::uint64_t delta) {
  if (config_.metrics != nullptr) config_.metrics->add(id, delta);
}

std::vector<std::size_t> JobManager::unfinished_indices_locked(const Job& job) const {
  // Finished = settled this run, ran to its own end (not aborted by a
  // pause/shutdown) and not quarantined. Re-running a legitimately
  // quarantined shard after a pause is deterministic — the same fault
  // pattern exhausts the same budget — so the rule stays simple.
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < job.shards.size(); ++i) {
    const bool finished = job.settled[i] && !job.results[i].result.aborted &&
                          job.results[i].health != core::ShardHealth::kQuarantined;
    if (!finished) out.push_back(i);
  }
  return out;
}

JobStatus JobManager::status_locked(const Job& job) const {
  JobStatus out;
  out.id = job.id;
  out.spec = job.spec;
  out.state = job.state;
  out.shards_total = job.shards.size();
  for (std::size_t i = 0; i < job.shards.size(); ++i) {
    // A shard interrupted by pause/shutdown settles with aborted=true, but
    // its result is provisional (replaced on resume) — only shards that ran
    // to their own end count as done.
    if (job.settled[i] && !job.results[i].result.aborted) {
      ++out.shards_done;
      out.packets += job.results[i].result.test_packets;
    }
    out.findings += job.staged[i].size();
  }
  if (job.final_report.has_value()) {
    out.bugs = job.final_report->summary.union_bug_ids.size();
    out.degraded = job.final_report->degraded_shards.size();
  }
  out.error = job.error;
  return out;
}

JobManager::Job* JobManager::find_locked(const std::string& id) const {
  for (const auto& job : jobs_) {
    if (job->id == id) return job.get();
  }
  return nullptr;
}

}  // namespace zc::svc
