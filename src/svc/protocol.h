// The service line protocol: one JSON object per line, request/response
// plus server-pushed events on watching connections. docs/SERVICE.md is
// the normative reference; this header is its in-tree mirror.
//
// Validation philosophy: the wire is argv. Every field gets the same
// strictness the CLI applies to command-line input — unknown operations
// and unknown keys are errors (a typoed "trails" must not silently run a
// default-sized job), numeric fields reject signs, fractions, exponents
// and overflow, and enumerated fields reject anything outside their
// domain. A request either parses into exactly the job the client meant,
// or it is refused with a reason.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/vulnerability.h"

namespace zc::svc {

/// Every operation a client can request.
enum class Op : std::uint8_t {
  kSubmit = 0,  // enqueue a campaign job
  kStatus,      // one job's status, or all jobs when no id given
  kWatch,       // subscribe this connection to a job's event stream
  kPause,       // checkpoint a running job and park it
  kResume,      // continue a paused job (replay | checkpoint)
  kCancel,      // stop a job and discard its pending work
  kStats,       // daemon-level svc.*/executor.* metrics snapshot
  kPing,        // liveness probe
  kShutdown,    // ask the daemon to drain and exit
};

const char* op_name(Op op);

/// How `resume` continues a paused job. Replay is the default because it
/// is the only mode whose results are byte-identical to a never-paused
/// run: unfinished shards re-run from scratch under virtual time (cheap,
/// exact). Checkpoint mode restarts PSM shards from their pause snapshot
/// — deterministic in itself, but a different (shorter) execution than an
/// uninterrupted run, so its use is crash recovery, not transparent pause.
enum class ResumeMode : std::uint8_t { kReplay = 0, kCheckpoint };

const char* resume_mode_name(ResumeMode mode);

/// One campaign job: the service-side analogue of `zc trials` argv.
struct JobSpec {
  sim::DeviceModel device = sim::DeviceModel::kD4_AeotecZw090;
  std::string fuzzer = "psm";     // psm | cov | vfuzz
  std::uint64_t seed = 0x5EED;
  std::uint64_t trials = 1;
  std::uint64_t duration_ms = 0;  // virtual ms per trial; 0 = engine default
  bool telemetry = false;         // per-shard metrics + trace collection
  std::string name;               // optional human label, echoed in events
};

/// One parsed request line.
struct Request {
  Op op = Op::kPing;
  JobSpec spec;                   // submit only
  std::string job_id;             // status/watch/pause/resume/cancel
  ResumeMode resume = ResumeMode::kReplay;  // resume only
};

/// Parses and validates one request line. Returns nullopt with a reason in
/// `error` on any violation: not JSON, not an object, missing/unknown op,
/// unknown keys, wrong types, out-of-domain values, numeric overflow.
std::optional<Request> parse_request(const std::string& line, std::string* error);

/// Device lookup by short id ("D4") or full label ("D4 Aeotec ZW090-A").
std::optional<sim::DeviceModel> device_by_name(const std::string& name);

/// True iff `fuzzer` names a known family (psm | cov | vfuzz).
bool valid_fuzzer_name(const std::string& fuzzer);

// --- client-side encoders (fixed key order; the daemon's parser is the
// --- consumer, tests byte-compare them) -------------------------------

std::string encode_submit(const JobSpec& spec);
std::string encode_job_op(Op op, const std::string& job_id);
std::string encode_resume(const std::string& job_id, ResumeMode mode);
std::string encode_simple(Op op);  // status (all) / stats / ping / shutdown

// --- server-side response/event builders ------------------------------

std::string error_response(const std::string& reason);
std::string ok_response(const std::string& extra_fields);  // "" → {"ok":true}

}  // namespace zc::svc
