// JobManager: the daemon's control plane over the persistent executor.
//
// Many campaign jobs — different devices, seeds and fuzzer families —
// multiplex over the one shared Executor::global() pool. Each job's shard
// batch goes through core::run_shards_async; the manager owns everything
// around that call: the queue, the lifecycle state machine, pause/resume,
// event fan-out to watchers, and the ordered hand-off of findings into
// the shared crash-safe journal.
//
// Lifecycle (docs/SERVICE.md renders the full state machine):
//
//     queued -> running -> done
//                |  ^         \-> failed   (shards quarantined)
//                v  |
//              paused ----------> cancelled
//
// Threading model. One dedicated control thread makes every scheduling
// decision: it is the only caller of run_shards_async, which keeps the
// executor's "never submit from a worker" rule trivially satisfied —
// executor completion callbacks only post a message back here. API calls
// (submit/pause/...) arrive on server connection threads and touch the
// job table under one mutex; shard-completion hooks run on executor
// workers and take the same mutex briefly to stream events.
//
// Determinism. A job's merged results are a pure function of its spec:
// the shard list, seed derivation and result merge are exactly the
// one-shot run_trials_parallel path, and findings reach the journal
// strictly in shard order at finalization — so a (device, seed, fuzzer,
// trials) job produces packets, bugs, metrics and journal bytes identical
// to `zc trials`, no matter how many other jobs ran beside it. Pause
// keeps the guarantee through replay-mode resume: unfinished shards
// re-run from scratch under virtual time (cheap, exact), and their
// staged findings are replaced wholesale. Checkpoint-mode resume trades
// that byte-identity for not repaying finished work — its use is crash
// recovery after a daemon shutdown, not transparent pause.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "store/journal.h"
#include "svc/protocol.h"

namespace zc::svc {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kPaused,
  kDone,
  kFailed,     // finished with quarantined shards
  kCancelled,
};

const char* job_state_name(JobState state);
bool job_state_terminal(JobState state);

/// One watcher. Returns false to unsubscribe (e.g. the connection died);
/// called under the manager lock, so implementations must not call back
/// into the manager and should only hand the line to an outbound buffer
/// or socket.
using EventSink = std::function<bool(const std::string& line)>;

/// Point-in-time public view of one job.
struct JobStatus {
  std::string id;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::size_t shards_total = 0;
  std::size_t shards_done = 0;   // settled (committed) this run
  std::uint64_t packets = 0;     // settled shards' packet total
  std::uint64_t findings = 0;    // staged finding records
  std::size_t bugs = 0;          // union of confirmed bug ids (terminal)
  std::size_t degraded = 0;      // quarantined shard count (terminal)
  std::string error;
};

/// What a cooperative shutdown hands back for each non-terminal job: the
/// spec plus every abort-final checkpoint the pause captured, keyed by
/// shard id. submit_recovered() on a fresh manager resumes from these.
struct RecoveredJob {
  std::string id;
  JobSpec spec;
  std::map<std::size_t, core::CampaignCheckpoint> checkpoints;
};

class JobManager {
 public:
  struct Config {
    /// Jobs allowed in kRunning simultaneously; further submissions queue.
    std::size_t max_parallel_jobs = 2;
    /// Executor workers each job's batch may use (ParallelConfig::jobs);
    /// 0 = every pool worker. The pool itself is sized once, below.
    std::size_t workers_per_job = 0;
    /// Worker floor for Executor::global(); 0 = hardware concurrency.
    std::size_t executor_workers = 0;
    /// Shared findings journal (may be null: findings then live only in
    /// job status). Committed per job, in shard order, at finalization;
    /// cross-campaign dedup is the journal's (device,cc,cmd,param0,flags)
    /// key working as-is. Not owned.
    store::FindingsJournal* journal = nullptr;
    /// Directory for shutdown checkpoints ("" = don't write files).
    std::string checkpoint_dir;
    /// Daemon-level registry for svc.* counters and executor.* gauges.
    /// Never merged into job results (scheduling-dependent values would
    /// break their byte-determinism). Not owned; may be null.
    obs::MetricsRegistry* metrics = nullptr;
    /// Test hook, forwarded to every job's shard_fault_hook: lets tests
    /// gate shard starts so pause/concurrency windows land
    /// deterministically on any host. Production leaves it unset.
    std::function<void(std::size_t shard_id, std::size_t attempt,
                       const core::CancellationToken& token)>
        shard_gate;
    /// Per-shard restart budget (defaults match the one-shot CLI).
    core::ShardRestartPolicy restart;
  };

  explicit JobManager(Config config);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validated spec in, job id out ("" + reason in `error` on refusal).
  std::string submit(const JobSpec& spec, std::string* error);

  /// Resubmits a shutdown-recovered job: shards with a checkpoint resume
  /// from it, the rest replay from scratch. The recovered id is kept when
  /// free, else a fresh one is issued.
  std::string submit_recovered(const RecoveredJob& job, std::string* error);

  bool pause(const std::string& id, std::string* error);
  bool resume(const std::string& id, ResumeMode mode, std::string* error);
  bool cancel(const std::string& id, std::string* error);

  std::optional<JobStatus> status(const std::string& id) const;
  std::vector<JobStatus> list() const;

  /// Attaches a watcher: the job's full event history replays into the
  /// sink first (so late subscribers see a complete stream), then live
  /// events follow. False when the job id is unknown.
  bool subscribe(const std::string& id, EventSink sink);

  /// Blocks until the job reaches `target` (or any terminal state when
  /// `target` is terminal-agnostic via wait()). False on timeout/unknown.
  bool wait(const std::string& id, std::chrono::milliseconds timeout);
  bool wait_state(const std::string& id, JobState target, std::chrono::milliseconds timeout);

  /// The merged report of a terminal job (kDone/kFailed), byte-equal to
  /// the one-shot path's for the same spec. Nullopt otherwise.
  std::optional<core::ParallelTrialReport> report(const std::string& id) const;

  /// Cooperative shutdown: stops the scheduler, asks every running job to
  /// abort at its next packet boundary, waits for the executor to drain,
  /// commits every job's staged findings (partial ones included — the
  /// journal's dedup absorbs the overlap when they are resubmitted) and
  /// flushes the journal, writes checkpoint files when checkpoint_dir is
  /// set, and returns the non-terminal jobs for later resubmission.
  /// Idempotent; the destructor calls it too.
  std::vector<RecoveredJob> shutdown_and_checkpoint();

  /// One-line JSON snapshot of daemon-level gauges/counters (svc.* and
  /// executor.*), refreshed from Executor::global().stats() at call time.
  std::string stats_json();

  /// High-water mark of jobs simultaneously in kRunning.
  std::size_t peak_active_jobs() const;

  /// True once shutdown_and_checkpoint has begun (every running job's
  /// abort flag is already tripped by then) — the serve loop and tests
  /// use it to sequence against an in-flight drain.
  bool shutting_down() const;

 private:
  struct Job;

  /// Shared body of submit()/submit_recovered(): builds and enqueues the
  /// job in ONE locked section. Recovered state (checkpoint map, resume
  /// mode) must be attached before the enqueue makes the job visible to
  /// the control thread — it may launch the job the moment the lock drops.
  std::string enqueue(const JobSpec& spec, const RecoveredJob* recovered, std::string* error);

  void control_main();
  void start_next_locked();
  void launch_locked(Job& job);
  void finalize_locked(Job& job);
  void emit_locked(Job& job, const std::string& line);
  void emit_state_locked(Job& job);
  void set_state_locked(Job& job, JobState next);
  void count_locked(obs::MetricId id, std::uint64_t delta = 1);
  std::vector<std::size_t> unfinished_indices_locked(const Job& job) const;
  JobStatus status_locked(const Job& job) const;
  Job* find_locked(const std::string& id) const;

  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;         // state transitions (waiters)
  std::condition_variable control_cv_; // control-thread wakeups
  std::vector<std::unique_ptr<Job>> jobs_;  // submission order
  std::deque<Job*> pending_;
  std::vector<Job*> batch_done_;       // posted by executor completions
  std::uint64_t next_id_ = 1;
  std::size_t active_runs_ = 0;
  std::size_t peak_active_ = 0;
  bool stopping_ = false;
  std::thread control_;
};

}  // namespace zc::svc
