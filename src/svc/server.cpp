#include "svc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "svc/json.h"
#include "svc/protocol.h"

namespace zc::svc {

/// One accepted socket. The write mutex serializes response lines (the
/// connection thread) against streamed events (manager hooks on executor
/// workers); `open` flips once, after which event sinks unsubscribe
/// themselves by returning false.
struct Server::Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  bool write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (!open.load(std::memory_order_relaxed)) return false;
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        open.store(false, std::memory_order_relaxed);
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }
};

Server::Server(Config config) : config_(std::move(config)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid listen address \"" + config_.host + "\"";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { accept_main(); });
  return true;
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_) {
      connection->open.store(false, std::memory_order_relaxed);
      ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& thread : connection_threads_) {
    if (thread.joinable()) thread.join();
  }
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const auto& connection : connections_) {
    if (connection->fd >= 0) ::close(connection->fd);
  }
  connections_.clear();
}

void Server::accept_main() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR) continue;
      return;  // listener gone
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    connections_.push_back(connection);
    if (config_.metrics != nullptr) config_.metrics->add(obs::MetricId::kSvcConnections);
    connection_threads_.emplace_back(
        [this, connection] { connection_main(connection); });
  }
}

void Server::connection_main(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      if (config_.metrics != nullptr) config_.metrics->add(obs::MetricId::kSvcRequests);
      std::string error;
      const std::optional<Request> request = parse_request(line, &error);
      std::string response;
      if (!request.has_value()) {
        if (config_.metrics != nullptr) {
          config_.metrics->add(obs::MetricId::kSvcProtocolErrors);
        }
        response = error_response(error);
      } else {
        response = dispatch(*request, connection);
      }
      // watch acks inside dispatch and returns "" — nothing more to send.
      if (!response.empty() && !connection->write_line(response)) {
        start = buffer.size();
        break;
      }
    }
    buffer.erase(0, start);
  }
  connection->open.store(false, std::memory_order_relaxed);
}

std::string Server::dispatch(const Request& request,
                             const std::shared_ptr<Connection>& connection) {
  JobManager& jobs = *config_.jobs;
  std::string error;
  switch (request.op) {
    case Op::kPing:
      return ok_response("\"pong\":true");

    case Op::kSubmit: {
      const std::string id = jobs.submit(request.spec, &error);
      if (id.empty()) return error_response(error);
      return ok_response("\"job\":" + json_quote(id));
    }

    case Op::kStatus: {
      auto encode = [](const JobStatus& status) {
        std::string out = "{\"job\":";
        out += json_quote(status.id);
        out += ",\"state\":";
        out += json_quote(job_state_name(status.state));
        out += ",\"device\":";
        out += json_quote(std::string(sim::device_model_name(status.spec.device)).substr(0, 2));
        out += ",\"fuzzer\":";
        out += json_quote(status.spec.fuzzer);
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      ",\"seed\":%llu,\"shards\":%zu,\"shards_done\":%zu,"
                      "\"packets\":%llu,\"findings\":%llu,\"bugs\":%zu,\"degraded\":%zu",
                      static_cast<unsigned long long>(status.spec.seed), status.shards_total,
                      status.shards_done, static_cast<unsigned long long>(status.packets),
                      static_cast<unsigned long long>(status.findings), status.bugs,
                      status.degraded);
        out += buf;
        if (!status.error.empty()) {
          out += ",\"error\":";
          out += json_quote(status.error);
        }
        out += '}';
        return out;
      };
      if (!request.job_id.empty()) {
        const std::optional<JobStatus> status = jobs.status(request.job_id);
        if (!status.has_value()) {
          return error_response("unknown job \"" + request.job_id + "\"");
        }
        return ok_response("\"status\":" + encode(*status));
      }
      std::string array = "\"jobs\":[";
      bool first = true;
      for (const JobStatus& status : jobs.list()) {
        if (!first) array += ',';
        first = false;
        array += encode(status);
      }
      array += ']';
      return ok_response(array);
    }

    case Op::kWatch: {
      // The ack goes out before the subscription so the client always sees
      // {"ok":true} first, then the replayed history, then live events.
      if (!jobs.status(request.job_id).has_value()) {
        return error_response("unknown job \"" + request.job_id + "\"");
      }
      connection->write_line(ok_response("\"watching\":" + json_quote(request.job_id)));
      const std::weak_ptr<Connection> weak = connection;
      jobs.subscribe(request.job_id, [weak](const std::string& event) {
        const std::shared_ptr<Connection> strong = weak.lock();
        if (strong == nullptr) return false;
        return strong->write_line(event);
      });
      return "";  // ack already sent
    }

    case Op::kPause:
      if (!jobs.pause(request.job_id, &error)) return error_response(error);
      return ok_response("\"paused\":" + json_quote(request.job_id));

    case Op::kResume:
      if (!jobs.resume(request.job_id, request.resume, &error)) return error_response(error);
      return ok_response("\"resumed\":" + json_quote(request.job_id));

    case Op::kCancel:
      if (!jobs.cancel(request.job_id, &error)) return error_response(error);
      return ok_response("\"cancelled\":" + json_quote(request.job_id));

    case Op::kStats:
      return jobs.stats_json();

    case Op::kShutdown:
      if (config_.on_shutdown_request) config_.on_shutdown_request();
      return ok_response("\"shutting_down\":true");
  }
  return error_response("unhandled op");
}

}  // namespace zc::svc
