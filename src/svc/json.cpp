#include "svc/json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace zc::svc {

namespace {

/// Recursive-descent parser over a byte range. Depth is capped well below
/// any stack limit: protocol messages are two levels deep, so 32 is
/// already generous and turns a hostile nesting bomb into a clean error.
constexpr std::size_t kMaxDepth = 32;

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& reason) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " at byte %zu", pos);
    error = reason + buf;
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char expected) {
    if (pos < text.size() && text[pos] == expected) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string_value);
      case 't': return parse_literal("true", [&] { out.type = JsonValue::Type::kBool; out.bool_value = true; });
      case 'f': return parse_literal("false", [&] { out.type = JsonValue::Type::kBool; out.bool_value = false; });
      case 'n': return parse_literal("null", [&] { out.type = JsonValue::Type::kNull; });
      default: return parse_number(out);
    }
  }

  template <typename Commit>
  bool parse_literal(const char* word, Commit commit) {
    const std::size_t len = std::string(word).size();
    if (text.compare(pos, len, word) != 0) return fail("invalid literal");
    pos += len;
    commit();
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    // int part: 0 | [1-9][0-9]*
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return fail("invalid number");
    if (text[pos] == '0') {
      ++pos;
    } else {
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return fail("invalid fraction");
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return fail("invalid exponent");
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    out.type = JsonValue::Type::kNumber;
    out.number = text.substr(start, pos - start);
    return true;
  }

  bool parse_hex4(std::uint32_t* out) {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos >= text.size()) return fail("truncated \\u escape");
      const char c = text[pos++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("invalid \\u escape");
    }
    *out = value;
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (true) {
      if (pos >= text.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos;
        continue;
      }
      ++pos;  // consume backslash
      if (pos >= text.size()) return fail("truncated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(&cp)) return false;
          // Surrogates would need pairing logic the protocol never emits;
          // reject rather than mis-decode.
          if (cp >= 0xD800 && cp <= 0xDFFF) return fail("surrogate \\u escape unsupported");
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape");
      }
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    if (!consume('{')) return false;
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      for (const auto& member : out.members) {
        if (member.first == key) return fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    if (!consume('[')) return false;
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.elements.push_back(std::move(value));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& member : members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::optional<JsonValue> parse_json(const std::string& text, std::string* error) {
  Parser parser{text, 0, {}};
  JsonValue value;
  if (!parser.parse_value(value, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    parser.fail("trailing garbage");
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  return value;
}

bool as_u64(const JsonValue& value, std::uint64_t* out) {
  if (value.type != JsonValue::Type::kNumber) return false;
  const std::string& lex = value.number;
  if (lex.empty() || lex[0] == '-') return false;
  if (lex.size() > 1 && lex[0] == '0') return false;  // leading zeros
  for (const char c : lex) {
    if (c < '0' || c > '9') return false;  // rejects '.', 'e', ...
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(lex.c_str(), &end, 10);
  if (errno == ERANGE || end != lex.c_str() + lex.size()) return false;
  *out = static_cast<std::uint64_t>(parsed);
  return true;
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (const unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  append_json_escaped(out, text);
  out += '"';
  return out;
}

}  // namespace zc::svc
