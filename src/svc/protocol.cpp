#include "svc/protocol.h"

#include <cstdio>

#include "sim/profile.h"
#include "svc/json.h"

namespace zc::svc {

namespace {

/// Key whitelist per op: parse_request rejects members outside the op's
/// set, so a misspelled field is an error instead of a silent default.
bool key_allowed(Op op, const std::string& key) {
  if (key == "op") return true;
  switch (op) {
    case Op::kSubmit:
      return key == "device" || key == "fuzzer" || key == "seed" || key == "trials" ||
             key == "duration_ms" || key == "telemetry" || key == "name";
    case Op::kStatus:
      return key == "job";
    case Op::kWatch:
    case Op::kPause:
    case Op::kCancel:
      return key == "job";
    case Op::kResume:
      return key == "job" || key == "mode";
    case Op::kStats:
    case Op::kPing:
    case Op::kShutdown:
      return false;
  }
  return false;
}

bool get_string(const JsonValue& root, const char* key, std::string* out, std::string* error) {
  const JsonValue* value = root.find(key);
  if (value == nullptr) return true;  // optional
  if (value->type != JsonValue::Type::kString) {
    *error = std::string("field \"") + key + "\" must be a string";
    return false;
  }
  *out = value->string_value;
  return true;
}

bool get_u64(const JsonValue& root, const char* key, std::uint64_t* out, std::string* error) {
  const JsonValue* value = root.find(key);
  if (value == nullptr) return true;  // optional
  if (!as_u64(*value, out)) {
    *error = std::string("field \"") + key +
             "\" must be a non-negative integer (no sign/fraction/exponent, < 2^64)";
    return false;
  }
  return true;
}

bool get_bool(const JsonValue& root, const char* key, bool* out, std::string* error) {
  const JsonValue* value = root.find(key);
  if (value == nullptr) return true;
  if (value->type != JsonValue::Type::kBool) {
    *error = std::string("field \"") + key + "\" must be a boolean";
    return false;
  }
  *out = value->bool_value;
  return true;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kSubmit: return "submit";
    case Op::kStatus: return "status";
    case Op::kWatch: return "watch";
    case Op::kPause: return "pause";
    case Op::kResume: return "resume";
    case Op::kCancel: return "cancel";
    case Op::kStats: return "stats";
    case Op::kPing: return "ping";
    case Op::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* resume_mode_name(ResumeMode mode) {
  switch (mode) {
    case ResumeMode::kReplay: return "replay";
    case ResumeMode::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

std::optional<sim::DeviceModel> device_by_name(const std::string& name) {
  for (const sim::DeviceModel model : sim::all_controller_models()) {
    const std::string label = sim::device_model_name(model);
    if (label.substr(0, 2) == name || label == name) return model;
  }
  return std::nullopt;
}

bool valid_fuzzer_name(const std::string& fuzzer) {
  return fuzzer == "psm" || fuzzer == "cov" || fuzzer == "vfuzz";
}

std::optional<Request> parse_request(const std::string& line, std::string* error) {
  std::string parse_error;
  std::optional<JsonValue> root = parse_json(line, &parse_error);
  if (!root.has_value()) {
    *error = "invalid JSON: " + parse_error;
    return std::nullopt;
  }
  if (root->type != JsonValue::Type::kObject) {
    *error = "request must be a JSON object";
    return std::nullopt;
  }

  const JsonValue* op_field = root->find("op");
  if (op_field == nullptr || op_field->type != JsonValue::Type::kString) {
    *error = "missing string field \"op\"";
    return std::nullopt;
  }

  Request request;
  const std::string& op = op_field->string_value;
  if (op == "submit") request.op = Op::kSubmit;
  else if (op == "status") request.op = Op::kStatus;
  else if (op == "watch") request.op = Op::kWatch;
  else if (op == "pause") request.op = Op::kPause;
  else if (op == "resume") request.op = Op::kResume;
  else if (op == "cancel") request.op = Op::kCancel;
  else if (op == "stats") request.op = Op::kStats;
  else if (op == "ping") request.op = Op::kPing;
  else if (op == "shutdown") request.op = Op::kShutdown;
  else {
    *error = "unknown op \"" + op + "\"";
    return std::nullopt;
  }

  for (const auto& member : root->members) {
    if (!key_allowed(request.op, member.first)) {
      *error = "unknown field \"" + member.first + "\" for op \"" + op + "\"";
      return std::nullopt;
    }
  }

  if (request.op == Op::kSubmit) {
    std::string device;
    if (!get_string(*root, "device", &device, error)) return std::nullopt;
    if (!device.empty()) {
      const std::optional<sim::DeviceModel> model = device_by_name(device);
      if (!model.has_value()) {
        *error = "unknown device \"" + device + "\" (use D1..D7 or a full label)";
        return std::nullopt;
      }
      request.spec.device = *model;
    }
    if (!get_string(*root, "fuzzer", &request.spec.fuzzer, error)) return std::nullopt;
    if (!valid_fuzzer_name(request.spec.fuzzer)) {
      *error = "unknown fuzzer \"" + request.spec.fuzzer + "\" (psm | cov | vfuzz)";
      return std::nullopt;
    }
    if (!get_u64(*root, "seed", &request.spec.seed, error)) return std::nullopt;
    if (!get_u64(*root, "trials", &request.spec.trials, error)) return std::nullopt;
    if (request.spec.trials == 0 || request.spec.trials > 4096) {
      *error = "field \"trials\" must be in [1, 4096]";
      return std::nullopt;
    }
    if (!get_u64(*root, "duration_ms", &request.spec.duration_ms, error)) return std::nullopt;
    if (!get_bool(*root, "telemetry", &request.spec.telemetry, error)) return std::nullopt;
    if (!get_string(*root, "name", &request.spec.name, error)) return std::nullopt;
    return request;
  }

  if (!get_string(*root, "job", &request.job_id, error)) return std::nullopt;
  const bool needs_job = request.op == Op::kWatch || request.op == Op::kPause ||
                         request.op == Op::kResume || request.op == Op::kCancel;
  if (needs_job && request.job_id.empty()) {
    *error = std::string("op \"") + op + "\" requires field \"job\"";
    return std::nullopt;
  }
  if (request.op == Op::kResume) {
    std::string mode = "replay";
    if (!get_string(*root, "mode", &mode, error)) return std::nullopt;
    if (mode == "replay") request.resume = ResumeMode::kReplay;
    else if (mode == "checkpoint") request.resume = ResumeMode::kCheckpoint;
    else {
      *error = "unknown resume mode \"" + mode + "\" (replay | checkpoint)";
      return std::nullopt;
    }
  }
  return request;
}

std::string encode_submit(const JobSpec& spec) {
  // Short device id ("D4"): round-trips through device_by_name.
  const std::string label = sim::device_model_name(spec.device);
  char numbers[96];
  std::snprintf(numbers, sizeof(numbers),
                "\"seed\":%llu,\"trials\":%llu,\"duration_ms\":%llu",
                static_cast<unsigned long long>(spec.seed),
                static_cast<unsigned long long>(spec.trials),
                static_cast<unsigned long long>(spec.duration_ms));
  std::string out = "{\"op\":\"submit\",\"device\":";
  out += json_quote(label.substr(0, 2));
  out += ",\"fuzzer\":";
  out += json_quote(spec.fuzzer);
  out += ',';
  out += numbers;
  out += ",\"telemetry\":";
  out += spec.telemetry ? "true" : "false";
  if (!spec.name.empty()) {
    out += ",\"name\":";
    out += json_quote(spec.name);
  }
  out += '}';
  return out;
}

std::string encode_job_op(Op op, const std::string& job_id) {
  std::string out = "{\"op\":";
  out += json_quote(op_name(op));
  if (!job_id.empty()) {
    out += ",\"job\":";
    out += json_quote(job_id);
  }
  out += '}';
  return out;
}

std::string encode_resume(const std::string& job_id, ResumeMode mode) {
  std::string out = "{\"op\":\"resume\",\"job\":";
  out += json_quote(job_id);
  out += ",\"mode\":";
  out += json_quote(resume_mode_name(mode));
  out += '}';
  return out;
}

std::string encode_simple(Op op) { return encode_job_op(op, ""); }

std::string error_response(const std::string& reason) {
  std::string out = "{\"ok\":false,\"error\":";
  out += json_quote(reason);
  out += '}';
  return out;
}

std::string ok_response(const std::string& extra_fields) {
  if (extra_fields.empty()) return "{\"ok\":true}";
  std::string out = "{\"ok\":true,";
  out += extra_fields;
  out += '}';
  return out;
}

}  // namespace zc::svc
