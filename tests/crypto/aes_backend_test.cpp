// Backend-equivalence suite for the AES-128 core: the AES-NI path must be
// byte-identical to the portable reference for every operation the S0/S2
// encapsulation stack performs — raw blocks, CMAC tags over every message
// length the frames use, CTR/OFB keystreams, and DRBG output. The backend
// is captured per Aes128 instance at construction, so each case builds one
// cipher per backend under cpu::ScopedForcePortable and diffs the outputs.
#include "crypto/aes128.h"

#include <gtest/gtest.h>

#include "common/cpu.h"
#include "common/rng.h"
#include "crypto/cmac.h"
#include "crypto/ctr.h"

namespace zc::crypto {
namespace {

bool host_has_aesni() { return cpu::detect().aesni; }

AesKey random_key(Rng& rng) {
  AesKey key{};
  for (auto& byte : key) byte = rng.next_byte();
  return key;
}

AesBlock random_block(Rng& rng) {
  AesBlock block{};
  for (auto& byte : block) byte = rng.next_byte();
  return block;
}

TEST(AesBackend, ReportsPortableUnderForce) {
  cpu::ScopedForcePortable portable;
  EXPECT_EQ(active_aes_backend(), AesBackend::kPortable);
  AesKey key{};
  EXPECT_EQ(Aes128(key).backend(), AesBackend::kPortable);
  EXPECT_STREQ(aes_backend_name(AesBackend::kPortable), "portable");
}

TEST(AesBackend, HardwarePathSelectedWhenAvailable) {
  if (!host_has_aesni()) GTEST_SKIP() << "host has no AES-NI";
  if (active_aes_backend() != AesBackend::kAesni) {
    GTEST_SKIP() << "AES-NI disabled by environment (ZC_DISABLE_AESNI)";
  }
  AesKey key{};
  EXPECT_EQ(Aes128(key).backend(), AesBackend::kAesni);
  EXPECT_STREQ(aes_backend_name(AesBackend::kAesni), "aes-ni");
}

TEST(AesBackend, Fips197VectorOnBothBackends) {
  // FIPS-197 appendix C.1: the one fixed vector both paths must hit.
  const AesKey key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                      0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const AesBlock plain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                          0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const AesBlock expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                             0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  {
    AesBlock block = plain;
    Aes128(key).encrypt_block(block);
    EXPECT_EQ(block, expected) << "dispatched backend";
  }
  {
    cpu::ScopedForcePortable portable;
    AesBlock block = plain;
    Aes128(key).encrypt_block(block);
    EXPECT_EQ(block, expected) << "portable backend";
  }
}

TEST(AesBackend, RandomBlocksEncryptDecryptIdentically) {
  if (!host_has_aesni()) GTEST_SKIP() << "host has no AES-NI";
  Rng rng(0xAE5B10C);
  for (int trial = 0; trial < 256; ++trial) {
    const AesKey key = random_key(rng);
    const AesBlock plain = random_block(rng);

    const Aes128 hw(key);
    AesBlock hw_cipher = plain;
    hw.encrypt_block(hw_cipher);

    cpu::ScopedForcePortable portable;
    const Aes128 sw(key);
    AesBlock sw_cipher = plain;
    sw.encrypt_block(sw_cipher);

    ASSERT_EQ(hw_cipher, sw_cipher) << "encrypt diverged at trial " << trial;

    // Round-trip through both decryptors, crossing the backends: portable
    // must invert hardware and vice versa (same schedule, same bytes).
    AesBlock back_hw = sw_cipher;
    hw.decrypt_block(back_hw);
    AesBlock back_sw = hw_cipher;
    sw.decrypt_block(back_sw);
    ASSERT_EQ(back_hw, plain) << "hw decrypt diverged at trial " << trial;
    ASSERT_EQ(back_sw, plain) << "sw decrypt diverged at trial " << trial;
  }
}

TEST(AesBackend, CmacIdenticalForAllS2MessageLengths) {
  if (!host_has_aesni()) GTEST_SKIP() << "host has no AES-NI";
  // 0..64 covers every CMAC input length the S2 encap path produces
  // (empty AAD corner, sub-block, exact-block, and multi-block messages).
  Rng rng(0xC3AC);
  for (std::size_t len = 0; len <= 64; ++len) {
    const AesKey key = random_key(rng);
    const Bytes message = rng.bytes(len);

    const AesBlock hw_tag = aes_cmac(key, message);
    const Bytes hw_trunc = aes_cmac_truncated(key, message, 8);

    cpu::ScopedForcePortable portable;
    const AesBlock sw_tag = aes_cmac(key, message);
    ASSERT_EQ(hw_tag, sw_tag) << "CMAC diverged at length " << len;
    ASSERT_TRUE(aes_cmac_verify(key, message, hw_trunc))
        << "truncated tag cross-check failed at length " << len;
  }
}

TEST(AesBackend, CtrAndOfbKeystreamsIdentical) {
  if (!host_has_aesni()) GTEST_SKIP() << "host has no AES-NI";
  // Lengths straddle the block boundaries S0/S2 payloads hit (partial
  // final block, exact multiple, multi-block).
  Rng rng(0xC7B0FB);
  for (std::size_t len = 0; len <= 48; ++len) {
    const AesKey key = random_key(rng);
    const AesBlock iv = random_block(rng);
    const Bytes data = rng.bytes(len);

    const Bytes hw_ctr = aes_ctr_crypt(key, iv, data);
    const Bytes hw_ofb = aes_ofb_crypt(key, iv, data);

    cpu::ScopedForcePortable portable;
    ASSERT_EQ(aes_ctr_crypt(key, iv, data), hw_ctr) << "CTR diverged at " << len;
    ASSERT_EQ(aes_ofb_crypt(key, iv, data), hw_ofb) << "OFB diverged at " << len;
    // Keystream modes are involutions; decrypting with either backend
    // must recover the plaintext produced by the other.
    ASSERT_EQ(aes_ctr_crypt(key, iv, hw_ctr), data);
    ASSERT_EQ(aes_ofb_crypt(key, iv, hw_ofb), data);
  }
}

TEST(AesBackend, CtrDrbgStreamsIdentical) {
  if (!host_has_aesni()) GTEST_SKIP() << "host has no AES-NI";
  Rng rng(0xD4B6);
  const Bytes seed = rng.bytes(32);
  const Bytes reseed = rng.bytes(32);

  CtrDrbg hw(seed);
  const Bytes hw_a = hw.generate(40);
  hw.reseed(reseed);
  const Bytes hw_b = hw.generate(16);

  cpu::ScopedForcePortable portable;
  CtrDrbg sw(seed);
  EXPECT_EQ(sw.generate(40), hw_a);
  sw.reseed(reseed);
  EXPECT_EQ(sw.generate(16), hw_b);
}

}  // namespace
}  // namespace zc::crypto
