#include "crypto/ctr.h"

#include <gtest/gtest.h>

namespace zc::crypto {
namespace {

TEST(CtrTest, Sp80038aF51FirstBlock) {
  const AesKey key = make_key(*from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock iv = make_block(*from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"));
  const Bytes plaintext = *from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Bytes ciphertext = aes_ctr_crypt(key, iv, plaintext);
  EXPECT_EQ(to_hex(ciphertext), "874d6191b620e3261bef6864990db6ce");
}

TEST(CtrTest, Sp80038aF51TwoBlocks) {
  const AesKey key = make_key(*from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock iv = make_block(*from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"));
  const Bytes plaintext = *from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes ciphertext = aes_ctr_crypt(key, iv, plaintext);
  EXPECT_EQ(to_hex(ciphertext),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(CtrTest, RoundTripOddLengths) {
  const AesKey key = make_key(*from_hex("000102030405060708090a0b0c0d0e0f"));
  AesBlock iv{};
  iv[15] = 1;
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 33u, 63u}) {
    Bytes plaintext(len);
    for (std::size_t i = 0; i < len; ++i) plaintext[i] = static_cast<std::uint8_t>(i * 7);
    const Bytes ciphertext = aes_ctr_crypt(key, iv, plaintext);
    EXPECT_EQ(aes_ctr_crypt(key, iv, ciphertext), plaintext) << "len=" << len;
    if (len > 0) {
      EXPECT_NE(ciphertext, plaintext);
    }
  }
}

TEST(CtrTest, OfbRoundTrip) {
  const AesKey key = make_key(*from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock iv = make_block(*from_hex("000102030405060708090a0b0c0d0e0f"));
  const Bytes plaintext = {0x25, 0x01, 0xFF, 0x00, 0x62};
  const Bytes ciphertext = aes_ofb_crypt(key, iv, plaintext);
  EXPECT_NE(ciphertext, plaintext);
  EXPECT_EQ(aes_ofb_crypt(key, iv, ciphertext), plaintext);
}

TEST(CtrTest, OfbSp80038aF41FirstBlock) {
  // NIST SP 800-38A F.4.1 (OFB-AES128.Encrypt), segment 1.
  const AesKey key = make_key(*from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock iv = make_block(*from_hex("000102030405060708090a0b0c0d0e0f"));
  const Bytes plaintext = *from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(to_hex(aes_ofb_crypt(key, iv, plaintext)), "3b3fd92eb72dad20333449f8e83cfb4a");
}

TEST(CtrDrbgTest, DeterministicFromSeed) {
  const Bytes seed(32, 0x42);
  CtrDrbg a(seed);
  CtrDrbg b(seed);
  EXPECT_EQ(a.generate(48), b.generate(48));
}

TEST(CtrDrbgTest, StateRatchets) {
  CtrDrbg drbg(Bytes(32, 0x42));
  const Bytes first = drbg.generate(16);
  const Bytes second = drbg.generate(16);
  EXPECT_NE(first, second);
}

TEST(CtrDrbgTest, ReseedChangesStream) {
  CtrDrbg a(Bytes(32, 0x42));
  CtrDrbg b(Bytes(32, 0x42));
  Bytes reseed(32, 0x99);
  b.reseed(reseed);
  EXPECT_NE(a.generate(16), b.generate(16));
}

TEST(CtrDrbgTest, OutputLooksBalanced) {
  CtrDrbg drbg(Bytes(32, 0x07));
  const Bytes stream = drbg.generate(4096);
  std::size_t ones = 0;
  for (std::uint8_t b : stream) ones += static_cast<std::size_t>(__builtin_popcount(b));
  const double ratio = static_cast<double>(ones) / (4096 * 8);
  EXPECT_NEAR(ratio, 0.5, 0.02);
}

}  // namespace
}  // namespace zc::crypto
