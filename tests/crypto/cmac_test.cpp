#include "crypto/cmac.h"

#include <gtest/gtest.h>

namespace zc::crypto {
namespace {

// RFC 4493 test vectors (key 2b7e1516...).
const char* kKeyHex = "2b7e151628aed2a6abf7158809cf4f3c";
const char* kMsg64 =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";

struct CmacVector {
  std::size_t message_len;
  const char* tag;
};

class Rfc4493 : public ::testing::TestWithParam<CmacVector> {};

TEST_P(Rfc4493, TagMatches) {
  const AesKey key = make_key(*from_hex(kKeyHex));
  const Bytes full_message = *from_hex(kMsg64);
  const ByteView message(full_message.data(), GetParam().message_len);
  const AesBlock tag = aes_cmac(key, message);
  EXPECT_EQ(to_hex(ByteView(tag.data(), tag.size())), GetParam().tag);
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, Rfc4493,
    ::testing::Values(CmacVector{0, "bb1d6929e95937287fa37d129b756746"},
                      CmacVector{16, "070a16b46b4d4144f79bdd9dd04a287c"},
                      CmacVector{40, "dfa66747de9ae63030ca32611497c827"},
                      CmacVector{64, "51f0bebf7e3b9d92fc49741779363cfe"}));

TEST(CmacTest, TruncatedTagIsPrefix) {
  const AesKey key = make_key(*from_hex(kKeyHex));
  const Bytes message = {1, 2, 3, 4, 5};
  const AesBlock full = aes_cmac(key, message);
  const Bytes tag8 = aes_cmac_truncated(key, message, 8);
  ASSERT_EQ(tag8.size(), 8u);
  EXPECT_TRUE(std::equal(tag8.begin(), tag8.end(), full.begin()));
}

TEST(CmacTest, VerifyAcceptsCorrectTag) {
  const AesKey key = make_key(*from_hex(kKeyHex));
  const Bytes message = {0xDE, 0xAD, 0xBE, 0xEF};
  const Bytes tag = aes_cmac_truncated(key, message, 8);
  EXPECT_TRUE(aes_cmac_verify(key, message, tag));
}

TEST(CmacTest, VerifyRejectsTamperedMessage) {
  const AesKey key = make_key(*from_hex(kKeyHex));
  Bytes message = {0xDE, 0xAD, 0xBE, 0xEF};
  const Bytes tag = aes_cmac_truncated(key, message, 8);
  message[0] ^= 0x01;
  EXPECT_FALSE(aes_cmac_verify(key, message, tag));
}

TEST(CmacTest, VerifyRejectsTamperedTag) {
  const AesKey key = make_key(*from_hex(kKeyHex));
  const Bytes message = {0xDE, 0xAD, 0xBE, 0xEF};
  Bytes tag = aes_cmac_truncated(key, message, 8);
  tag[7] ^= 0x80;
  EXPECT_FALSE(aes_cmac_verify(key, message, tag));
}

TEST(CmacTest, VerifyRejectsSillyTagLengths) {
  const AesKey key = make_key(*from_hex(kKeyHex));
  const Bytes message = {1};
  EXPECT_FALSE(aes_cmac_verify(key, message, Bytes{}));
  EXPECT_FALSE(aes_cmac_verify(key, message, Bytes(17, 0)));
}

TEST(CmacTest, MessageLengthSweepIsStable) {
  // Property: each length produces a distinct deterministic tag.
  const AesKey key = make_key(*from_hex(kKeyHex));
  Bytes message;
  std::set<std::string> tags;
  for (int len = 0; len <= 48; ++len) {
    const AesBlock tag = aes_cmac(key, message);
    tags.insert(to_hex(ByteView(tag.data(), tag.size())));
    message.push_back(static_cast<std::uint8_t>(len));
  }
  EXPECT_EQ(tags.size(), 49u);
}

}  // namespace
}  // namespace zc::crypto
