#include "crypto/x25519.h"

#include <gtest/gtest.h>

namespace zc::crypto {
namespace {

X25519Key key_from_hex(const char* hex) { return make_x25519_key(*from_hex(hex)); }

std::string hex(const X25519Key& key) { return to_hex(ByteView(key.data(), key.size())); }

TEST(X25519Test, Rfc7748Section52Vector1) {
  const X25519Key scalar =
      key_from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const X25519Key u =
      key_from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(hex(x25519(scalar, u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519Test, Rfc7748Section52Vector2) {
  const X25519Key scalar =
      key_from_hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const X25519Key u =
      key_from_hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(hex(x25519(scalar, u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Test, Rfc7748Section61PublicKeys) {
  const X25519Key alice_priv =
      key_from_hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const X25519Key bob_priv =
      key_from_hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  EXPECT_EQ(hex(x25519_public(alice_priv)),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex(x25519_public(bob_priv)),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
}

TEST(X25519Test, Rfc7748Section61SharedSecret) {
  const X25519Key alice_priv =
      key_from_hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const X25519Key bob_priv =
      key_from_hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  const X25519Key alice_pub = x25519_public(alice_priv);
  const X25519Key bob_pub = x25519_public(bob_priv);
  const X25519Key k_alice = x25519(alice_priv, bob_pub);
  const X25519Key k_bob = x25519(bob_priv, alice_pub);
  EXPECT_EQ(k_alice, k_bob);
  EXPECT_EQ(hex(k_alice),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519Test, DiffieHellmanSymmetrySweep) {
  // Property: scalarmult commutes through the DH construction for many
  // (deterministic) private key pairs.
  for (std::uint8_t i = 1; i <= 8; ++i) {
    X25519Key a{};
    X25519Key b{};
    for (std::size_t j = 0; j < 32; ++j) {
      a[j] = static_cast<std::uint8_t>(i * 11 + j);
      b[j] = static_cast<std::uint8_t>(i * 29 + j * 3 + 1);
    }
    const X25519Key shared_ab = x25519(a, x25519_public(b));
    const X25519Key shared_ba = x25519(b, x25519_public(a));
    EXPECT_EQ(shared_ab, shared_ba) << "pair " << static_cast<int>(i);
  }
}

}  // namespace
}  // namespace zc::crypto
