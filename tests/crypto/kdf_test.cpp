#include "crypto/kdf.h"

#include <gtest/gtest.h>

namespace zc::crypto {
namespace {

TEST(KdfTest, ExpandProducesRequestedLengths) {
  AesKey prk{};
  prk.fill(0x11);
  const Bytes info = {'i', 'n', 'f', 'o'};
  for (std::size_t len : {1u, 15u, 16u, 17u, 32u, 48u, 100u}) {
    EXPECT_EQ(ckdf_expand(prk, info, len).size(), len);
  }
}

TEST(KdfTest, ExpandIsDeterministicAndPrefixConsistent) {
  AesKey prk{};
  prk.fill(0x22);
  const Bytes info = {'x'};
  const Bytes long_out = ckdf_expand(prk, info, 64);
  const Bytes short_out = ckdf_expand(prk, info, 16);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(KdfTest, ExpandInfoSeparatesStreams) {
  AesKey prk{};
  prk.fill(0x33);
  const Bytes a = ckdf_expand(prk, Bytes{'a'}, 32);
  const Bytes b = ckdf_expand(prk, Bytes{'b'}, 32);
  EXPECT_NE(a, b);
}

TEST(KdfTest, S2KeysDependOnSharedSecret) {
  const Bytes pub_a(32, 0x01);
  const Bytes pub_b(32, 0x02);
  const S2Keys k1 = derive_s2_keys(Bytes(32, 0xAA), pub_a, pub_b);
  const S2Keys k2 = derive_s2_keys(Bytes(32, 0xAB), pub_a, pub_b);
  EXPECT_NE(k1.ccm_key, k2.ccm_key);
  EXPECT_NE(k1.auth_key, k2.auth_key);
}

TEST(KdfTest, S2KeySetMembersAreDistinct) {
  const S2Keys keys = derive_s2_keys(Bytes(32, 0xAA), Bytes(32, 1), Bytes(32, 2));
  EXPECT_NE(keys.ccm_key, keys.auth_key);
  EXPECT_NE(keys.auth_key, keys.nonce_key);
  EXPECT_NE(keys.ccm_key, keys.nonce_key);
}

TEST(KdfTest, S0KeysDeriveFromFixedPlaintexts) {
  AesKey network_key{};
  network_key.fill(0x5A);
  const S0Keys keys = derive_s0_keys(network_key);
  // Ke = AES(Kn, 0xAA * 16), Ka = AES(Kn, 0x55 * 16): check directly.
  const Aes128 cipher(network_key);
  AesBlock pe{};
  pe.fill(0xAA);
  cipher.encrypt_block(pe);
  EXPECT_TRUE(std::equal(keys.enc_key.begin(), keys.enc_key.end(), pe.begin()));
  EXPECT_NE(keys.enc_key, keys.auth_key);
}

TEST(KdfTest, S0TempKeyDerivationIsWeakByDesign) {
  // The S0 inclusion weakness: the all-zero temp key gives every attacker
  // the same derived keys.
  const S0Keys ours = derive_s0_keys(AesKey{});
  const S0Keys attackers = derive_s0_keys(AesKey{});
  EXPECT_EQ(ours.enc_key, attackers.enc_key);
  EXPECT_EQ(ours.auth_key, attackers.auth_key);
}

}  // namespace
}  // namespace zc::crypto
