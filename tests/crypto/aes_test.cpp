#include "crypto/aes128.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace zc::crypto {
namespace {

AesKey key_from_hex(const char* hex) { return make_key(*from_hex(hex)); }
AesBlock block_from_hex(const char* hex) { return make_block(*from_hex(hex)); }

TEST(Aes128Test, Fips197AppendixBVector) {
  const Aes128 cipher(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  AesBlock block = block_from_hex("00112233445566778899aabbccddeeff");
  cipher.encrypt_block(block);
  EXPECT_EQ(to_hex(ByteView(block.data(), block.size())),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

struct EcbVector {
  const char* plaintext;
  const char* ciphertext;
};

// NIST SP 800-38A F.1.1 (ECB-AES128.Encrypt).
class Sp80038aEcb : public ::testing::TestWithParam<EcbVector> {};

TEST_P(Sp80038aEcb, EncryptMatches) {
  const Aes128 cipher(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  AesBlock block = block_from_hex(GetParam().plaintext);
  cipher.encrypt_block(block);
  EXPECT_EQ(to_hex(ByteView(block.data(), block.size())), GetParam().ciphertext);
}

TEST_P(Sp80038aEcb, DecryptInverts) {
  const Aes128 cipher(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  AesBlock block = block_from_hex(GetParam().ciphertext);
  cipher.decrypt_block(block);
  EXPECT_EQ(to_hex(ByteView(block.data(), block.size())), GetParam().plaintext);
}

INSTANTIATE_TEST_SUITE_P(
    NistVectors, Sp80038aEcb,
    ::testing::Values(
        EcbVector{"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
        EcbVector{"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
        EcbVector{"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
        EcbVector{"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"}));

TEST(Aes128Test, EncryptDecryptRoundTripSweep) {
  // Property: decrypt(encrypt(x)) == x across many keys/blocks.
  for (std::uint8_t seed = 0; seed < 32; ++seed) {
    AesKey key{};
    AesBlock block{};
    for (std::size_t i = 0; i < 16; ++i) {
      key[i] = static_cast<std::uint8_t>(seed * 17 + i * 3);
      block[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
    }
    const Aes128 cipher(key);
    AesBlock work = block;
    cipher.encrypt_block(work);
    EXPECT_NE(work, block);  // never a fixed point for these inputs
    cipher.decrypt_block(work);
    EXPECT_EQ(work, block);
  }
}

TEST(Aes128Test, DifferentKeysGiveDifferentCiphertext) {
  const AesBlock plain = block_from_hex("00000000000000000000000000000000");
  const Aes128 a(key_from_hex("00000000000000000000000000000000"));
  const Aes128 b(key_from_hex("00000000000000000000000000000001"));
  EXPECT_NE(a.encrypt(plain), b.encrypt(plain));
}

}  // namespace
}  // namespace zc::crypto
