#include "zwave/s2_inclusion.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "zwave/dsk.h"

namespace zc::zwave {
namespace {

struct Pair {
  Pair()
      : including(S2InclusionMachine::Role::kIncluding, make_key(0x11)),
        joining(S2InclusionMachine::Role::kJoining, make_key(0x22)) {}

  static crypto::X25519Key make_key(std::uint8_t seed) {
    Rng rng(seed);
    return crypto::make_x25519_key(rng.bytes(32));
  }

  /// Runs the exchange to completion, recording the transcript. Returns
  /// true when both sides finish without failure.
  bool run(std::vector<AppPayload>* transcript = nullptr) {
    InclusionStep step = including.start();
    bool from_including = true;
    int guard = 0;
    while (step.send.has_value()) {
      if (transcript != nullptr) transcript->push_back(*step.send);
      S2InclusionMachine& receiver = from_including ? joining : including;
      step = receiver.on_message(*step.send);
      from_including = !from_including;
      if (step.failure != KexFail::kNone) {
        failure = step.failure;
        return false;
      }
      if (++guard > 20) return false;
    }
    return including.established().has_value() && joining.established().has_value();
  }

  S2InclusionMachine including;
  S2InclusionMachine joining;
  KexFail failure = KexFail::kNone;
};

TEST(S2InclusionTest, HappyPathEstablishesMatchingChannels) {
  Pair pair;
  ASSERT_TRUE(pair.run());
  const auto& a = *pair.including.established();
  const auto& b = *pair.joining.established();
  EXPECT_EQ(a.keys.ccm_key, b.keys.ccm_key);
  EXPECT_EQ(a.keys.auth_key, b.keys.auth_key);
  EXPECT_EQ(a.span_seed, b.span_seed);
  EXPECT_EQ(a.span_seed.size(), 32u);
}

TEST(S2InclusionTest, EstablishedChannelCarriesRealTraffic) {
  Pair pair;
  ASSERT_TRUE(pair.run());
  S2Session controller_session(pair.including.established()->keys,
                               pair.including.established()->span_seed);
  S2Session lock_session(pair.joining.established()->keys,
                         pair.joining.established()->span_seed);
  AppPayload lock_cmd;
  lock_cmd.cmd_class = 0x62;
  lock_cmd.command = 0x01;
  lock_cmd.params = {0xFF};
  const auto outer = controller_session.encapsulate(lock_cmd, 0xC7E9DD54, 0x01, 0x02);
  const auto inner = lock_session.decapsulate(outer, 0xC7E9DD54, 0x01, 0x02);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner.value().params, (Bytes{0xFF}));
}

TEST(S2InclusionTest, PassiveObserverLearnsNothingUseful) {
  // The S0 flaw does not recur: the full plaintext transcript does not let
  // an eavesdropper decrypt the subsequent traffic.
  Pair pair;
  std::vector<AppPayload> transcript;
  ASSERT_TRUE(pair.run(&transcript));
  ASSERT_GE(transcript.size(), 5u);

  // The only secret-bearing values on air are the two public keys; an
  // attacker combining them with an arbitrary private key of their own
  // gets different session keys.
  Rng rng(0xBAD);
  const auto mallory = crypto::make_x25519_key(rng.bytes(32));
  crypto::X25519Key alice_pub{};
  for (const auto& message : transcript) {
    if (message.command == 0x08 && message.params.size() == 33 &&
        message.params[0] == 0x01) {
      std::copy(message.params.begin() + 1, message.params.end(), alice_pub.begin());
    }
  }
  const auto guessed = s2_key_agreement(mallory, alice_pub);
  EXPECT_NE(guessed.ccm_key, pair.including.established()->keys.ccm_key);
}

TEST(S2InclusionTest, SchemeMismatchFails) {
  Pair pair;
  (void)pair.including.start();
  // Joining answers KEX_GET normally; corrupt the report's scheme byte.
  AppPayload report;
  report.cmd_class = kSecurity2Class;
  report.command = 0x05;
  report.params = {0x00, 0x00 /* no schemes */, 0x01, 0x87};
  const auto step = pair.including.on_message(report);
  EXPECT_EQ(step.failure, KexFail::kScheme);
  ASSERT_TRUE(step.send.has_value());
  EXPECT_EQ(step.send->command, 0x07);  // KEX_FAIL on air
}

TEST(S2InclusionTest, CurveMismatchFails) {
  Pair pair;
  AppPayload set;
  set.cmd_class = kSecurity2Class;
  set.command = 0x06;
  set.params = {0x00, 0x02, 0x00 /* no curves */, 0x87};
  (void)pair.joining.on_message(AppPayload{kSecurity2Class, 0x04, {}});
  const auto step = pair.joining.on_message(set);
  EXPECT_EQ(step.failure, KexFail::kCurve);
}

TEST(S2InclusionTest, OutOfOrderMessageFailsProtocol) {
  Pair pair;
  AppPayload verify;
  verify.cmd_class = kSecurity2Class;
  verify.command = 0x0B;
  verify.params = Bytes(8, 0);
  const auto step = pair.including.on_message(verify);  // before start()
  EXPECT_EQ(step.failure, KexFail::kProtocol);
}

TEST(S2InclusionTest, TamperedPublicKeyFailsKeyVerification) {
  // A MITM swapping the joining node's public key cannot complete the
  // exchange: the key-confirmation CMAC disagrees.
  Pair pair;
  InclusionStep step = pair.including.start();
  step = pair.joining.on_message(*step.send);   // KEX_GET -> KEX_REPORT
  step = pair.including.on_message(*step.send); // -> KEX_SET
  step = pair.joining.on_message(*step.send);   // -> joining PUBLIC_KEY_REPORT

  AppPayload tampered = *step.send;
  tampered.params[5] ^= 0x01;  // flip a public-key bit
  step = pair.including.on_message(tampered);   // -> including PUBLIC_KEY_REPORT
  ASSERT_TRUE(step.send.has_value());
  step = pair.joining.on_message(*step.send);   // -> NETWORK_KEY_VERIFY
  ASSERT_TRUE(step.send.has_value());
  step = pair.including.on_message(*step.send);
  EXPECT_EQ(step.failure, KexFail::kKeyVerify);
  EXPECT_FALSE(pair.including.established().has_value());
}

TEST(S2InclusionTest, AuthenticatedInclusionAcceptsCorrectPin) {
  Pair pair;
  const auto joining_pub = crypto::x25519_public(Pair::make_key(0x22));
  pair.including.require_dsk_pin(dsk_pin(dsk_from_public_key(joining_pub)));
  EXPECT_TRUE(pair.run());
}

TEST(S2InclusionTest, AuthenticatedInclusionRejectsWrongPin) {
  Pair pair;
  pair.including.require_dsk_pin(0x0000);  // installer typo / MITM key
  EXPECT_FALSE(pair.run());
  EXPECT_EQ(pair.failure, KexFail::kAuth);
}

TEST(S2InclusionTest, PinBlocksKeySubstitution) {
  // A MITM replacing the joining key now fails *before* key confirmation.
  Pair pair;
  const auto joining_pub = crypto::x25519_public(Pair::make_key(0x22));
  pair.including.require_dsk_pin(dsk_pin(dsk_from_public_key(joining_pub)));

  InclusionStep step = pair.including.start();
  step = pair.joining.on_message(*step.send);
  step = pair.including.on_message(*step.send);
  step = pair.joining.on_message(*step.send);  // joining PUBLIC_KEY_REPORT
  AppPayload swapped = *step.send;
  const auto mallory_pub = crypto::x25519_public(Pair::make_key(0x99));
  std::copy(mallory_pub.begin(), mallory_pub.end(), swapped.params.begin() + 1);
  step = pair.including.on_message(swapped);
  EXPECT_EQ(step.failure, KexFail::kAuth);
}

TEST(S2InclusionTest, RejectsLowOrderPeerKey) {
  // An all-zero peer public key collapses X25519 to the zero secret; the
  // machine must refuse contribution-free exchanges.
  Pair pair;
  InclusionStep step = pair.including.start();
  step = pair.joining.on_message(*step.send);
  step = pair.including.on_message(*step.send);
  step = pair.joining.on_message(*step.send);  // joining PUBLIC_KEY_REPORT

  AppPayload zero_key = *step.send;
  std::fill(zero_key.params.begin() + 1, zero_key.params.end(), std::uint8_t{0});
  step = pair.including.on_message(zero_key);
  EXPECT_EQ(step.failure, KexFail::kAuth);
  EXPECT_FALSE(pair.including.established().has_value());
}

TEST(S2InclusionTest, KexFailNamesAreStable) {
  EXPECT_STREQ(kex_fail_name(KexFail::kScheme), "KEX_FAIL_KEX_SCHEME");
  EXPECT_STREQ(kex_fail_name(KexFail::kKeyVerify), "KEX_FAIL_KEY_VERIFY");
}

}  // namespace
}  // namespace zc::zwave
