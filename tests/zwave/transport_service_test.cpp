#include "zwave/transport_service.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zc::zwave {
namespace {

Bytes make_datagram(std::size_t size) {
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) data[i] = static_cast<std::uint8_t>(i * 13 + 1);
  return data;
}

TEST(SegmentationTest, SmallDatagramIsOneSegment) {
  const Bytes datagram = make_datagram(10);
  const auto segments = segment_datagram(datagram, 0x01);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].command, kTsFirstSegment);
  EXPECT_EQ(segments[0].params[0], 10);
  EXPECT_EQ(segments[0].params[1], 0x01);
}

TEST(SegmentationTest, LargeDatagramSplits) {
  const Bytes datagram = make_datagram(100);
  const auto segments = segment_datagram(datagram, 0x02, 40);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].command, kTsFirstSegment);
  EXPECT_EQ(segments[1].command, kTsSubsequentSegment);
  EXPECT_EQ(segments[1].params[2], 40);  // offset
  EXPECT_EQ(segments[2].params[2], 80);
}

TEST(SegmentationTest, RejectsEmptyAndOversized) {
  EXPECT_TRUE(segment_datagram(Bytes{}, 1).empty());
  EXPECT_TRUE(segment_datagram(Bytes(300, 0xAA), 1).empty());
}

TEST(ReassemblyTest, InOrderRoundTrip) {
  const Bytes datagram = make_datagram(100);
  const auto segments = segment_datagram(datagram, 0x07, 40);
  TransportReassembler reassembler;
  std::optional<Bytes> completed;
  for (const auto& segment : segments) {
    const auto reaction = reassembler.feed(segment, 0x05, 0);
    ASSERT_TRUE(reaction.ok()) << reaction.error().message;
    if (reaction.value().completed.has_value()) completed = reaction.value().completed;
  }
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(*completed, datagram);
  EXPECT_EQ(reassembler.open_sessions(), 0u);
}

TEST(ReassemblyTest, CompletionEmitsSegmentComplete) {
  const auto segments = segment_datagram(make_datagram(10), 0x03);
  TransportReassembler reassembler;
  const auto reaction = reassembler.feed(segments[0], 0x05, 0);
  ASSERT_TRUE(reaction.ok());
  ASSERT_TRUE(reaction.value().reply.has_value());
  EXPECT_EQ(reaction.value().reply->command, kTsSegmentComplete);
}

TEST(ReassemblyTest, OutOfOrderSegmentsStillComplete) {
  const Bytes datagram = make_datagram(100);
  auto segments = segment_datagram(datagram, 0x04, 40);
  ASSERT_EQ(segments.size(), 3u);
  TransportReassembler reassembler;
  std::optional<Bytes> completed;
  // first, third, second.
  for (const auto* segment : {&segments[0], &segments[2], &segments[1]}) {
    const auto reaction = reassembler.feed(*segment, 0x05, 0);
    ASSERT_TRUE(reaction.ok());
    if (reaction.value().completed.has_value()) completed = reaction.value().completed;
  }
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(*completed, datagram);
}

TEST(ReassemblyTest, GapTriggersSegmentRequest) {
  const auto segments = segment_datagram(make_datagram(100), 0x04, 40);
  TransportReassembler reassembler;
  ASSERT_TRUE(reassembler.feed(segments[0], 0x05, 0).ok());
  // Skip segment[1]; deliver segment[2]: the gap at offset 40 is behind it.
  const auto reaction = reassembler.feed(segments[2], 0x05, 0);
  ASSERT_TRUE(reaction.ok());
  ASSERT_TRUE(reaction.value().reply.has_value());
  EXPECT_EQ(reaction.value().reply->command, kTsSegmentRequest);
  EXPECT_EQ(reaction.value().reply->params[1], 40);
}

TEST(ReassemblyTest, SubsequentWithoutFirstAsksForStart) {
  const auto segments = segment_datagram(make_datagram(100), 0x09, 40);
  TransportReassembler reassembler;
  const auto reaction = reassembler.feed(segments[1], 0x05, 0);
  ASSERT_TRUE(reaction.ok());
  ASSERT_TRUE(reaction.value().reply.has_value());
  EXPECT_EQ(reaction.value().reply->command, kTsSegmentRequest);
  EXPECT_EQ(reaction.value().reply->params[1], 0x00);
}

TEST(ReassemblyTest, DuplicateSegmentsAreIdempotent) {
  const Bytes datagram = make_datagram(80);
  const auto segments = segment_datagram(datagram, 0x05, 40);
  TransportReassembler reassembler;
  ASSERT_TRUE(reassembler.feed(segments[0], 0x05, 0).ok());
  ASSERT_TRUE(reassembler.feed(segments[0], 0x05, 0).ok());  // duplicate
  const auto reaction = reassembler.feed(segments[1], 0x05, 0);
  ASSERT_TRUE(reaction.ok());
  ASSERT_TRUE(reaction.value().completed.has_value());
  EXPECT_EQ(*reaction.value().completed, datagram);
}

TEST(ReassemblyTest, SessionLimitTriggersWait) {
  TransportReassembler reassembler(ReassemblyLimits{2, 200, 2 * kSecond});
  for (std::uint8_t session = 1; session <= 2; ++session) {
    const auto segments = segment_datagram(make_datagram(100), session, 40);
    ASSERT_TRUE(reassembler.feed(segments[0], 0x05, 0).ok());
  }
  const auto segments = segment_datagram(make_datagram(100), 9, 40);
  const auto reaction = reassembler.feed(segments[0], 0x05, 0);
  ASSERT_TRUE(reaction.ok());
  ASSERT_TRUE(reaction.value().reply.has_value());
  EXPECT_EQ(reaction.value().reply->command, kTsSegmentWait);
}

TEST(ReassemblyTest, StaleSessionsExpire) {
  TransportReassembler reassembler;
  const auto segments = segment_datagram(make_datagram(100), 0x06, 40);
  ASSERT_TRUE(reassembler.feed(segments[0], 0x05, 0).ok());
  EXPECT_EQ(reassembler.open_sessions(), 1u);
  // 5 virtual seconds later the half-built session is gone.
  const auto segments2 = segment_datagram(make_datagram(10), 0x07, 40);
  ASSERT_TRUE(reassembler.feed(segments2[0], 0x05, 5 * kSecond).ok());
  EXPECT_EQ(reassembler.open_sessions(), 0u);  // new one completed; old expired
}

TEST(ReassemblyTest, RejectsOverflowingSegment) {
  TransportReassembler reassembler;
  AppPayload evil;
  evil.cmd_class = kTransportServiceClass;
  evil.command = kTsSubsequentSegment;
  // Declares size 10 but writes 8 bytes at offset 200: classic overflow bait.
  evil.params = {10, 0x01, 200, 1, 2, 3, 4, 5, 6, 7, 8};
  const auto reaction = reassembler.feed(evil, 0x05, 0);
  ASSERT_FALSE(reaction.ok());
  EXPECT_EQ(reaction.error().code, Errc::kBadLength);
}

TEST(ReassemblyTest, RejectsZeroAndHugeDatagrams) {
  TransportReassembler reassembler;
  AppPayload zero;
  zero.cmd_class = kTransportServiceClass;
  zero.command = kTsFirstSegment;
  zero.params = {0, 0x01, 0xAA};
  EXPECT_FALSE(reassembler.feed(zero, 0x05, 0).ok());

  AppPayload huge;
  huge.cmd_class = kTransportServiceClass;
  huge.command = kTsFirstSegment;
  huge.params = {0xFF, 0x01, 0xAA};
  EXPECT_FALSE(reassembler.feed(huge, 0x05, 0).ok());  // above max_datagram
}

TEST(ReassemblyTest, SizeConflictDropsSession) {
  TransportReassembler reassembler;
  const auto segments = segment_datagram(make_datagram(100), 0x06, 40);
  ASSERT_TRUE(reassembler.feed(segments[0], 0x05, 0).ok());
  AppPayload conflicting;
  conflicting.cmd_class = kTransportServiceClass;
  conflicting.command = kTsSubsequentSegment;
  conflicting.params = {50 /* different size */, 0x06, 40, 0xAA};
  EXPECT_FALSE(reassembler.feed(conflicting, 0x05, 0).ok());
  EXPECT_EQ(reassembler.open_sessions(), 0u);
}

TEST(ReassemblyTest, FuzzedSegmentsNeverCorruptState) {
  // Property: arbitrary malformed 0x55 payloads either produce a clean
  // error or a valid reaction — and never a bogus completed datagram.
  Rng rng(0x55AA);
  TransportReassembler reassembler;
  for (int i = 0; i < 20000; ++i) {
    AppPayload random;
    random.cmd_class = kTransportServiceClass;
    const CommandId commands[] = {kTsFirstSegment, kTsSubsequentSegment, kTsSegmentRequest,
                                  kTsSegmentComplete, kTsSegmentWait,
                                  static_cast<CommandId>(rng.next_byte())};
    random.command = commands[rng.uniform(0, 5)];
    random.params = rng.bytes(static_cast<std::size_t>(rng.uniform(0, 12)));
    const auto reaction =
        reassembler.feed(random, static_cast<NodeId>(rng.uniform(2, 6)),
                         static_cast<SimTime>(i) * 10 * kMillisecond);
    if (reaction.ok() && reaction.value().completed.has_value()) {
      EXPECT_LE(reaction.value().completed->size(), 200u);
      EXPECT_GT(reaction.value().completed->size(), 0u);
    }
  }
  EXPECT_LE(reassembler.open_sessions(), 4u);
}

}  // namespace
}  // namespace zc::zwave
