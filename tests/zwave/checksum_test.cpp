#include "zwave/checksum.h"

#include <gtest/gtest.h>

namespace zc::zwave {
namespace {

TEST(ChecksumTest, Cs8EmptyIsSeed) { EXPECT_EQ(checksum8({}), 0xFF); }

TEST(ChecksumTest, Cs8XorProperty) {
  // XOR checksum algebra: appending the checksum itself yields the seed's
  // complementary invariant cs(data || cs(data)) == 0x00 ^ seed-ish; check
  // the defining property instead: cs differs by exactly the appended byte.
  const Bytes data = {0x01, 0x02, 0x03};
  const std::uint8_t cs = checksum8(data);
  Bytes extended = data;
  extended.push_back(0x10);
  EXPECT_EQ(checksum8(extended), cs ^ 0x10);
}

TEST(ChecksumTest, Cs8AppendChecksumGivesZeroXor) {
  const Bytes data = {0xCB, 0x95, 0xA3, 0x4A, 0x0F};
  Bytes with_cs = data;
  with_cs.push_back(checksum8(data));
  // XOR of all bytes including the checksum equals the seed.
  std::uint8_t acc = 0;
  for (std::uint8_t b : with_cs) acc ^= b;
  EXPECT_EQ(acc, 0xFF);
}

TEST(ChecksumTest, Cs8OrderInsensitive) {
  EXPECT_EQ(checksum8(Bytes{1, 2, 3}), checksum8(Bytes{3, 2, 1}));
}

TEST(ChecksumTest, Crc16KnownValue) {
  // CRC-16/AUG-CCITT (init 0x1D0F) of "123456789" is 0xE5CC.
  const char* digits = "123456789";
  const Bytes data(digits, digits + 9);
  EXPECT_EQ(crc16_ccitt(data), 0xE5CC);
}

TEST(ChecksumTest, Crc16Empty) { EXPECT_EQ(crc16_ccitt({}), 0x1D0F); }

TEST(ChecksumTest, Crc16DetectsSingleBitFlips) {
  Bytes data = {0x56, 0x01, 0x20, 0x01, 0xFF};
  const std::uint16_t original = crc16_ccitt(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc16_ccitt(data), original) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

TEST(ChecksumTest, Crc16OrderSensitiveUnlikeCs8) {
  EXPECT_NE(crc16_ccitt(Bytes{1, 2, 3}), crc16_ccitt(Bytes{3, 2, 1}));
}

}  // namespace
}  // namespace zc::zwave
