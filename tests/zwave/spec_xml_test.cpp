#include "zwave/spec_xml.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace zc::zwave {
namespace {

TEST(SpecXmlTest, ExportContainsEveryClass) {
  const std::string xml = export_spec_xml(SpecDatabase::instance());
  EXPECT_NE(xml.find("<zw_classes"), std::string::npos);
  EXPECT_NE(xml.find("name=\"SECURITY_2\""), std::string::npos);
  EXPECT_NE(xml.find("name=\"ZWAVE_PROTOCOL\""), std::string::npos);
  EXPECT_NE(xml.find("public=\"false\""), std::string::npos);
}

TEST(SpecXmlTest, FullDatabaseRoundTrip) {
  const auto& db = SpecDatabase::instance();
  const std::string xml = export_spec_xml(db);
  const auto parsed = parse_spec_xml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed.value().size(), db.all().size());
  for (std::size_t i = 0; i < parsed.value().size(); ++i) {
    EXPECT_TRUE(parsed_matches_spec(parsed.value()[i], db.all()[i]))
        << "class index " << i << " (" << parsed.value()[i].name << ")";
  }
}

TEST(SpecXmlTest, ParsesHandWrittenVendorFile) {
  const std::string xml = R"(<?xml version="1.0"?>
<zw_classes version="1">
  <cmd_class key="0xF1" name="VENDOR_MAGIC" cluster="management" public="false">
    <cmd key="0x01" name="MAGIC_SET" direction="controlling">
      <param name="Level" type="enum" min="0x00" max="0x04"/>
      <param name="Payload" type="variadic" min="0x00" max="0xFF"/>
    </cmd>
    <cmd key="0x02" name="MAGIC_GET" direction="controlling"/>
  </cmd_class>
</zw_classes>)";
  const auto parsed = parse_spec_xml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed.value().size(), 1u);
  const auto& cls = parsed.value()[0];
  EXPECT_EQ(cls.id, 0xF1);
  EXPECT_EQ(cls.name, "VENDOR_MAGIC");
  EXPECT_EQ(cls.cluster, CcCluster::kManagement);
  EXPECT_FALSE(cls.in_public_spec);
  ASSERT_EQ(cls.commands.size(), 2u);
  EXPECT_EQ(cls.commands[0].params.size(), 2u);
  EXPECT_EQ(cls.commands[0].params[0].type, ParamType::kEnum);
  EXPECT_EQ(cls.commands[0].params[0].max, 0x04);
  EXPECT_TRUE(cls.commands[1].params.empty());
}

TEST(SpecXmlTest, RejectsDuplicateClassKeys) {
  const std::string xml = R"(<zw_classes>
  <cmd_class key="0x20" name="A" cluster="application"/>
  <cmd_class key="0x20" name="B" cluster="application"/>
</zw_classes>)";
  const auto parsed = parse_spec_xml(xml);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("duplicate"), std::string::npos);
}

TEST(SpecXmlTest, RejectsUnknownCluster) {
  const auto parsed =
      parse_spec_xml(R"(<zw_classes><cmd_class key="0x20" name="A" cluster="nope"/></zw_classes>)");
  ASSERT_FALSE(parsed.ok());
}

TEST(SpecXmlTest, RejectsOrphanCommand) {
  const auto parsed = parse_spec_xml(
      R"(<zw_classes><cmd key="0x01" name="X" direction="controlling"/></zw_classes>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("outside"), std::string::npos);
}

TEST(SpecXmlTest, RejectsMinAboveMax) {
  const std::string xml = R"(<zw_classes>
  <cmd_class key="0x20" name="A" cluster="application">
    <cmd key="0x01" name="SET" direction="controlling">
      <param name="V" type="byte" min="0x10" max="0x05"/>
    </cmd>
  </cmd_class>
</zw_classes>)";
  ASSERT_FALSE(parse_spec_xml(xml).ok());
}

TEST(SpecXmlTest, RejectsUnterminatedTag) {
  ASSERT_FALSE(parse_spec_xml("<zw_classes><cmd_class key=\"0x20\"").ok());
}

TEST(SpecXmlTest, RejectsMissingAttributes) {
  ASSERT_FALSE(parse_spec_xml(R"(<zw_classes><cmd_class name="A"/></zw_classes>)").ok());
}

TEST(SpecXmlTest, RejectsByteOverflow) {
  ASSERT_FALSE(
      parse_spec_xml(R"(<zw_classes><cmd_class key="0x1FF" name="A" cluster="application"/></zw_classes>)")
          .ok());
}

TEST(SpecXmlTest, SkipsDeclarationsAndComments) {
  const std::string xml =
      "<?xml version=\"1.0\"?>\n<!-- vendor note -->\n<zw_classes>"
      R"(<cmd_class key="0x82" name="HAIL" cluster="management"/>)"
      "</zw_classes>";
  const auto parsed = parse_spec_xml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().size(), 1u);
}

TEST(SpecXmlTest, ParserSurvivesRandomBytes) {
  // Property: arbitrary input never crashes; it either parses (to some
  // class list) or reports a clean error.
  Rng rng(0x3417);
  for (int i = 0; i < 2000; ++i) {
    const Bytes blob = rng.bytes(static_cast<std::size_t>(rng.uniform(0, 200)));
    const std::string text(blob.begin(), blob.end());
    const auto parsed = parse_spec_xml(text);
    if (parsed.ok()) {
      for (const auto& cls : parsed.value()) {
        EXPECT_FALSE(cls.name.empty() && !cls.commands.empty());
      }
    }
  }
}

TEST(SpecXmlTest, ParserSurvivesMutatedExport) {
  // Take a real export and flip bytes: result must be parse-or-clean-error.
  const std::string xml = export_class_xml(*SpecDatabase::instance().find(0x9F));
  Rng rng(0x3418);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = "<zw_classes>" + xml + "</zw_classes>";
    const std::size_t flips = rng.uniform(1, 5);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(0, mutated.size() - 1)] =
          static_cast<char>(rng.next_byte());
    }
    (void)parse_spec_xml(mutated);  // must not crash / hang
  }
  SUCCEED();
}

TEST(SpecXmlTest, ClusterAndTypeNameHelpers) {
  EXPECT_TRUE(cluster_from_name("network").ok());
  EXPECT_FALSE(cluster_from_name("bogus").ok());
  EXPECT_TRUE(param_type_from_name("node-id").ok());
  EXPECT_FALSE(param_type_from_name("float").ok());
}

}  // namespace
}  // namespace zc::zwave
