#include "zwave/nif.h"

#include <gtest/gtest.h>

namespace zc::zwave {
namespace {

TEST(NifTest, EncodeDecodeRoundTrip) {
  NodeInfo info;
  info.capabilities = 0x80;
  info.basic_class = kBasicClassStaticController;
  info.generic_class = 0x02;
  info.specific_class = 0x07;
  info.supported = {0x22, 0x59, 0x85, 0x86, 0x9F};

  const AppPayload payload = info.encode();
  EXPECT_EQ(payload.cmd_class, 0x01);
  EXPECT_EQ(payload.command, 0x07);

  const auto decoded = decode_node_info(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().basic_class, kBasicClassStaticController);
  EXPECT_EQ(decoded.value().supported, info.supported);
}

TEST(NifTest, EmptySupportedListIsValid) {
  NodeInfo info;
  const auto decoded = decode_node_info(info.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().supported.empty());
}

TEST(NifTest, DecodeRejectsWrongCommand) {
  AppPayload payload;
  payload.cmd_class = 0x01;
  payload.command = 0x02;
  EXPECT_FALSE(decode_node_info(payload).ok());
}

TEST(NifTest, DecodeRejectsTruncatedHeader) {
  AppPayload payload;
  payload.cmd_class = 0x01;
  payload.command = 0x07;
  payload.params = {0x80, 0x02};  // missing generic/specific
  const auto decoded = decode_node_info(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kTruncated);
}

TEST(NifTest, RequestTargetsNode) {
  const AppPayload request = make_nif_request(0x01);
  EXPECT_EQ(request.cmd_class, 0x01);
  EXPECT_EQ(request.command, 0x02);
  ASSERT_EQ(request.params.size(), 1u);
  EXPECT_EQ(request.params[0], 0x01);
}

TEST(NifTest, NopShape) {
  const AppPayload nop = make_nop();
  EXPECT_EQ(nop.cmd_class, 0x01);
  EXPECT_EQ(nop.command, 0x01);
  EXPECT_TRUE(nop.params.empty());
}

TEST(NifTest, BasicClassNames) {
  EXPECT_STREQ(basic_class_name(kBasicClassStaticController), "static-controller");
  EXPECT_STREQ(basic_class_name(kBasicClassRoutingSlave), "routing-slave");
  EXPECT_STREQ(basic_class_name(0x77), "unknown");
}

}  // namespace
}  // namespace zc::zwave
